#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <exception>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace sbs {

std::string fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::NodeDown: return "node-down";
    case FaultKind::NodeUp: return "node-up";
    case FaultKind::JobKill: return "job-kill";
  }
  throw Error("unknown fault kind");
}

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec out;
  std::string rest = spec;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string item = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const auto colon = item.find(':');
    SBS_CHECK_MSG(colon != std::string::npos,
                  "fault spec item needs key:value — " << item);
    const std::string key = item.substr(0, colon);
    const std::string value = item.substr(colon + 1);
    auto as_ll = [&](const std::string& v) {
      std::size_t used = 0;
      long long x = 0;
      try {
        x = std::stoll(v, &used);
      } catch (const std::exception&) {
        used = 0;  // reported below as a bad number
      }
      SBS_CHECK_MSG(used == v.size() && !v.empty(),
                    "bad number in fault spec: " << item);
      return x;
    };
    if (key == "mtbf") {
      out.node_mtbf = static_cast<Time>(as_ll(value));
    } else if (key == "mttr") {
      out.node_mttr = static_cast<Time>(as_ll(value));
    } else if (key == "killmtbf") {
      out.job_kill_mtbf = static_cast<Time>(as_ll(value));
    } else if (key == "seed") {
      out.seed = static_cast<std::uint64_t>(as_ll(value));
    } else if (key == "block") {
      const auto dash = value.find('-');
      if (dash == std::string::npos) {
        out.min_block = out.max_block = static_cast<int>(as_ll(value));
      } else {
        out.min_block = static_cast<int>(as_ll(value.substr(0, dash)));
        out.max_block = static_cast<int>(as_ll(value.substr(dash + 1)));
      }
    } else {
      throw Error("unknown fault spec key: " + key);
    }
  }
  SBS_CHECK_MSG(out.node_mtbf >= 0 && out.node_mttr >= 0 &&
                    out.job_kill_mtbf >= 0,
                "fault spec times must be non-negative");
  SBS_CHECK_MSG(out.node_mtbf == 0 || out.node_mttr > 0,
                "node failures need mttr > 0 so nodes return to service");
  SBS_CHECK_MSG(out.min_block >= 1 && out.max_block >= out.min_block,
                "fault spec block range must satisfy 1 <= min <= max");
  return out;
}

FaultInjector FaultInjector::from_spec(const FaultSpec& spec, Time begin,
                                       Time end, int capacity) {
  SBS_CHECK(capacity >= 1);
  SBS_CHECK(end >= begin);
  FaultInjector inj;
  std::vector<FaultEvent> events;

  if (spec.node_mtbf > 0) {
    Rng rng(spec.seed);
    // Repairs pending at the current failure time, as (repair time, nodes):
    // walking failures chronologically lets us cap the concurrently-down
    // node count without sorting the full event list first.
    std::vector<std::pair<Time, int>> pending;
    int down = 0;
    Time t = begin;
    while (true) {
      t += std::max<Time>(
          1, static_cast<Time>(std::llround(
                 rng.exponential(static_cast<double>(spec.node_mtbf)))));
      if (t >= end) break;
      // Retire repairs that completed before this failure.
      for (std::size_t i = 0; i < pending.size();) {
        if (pending[i].first <= t) {
          down -= pending[i].second;
          pending[i] = pending.back();
          pending.pop_back();
        } else {
          ++i;
        }
      }
      int block = static_cast<int>(
          rng.uniform_int(spec.min_block, spec.max_block));
      // Keep at least one node up at all times so the machine can always
      // make progress eventually.
      block = std::min(block, capacity - 1 - down);
      const Time repair =
          t + std::max<Time>(
                  1, static_cast<Time>(std::llround(rng.exponential(
                         static_cast<double>(spec.node_mttr)))));
      if (block < 1) continue;  // too much already down; skip this failure
      events.push_back(FaultEvent{t, FaultKind::NodeDown, block, -1, 0});
      events.push_back(FaultEvent{repair, FaultKind::NodeUp, block, -1, 0});
      pending.emplace_back(repair, block);
      down += block;
    }
  }

  if (spec.job_kill_mtbf > 0) {
    Rng rng = Rng(spec.seed).fork(0x6b696c6cULL);  // independent stream
    Time t = begin;
    while (true) {
      t += std::max<Time>(
          1, static_cast<Time>(std::llround(
                 rng.exponential(static_cast<double>(spec.job_kill_mtbf)))));
      if (t >= end) break;
      events.push_back(FaultEvent{t, FaultKind::JobKill, 0, -1, rng.next()});
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
  inj.events_ = std::move(events);
  return inj;
}

FaultInjector FaultInjector::from_events(std::vector<FaultEvent> events) {
  SBS_CHECK_MSG(std::is_sorted(events.begin(), events.end(),
                               [](const FaultEvent& a, const FaultEvent& b) {
                                 return a.time < b.time;
                               }),
                "fault events must be sorted by time");
  for (const FaultEvent& e : events)
    SBS_CHECK_MSG(e.kind == FaultKind::JobKill || e.nodes >= 1,
                  "node fault events need nodes >= 1");
  FaultInjector inj;
  inj.events_ = std::move(events);
  return inj;
}

std::string chaos_kind_name(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::MemberDown: return "member-down";
    case ChaosKind::MemberUp: return "member-up";
    case ChaosKind::LinkDown: return "link-down";
    case ChaosKind::LinkUp: return "link-up";
  }
  throw Error("unknown chaos kind");
}

ChaosSpec parse_chaos_spec(const std::string& spec) {
  ChaosSpec out;
  std::string rest = spec;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string item = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    const auto colon = item.find(':');
    SBS_CHECK_MSG(colon != std::string::npos,
                  "chaos spec item needs key:value — " << item);
    const std::string key = item.substr(0, colon);
    const std::string value = item.substr(colon + 1);
    auto as_ll = [&](const std::string& v) {
      std::size_t used = 0;
      long long x = 0;
      try {
        x = std::stoll(v, &used);
      } catch (const std::exception&) {
        used = 0;  // reported below as a bad number
      }
      SBS_CHECK_MSG(used == v.size() && !v.empty(),
                    "bad number in chaos spec: " << item);
      return x;
    };
    if (key == "mtbf") {
      out.outage_mtbf = static_cast<Time>(as_ll(value));
    } else if (key == "mttr") {
      out.outage_mttr = static_cast<Time>(as_ll(value));
    } else if (key == "linkmtbf") {
      out.partition_mtbf = static_cast<Time>(as_ll(value));
    } else if (key == "linkmttr") {
      out.partition_mttr = static_cast<Time>(as_ll(value));
    } else if (key == "seed") {
      out.seed = static_cast<std::uint64_t>(as_ll(value));
    } else {
      throw Error("unknown chaos spec key: " + key);
    }
  }
  SBS_CHECK_MSG(out.outage_mtbf >= 0 && out.outage_mttr >= 0 &&
                    out.partition_mtbf >= 0 && out.partition_mttr >= 0,
                "chaos spec times must be non-negative");
  SBS_CHECK_MSG(out.outage_mtbf > 0 || out.partition_mtbf > 0,
                "chaos spec enables no process (need mtbf or linkmtbf > 0)");
  SBS_CHECK_MSG(out.outage_mtbf == 0 || out.outage_mttr > 0,
                "member blackouts need mttr > 0 so members come back");
  SBS_CHECK_MSG(out.partition_mtbf == 0 || out.partition_mttr > 0,
                "link partitions need linkmttr > 0 so links heal");
  return out;
}

ChaosSchedule ChaosSchedule::from_spec(const ChaosSpec& spec, Time begin,
                                       Time end, int members) {
  SBS_CHECK(members >= 1);
  SBS_CHECK(end >= begin);
  ChaosSchedule sched;
  std::vector<ChaosEvent> events;

  // One independent stream per (member, process): sequential windows —
  // the next failure is drawn from the previous recovery, so windows of
  // one kind never overlap on one member.
  const auto gen_windows = [&](std::uint64_t stream, Time mtbf, Time mttr,
                               int member, ChaosKind down, ChaosKind up) {
    if (mtbf <= 0) return;
    Rng rng = Rng(spec.seed).fork(stream);
    Time t = begin;
    while (true) {
      t += std::max<Time>(
          1, static_cast<Time>(std::llround(
                 rng.exponential(static_cast<double>(mtbf)))));
      if (t >= end) break;
      const Time heal =
          t + std::max<Time>(
                  1, static_cast<Time>(std::llround(rng.exponential(
                         static_cast<double>(mttr)))));
      events.push_back(ChaosEvent{t, down, member});
      events.push_back(ChaosEvent{heal, up, member});
      t = heal;
    }
  };

  for (int m = 0; m < members; ++m) {
    gen_windows(0x6f757400ULL + static_cast<std::uint64_t>(m),
                spec.outage_mtbf, spec.outage_mttr, m, ChaosKind::MemberDown,
                ChaosKind::MemberUp);
    gen_windows(0x6c6e6b00ULL + static_cast<std::uint64_t>(m),
                spec.partition_mtbf, spec.partition_mttr, m,
                ChaosKind::LinkDown, ChaosKind::LinkUp);
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.time < b.time;
                   });
  sched.events_ = std::move(events);
  return sched;
}

ChaosSchedule ChaosSchedule::from_events(std::vector<ChaosEvent> events) {
  SBS_CHECK_MSG(std::is_sorted(events.begin(), events.end(),
                               [](const ChaosEvent& a, const ChaosEvent& b) {
                                 return a.time < b.time;
                               }),
                "chaos events must be sorted by time");
  // Per member and per process (outage vs partition), events must
  // alternate Down/Up starting with Down and ending with Up, so every
  // window closes and the federation always heals.
  std::vector<int> outage_depth, link_depth;
  for (const ChaosEvent& e : events) {
    SBS_CHECK_MSG(e.member >= 0, "chaos events need member >= 0");
    const auto m = static_cast<std::size_t>(e.member);
    if (m >= outage_depth.size()) {
      outage_depth.resize(m + 1, 0);
      link_depth.resize(m + 1, 0);
    }
    int& depth = (e.kind == ChaosKind::MemberDown ||
                  e.kind == ChaosKind::MemberUp)
                     ? outage_depth[m]
                     : link_depth[m];
    const bool down =
        e.kind == ChaosKind::MemberDown || e.kind == ChaosKind::LinkDown;
    depth += down ? 1 : -1;
    SBS_CHECK_MSG(depth == (down ? 1 : 0),
                  "chaos events for member " << e.member
                      << " must alternate down/up");
  }
  for (std::size_t m = 0; m < outage_depth.size(); ++m)
    SBS_CHECK_MSG(outage_depth[m] == 0 && link_depth[m] == 0,
                  "chaos window for member " << m << " never closes");
  ChaosSchedule sched;
  sched.events_ = std::move(events);
  return sched;
}

}  // namespace sbs
