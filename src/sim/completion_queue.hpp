#pragma once

#include <algorithm>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace sbs::sim {

/// A pending job-completion event. `attempt` is the attempt number the
/// completion was scheduled for; a holder whose job was killed since leaves
/// the stale entry in the queue and ignores it at pop (removing from the
/// middle of a binary heap would cost more than skipping).
struct Completion {
  Time end = 0;
  int job_id = 0;
  int attempt = 0;  ///< invalidated (ignored at pop) when the job was killed
  bool operator>(const Completion& other) const {
    if (end != other.end) return end > other.end;
    return job_id > other.job_id;
  }
};

/// Min-heap of pending completions with its container exposed, so
/// checkpointing can capture the full pending set (including stale entries
/// of killed attempts — they must survive a resume to be skipped at pop
/// exactly as in an uninterrupted run). Shared by the offline simulator
/// and the live `sbsched serve` event loop.
class CompletionQueue
    : public std::priority_queue<Completion, std::vector<Completion>,
                                 std::greater<>> {
 public:
  const std::vector<Completion>& container() const { return c; }
  void restore(std::vector<Completion> entries) {
    c = std::move(entries);
    std::make_heap(c.begin(), c.end(), comp);
  }
};

}  // namespace sbs::sim
