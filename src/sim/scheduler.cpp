#include "sim/scheduler.hpp"

#include <algorithm>

namespace sbs {

ResourceProfile profile_from_running(int capacity, Time now,
                                     std::span<const RunningJob> running) {
  ResourceProfile profile(capacity, now);
  for (const auto& r : running) {
    const Time end = std::max(r.est_end, now + 1);
    // Clamped: after a node failure the running set may exceed the shrunk
    // capacity until the simulator's kills land; the profile saturates at
    // zero free nodes instead of rejecting the reconstruction.
    profile.reserve_clamped(now, r.job->nodes, end - now);
  }
  return profile;
}

}  // namespace sbs
