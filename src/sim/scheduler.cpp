#include "sim/scheduler.hpp"

#include <algorithm>

namespace sbs {

ResourceProfile profile_from_running(int capacity, Time now,
                                     std::span<const RunningJob> running) {
  ResourceProfile profile(capacity, now);
  for (const auto& r : running) {
    const Time end = std::max(r.est_end, now + 1);
    profile.reserve(now, r.job->nodes, end - now);
  }
  return profile;
}

}  // namespace sbs
