#include "sim/scheduler.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace sbs {

void append_stats_json(obs::JsonWriter& w, std::string_view key,
                       const SchedulerStats& s) {
  w.key(key).begin_object();
  w.field("decisions", s.decisions)
      .field("nodes_visited", s.nodes_visited)
      .field("paths_explored", s.paths_explored)
      .field("think_time_us", s.think_time_us)
      .field("deadline_hits", s.deadline_hits)
      .field("max_think_time_us", s.max_think_time_us)
      .field("max_queue_depth", s.max_queue_depth)
      .field("cache_hits", s.cache_hits)
      .field("cache_misses", s.cache_misses)
      .field("cache_invalidations", s.cache_invalidations)
      .field("warm_starts", s.warm_starts)
      .field("pruned_twins", s.pruned_twins)
      .field("pruned_bound", s.pruned_bound);
  w.end_object();
}

SchedulerStats stats_from_json(const obs::JsonValue& v) {
  SBS_CHECK_MSG(v.is_object(), "scheduler stats state is not a JSON object");
  auto u64 = [&](std::string_view key) {
    const obs::JsonValue* f = v.find(key);
    SBS_CHECK_MSG(f != nullptr, "scheduler stats state lacks " << key);
    return static_cast<std::uint64_t>(f->as_int());
  };
  SchedulerStats s;
  s.decisions = u64("decisions");
  s.nodes_visited = u64("nodes_visited");
  s.paths_explored = u64("paths_explored");
  s.think_time_us = u64("think_time_us");
  s.deadline_hits = u64("deadline_hits");
  s.max_think_time_us = u64("max_think_time_us");
  s.max_queue_depth = u64("max_queue_depth");
  s.cache_hits = u64("cache_hits");
  s.cache_misses = u64("cache_misses");
  s.cache_invalidations = u64("cache_invalidations");
  s.warm_starts = u64("warm_starts");
  s.pruned_twins = u64("pruned_twins");
  s.pruned_bound = u64("pruned_bound");
  return s;
}

ResourceProfile profile_from_running(int capacity, Time now,
                                     std::span<const RunningJob> running) {
  ResourceProfile profile(capacity, now);
  for (const auto& r : running) {
    const Time end = std::max(r.est_end, now + 1);
    // Clamped: after a node failure the running set may exceed the shrunk
    // capacity until the simulator's kills land; the profile saturates at
    // zero free nodes instead of rejecting the reconstruction.
    profile.reserve_clamped(now, r.job->nodes, end - now);
  }
  return profile;
}

}  // namespace sbs
