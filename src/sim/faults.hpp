#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace sbs {

/// Kinds of injected faults. Node events change the machine's capacity as
/// seen by the simulator and every policy; job kills terminate one running
/// job without touching capacity (a node OS crash, an OOM kill, ...).
enum class FaultKind {
  NodeDown,  ///< a block of nodes fails (capacity shrinks)
  NodeUp,    ///< a failed block returns to service (capacity grows)
  JobKill,   ///< one running job dies mid-run
};

std::string fault_kind_name(FaultKind kind);

/// One injected fault at an absolute simulation time. For JobKill events
/// either `job_id` names the victim explicitly (>= 0) or `draw` selects one
/// deterministically among the jobs running at the event time (victim =
/// running[draw % running.size()]).
struct FaultEvent {
  Time time = 0;
  FaultKind kind = FaultKind::NodeDown;
  int nodes = 0;           ///< block size for NodeDown/NodeUp
  int job_id = -1;         ///< explicit JobKill victim; -1 = use `draw`
  std::uint64_t draw = 0;  ///< seeded victim selector for JobKill
};

/// Stochastic fault process parameters. All rates are means of exponential
/// distributions, so the generated processes are Poisson. A zero MTBF
/// disables that process entirely.
struct FaultSpec {
  Time node_mtbf = 0;    ///< mean time between node-block failures
  Time node_mttr = 0;    ///< mean repair time of a failed block (> 0 when
                         ///  node_mtbf > 0, otherwise blocks never return)
  int min_block = 1;     ///< failure block size, uniform in [min, max]
  int max_block = 1;
  Time job_kill_mtbf = 0;  ///< mean time between random job-kill events
  std::uint64_t seed = 2005;
};

/// Parses a CLI fault spec, e.g. "mtbf:86400,mttr:3600,seed:7" with
/// optional "block:4" (fixed) or "block:2-8" (uniform range) and
/// "killmtbf:43200". Throws sbs::Error on unknown keys or bad values.
FaultSpec parse_fault_spec(const std::string& spec);

/// Deterministic, pre-generated fault schedule. Built once per simulation
/// from a seeded spec (identical seeds yield identical event lists) or from
/// an explicit event list (tests, trace replay of real failure logs).
///
/// Invariants maintained by from_spec():
///  - every NodeDown has a matching NodeUp (repairs may land beyond the
///    horizon so the machine always returns to full capacity),
///  - concurrently failed nodes never reach `capacity` (at least one node
///    stays up, so the simulation cannot be wedged forever),
///  - events are sorted by time (ties keep generation order).
class FaultInjector {
 public:
  /// No faults (the default, fault-free simulation).
  FaultInjector() = default;

  /// Generates failures over [begin, end) for a `capacity`-node machine.
  /// Repair events may fall beyond `end`; failure events never do.
  static FaultInjector from_spec(const FaultSpec& spec, Time begin, Time end,
                                 int capacity);

  /// Wraps an explicit event list (sorted by time; checked).
  static FaultInjector from_events(std::vector<FaultEvent> events);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

/// Federation-scoped chaos: whole-member blackouts (every node of one
/// member cluster loses power for a window) and meta<->member link
/// partitions (the member keeps scheduling autonomously, but routing,
/// migration, and telemetry between it and the meta-scheduler are dropped
/// until the link heals). Node-level faults stay in FaultInjector; chaos
/// events name a *member*, not a node block.
enum class ChaosKind {
  MemberDown,  ///< blackout begins: the whole member goes dark
  MemberUp,    ///< blackout ends: the member reboots at full capacity
  LinkDown,    ///< meta<->member partition begins (member stays alive)
  LinkUp,      ///< partition heals; reconciliation runs
};

std::string chaos_kind_name(ChaosKind kind);

/// One chaos event at an absolute simulation time.
struct ChaosEvent {
  Time time = 0;
  ChaosKind kind = ChaosKind::MemberDown;
  int member = 0;  ///< member cluster index
};

/// Stochastic chaos process parameters, per member. Means of exponential
/// distributions (Poisson processes); a zero MTBF disables that process.
struct ChaosSpec {
  Time outage_mtbf = 0;     ///< mean time between member blackouts
  Time outage_mttr = 0;     ///< mean blackout duration (> 0 when enabled)
  Time partition_mtbf = 0;  ///< mean time between link partitions
  Time partition_mttr = 0;  ///< mean partition duration (> 0 when enabled)
  std::uint64_t seed = 2005;
};

/// Parses a CLI chaos spec, e.g. "mtbf:259200,mttr:7200,seed:9" with
/// optional "linkmtbf:172800,linkmttr:3600". At least one of mtbf /
/// linkmtbf must be positive. Throws sbs::Error on unknown keys or bad
/// values.
ChaosSpec parse_chaos_spec(const std::string& spec);

/// Deterministic, pre-generated federation chaos schedule. Built once per
/// run from a seeded spec (identical seed + member count yield identical
/// schedules) or from an explicit event list (tests).
///
/// Invariants maintained by from_spec():
///  - every MemberDown / LinkDown has a matching Up (possibly beyond the
///    horizon), so every outage and partition eventually ends;
///  - per member, windows of the same kind never overlap (the next
///    failure is drawn from the previous recovery);
///  - events are sorted by time (ties keep generation order: lower member
///    index first, outages before partitions).
class ChaosSchedule {
 public:
  /// No chaos (the default).
  ChaosSchedule() = default;

  /// Generates outage/partition windows over [begin, end) for a
  /// federation of `members` clusters. Down events never fall past `end`;
  /// the paired Up events may.
  static ChaosSchedule from_spec(const ChaosSpec& spec, Time begin, Time end,
                                 int members);

  /// Wraps an explicit event list (sorted by time; checked, including
  /// Down/Up pairing per member and kind).
  static ChaosSchedule from_events(std::vector<ChaosEvent> events);

  const std::vector<ChaosEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<ChaosEvent> events_;
};

}  // namespace sbs
