#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cluster/resource_profile.hpp"
#include "jobs/job.hpp"
#include "obs/events.hpp"

namespace sbs::obs {
class JsonWriter;
struct JsonValue;
}  // namespace sbs::obs

namespace sbs {

/// A queued job as seen by a scheduling policy. `estimate` is the runtime
/// the policy may plan with — the actual runtime T when the experiment uses
/// R* = T, or the user request R when it uses R* = R. Policies never see
/// the actual runtime directly.
struct WaitingJob {
  const Job* job = nullptr;
  Time estimate = 0;
};

/// A running job as seen by a scheduling policy: when it started and when
/// the policy should expect it to end (start + estimate).
struct RunningJob {
  const Job* job = nullptr;
  Time start = 0;
  Time est_end = 0;
};

/// Snapshot handed to a policy at each scheduling event. Under fault
/// injection `capacity` is the CURRENT machine size, which can shrink and
/// grow between decisions; policies must park (skip) waiting jobs wider
/// than it rather than assume every queued job fits the machine.
struct SchedulerState {
  Time now = 0;
  int capacity = 0;     ///< live node count (<= the trace's capacity)
  int free_nodes = 0;   ///< capacity minus nodes of running jobs (>= 0)
  std::span<const WaitingJob> waiting;  ///< submit order (FCFS order)
  std::span<const RunningJob> running;
};

/// Cumulative policy-side counters, reported by the harness.
struct SchedulerStats {
  std::uint64_t decisions = 0;      ///< scheduling events handled
  std::uint64_t nodes_visited = 0;  ///< search-tree nodes (search policies)
  std::uint64_t paths_explored = 0; ///< complete schedules evaluated
  std::uint64_t think_time_us = 0;  ///< wall-clock microseconds spent inside
                                    ///  select_jobs (search policies track
                                    ///  this; the paper reports 30-65 ms per
                                    ///  1K-8K nodes for its Java simulator)
  std::uint64_t deadline_hits = 0;  ///< decisions where the search hit its
                                    ///  wall-clock deadline and degraded to
                                    ///  the best-so-far (anytime) schedule
  std::uint64_t max_think_time_us = 0;  ///< slowest single decision
  std::uint64_t max_queue_depth = 0;    ///< deepest queue seen at a decision
  std::uint64_t cache_hits = 0;    ///< earliest-start memo hits (search
                                   ///  policies with SearchConfig::cache)
  std::uint64_t cache_misses = 0;  ///< memo misses (profile scans paid)
  std::uint64_t cache_invalidations = 0;  ///< whole-memo size-bound resets
  std::uint64_t warm_starts = 0;   ///< decisions whose search was seeded by
                                   ///  the previous event's best path
  std::uint64_t pruned_twins = 0;  ///< subtrees skipped as non-canonical
                                   ///  twin permutations (SearchConfig::
                                   ///  dominance)
  std::uint64_t pruned_bound = 0;  ///< partial paths cut by the frozen or
                                   ///  branch-and-bound lower bound
};

/// Per-decision search detail a policy may expose for telemetry: the
/// iteration count, the winning path's discrepancy count, and the anytime
/// improvement timeline. Cumulative counters (nodes, paths, think time)
/// are NOT duplicated here — the simulator derives per-decision deltas
/// from stats(), which keeps the event stream reconcilable with the run
/// aggregates by construction.
struct DecisionDetail {
  std::uint64_t iterations = 0;
  std::int64_t discrepancies = -1;  ///< winning path; -1 = not a search
  std::vector<obs::ImprovementPoint> improvements;
  std::uint64_t threads_used = 0;  ///< parallel-search workers (0 = sequential)
  std::vector<std::uint64_t> worker_nodes;  ///< speculative nodes per worker
  /// Overload-governor annotations (resilience::GovernedScheduler): the
  /// ladder level this decision ran at (-1 = no governor), whether it was a
  /// half-open probe, and any level transitions it triggered.
  int governor_level = -1;
  bool governor_probe = false;
  std::vector<obs::GovernorTransition> governor_transitions;
};

/// Non-preemptive scheduling policy. At each event the simulator calls
/// select_jobs() exactly once; the returned job ids (subset of
/// state.waiting) are started at state.now. The chosen set must fit the
/// free nodes simultaneously — the simulator verifies this.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::vector<int> select_jobs(const SchedulerState& state) = 0;

  /// Human-readable policy name, e.g. "DDS/lxf/dynB".
  virtual std::string name() const = 0;

  virtual SchedulerStats stats() const { return {}; }

  /// Telemetry opt-in. The simulator enables detail collection once per
  /// run when a telemetry sink is attached; policies that keep per-decision
  /// detail then make it retrievable via last_decision() until the next
  /// select_jobs() call. Default: no detail, zero bookkeeping.
  virtual void set_collect_decision_detail(bool) {}
  virtual const DecisionDetail* last_decision() const { return nullptr; }

  /// Checkpoint support: serialize the policy's cross-event state (stats,
  /// warm-start order, fair-share ledger, breaker state, ...) as one JSON
  /// object, and restore it so a resumed run continues bit-identically.
  /// The default (stateless policy) round-trips nothing. restore_state()
  /// must accept exactly what save_state() produced for the same policy
  /// configuration; it throws sbs::Error on malformed or mismatched input.
  virtual std::string save_state() const { return "{}"; }
  virtual void restore_state(std::string_view state) { (void)state; }
};

/// JSON round-trip helpers for SchedulerStats, shared by every policy's
/// save_state()/restore_state(). The stats travel inside the checkpoint so
/// a resumed run's cumulative counters (and the telemetry deltas derived
/// from them) match an uninterrupted run exactly.
void append_stats_json(obs::JsonWriter& w, std::string_view key,
                       const SchedulerStats& stats);
SchedulerStats stats_from_json(const obs::JsonValue& v);

/// Builds the free-node profile implied by the running jobs: full capacity
/// from `now`, minus each running job over [now, est_end). Estimated ends
/// in the past (possible when estimates are inaccurate) are clamped to
/// now + 1 second — "expected to finish imminently".
ResourceProfile profile_from_running(int capacity, Time now,
                                     std::span<const RunningJob> running);

}  // namespace sbs
