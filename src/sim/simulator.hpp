#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "jobs/trace.hpp"
#include "predict/predictor.hpp"
#include "sim/completion_queue.hpp"
#include "sim/faults.hpp"
#include "sim/outcome.hpp"
#include "sim/scheduler.hpp"
#include "sim/snapshot.hpp"

namespace sbs {

namespace obs {
class Telemetry;
}

/// What happens to a running job killed by a fault event.
enum class RequeuePolicy {
  Resubmit,  ///< the job returns to the queue (original submit time, so it
             ///  re-enters at its FCFS position) and runs from scratch
  Drop,      ///< the job is lost — marked incomplete, never restarted
};

/// Simulation controls shared across experiments.
struct SimConfig {
  /// R* selection: false = schedulers plan with actual runtimes (R* = T),
  /// true = with user-requested runtimes (R* = R). The machine itself
  /// always frees nodes at the actual runtime.
  bool use_requested_runtime = false;

  /// Optional on-line runtime predictor (paper future work). When set, it
  /// overrides use_requested_runtime: schedulers plan with
  /// predictor->predict(job), and the predictor observes every completion.
  /// Not owned; must outlive the simulation. Stateful across one run.
  RuntimePredictor* predictor = nullptr;

  /// Production semantics for over-running jobs: kill a job when it
  /// reaches its requested runtime (real resource managers enforce R as a
  /// hard limit). Off by default — the synthetic generator guarantees
  /// R >= T, but public SWF traces contain T > R records.
  bool kill_at_request = false;

  /// Hard cap on events, as a runaway guard for malformed inputs.
  std::size_t max_events = 50'000'000;

  /// Optional fault schedule (node failures/repairs, job kills). Not
  /// owned; must outlive the simulation. nullptr = fault-free machine.
  const FaultInjector* faults = nullptr;

  /// Fate of jobs killed by faults.
  RequeuePolicy requeue = RequeuePolicy::Resubmit;

  /// Optional decision-level telemetry (metrics registry + JSONL event
  /// stream). Not owned; must outlive the simulation. nullptr (the
  /// default) reduces every hook to one pointer test.
  obs::Telemetry* telemetry = nullptr;

  /// Checkpointing: every `checkpoint_every` processed events (0 = off)
  /// the simulator captures a SimSnapshot at the event boundary and hands
  /// it to `checkpoint_sink` (required when checkpoint_every > 0). The
  /// capture point is after the event was fully handled, so a resumed run
  /// re-enters the loop exactly where an uninterrupted one would be.
  std::uint64_t checkpoint_every = 0;
  std::function<void(const sim::SimSnapshot&)> checkpoint_sink;

  /// Resume: start from this snapshot instead of an empty machine. The
  /// caller must pass the same trace, machine, fault schedule, and an
  /// identically configured scheduler (restore the scheduler's state via
  /// Scheduler::restore_state before calling). Not owned.
  const sim::SimSnapshot* resume = nullptr;

  /// Graceful-stop flag (SIGINT/SIGTERM handlers set it): polled once per
  /// event; when it becomes true the simulator flushes telemetry and
  /// throws sbs::Error so the caller can point at the latest checkpoint.
  const std::atomic<bool>* interrupt = nullptr;

  /// Member-cluster identity inside a federation: tags every telemetry
  /// record this simulator emits with a "cluster" field. The default (-1)
  /// omits the field, keeping single-cluster streams byte-compatible with
  /// the pre-federation schema.
  int cluster_id = -1;

  /// Whether to emit the stream-level "run" record when telemetry is
  /// attached. A federation emits exactly one run record itself and turns
  /// this off for its members, so a multi-cluster run still reads as one
  /// run in `sbsched report`.
  bool emit_run_record = true;

  /// Trace::validate() on construction. A federation member holds a copy
  /// of the global trace with the member's (smaller) capacity, where jobs
  /// wider than the member legitimately exist (the meta-scheduler never
  /// routes them there); the federation validates the global trace once
  /// and disables per-member validation.
  bool validate_trace = true;
};

/// Queue-depth statistics at scheduling decision points (the paper §2.2
/// observes "at least 10 waiting jobs in most of the scheduling decision
/// points" under high load — this makes that auditable).
struct DecisionStats {
  std::uint64_t decisions = 0;          ///< scheduler invocations
  std::uint64_t with_10_plus = 0;       ///< decisions with >= 10 waiting jobs
  std::size_t max_waiting = 0;          ///< largest queue seen at a decision
  double mean_waiting = 0.0;            ///< mean queue length at decisions

  double fraction_10_plus() const {
    return decisions ? static_cast<double>(with_10_plus) /
                           static_cast<double>(decisions)
                     : 0.0;
  }
};

/// Aggregate fault-handling counters for one run. On a fault-free run all
/// counters are zero and min_capacity equals the trace capacity.
struct FaultStats {
  std::uint64_t node_failures = 0;   ///< NodeDown events applied
  std::uint64_t node_recoveries = 0; ///< NodeUp events applied
  std::uint64_t jobs_killed = 0;     ///< running jobs terminated by faults
  std::uint64_t jobs_requeued = 0;   ///< kills that went back to the queue
  std::uint64_t jobs_dropped = 0;    ///< kills under RequeuePolicy::Drop
  std::uint64_t jobs_unstarted = 0;  ///< still waiting when the run drained
  double lost_node_seconds = 0.0;    ///< work thrown away by kills
  int min_capacity = 0;              ///< lowest capacity seen during the run
};

/// Result of simulating one trace under one policy.
struct SimResult {
  std::vector<JobOutcome> outcomes;  ///< one per trace job, in job-id order
  double avg_queue_length = 0.0;     ///< time-weighted, metrics window only
  SchedulerStats sched_stats;
  DecisionStats decision_stats;
  FaultStats fault_stats;
};

namespace sim {

/// Event-driven cluster simulator with an externally steppable event loop.
///
/// The classic single-machine entry point is the free function
/// sbs::simulate() below — construct, run(), finish(). The class form
/// exists so a federation can compose N member simulators under one shared
/// virtual-time loop: each member exposes its next event time, is stepped
/// to a bound (`step(until)`), and accepts externally injected arrivals
/// (the meta-scheduler routes the global trace's jobs to members) and
/// extractions of still-waiting jobs (cross-cluster migration).
///
/// Two arrival modes:
///  - trace mode (default): arrivals come from the trace's job list via an
///    internal cursor, exactly as simulate() always worked;
///  - external mode (enable_external_arrivals()): the trace cursor is
///    ignored and arrivals enter only via inject_arrival(). The loop then
///    cannot know future arrival times, so the driver must (a) only step to
///    bounds no later than the next arrival it will inject, and (b) call
///    close_arrivals() once no further injections will ever happen —
///    until then the simulator assumes more work may come and keeps fault
///    events alive (same semantics as "arrivals left" in trace mode).
///
/// Determinism contract: driving a federation-of-one by injecting each
/// trace arrival at its submit time and stepping to each event time yields
/// the exact event sequence of the plain run — same batching, same event
/// count, same queue accounting, bit-identical outcomes and stats. The
/// differential tests pin this.
class Simulator {
 public:
  /// "No pending event" sentinel for next_event_time().
  static constexpr Time kNoEvent = std::numeric_limits<Time>::max();

  /// References are not owned and must outlive the simulator. Applies
  /// config.resume immediately (the machine state is restored before the
  /// first step). Throws sbs::Error on invalid traces or snapshots.
  Simulator(const Trace& trace, Scheduler& scheduler,
            const SimConfig& config = {});

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Earliest pending event time: next arrival (trace cursor or injected),
  /// next completion, next fault event that still matters. kNoEvent when
  /// nothing is pending — which in external mode with open arrivals only
  /// means "nothing pending *yet*" (drained() stays false).
  Time next_event_time() const;

  /// True when no event source can ever fire again: no arrivals left (or
  /// possible), no completions in flight, no fault event that matters.
  bool drained() const;

  /// Processes exactly one event bundle (all simultaneous events at the
  /// next event time, plus the one scheduling decision they trigger).
  /// Returns false without processing anything when drained() or when the
  /// next event time is unknown (external mode, nothing injected yet).
  bool step_event();

  /// Processes every event with time <= until (none past it).
  void step(Time until);

  /// Runs the loop to completion (trace mode only).
  void run();

  /// Finalizes the run: marks never-started jobs, computes the averages,
  /// flushes telemetry, and returns the result. Call exactly once, after
  /// the loop drained (or at a deliberate early stop).
  SimResult finish();

  /// Switches to external-arrival mode. Must be called before any
  /// stepping; incompatible with a non-empty trace cursor advance.
  void enable_external_arrivals();

  /// External mode: declares that no further inject_arrival() calls will
  /// ever happen, letting the loop terminate once in-flight work drains.
  void close_arrivals();

  /// External mode: queues trace job `job_id` to arrive at time `at`
  /// (>= the current frontier; injection order is admission order for
  /// equal times). `record_submit` controls the telemetry "submit" record
  /// — true for a job's first admission into the federation, false for a
  /// migration re-admission (the federation emits a "migrate" record
  /// instead).
  void inject_arrival(int job_id, Time at, bool record_submit);

  /// Removes a still-waiting job from the queue (cross-cluster migration).
  /// Returns false when the job is not currently waiting here. Queue order
  /// of the remaining jobs is preserved.
  bool extract_waiting(int job_id);

  // Introspection for meta-scheduler probes and federation bookkeeping.
  const Trace& trace() const { return trace_; }
  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }
  /// Live capacity = trace capacity minus currently failed nodes.
  int live_capacity() const { return trace_.capacity - down_nodes_; }
  int used_nodes() const { return used_nodes_; }
  /// Time of the last processed event bundle (the loop frontier).
  Time frontier() const { return now_; }
  std::uint64_t events_processed() const { return events_; }
  const std::vector<WaitingJob>& waiting_jobs() const { return waiting_; }
  const std::vector<RunningJob>& running_jobs() const { return running_; }
  /// Mid-run outcome of one job as recorded so far. A job neither waiting
  /// nor running here is terminal: `completed && end > start` means it
  /// really finished here — the default outcome is completed with
  /// start == end == 0, drops clear the flag, and a killed attempt zeroes
  /// its stale dispatch times until the next dispatch rewrites them.
  /// Federation reconciliation classifies partition-side ground truth with
  /// this.
  const JobOutcome& outcome_so_far(int job_id) const {
    return result_.outcomes[static_cast<std::size_t>(job_id)];
  }

  /// Captures the full mid-run state at the current event boundary (the
  /// same capture the checkpoint_every cadence feeds to checkpoint_sink).
  sim::SimSnapshot capture() const;

 private:
  Time estimate_of(const Job& j) const;
  Time effective_runtime(const Job& j) const;
  void account_queue(Time upto);
  void kill_running(std::size_t ri, Time now);
  void apply_resume(const sim::SimSnapshot& snap);
  bool arrivals_possible() const;
  bool faults_matter() const;

  struct PendingArrival {
    int job_id = 0;
    Time at = 0;
    bool record_submit = true;
  };

  const Trace& trace_;
  Scheduler& scheduler_;
  const SimConfig config_;
  const std::vector<FaultEvent>& faults_;
  obs::Telemetry* const tel_;
  std::string policy_name_;

  SimResult result_;
  std::vector<WaitingJob> waiting_;
  std::vector<RunningJob> running_;
  CompletionQueue completions_;
  std::vector<int> attempt_;

  std::size_t next_arrival_ = 0;
  std::size_t next_fault_ = 0;
  int used_nodes_ = 0;
  int down_nodes_ = 0;
  std::size_t events_ = 0;
  double queue_area_ = 0.0;
  Time last_event_ = 0;
  Time now_ = 0;
  bool requeued_this_event_ = false;
  bool finished_ = false;

  bool external_ = false;
  bool arrivals_open_ = false;
  std::deque<PendingArrival> pending_;
};

}  // namespace sim

/// Event-driven simulation: arrivals, completions and fault events trigger
/// exactly one scheduling decision each (batched when simultaneous).
/// Non-preemptive from the scheduler's point of view: started jobs run to
/// their actual runtime unless a fault kills them. Node failures shrink
/// the capacity every policy sees; if the running jobs no longer fit, the
/// most recently started jobs are killed (and requeued or dropped per
/// config.requeue) until they do. Jobs wider than the current capacity
/// park in the queue until nodes return. Throws sbs::Error if the policy
/// returns an infeasible or unknown job set, or if it stalls (idle machine
/// + a startable job + no selection).
SimResult simulate(const Trace& trace, Scheduler& scheduler,
                   const SimConfig& config = {});

}  // namespace sbs
