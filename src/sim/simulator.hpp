#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "jobs/trace.hpp"
#include "predict/predictor.hpp"
#include "sim/faults.hpp"
#include "sim/outcome.hpp"
#include "sim/scheduler.hpp"
#include "sim/snapshot.hpp"

namespace sbs {

namespace obs {
class Telemetry;
}

/// What happens to a running job killed by a fault event.
enum class RequeuePolicy {
  Resubmit,  ///< the job returns to the queue (original submit time, so it
             ///  re-enters at its FCFS position) and runs from scratch
  Drop,      ///< the job is lost — marked incomplete, never restarted
};

/// Simulation controls shared across experiments.
struct SimConfig {
  /// R* selection: false = schedulers plan with actual runtimes (R* = T),
  /// true = with user-requested runtimes (R* = R). The machine itself
  /// always frees nodes at the actual runtime.
  bool use_requested_runtime = false;

  /// Optional on-line runtime predictor (paper future work). When set, it
  /// overrides use_requested_runtime: schedulers plan with
  /// predictor->predict(job), and the predictor observes every completion.
  /// Not owned; must outlive the simulation. Stateful across one run.
  RuntimePredictor* predictor = nullptr;

  /// Production semantics for over-running jobs: kill a job when it
  /// reaches its requested runtime (real resource managers enforce R as a
  /// hard limit). Off by default — the synthetic generator guarantees
  /// R >= T, but public SWF traces contain T > R records.
  bool kill_at_request = false;

  /// Hard cap on events, as a runaway guard for malformed inputs.
  std::size_t max_events = 50'000'000;

  /// Optional fault schedule (node failures/repairs, job kills). Not
  /// owned; must outlive the simulation. nullptr = fault-free machine.
  const FaultInjector* faults = nullptr;

  /// Fate of jobs killed by faults.
  RequeuePolicy requeue = RequeuePolicy::Resubmit;

  /// Optional decision-level telemetry (metrics registry + JSONL event
  /// stream). Not owned; must outlive the simulation. nullptr (the
  /// default) reduces every hook to one pointer test.
  obs::Telemetry* telemetry = nullptr;

  /// Checkpointing: every `checkpoint_every` processed events (0 = off)
  /// the simulator captures a SimSnapshot at the event boundary and hands
  /// it to `checkpoint_sink` (required when checkpoint_every > 0). The
  /// capture point is after the event was fully handled, so a resumed run
  /// re-enters the loop exactly where an uninterrupted one would be.
  std::uint64_t checkpoint_every = 0;
  std::function<void(const sim::SimSnapshot&)> checkpoint_sink;

  /// Resume: start from this snapshot instead of an empty machine. The
  /// caller must pass the same trace, machine, fault schedule, and an
  /// identically configured scheduler (restore the scheduler's state via
  /// Scheduler::restore_state before calling). Not owned.
  const sim::SimSnapshot* resume = nullptr;

  /// Graceful-stop flag (SIGINT/SIGTERM handlers set it): polled once per
  /// event; when it becomes true the simulator flushes telemetry and
  /// throws sbs::Error so the caller can point at the latest checkpoint.
  const std::atomic<bool>* interrupt = nullptr;
};

/// Queue-depth statistics at scheduling decision points (the paper §2.2
/// observes "at least 10 waiting jobs in most of the scheduling decision
/// points" under high load — this makes that auditable).
struct DecisionStats {
  std::uint64_t decisions = 0;          ///< scheduler invocations
  std::uint64_t with_10_plus = 0;       ///< decisions with >= 10 waiting jobs
  std::size_t max_waiting = 0;          ///< largest queue seen at a decision
  double mean_waiting = 0.0;            ///< mean queue length at decisions

  double fraction_10_plus() const {
    return decisions ? static_cast<double>(with_10_plus) /
                           static_cast<double>(decisions)
                     : 0.0;
  }
};

/// Aggregate fault-handling counters for one run. On a fault-free run all
/// counters are zero and min_capacity equals the trace capacity.
struct FaultStats {
  std::uint64_t node_failures = 0;   ///< NodeDown events applied
  std::uint64_t node_recoveries = 0; ///< NodeUp events applied
  std::uint64_t jobs_killed = 0;     ///< running jobs terminated by faults
  std::uint64_t jobs_requeued = 0;   ///< kills that went back to the queue
  std::uint64_t jobs_dropped = 0;    ///< kills under RequeuePolicy::Drop
  std::uint64_t jobs_unstarted = 0;  ///< still waiting when the run drained
  double lost_node_seconds = 0.0;    ///< work thrown away by kills
  int min_capacity = 0;              ///< lowest capacity seen during the run
};

/// Result of simulating one trace under one policy.
struct SimResult {
  std::vector<JobOutcome> outcomes;  ///< one per trace job, in job-id order
  double avg_queue_length = 0.0;     ///< time-weighted, metrics window only
  SchedulerStats sched_stats;
  DecisionStats decision_stats;
  FaultStats fault_stats;
};

/// Event-driven simulation: arrivals, completions and fault events trigger
/// exactly one scheduling decision each (batched when simultaneous).
/// Non-preemptive from the scheduler's point of view: started jobs run to
/// their actual runtime unless a fault kills them. Node failures shrink
/// the capacity every policy sees; if the running jobs no longer fit, the
/// most recently started jobs are killed (and requeued or dropped per
/// config.requeue) until they do. Jobs wider than the current capacity
/// park in the queue until nodes return. Throws sbs::Error if the policy
/// returns an infeasible or unknown job set, or if it stalls (idle machine
/// + a startable job + no selection).
SimResult simulate(const Trace& trace, Scheduler& scheduler,
                   const SimConfig& config = {});

}  // namespace sbs
