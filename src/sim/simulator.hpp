#pragma once

#include <vector>

#include "jobs/trace.hpp"
#include "predict/predictor.hpp"
#include "sim/outcome.hpp"
#include "sim/scheduler.hpp"

namespace sbs {

/// Simulation controls shared across experiments.
struct SimConfig {
  /// R* selection: false = schedulers plan with actual runtimes (R* = T),
  /// true = with user-requested runtimes (R* = R). The machine itself
  /// always frees nodes at the actual runtime.
  bool use_requested_runtime = false;

  /// Optional on-line runtime predictor (paper future work). When set, it
  /// overrides use_requested_runtime: schedulers plan with
  /// predictor->predict(job), and the predictor observes every completion.
  /// Not owned; must outlive the simulation. Stateful across one run.
  RuntimePredictor* predictor = nullptr;

  /// Production semantics for over-running jobs: kill a job when it
  /// reaches its requested runtime (real resource managers enforce R as a
  /// hard limit). Off by default — the synthetic generator guarantees
  /// R >= T, but public SWF traces contain T > R records.
  bool kill_at_request = false;

  /// Hard cap on events, as a runaway guard for malformed inputs.
  std::size_t max_events = 50'000'000;
};

/// Queue-depth statistics at scheduling decision points (the paper §2.2
/// observes "at least 10 waiting jobs in most of the scheduling decision
/// points" under high load — this makes that auditable).
struct DecisionStats {
  std::uint64_t decisions = 0;          ///< scheduler invocations
  std::uint64_t with_10_plus = 0;       ///< decisions with >= 10 waiting jobs
  std::size_t max_waiting = 0;          ///< largest queue seen at a decision
  double mean_waiting = 0.0;            ///< mean queue length at decisions

  double fraction_10_plus() const {
    return decisions ? static_cast<double>(with_10_plus) /
                           static_cast<double>(decisions)
                     : 0.0;
  }
};

/// Result of simulating one trace under one policy.
struct SimResult {
  std::vector<JobOutcome> outcomes;  ///< one per trace job, in job-id order
  double avg_queue_length = 0.0;     ///< time-weighted, metrics window only
  SchedulerStats sched_stats;
  DecisionStats decision_stats;
};

/// Event-driven simulation: arrivals and completions trigger exactly one
/// scheduling decision each (batched when simultaneous). Non-preemptive:
/// started jobs run to their actual runtime. Throws sbs::Error if the
/// policy returns an infeasible or unknown job set, or if it stalls (empty
/// machine + non-empty queue + no selection).
SimResult simulate(const Trace& trace, Scheduler& scheduler,
                   const SimConfig& config = {});

}  // namespace sbs
