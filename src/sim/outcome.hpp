#pragma once

#include <algorithm>

#include "jobs/job.hpp"

namespace sbs {

/// Execution record of one job. On a fault-free machine every job
/// completes and `completed` stays true; under fault injection a job may be
/// killed and restarted (requeue_count > 0, lost_node_seconds accumulates
/// the work thrown away) or never finish at all (completed == false, either
/// dropped after a kill or still parked when the simulation drained).
struct JobOutcome {
  Job job;
  Time start = 0;
  Time end = 0;
  int requeue_count = 0;        ///< kills survived before the final attempt
  Time lost_node_seconds = 0;   ///< node-seconds burned by killed attempts
  bool completed = true;        ///< ran to completion (start/end are final)

  Time wait() const { return start - job.submit; }
  Time turnaround() const { return end - job.submit; }
};

/// Bounded slowdown with the paper's 1-minute runtime floor: jobs shorter
/// than a minute are treated as 1-minute jobs, so a zero-wait job always
/// has slowdown exactly 1.
inline double bounded_slowdown(const JobOutcome& o, Time min_runtime = kMinute) {
  const double denom =
      static_cast<double>(std::max(o.job.runtime, min_runtime));
  const double num = static_cast<double>(o.wait()) +
                     static_cast<double>(std::max(o.job.runtime, min_runtime));
  return std::max(1.0, num / denom);
}

/// Per-job normalized excessive wait w.r.t. threshold t: wait in excess of
/// t, zero when the job waited at most t.
inline Time excessive_wait(const JobOutcome& o, Time threshold) {
  return std::max<Time>(0, o.wait() - threshold);
}

}  // namespace sbs
