#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace sbs {

namespace {

struct Completion {
  Time end;
  int job_id;
  int attempt;  ///< invalidated (ignored at pop) when the job was killed
  bool operator>(const Completion& other) const {
    if (end != other.end) return end > other.end;
    return job_id > other.job_id;
  }
};

}  // namespace

SimResult simulate(const Trace& trace, Scheduler& scheduler,
                   const SimConfig& config) {
  trace.validate();

  const auto& jobs = trace.jobs;
  SimResult result;
  result.outcomes.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) result.outcomes[i].job = jobs[i];

  std::vector<WaitingJob> waiting;
  std::vector<RunningJob> running;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;
  // Current attempt per job; a pending Completion with a stale attempt
  // belongs to a killed run and is skipped when it surfaces.
  std::vector<int> attempt(jobs.size(), 0);

  static const std::vector<FaultEvent> kNoFaults;
  const std::vector<FaultEvent>& faults =
      config.faults ? config.faults->events() : kNoFaults;
  std::size_t next_fault = 0;

  auto estimate_of = [&](const Job& j) {
    if (config.predictor) return std::max<Time>(config.predictor->predict(j), 1);
    return config.use_requested_runtime ? j.requested : j.runtime;
  };
  // Time a started job actually occupies the machine.
  auto effective_runtime = [&](const Job& j) {
    return config.kill_at_request ? std::min(j.runtime, j.requested)
                                  : j.runtime;
  };

  std::size_t next_arrival = 0;
  int used_nodes = 0;
  int down_nodes = 0;  // failed nodes; live capacity = trace.capacity - down
  std::size_t events = 0;
  result.fault_stats.min_capacity = trace.capacity;

  obs::Telemetry* const tel = config.telemetry;
  std::string policy_name;
  if (tel) {
    policy_name = scheduler.name();
    scheduler.set_collect_decision_detail(true);
    tel->begin_run(obs::RunRecord{trace.name, policy_name, trace.capacity,
                                  jobs.size()});
  }

  // Time-weighted queue length restricted to the metrics window.
  double queue_area = 0.0;
  Time last_event = jobs.empty() ? trace.window_begin : jobs.front().submit;

  auto account_queue = [&](Time upto) {
    const Time lo = std::max(last_event, trace.window_begin);
    const Time hi = std::min(upto, trace.window_end);
    if (hi > lo)
      queue_area += static_cast<double>(hi - lo) *
                    static_cast<double>(waiting.size());
    last_event = upto;
  };

  // Kills the running job at index `ri` (fault semantics: the work done so
  // far is lost; the predictor never observes a killed run). Returns true
  // when the job went back to the queue.
  bool requeued_this_event = false;
  auto kill_running = [&](std::size_t ri, Time now) {
    const Job& j = *running[ri].job;
    JobOutcome& oc = result.outcomes[static_cast<std::size_t>(j.id)];
    used_nodes -= j.nodes;
    oc.lost_node_seconds +=
        static_cast<Time>(j.nodes) * (now - running[ri].start);
    result.fault_stats.lost_node_seconds +=
        static_cast<double>(j.nodes) *
        static_cast<double>(now - running[ri].start);
    ++attempt[static_cast<std::size_t>(j.id)];
    ++result.fault_stats.jobs_killed;
    if (tel) tel->job_killed(now, j.id, config.requeue == RequeuePolicy::Resubmit);
    if (config.requeue == RequeuePolicy::Resubmit) {
      ++oc.requeue_count;
      ++result.fault_stats.jobs_requeued;
      waiting.push_back(WaitingJob{&j, estimate_of(j)});
      requeued_this_event = true;
    } else {
      oc.completed = false;
      oc.end = now;
      ++result.fault_stats.jobs_dropped;
    }
    running[ri] = running.back();
    running.pop_back();
  };

  while (true) {
    const bool arrivals_left = next_arrival < jobs.size();
    // Fault events only matter while work remains or can still arrive (the
    // capacity they set must be current when the next job shows up, and
    // NodeUp events must be processed so parked jobs eventually start).
    const bool faults_matter =
        next_fault < faults.size() &&
        (arrivals_left || !waiting.empty() || !running.empty());
    if (!arrivals_left && completions.empty() && !faults_matter) break;
    SBS_CHECK_MSG(++events <= config.max_events, "simulation event cap hit");

    // Next event time: earliest of next arrival, next completion (possibly
    // stale — then the event is a no-op) and next fault.
    Time now = std::numeric_limits<Time>::max();
    if (arrivals_left) now = jobs[next_arrival].submit;
    if (!completions.empty()) now = std::min(now, completions.top().end);
    if (faults_matter) now = std::min(now, faults[next_fault].time);

    account_queue(now);
    requeued_this_event = false;

    // Retire every job completing at `now` (skipping completions of killed
    // attempts).
    while (!completions.empty() && completions.top().end == now) {
      const int id = completions.top().job_id;
      const int c_attempt = completions.top().attempt;
      completions.pop();
      if (c_attempt != attempt[static_cast<std::size_t>(id)]) continue;
      auto it = std::find_if(running.begin(), running.end(),
                             [id](const RunningJob& r) { return r.job->id == id; });
      SBS_CHECK_MSG(it != running.end(), "completion for unknown job " << id);
      if (config.predictor)
        config.predictor->observe(*it->job, effective_runtime(*it->job));
      if (tel) tel->job_finished(now, id);
      used_nodes -= it->job->nodes;
      *it = running.back();
      running.pop_back();
    }

    // Apply every fault event at `now`.
    while (next_fault < faults.size() && faults[next_fault].time == now) {
      const FaultEvent& f = faults[next_fault++];
      if (f.kind == FaultKind::NodeDown) {
        down_nodes = std::min(trace.capacity, down_nodes + f.nodes);
        ++result.fault_stats.node_failures;
        if (tel)
          tel->node_fault(now, true, f.nodes, trace.capacity - down_nodes);
        // Shrink below the running set: kill the most recently started
        // jobs (least work lost) until the survivors fit.
        while (used_nodes > trace.capacity - down_nodes && !running.empty()) {
          std::size_t victim = 0;
          for (std::size_t i = 1; i < running.size(); ++i) {
            if (running[i].start > running[victim].start ||
                (running[i].start == running[victim].start &&
                 running[i].job->id > running[victim].job->id))
              victim = i;
          }
          kill_running(victim, now);
        }
      } else if (f.kind == FaultKind::NodeUp) {
        down_nodes = std::max(0, down_nodes - f.nodes);
        ++result.fault_stats.node_recoveries;
        if (tel)
          tel->node_fault(now, false, f.nodes, trace.capacity - down_nodes);
      } else {  // JobKill
        if (running.empty()) continue;
        std::size_t victim = running.size();
        if (f.job_id >= 0) {
          for (std::size_t i = 0; i < running.size(); ++i)
            if (running[i].job->id == f.job_id) victim = i;
        } else {
          victim = static_cast<std::size_t>(f.draw % running.size());
        }
        if (victim < running.size()) kill_running(victim, now);
      }
      result.fault_stats.min_capacity =
          std::min(result.fault_stats.min_capacity,
                   trace.capacity - down_nodes);
    }
    const int capacity = trace.capacity - down_nodes;

    // Admit every job arriving at `now`.
    while (next_arrival < jobs.size() && jobs[next_arrival].submit == now) {
      const Job& j = jobs[next_arrival++];
      waiting.push_back(WaitingJob{&j, estimate_of(j)});
      if (tel)
        tel->job_submitted(now, j.id, j.nodes, j.runtime, j.requested, j.user);
    }

    // Requeued jobs keep their original submit time, so restoring FCFS
    // order re-inserts them at their historical queue position.
    if (requeued_this_event)
      std::sort(waiting.begin(), waiting.end(),
                [](const WaitingJob& a, const WaitingJob& b) {
                  if (a.job->submit != b.job->submit)
                    return a.job->submit < b.job->submit;
                  return a.job->id < b.job->id;
                });

    if (waiting.empty() || capacity <= 0) continue;

    ++result.decision_stats.decisions;
    if (waiting.size() >= 10) ++result.decision_stats.with_10_plus;
    result.decision_stats.max_waiting =
        std::max(result.decision_stats.max_waiting, waiting.size());
    result.decision_stats.mean_waiting += static_cast<double>(waiting.size());

    SchedulerState state;
    state.now = now;
    state.capacity = capacity;
    state.free_nodes = capacity - used_nodes;
    state.waiting = waiting;
    state.running = running;

    // Queue shape must be captured before select_jobs: dispatching below
    // swap-erases `waiting`.
    double max_wait_h = 0.0;
    SchedulerStats before;
    if (tel) {
      for (const WaitingJob& w : waiting)
        max_wait_h = std::max(max_wait_h, to_hours(now - w.job->submit));
      before = scheduler.stats();
    }

    const std::vector<int> chosen = scheduler.select_jobs(state);

    if (tel) {
      // Per-decision deltas of the cumulative SchedulerStats: summing the
      // decision records of a run reproduces the aggregates exactly.
      const SchedulerStats after = scheduler.stats();
      obs::DecisionRecord d;
      d.now = now;
      d.policy = policy_name;
      d.queue_depth = static_cast<int>(state.waiting.size());
      d.free_nodes = state.free_nodes;
      d.capacity = capacity;
      d.max_wait_h = max_wait_h;
      d.nodes_visited = after.nodes_visited - before.nodes_visited;
      d.paths_explored = after.paths_explored - before.paths_explored;
      d.deadline_hit = after.deadline_hits > before.deadline_hits;
      d.think_us = after.think_time_us - before.think_time_us;
      d.cache_hits = after.cache_hits - before.cache_hits;
      d.cache_misses = after.cache_misses - before.cache_misses;
      d.cache_invalidations =
          after.cache_invalidations - before.cache_invalidations;
      d.warm_start_used = after.warm_starts > before.warm_starts;
      if (const DecisionDetail* detail = scheduler.last_decision()) {
        d.iterations = detail->iterations;
        d.discrepancies = detail->discrepancies;
        d.improvements = detail->improvements;
        d.threads_used = detail->threads_used;
        d.worker_nodes = detail->worker_nodes;
      }
      d.started = chosen;
      tel->decision(d);
    }

    int chosen_nodes = 0;
    for (int id : chosen) {
      auto it = std::find_if(waiting.begin(), waiting.end(),
                             [id](const WaitingJob& w) { return w.job->id == id; });
      SBS_CHECK_MSG(it != waiting.end(),
                    scheduler.name() << " selected non-waiting job " << id);
      const Job& j = *it->job;
      chosen_nodes += j.nodes;
      SBS_CHECK_MSG(chosen_nodes <= state.free_nodes,
                    scheduler.name() << " over-committed the machine at t="
                                     << now);
      running.push_back(RunningJob{&j, now, now + it->estimate});
      used_nodes += j.nodes;
      if (tel) tel->job_started(now, j.id, j.nodes);
      const Time occupied = effective_runtime(j);
      completions.push(Completion{now + occupied, j.id,
                                  attempt[static_cast<std::size_t>(j.id)]});
      result.outcomes[static_cast<std::size_t>(j.id)].start = now;
      result.outcomes[static_cast<std::size_t>(j.id)].end = now + occupied;
      *it = waiting.back();
      waiting.pop_back();
    }

    // Progress guarantee: an idle machine with a startable job must start
    // something, otherwise the simulation would deadlock. Jobs wider than
    // the (possibly degraded) capacity are parked, not startable.
    const bool startable =
        std::any_of(waiting.begin(), waiting.end(),
                    [&](const WaitingJob& w) {
                      return w.job->nodes <= capacity;
                    });
    SBS_CHECK_MSG(!(running.empty() && startable),
                  scheduler.name() << " stalled with an idle machine at t="
                                   << now);

    // Keep FCFS order of the waiting list (selection uses swap-erase).
    std::sort(waiting.begin(), waiting.end(),
              [](const WaitingJob& a, const WaitingJob& b) {
                if (a.job->submit != b.job->submit)
                  return a.job->submit < b.job->submit;
                return a.job->id < b.job->id;
              });
  }

  // Jobs still queued when every event source drained (capacity never
  // recovered enough): recorded as never started.
  for (const WaitingJob& w : waiting) {
    JobOutcome& oc = result.outcomes[static_cast<std::size_t>(w.job->id)];
    oc.completed = false;
    oc.start = oc.end = w.job->submit;
    ++result.fault_stats.jobs_unstarted;
    if (tel) tel->job_unstarted(last_event, w.job->id);
  }

  const double window =
      static_cast<double>(trace.window_end - trace.window_begin);
  result.avg_queue_length = window > 0.0 ? queue_area / window : 0.0;
  result.sched_stats = scheduler.stats();
  if (result.decision_stats.decisions > 0)
    result.decision_stats.mean_waiting /=
        static_cast<double>(result.decision_stats.decisions);
  if (tel) tel->flush();
  return result;
}

}  // namespace sbs
