#include "sim/simulator.hpp"

#include <algorithm>

#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace sbs {
namespace sim {

namespace {
const std::vector<FaultEvent> kNoFaults;

bool fcfs_before(const WaitingJob& a, const WaitingJob& b) {
  if (a.job->submit != b.job->submit) return a.job->submit < b.job->submit;
  return a.job->id < b.job->id;
}
}  // namespace

Simulator::Simulator(const Trace& trace, Scheduler& scheduler,
                     const SimConfig& config)
    : trace_(trace),
      scheduler_(scheduler),
      config_(config),
      faults_(config.faults ? config.faults->events() : kNoFaults),
      tel_(config.telemetry) {
  if (config_.validate_trace) trace_.validate();

  const auto& jobs = trace_.jobs;
  result_.outcomes.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i)
    result_.outcomes[i].job = jobs[i];
  attempt_.assign(jobs.size(), 0);
  result_.fault_stats.min_capacity = trace_.capacity;

  if (tel_) {
    policy_name_ = scheduler_.name();
    scheduler_.set_collect_decision_detail(true);
    if (config_.emit_run_record)
      tel_->begin_run(obs::RunRecord{trace_.name, policy_name_,
                                     trace_.capacity, jobs.size()});
  }

  last_event_ = jobs.empty() ? trace_.window_begin : jobs.front().submit;
  now_ = last_event_;

  SBS_CHECK_MSG(config_.checkpoint_every == 0 || config_.checkpoint_sink,
                "checkpoint_every set without a checkpoint_sink");

  if (config_.resume != nullptr) apply_resume(*config_.resume);
}

Time Simulator::estimate_of(const Job& j) const {
  if (config_.predictor)
    return std::max<Time>(config_.predictor->predict(j), 1);
  return config_.use_requested_runtime ? j.requested : j.runtime;
}

// Time a started job actually occupies the machine.
Time Simulator::effective_runtime(const Job& j) const {
  return config_.kill_at_request ? std::min(j.runtime, j.requested)
                                 : j.runtime;
}

// Time-weighted queue length restricted to the metrics window.
void Simulator::account_queue(Time upto) {
  const Time lo = std::max(last_event_, trace_.window_begin);
  const Time hi = std::min(upto, trace_.window_end);
  if (hi > lo)
    queue_area_ += static_cast<double>(hi - lo) *
                   static_cast<double>(waiting_.size());
  last_event_ = upto;
}

// Kills the running job at index `ri` (fault semantics: the work done so
// far is lost; the predictor never observes a killed run).
void Simulator::kill_running(std::size_t ri, Time now) {
  const Job& j = *running_[ri].job;
  JobOutcome& oc = result_.outcomes[static_cast<std::size_t>(j.id)];
  used_nodes_ -= j.nodes;
  oc.lost_node_seconds +=
      static_cast<Time>(j.nodes) * (now - running_[ri].start);
  result_.fault_stats.lost_node_seconds +=
      static_cast<double>(j.nodes) *
      static_cast<double>(now - running_[ri].start);
  ++attempt_[static_cast<std::size_t>(j.id)];
  ++result_.fault_stats.jobs_killed;
  if (tel_)
    tel_->job_killed(now, j.id, config_.requeue == RequeuePolicy::Resubmit);
  if (config_.requeue == RequeuePolicy::Resubmit) {
    ++oc.requeue_count;
    ++result_.fault_stats.jobs_requeued;
    // Clear the dispatch times of the killed attempt: they are rewritten
    // on the next dispatch, and until then outcome_so_far() readers must
    // not see the dead attempt's times as if they were real.
    oc.start = 0;
    oc.end = 0;
    waiting_.push_back(WaitingJob{&j, estimate_of(j)});
    requeued_this_event_ = true;
  } else {
    oc.completed = false;
    oc.end = now;
    ++result_.fault_stats.jobs_dropped;
  }
  running_[ri] = running_.back();
  running_.pop_back();
}

// Capture the full mid-run state at an event boundary. Everything the
// loop mutates is either here or reconstructible from the inputs (the
// fault schedule re-derives from its spec; the trace is reattached by
// job id on restore).
SimSnapshot Simulator::capture() const {
  SimSnapshot snap;
  snap.now = now_;
  snap.events = events_;
  snap.next_arrival = next_arrival_;
  snap.next_fault = next_fault_;
  snap.used_nodes = used_nodes_;
  snap.down_nodes = down_nodes_;
  snap.last_event = last_event_;
  snap.queue_area = queue_area_;
  snap.waiting.reserve(waiting_.size());
  for (const WaitingJob& w : waiting_)
    snap.waiting.push_back({w.job->id, w.estimate});
  snap.running.reserve(running_.size());
  for (const RunningJob& r : running_)
    snap.running.push_back({r.job->id, r.start, r.est_end});
  snap.completions.reserve(completions_.container().size());
  for (const Completion& c : completions_.container())
    snap.completions.push_back({c.end, c.job_id, c.attempt});
  snap.attempts = attempt_;
  for (std::size_t i = 0; i < result_.outcomes.size(); ++i) {
    const JobOutcome& oc = result_.outcomes[i];
    if (oc.start == 0 && oc.end == 0 && oc.requeue_count == 0 &&
        oc.lost_node_seconds == 0 && oc.completed)
      continue;
    snap.outcomes.push_back({static_cast<int>(i), oc.start, oc.end,
                             oc.requeue_count, oc.lost_node_seconds,
                             oc.completed});
  }
  snap.decision_stats = {result_.decision_stats.decisions,
                         result_.decision_stats.with_10_plus,
                         result_.decision_stats.max_waiting,
                         result_.decision_stats.mean_waiting};
  snap.fault_stats = {result_.fault_stats.node_failures,
                      result_.fault_stats.node_recoveries,
                      result_.fault_stats.jobs_killed,
                      result_.fault_stats.jobs_requeued,
                      result_.fault_stats.jobs_dropped,
                      result_.fault_stats.jobs_unstarted,
                      result_.fault_stats.lost_node_seconds,
                      result_.fault_stats.min_capacity};
  snap.scheduler_state = scheduler_.save_state();
  return snap;
}

void Simulator::apply_resume(const SimSnapshot& snap) {
  const auto& jobs = trace_.jobs;
  SBS_CHECK_MSG(snap.attempts.size() == jobs.size(),
                "snapshot is for a different trace (job count mismatch)");
  next_arrival_ = snap.next_arrival;
  SBS_CHECK_MSG(next_arrival_ <= jobs.size(),
                "snapshot arrival cursor out of range");
  SBS_CHECK_MSG(snap.next_fault <= faults_.size(),
                "snapshot fault cursor out of range");
  next_fault_ = snap.next_fault;
  used_nodes_ = snap.used_nodes;
  down_nodes_ = snap.down_nodes;
  events_ = snap.events;
  queue_area_ = snap.queue_area;
  last_event_ = snap.last_event;
  now_ = snap.now;
  attempt_ = snap.attempts;
  waiting_.clear();
  for (const auto& w : snap.waiting) {
    SBS_CHECK_MSG(w.job_id >= 0 &&
                      static_cast<std::size_t>(w.job_id) < jobs.size(),
                  "snapshot waiting job " << w.job_id << " out of range");
    waiting_.push_back(
        WaitingJob{&jobs[static_cast<std::size_t>(w.job_id)], w.estimate});
  }
  running_.clear();
  for (const auto& r : snap.running) {
    SBS_CHECK_MSG(r.job_id >= 0 &&
                      static_cast<std::size_t>(r.job_id) < jobs.size(),
                  "snapshot running job " << r.job_id << " out of range");
    running_.push_back(RunningJob{&jobs[static_cast<std::size_t>(r.job_id)],
                                  r.start, r.est_end});
  }
  std::vector<Completion> pending;
  pending.reserve(snap.completions.size());
  for (const auto& c : snap.completions)
    pending.push_back(Completion{c.end, c.job_id, c.attempt});
  completions_.restore(std::move(pending));
  for (const auto& oc : snap.outcomes) {
    SBS_CHECK_MSG(oc.job_id >= 0 &&
                      static_cast<std::size_t>(oc.job_id) < jobs.size(),
                  "snapshot outcome job " << oc.job_id << " out of range");
    JobOutcome& dst = result_.outcomes[static_cast<std::size_t>(oc.job_id)];
    dst.start = oc.start;
    dst.end = oc.end;
    dst.requeue_count = oc.requeue_count;
    dst.lost_node_seconds = oc.lost_node_seconds;
    dst.completed = oc.completed;
  }
  result_.decision_stats.decisions = snap.decision_stats.decisions;
  result_.decision_stats.with_10_plus = snap.decision_stats.with_10_plus;
  result_.decision_stats.max_waiting =
      static_cast<std::size_t>(snap.decision_stats.max_waiting);
  result_.decision_stats.mean_waiting = snap.decision_stats.mean_waiting_sum;
  result_.fault_stats.node_failures = snap.fault_stats.node_failures;
  result_.fault_stats.node_recoveries = snap.fault_stats.node_recoveries;
  result_.fault_stats.jobs_killed = snap.fault_stats.jobs_killed;
  result_.fault_stats.jobs_requeued = snap.fault_stats.jobs_requeued;
  result_.fault_stats.jobs_dropped = snap.fault_stats.jobs_dropped;
  result_.fault_stats.jobs_unstarted = snap.fault_stats.jobs_unstarted;
  result_.fault_stats.lost_node_seconds = snap.fault_stats.lost_node_seconds;
  result_.fault_stats.min_capacity = snap.fault_stats.min_capacity;
  if (!snap.scheduler_state.empty())
    scheduler_.restore_state(snap.scheduler_state);
}

void Simulator::enable_external_arrivals() {
  SBS_CHECK_MSG(events_ == 0 || config_.resume != nullptr,
                "external-arrival mode must be enabled before stepping");
  external_ = true;
  arrivals_open_ = true;
}

void Simulator::close_arrivals() {
  SBS_CHECK_MSG(external_, "close_arrivals() requires external-arrival mode");
  arrivals_open_ = false;
}

// Legal even after close_arrivals(): a migration can re-admit a job once
// the global arrival stream is exhausted. The non-empty pending queue
// keeps arrivals_possible() true until the injection is absorbed, so the
// termination condition stays sound either way.
void Simulator::inject_arrival(int job_id, Time at, bool record_submit) {
  SBS_CHECK_MSG(external_, "inject_arrival() requires external-arrival mode");
  SBS_CHECK_MSG(job_id >= 0 &&
                    static_cast<std::size_t>(job_id) < trace_.jobs.size(),
                "injected job " << job_id << " out of range");
  SBS_CHECK_MSG(pending_.empty() || pending_.back().at <= at,
                "injected arrivals must be time-ordered");
  pending_.push_back(PendingArrival{job_id, at, record_submit});
}

bool Simulator::extract_waiting(int job_id) {
  auto it = std::find_if(waiting_.begin(), waiting_.end(),
                         [job_id](const WaitingJob& w) {
                           return w.job->id == job_id;
                         });
  if (it == waiting_.end()) return false;
  waiting_.erase(it);
  return true;
}

bool Simulator::arrivals_possible() const {
  if (external_) return !pending_.empty() || arrivals_open_;
  return next_arrival_ < trace_.jobs.size();
}

// Fault events only matter while work remains or can still arrive (the
// capacity they set must be current when the next job shows up, and
// NodeUp events must be processed so parked jobs eventually start).
bool Simulator::faults_matter() const {
  return next_fault_ < faults_.size() &&
         (arrivals_possible() || !waiting_.empty() || !running_.empty());
}

bool Simulator::drained() const {
  return !arrivals_possible() && completions_.empty() && !faults_matter();
}

// Next event time: earliest of next arrival, next completion (possibly
// stale — then the event is a no-op) and next fault. In external mode an
// open arrival stream with nothing injected contributes no time: the
// driver bounds stepping by the arrivals it has yet to inject.
Time Simulator::next_event_time() const {
  Time t = kNoEvent;
  if (external_) {
    if (!pending_.empty()) t = pending_.front().at;
  } else if (next_arrival_ < trace_.jobs.size()) {
    t = trace_.jobs[next_arrival_].submit;
  }
  if (!completions_.empty()) t = std::min(t, completions_.top().end);
  if (faults_matter()) t = std::min(t, faults_[next_fault_].time);
  return t;
}

bool Simulator::step_event() {
  if (drained()) return false;

  // Graceful stop: drain nothing further, persist what telemetry has,
  // and leave via the error path so the caller can point the user at
  // the most recent checkpoint.
  if (config_.interrupt != nullptr &&
      config_.interrupt->load(std::memory_order_relaxed)) {
    if (tel_) tel_->flush();
    throw Error("simulation interrupted after " + std::to_string(events_) +
                " events");
  }

  const Time now = next_event_time();
  if (now == kNoEvent) return false;  // external mode, nothing injected yet

  SBS_CHECK_MSG(++events_ <= config_.max_events, "simulation event cap hit");

  if (tel_) tel_->set_cluster(config_.cluster_id);

  now_ = now;
  account_queue(now);
  requeued_this_event_ = false;

  // Retire every job completing at `now` (skipping completions of killed
  // attempts).
  while (!completions_.empty() && completions_.top().end == now) {
    const int id = completions_.top().job_id;
    const int c_attempt = completions_.top().attempt;
    completions_.pop();
    if (c_attempt != attempt_[static_cast<std::size_t>(id)]) continue;
    auto it = std::find_if(running_.begin(), running_.end(),
                           [id](const RunningJob& r) { return r.job->id == id; });
    SBS_CHECK_MSG(it != running_.end(), "completion for unknown job " << id);
    if (config_.predictor)
      config_.predictor->observe(*it->job, effective_runtime(*it->job));
    if (tel_) tel_->job_finished(now, id);
    used_nodes_ -= it->job->nodes;
    *it = running_.back();
    running_.pop_back();
  }

  // Apply every fault event at `now`.
  while (next_fault_ < faults_.size() && faults_[next_fault_].time == now) {
    const FaultEvent& f = faults_[next_fault_++];
    if (f.kind == FaultKind::NodeDown) {
      down_nodes_ = std::min(trace_.capacity, down_nodes_ + f.nodes);
      ++result_.fault_stats.node_failures;
      if (tel_)
        tel_->node_fault(now, true, f.nodes, trace_.capacity - down_nodes_);
      // Shrink below the running set: kill the most recently started
      // jobs (least work lost) until the survivors fit.
      while (used_nodes_ > trace_.capacity - down_nodes_ &&
             !running_.empty()) {
        std::size_t victim = 0;
        for (std::size_t i = 1; i < running_.size(); ++i) {
          if (running_[i].start > running_[victim].start ||
              (running_[i].start == running_[victim].start &&
               running_[i].job->id > running_[victim].job->id))
            victim = i;
        }
        kill_running(victim, now);
      }
    } else if (f.kind == FaultKind::NodeUp) {
      down_nodes_ = std::max(0, down_nodes_ - f.nodes);
      ++result_.fault_stats.node_recoveries;
      if (tel_)
        tel_->node_fault(now, false, f.nodes, trace_.capacity - down_nodes_);
    } else {  // JobKill
      if (running_.empty()) continue;
      std::size_t victim = running_.size();
      if (f.job_id >= 0) {
        for (std::size_t i = 0; i < running_.size(); ++i)
          if (running_[i].job->id == f.job_id) victim = i;
      } else {
        victim = static_cast<std::size_t>(f.draw % running_.size());
      }
      if (victim < running_.size()) kill_running(victim, now);
    }
    result_.fault_stats.min_capacity =
        std::min(result_.fault_stats.min_capacity,
                 trace_.capacity - down_nodes_);
  }
  const int capacity = trace_.capacity - down_nodes_;

  // Admit every job arriving at `now`.
  if (external_) {
    while (!pending_.empty() && pending_.front().at == now) {
      const PendingArrival p = pending_.front();
      pending_.pop_front();
      const Job& j = trace_.jobs[static_cast<std::size_t>(p.job_id)];
      // A migrated-in job carries its original submit time, which may be
      // earlier than the queue tail's: restore FCFS order below, exactly
      // like a fault requeue.
      if (!waiting_.empty() &&
          fcfs_before(WaitingJob{&j, 0}, waiting_.back()))
        requeued_this_event_ = true;
      waiting_.push_back(WaitingJob{&j, estimate_of(j)});
      if (tel_ && p.record_submit)
        tel_->job_submitted(now, j.id, j.nodes, j.runtime, j.requested,
                            j.user);
    }
  } else {
    while (next_arrival_ < trace_.jobs.size() &&
           trace_.jobs[next_arrival_].submit == now) {
      const Job& j = trace_.jobs[next_arrival_++];
      waiting_.push_back(WaitingJob{&j, estimate_of(j)});
      if (tel_)
        tel_->job_submitted(now, j.id, j.nodes, j.runtime, j.requested,
                            j.user);
    }
  }

  // Requeued jobs keep their original submit time, so restoring FCFS
  // order re-inserts them at their historical queue position.
  if (requeued_this_event_)
    std::sort(waiting_.begin(), waiting_.end(), fcfs_before);

  // Event boundary: every mutation for this event is done (or no
  // decision is needed). A snapshot taken here resumes bit-identically.
  const auto maybe_checkpoint = [&] {
    if (config_.checkpoint_every > 0 &&
        events_ % config_.checkpoint_every == 0)
      config_.checkpoint_sink(capture());
  };

  if (waiting_.empty() || capacity <= 0) {
    maybe_checkpoint();
    return true;
  }

  ++result_.decision_stats.decisions;
  if (waiting_.size() >= 10) ++result_.decision_stats.with_10_plus;
  result_.decision_stats.max_waiting =
      std::max(result_.decision_stats.max_waiting, waiting_.size());
  result_.decision_stats.mean_waiting +=
      static_cast<double>(waiting_.size());

  SchedulerState state;
  state.now = now;
  state.capacity = capacity;
  state.free_nodes = capacity - used_nodes_;
  state.waiting = waiting_;
  state.running = running_;

  // Queue shape must be captured before select_jobs: dispatching below
  // swap-erases `waiting`.
  double max_wait_h = 0.0;
  SchedulerStats before;
  if (tel_) {
    for (const WaitingJob& w : waiting_)
      max_wait_h = std::max(max_wait_h, to_hours(now - w.job->submit));
    before = scheduler_.stats();
  }

  const std::vector<int> chosen = scheduler_.select_jobs(state);

  if (tel_) {
    // Per-decision deltas of the cumulative SchedulerStats: summing the
    // decision records of a run reproduces the aggregates exactly.
    const SchedulerStats after = scheduler_.stats();
    obs::DecisionRecord d;
    d.now = now;
    d.policy = policy_name_;
    d.queue_depth = static_cast<int>(state.waiting.size());
    d.free_nodes = state.free_nodes;
    d.capacity = capacity;
    d.max_wait_h = max_wait_h;
    d.nodes_visited = after.nodes_visited - before.nodes_visited;
    d.paths_explored = after.paths_explored - before.paths_explored;
    d.deadline_hit = after.deadline_hits > before.deadline_hits;
    d.think_us = after.think_time_us - before.think_time_us;
    d.cache_hits = after.cache_hits - before.cache_hits;
    d.cache_misses = after.cache_misses - before.cache_misses;
    d.cache_invalidations =
        after.cache_invalidations - before.cache_invalidations;
    d.warm_start_used = after.warm_starts > before.warm_starts;
    d.pruned_twins = after.pruned_twins - before.pruned_twins;
    d.pruned_bound = after.pruned_bound - before.pruned_bound;
    if (const DecisionDetail* detail = scheduler_.last_decision()) {
      d.iterations = detail->iterations;
      d.discrepancies = detail->discrepancies;
      d.improvements = detail->improvements;
      d.threads_used = detail->threads_used;
      d.worker_nodes = detail->worker_nodes;
      d.governor_level = detail->governor_level;
      d.governor_probe = detail->governor_probe;
      d.governor_transitions = detail->governor_transitions;
    }
    d.started = chosen;
    tel_->decision(d);
  }

  int chosen_nodes = 0;
  for (int id : chosen) {
    auto it = std::find_if(waiting_.begin(), waiting_.end(),
                           [id](const WaitingJob& w) { return w.job->id == id; });
    SBS_CHECK_MSG(it != waiting_.end(),
                  scheduler_.name() << " selected non-waiting job " << id);
    const Job& j = *it->job;
    chosen_nodes += j.nodes;
    SBS_CHECK_MSG(chosen_nodes <= state.free_nodes,
                  scheduler_.name() << " over-committed the machine at t="
                                    << now);
    running_.push_back(RunningJob{&j, now, now + it->estimate});
    used_nodes_ += j.nodes;
    if (tel_) tel_->job_started(now, j.id, j.nodes);
    const Time occupied = effective_runtime(j);
    completions_.push(Completion{now + occupied, j.id,
                                 attempt_[static_cast<std::size_t>(j.id)]});
    result_.outcomes[static_cast<std::size_t>(j.id)].start = now;
    result_.outcomes[static_cast<std::size_t>(j.id)].end = now + occupied;
    *it = waiting_.back();
    waiting_.pop_back();
  }

  // Progress guarantee: an idle machine with a startable job must start
  // something, otherwise the simulation would deadlock. Jobs wider than
  // the (possibly degraded) capacity are parked, not startable.
  const bool startable =
      std::any_of(waiting_.begin(), waiting_.end(),
                  [&](const WaitingJob& w) {
                    return w.job->nodes <= capacity;
                  });
  SBS_CHECK_MSG(!(running_.empty() && startable),
                scheduler_.name() << " stalled with an idle machine at t="
                                  << now);

  // Keep FCFS order of the waiting list (selection uses swap-erase).
  std::sort(waiting_.begin(), waiting_.end(), fcfs_before);

  maybe_checkpoint();
  return true;
}

void Simulator::step(Time until) {
  while (true) {
    const Time t = next_event_time();
    if (t == kNoEvent || t > until) return;
    if (!step_event()) return;
  }
}

void Simulator::run() {
  while (step_event()) {
  }
}

SimResult Simulator::finish() {
  SBS_CHECK_MSG(!finished_, "Simulator::finish() called twice");
  finished_ = true;
  if (tel_) tel_->set_cluster(config_.cluster_id);

  // Jobs still queued when every event source drained (capacity never
  // recovered enough): recorded as never started.
  for (const WaitingJob& w : waiting_) {
    JobOutcome& oc = result_.outcomes[static_cast<std::size_t>(w.job->id)];
    oc.completed = false;
    oc.start = oc.end = w.job->submit;
    ++result_.fault_stats.jobs_unstarted;
    if (tel_) tel_->job_unstarted(last_event_, w.job->id);
  }

  const double window =
      static_cast<double>(trace_.window_end - trace_.window_begin);
  result_.avg_queue_length = window > 0.0 ? queue_area_ / window : 0.0;
  result_.sched_stats = scheduler_.stats();
  if (result_.decision_stats.decisions > 0)
    result_.decision_stats.mean_waiting /=
        static_cast<double>(result_.decision_stats.decisions);
  if (tel_) tel_->flush();
  return std::move(result_);
}

}  // namespace sim

SimResult simulate(const Trace& trace, Scheduler& scheduler,
                   const SimConfig& config) {
  sim::Simulator sim(trace, scheduler, config);
  sim.run();
  return sim.finish();
}

}  // namespace sbs
