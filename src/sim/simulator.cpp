#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>

#include "obs/telemetry.hpp"
#include "sim/completion_queue.hpp"
#include "util/error.hpp"

namespace sbs {

using sim::Completion;
using sim::CompletionQueue;

SimResult simulate(const Trace& trace, Scheduler& scheduler,
                   const SimConfig& config) {
  trace.validate();

  const auto& jobs = trace.jobs;
  SimResult result;
  result.outcomes.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) result.outcomes[i].job = jobs[i];

  std::vector<WaitingJob> waiting;
  std::vector<RunningJob> running;
  CompletionQueue completions;
  // Current attempt per job; a pending Completion with a stale attempt
  // belongs to a killed run and is skipped when it surfaces.
  std::vector<int> attempt(jobs.size(), 0);

  static const std::vector<FaultEvent> kNoFaults;
  const std::vector<FaultEvent>& faults =
      config.faults ? config.faults->events() : kNoFaults;
  std::size_t next_fault = 0;

  auto estimate_of = [&](const Job& j) {
    if (config.predictor) return std::max<Time>(config.predictor->predict(j), 1);
    return config.use_requested_runtime ? j.requested : j.runtime;
  };
  // Time a started job actually occupies the machine.
  auto effective_runtime = [&](const Job& j) {
    return config.kill_at_request ? std::min(j.runtime, j.requested)
                                  : j.runtime;
  };

  std::size_t next_arrival = 0;
  int used_nodes = 0;
  int down_nodes = 0;  // failed nodes; live capacity = trace.capacity - down
  std::size_t events = 0;
  result.fault_stats.min_capacity = trace.capacity;

  obs::Telemetry* const tel = config.telemetry;
  std::string policy_name;
  if (tel) {
    policy_name = scheduler.name();
    scheduler.set_collect_decision_detail(true);
    tel->begin_run(obs::RunRecord{trace.name, policy_name, trace.capacity,
                                  jobs.size()});
  }

  // Time-weighted queue length restricted to the metrics window.
  double queue_area = 0.0;
  Time last_event = jobs.empty() ? trace.window_begin : jobs.front().submit;

  auto account_queue = [&](Time upto) {
    const Time lo = std::max(last_event, trace.window_begin);
    const Time hi = std::min(upto, trace.window_end);
    if (hi > lo)
      queue_area += static_cast<double>(hi - lo) *
                    static_cast<double>(waiting.size());
    last_event = upto;
  };

  // Kills the running job at index `ri` (fault semantics: the work done so
  // far is lost; the predictor never observes a killed run). Returns true
  // when the job went back to the queue.
  bool requeued_this_event = false;
  auto kill_running = [&](std::size_t ri, Time now) {
    const Job& j = *running[ri].job;
    JobOutcome& oc = result.outcomes[static_cast<std::size_t>(j.id)];
    used_nodes -= j.nodes;
    oc.lost_node_seconds +=
        static_cast<Time>(j.nodes) * (now - running[ri].start);
    result.fault_stats.lost_node_seconds +=
        static_cast<double>(j.nodes) *
        static_cast<double>(now - running[ri].start);
    ++attempt[static_cast<std::size_t>(j.id)];
    ++result.fault_stats.jobs_killed;
    if (tel) tel->job_killed(now, j.id, config.requeue == RequeuePolicy::Resubmit);
    if (config.requeue == RequeuePolicy::Resubmit) {
      ++oc.requeue_count;
      ++result.fault_stats.jobs_requeued;
      waiting.push_back(WaitingJob{&j, estimate_of(j)});
      requeued_this_event = true;
    } else {
      oc.completed = false;
      oc.end = now;
      ++result.fault_stats.jobs_dropped;
    }
    running[ri] = running.back();
    running.pop_back();
  };

  SBS_CHECK_MSG(config.checkpoint_every == 0 || config.checkpoint_sink,
                "checkpoint_every set without a checkpoint_sink");

  // Capture the full mid-run state at an event boundary. Everything the
  // loop mutates is either here or reconstructible from the inputs (the
  // fault schedule re-derives from its spec; the trace is reattached by
  // job id on restore).
  auto capture_snapshot = [&](Time now) {
    sim::SimSnapshot snap;
    snap.now = now;
    snap.events = events;
    snap.next_arrival = next_arrival;
    snap.next_fault = next_fault;
    snap.used_nodes = used_nodes;
    snap.down_nodes = down_nodes;
    snap.last_event = last_event;
    snap.queue_area = queue_area;
    snap.waiting.reserve(waiting.size());
    for (const WaitingJob& w : waiting)
      snap.waiting.push_back({w.job->id, w.estimate});
    snap.running.reserve(running.size());
    for (const RunningJob& r : running)
      snap.running.push_back({r.job->id, r.start, r.est_end});
    snap.completions.reserve(completions.container().size());
    for (const Completion& c : completions.container())
      snap.completions.push_back({c.end, c.job_id, c.attempt});
    snap.attempts = attempt;
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
      const JobOutcome& oc = result.outcomes[i];
      if (oc.start == 0 && oc.end == 0 && oc.requeue_count == 0 &&
          oc.lost_node_seconds == 0 && oc.completed)
        continue;
      snap.outcomes.push_back({static_cast<int>(i), oc.start, oc.end,
                               oc.requeue_count, oc.lost_node_seconds,
                               oc.completed});
    }
    snap.decision_stats = {result.decision_stats.decisions,
                           result.decision_stats.with_10_plus,
                           result.decision_stats.max_waiting,
                           result.decision_stats.mean_waiting};
    snap.fault_stats = {result.fault_stats.node_failures,
                        result.fault_stats.node_recoveries,
                        result.fault_stats.jobs_killed,
                        result.fault_stats.jobs_requeued,
                        result.fault_stats.jobs_dropped,
                        result.fault_stats.jobs_unstarted,
                        result.fault_stats.lost_node_seconds,
                        result.fault_stats.min_capacity};
    snap.scheduler_state = scheduler.save_state();
    config.checkpoint_sink(snap);
  };

  if (config.resume != nullptr) {
    const sim::SimSnapshot& snap = *config.resume;
    SBS_CHECK_MSG(snap.attempts.size() == jobs.size(),
                  "snapshot is for a different trace (job count mismatch)");
    next_arrival = snap.next_arrival;
    SBS_CHECK_MSG(next_arrival <= jobs.size(),
                  "snapshot arrival cursor out of range");
    SBS_CHECK_MSG(snap.next_fault <= faults.size(),
                  "snapshot fault cursor out of range");
    next_fault = snap.next_fault;
    used_nodes = snap.used_nodes;
    down_nodes = snap.down_nodes;
    events = snap.events;
    queue_area = snap.queue_area;
    last_event = snap.last_event;
    attempt = snap.attempts;
    waiting.clear();
    for (const auto& w : snap.waiting) {
      SBS_CHECK_MSG(w.job_id >= 0 &&
                        static_cast<std::size_t>(w.job_id) < jobs.size(),
                    "snapshot waiting job " << w.job_id << " out of range");
      waiting.push_back(
          WaitingJob{&jobs[static_cast<std::size_t>(w.job_id)], w.estimate});
    }
    running.clear();
    for (const auto& r : snap.running) {
      SBS_CHECK_MSG(r.job_id >= 0 &&
                        static_cast<std::size_t>(r.job_id) < jobs.size(),
                    "snapshot running job " << r.job_id << " out of range");
      running.push_back(RunningJob{&jobs[static_cast<std::size_t>(r.job_id)],
                                   r.start, r.est_end});
    }
    std::vector<Completion> pending;
    pending.reserve(snap.completions.size());
    for (const auto& c : snap.completions)
      pending.push_back(Completion{c.end, c.job_id, c.attempt});
    completions.restore(std::move(pending));
    for (const auto& oc : snap.outcomes) {
      SBS_CHECK_MSG(oc.job_id >= 0 &&
                        static_cast<std::size_t>(oc.job_id) < jobs.size(),
                    "snapshot outcome job " << oc.job_id << " out of range");
      JobOutcome& dst = result.outcomes[static_cast<std::size_t>(oc.job_id)];
      dst.start = oc.start;
      dst.end = oc.end;
      dst.requeue_count = oc.requeue_count;
      dst.lost_node_seconds = oc.lost_node_seconds;
      dst.completed = oc.completed;
    }
    result.decision_stats.decisions = snap.decision_stats.decisions;
    result.decision_stats.with_10_plus = snap.decision_stats.with_10_plus;
    result.decision_stats.max_waiting =
        static_cast<std::size_t>(snap.decision_stats.max_waiting);
    result.decision_stats.mean_waiting = snap.decision_stats.mean_waiting_sum;
    result.fault_stats.node_failures = snap.fault_stats.node_failures;
    result.fault_stats.node_recoveries = snap.fault_stats.node_recoveries;
    result.fault_stats.jobs_killed = snap.fault_stats.jobs_killed;
    result.fault_stats.jobs_requeued = snap.fault_stats.jobs_requeued;
    result.fault_stats.jobs_dropped = snap.fault_stats.jobs_dropped;
    result.fault_stats.jobs_unstarted = snap.fault_stats.jobs_unstarted;
    result.fault_stats.lost_node_seconds = snap.fault_stats.lost_node_seconds;
    result.fault_stats.min_capacity = snap.fault_stats.min_capacity;
    if (!snap.scheduler_state.empty())
      scheduler.restore_state(snap.scheduler_state);
  }

  while (true) {
    const bool arrivals_left = next_arrival < jobs.size();
    // Fault events only matter while work remains or can still arrive (the
    // capacity they set must be current when the next job shows up, and
    // NodeUp events must be processed so parked jobs eventually start).
    const bool faults_matter =
        next_fault < faults.size() &&
        (arrivals_left || !waiting.empty() || !running.empty());
    if (!arrivals_left && completions.empty() && !faults_matter) break;

    // Graceful stop: drain nothing further, persist what telemetry has,
    // and leave via the error path so the caller can point the user at
    // the most recent checkpoint.
    if (config.interrupt != nullptr &&
        config.interrupt->load(std::memory_order_relaxed)) {
      if (tel) tel->flush();
      throw Error("simulation interrupted after " + std::to_string(events) +
                  " events");
    }

    SBS_CHECK_MSG(++events <= config.max_events, "simulation event cap hit");

    // Next event time: earliest of next arrival, next completion (possibly
    // stale — then the event is a no-op) and next fault.
    Time now = std::numeric_limits<Time>::max();
    if (arrivals_left) now = jobs[next_arrival].submit;
    if (!completions.empty()) now = std::min(now, completions.top().end);
    if (faults_matter) now = std::min(now, faults[next_fault].time);

    account_queue(now);
    requeued_this_event = false;

    // Retire every job completing at `now` (skipping completions of killed
    // attempts).
    while (!completions.empty() && completions.top().end == now) {
      const int id = completions.top().job_id;
      const int c_attempt = completions.top().attempt;
      completions.pop();
      if (c_attempt != attempt[static_cast<std::size_t>(id)]) continue;
      auto it = std::find_if(running.begin(), running.end(),
                             [id](const RunningJob& r) { return r.job->id == id; });
      SBS_CHECK_MSG(it != running.end(), "completion for unknown job " << id);
      if (config.predictor)
        config.predictor->observe(*it->job, effective_runtime(*it->job));
      if (tel) tel->job_finished(now, id);
      used_nodes -= it->job->nodes;
      *it = running.back();
      running.pop_back();
    }

    // Apply every fault event at `now`.
    while (next_fault < faults.size() && faults[next_fault].time == now) {
      const FaultEvent& f = faults[next_fault++];
      if (f.kind == FaultKind::NodeDown) {
        down_nodes = std::min(trace.capacity, down_nodes + f.nodes);
        ++result.fault_stats.node_failures;
        if (tel)
          tel->node_fault(now, true, f.nodes, trace.capacity - down_nodes);
        // Shrink below the running set: kill the most recently started
        // jobs (least work lost) until the survivors fit.
        while (used_nodes > trace.capacity - down_nodes && !running.empty()) {
          std::size_t victim = 0;
          for (std::size_t i = 1; i < running.size(); ++i) {
            if (running[i].start > running[victim].start ||
                (running[i].start == running[victim].start &&
                 running[i].job->id > running[victim].job->id))
              victim = i;
          }
          kill_running(victim, now);
        }
      } else if (f.kind == FaultKind::NodeUp) {
        down_nodes = std::max(0, down_nodes - f.nodes);
        ++result.fault_stats.node_recoveries;
        if (tel)
          tel->node_fault(now, false, f.nodes, trace.capacity - down_nodes);
      } else {  // JobKill
        if (running.empty()) continue;
        std::size_t victim = running.size();
        if (f.job_id >= 0) {
          for (std::size_t i = 0; i < running.size(); ++i)
            if (running[i].job->id == f.job_id) victim = i;
        } else {
          victim = static_cast<std::size_t>(f.draw % running.size());
        }
        if (victim < running.size()) kill_running(victim, now);
      }
      result.fault_stats.min_capacity =
          std::min(result.fault_stats.min_capacity,
                   trace.capacity - down_nodes);
    }
    const int capacity = trace.capacity - down_nodes;

    // Admit every job arriving at `now`.
    while (next_arrival < jobs.size() && jobs[next_arrival].submit == now) {
      const Job& j = jobs[next_arrival++];
      waiting.push_back(WaitingJob{&j, estimate_of(j)});
      if (tel)
        tel->job_submitted(now, j.id, j.nodes, j.runtime, j.requested, j.user);
    }

    // Requeued jobs keep their original submit time, so restoring FCFS
    // order re-inserts them at their historical queue position.
    if (requeued_this_event)
      std::sort(waiting.begin(), waiting.end(),
                [](const WaitingJob& a, const WaitingJob& b) {
                  if (a.job->submit != b.job->submit)
                    return a.job->submit < b.job->submit;
                  return a.job->id < b.job->id;
                });

    // Event boundary: every mutation for this event is done (or no
    // decision is needed). A snapshot taken here resumes bit-identically.
    const auto maybe_checkpoint = [&] {
      if (config.checkpoint_every > 0 &&
          events % config.checkpoint_every == 0)
        capture_snapshot(now);
    };

    if (waiting.empty() || capacity <= 0) {
      maybe_checkpoint();
      continue;
    }

    ++result.decision_stats.decisions;
    if (waiting.size() >= 10) ++result.decision_stats.with_10_plus;
    result.decision_stats.max_waiting =
        std::max(result.decision_stats.max_waiting, waiting.size());
    result.decision_stats.mean_waiting += static_cast<double>(waiting.size());

    SchedulerState state;
    state.now = now;
    state.capacity = capacity;
    state.free_nodes = capacity - used_nodes;
    state.waiting = waiting;
    state.running = running;

    // Queue shape must be captured before select_jobs: dispatching below
    // swap-erases `waiting`.
    double max_wait_h = 0.0;
    SchedulerStats before;
    if (tel) {
      for (const WaitingJob& w : waiting)
        max_wait_h = std::max(max_wait_h, to_hours(now - w.job->submit));
      before = scheduler.stats();
    }

    const std::vector<int> chosen = scheduler.select_jobs(state);

    if (tel) {
      // Per-decision deltas of the cumulative SchedulerStats: summing the
      // decision records of a run reproduces the aggregates exactly.
      const SchedulerStats after = scheduler.stats();
      obs::DecisionRecord d;
      d.now = now;
      d.policy = policy_name;
      d.queue_depth = static_cast<int>(state.waiting.size());
      d.free_nodes = state.free_nodes;
      d.capacity = capacity;
      d.max_wait_h = max_wait_h;
      d.nodes_visited = after.nodes_visited - before.nodes_visited;
      d.paths_explored = after.paths_explored - before.paths_explored;
      d.deadline_hit = after.deadline_hits > before.deadline_hits;
      d.think_us = after.think_time_us - before.think_time_us;
      d.cache_hits = after.cache_hits - before.cache_hits;
      d.cache_misses = after.cache_misses - before.cache_misses;
      d.cache_invalidations =
          after.cache_invalidations - before.cache_invalidations;
      d.warm_start_used = after.warm_starts > before.warm_starts;
      d.pruned_twins = after.pruned_twins - before.pruned_twins;
      d.pruned_bound = after.pruned_bound - before.pruned_bound;
      if (const DecisionDetail* detail = scheduler.last_decision()) {
        d.iterations = detail->iterations;
        d.discrepancies = detail->discrepancies;
        d.improvements = detail->improvements;
        d.threads_used = detail->threads_used;
        d.worker_nodes = detail->worker_nodes;
        d.governor_level = detail->governor_level;
        d.governor_probe = detail->governor_probe;
        d.governor_transitions = detail->governor_transitions;
      }
      d.started = chosen;
      tel->decision(d);
    }

    int chosen_nodes = 0;
    for (int id : chosen) {
      auto it = std::find_if(waiting.begin(), waiting.end(),
                             [id](const WaitingJob& w) { return w.job->id == id; });
      SBS_CHECK_MSG(it != waiting.end(),
                    scheduler.name() << " selected non-waiting job " << id);
      const Job& j = *it->job;
      chosen_nodes += j.nodes;
      SBS_CHECK_MSG(chosen_nodes <= state.free_nodes,
                    scheduler.name() << " over-committed the machine at t="
                                     << now);
      running.push_back(RunningJob{&j, now, now + it->estimate});
      used_nodes += j.nodes;
      if (tel) tel->job_started(now, j.id, j.nodes);
      const Time occupied = effective_runtime(j);
      completions.push(Completion{now + occupied, j.id,
                                  attempt[static_cast<std::size_t>(j.id)]});
      result.outcomes[static_cast<std::size_t>(j.id)].start = now;
      result.outcomes[static_cast<std::size_t>(j.id)].end = now + occupied;
      *it = waiting.back();
      waiting.pop_back();
    }

    // Progress guarantee: an idle machine with a startable job must start
    // something, otherwise the simulation would deadlock. Jobs wider than
    // the (possibly degraded) capacity are parked, not startable.
    const bool startable =
        std::any_of(waiting.begin(), waiting.end(),
                    [&](const WaitingJob& w) {
                      return w.job->nodes <= capacity;
                    });
    SBS_CHECK_MSG(!(running.empty() && startable),
                  scheduler.name() << " stalled with an idle machine at t="
                                   << now);

    // Keep FCFS order of the waiting list (selection uses swap-erase).
    std::sort(waiting.begin(), waiting.end(),
              [](const WaitingJob& a, const WaitingJob& b) {
                if (a.job->submit != b.job->submit)
                  return a.job->submit < b.job->submit;
                return a.job->id < b.job->id;
              });

    maybe_checkpoint();
  }

  // Jobs still queued when every event source drained (capacity never
  // recovered enough): recorded as never started.
  for (const WaitingJob& w : waiting) {
    JobOutcome& oc = result.outcomes[static_cast<std::size_t>(w.job->id)];
    oc.completed = false;
    oc.start = oc.end = w.job->submit;
    ++result.fault_stats.jobs_unstarted;
    if (tel) tel->job_unstarted(last_event, w.job->id);
  }

  const double window =
      static_cast<double>(trace.window_end - trace.window_begin);
  result.avg_queue_length = window > 0.0 ? queue_area / window : 0.0;
  result.sched_stats = scheduler.stats();
  if (result.decision_stats.decisions > 0)
    result.decision_stats.mean_waiting /=
        static_cast<double>(result.decision_stats.decisions);
  if (tel) tel->flush();
  return result;
}

}  // namespace sbs
