#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace sbs {

namespace {

struct Completion {
  Time end;
  int job_id;
  bool operator>(const Completion& other) const {
    if (end != other.end) return end > other.end;
    return job_id > other.job_id;
  }
};

}  // namespace

SimResult simulate(const Trace& trace, Scheduler& scheduler,
                   const SimConfig& config) {
  trace.validate();

  const auto& jobs = trace.jobs;
  SimResult result;
  result.outcomes.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) result.outcomes[i].job = jobs[i];

  std::vector<WaitingJob> waiting;
  std::vector<RunningJob> running;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;

  auto estimate_of = [&](const Job& j) {
    if (config.predictor) return std::max<Time>(config.predictor->predict(j), 1);
    return config.use_requested_runtime ? j.requested : j.runtime;
  };
  // Time a started job actually occupies the machine.
  auto effective_runtime = [&](const Job& j) {
    return config.kill_at_request ? std::min(j.runtime, j.requested)
                                  : j.runtime;
  };

  std::size_t next_arrival = 0;
  int used_nodes = 0;
  std::size_t events = 0;

  // Time-weighted queue length restricted to the metrics window.
  double queue_area = 0.0;
  Time last_event = jobs.empty() ? trace.window_begin : jobs.front().submit;

  auto account_queue = [&](Time upto) {
    const Time lo = std::max(last_event, trace.window_begin);
    const Time hi = std::min(upto, trace.window_end);
    if (hi > lo)
      queue_area += static_cast<double>(hi - lo) *
                    static_cast<double>(waiting.size());
    last_event = upto;
  };

  while (next_arrival < jobs.size() || !completions.empty()) {
    SBS_CHECK_MSG(++events <= config.max_events, "simulation event cap hit");

    // Next event time: earliest of next arrival and next completion.
    Time now = std::numeric_limits<Time>::max();
    if (next_arrival < jobs.size()) now = jobs[next_arrival].submit;
    if (!completions.empty()) now = std::min(now, completions.top().end);

    account_queue(now);

    // Retire every job completing at `now`.
    while (!completions.empty() && completions.top().end == now) {
      const int id = completions.top().job_id;
      completions.pop();
      auto it = std::find_if(running.begin(), running.end(),
                             [id](const RunningJob& r) { return r.job->id == id; });
      SBS_CHECK_MSG(it != running.end(), "completion for unknown job " << id);
      if (config.predictor)
        config.predictor->observe(*it->job, effective_runtime(*it->job));
      used_nodes -= it->job->nodes;
      *it = running.back();
      running.pop_back();
    }

    // Admit every job arriving at `now`.
    while (next_arrival < jobs.size() && jobs[next_arrival].submit == now) {
      const Job& j = jobs[next_arrival++];
      waiting.push_back(WaitingJob{&j, estimate_of(j)});
    }

    if (waiting.empty()) continue;

    ++result.decision_stats.decisions;
    if (waiting.size() >= 10) ++result.decision_stats.with_10_plus;
    result.decision_stats.max_waiting =
        std::max(result.decision_stats.max_waiting, waiting.size());
    result.decision_stats.mean_waiting += static_cast<double>(waiting.size());

    SchedulerState state;
    state.now = now;
    state.capacity = trace.capacity;
    state.free_nodes = trace.capacity - used_nodes;
    state.waiting = waiting;
    state.running = running;

    const std::vector<int> chosen = scheduler.select_jobs(state);

    int chosen_nodes = 0;
    for (int id : chosen) {
      auto it = std::find_if(waiting.begin(), waiting.end(),
                             [id](const WaitingJob& w) { return w.job->id == id; });
      SBS_CHECK_MSG(it != waiting.end(),
                    scheduler.name() << " selected non-waiting job " << id);
      const Job& j = *it->job;
      chosen_nodes += j.nodes;
      SBS_CHECK_MSG(chosen_nodes <= state.free_nodes,
                    scheduler.name() << " over-committed the machine at t="
                                     << now);
      running.push_back(RunningJob{&j, now, now + it->estimate});
      used_nodes += j.nodes;
      const Time occupied = effective_runtime(j);
      completions.push(Completion{now + occupied, j.id});
      result.outcomes[static_cast<std::size_t>(j.id)].start = now;
      result.outcomes[static_cast<std::size_t>(j.id)].end = now + occupied;
      *it = waiting.back();
      waiting.pop_back();
    }

    // Progress guarantee: an idle machine with a non-empty queue must start
    // something, otherwise the simulation would deadlock.
    SBS_CHECK_MSG(!(running.empty() && !waiting.empty()),
                  scheduler.name() << " stalled with an idle machine at t="
                                   << now);

    // Keep FCFS order of the waiting list (selection uses swap-erase).
    std::sort(waiting.begin(), waiting.end(),
              [](const WaitingJob& a, const WaitingJob& b) {
                if (a.job->submit != b.job->submit)
                  return a.job->submit < b.job->submit;
                return a.job->id < b.job->id;
              });
  }

  const double window =
      static_cast<double>(trace.window_end - trace.window_begin);
  result.avg_queue_length = window > 0.0 ? queue_area / window : 0.0;
  result.sched_stats = scheduler.stats();
  if (result.decision_stats.decisions > 0)
    result.decision_stats.mean_waiting /=
        static_cast<double>(result.decision_stats.decisions);
  return result;
}

}  // namespace sbs
