#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace sbs::sim {

/// Full mid-run simulator state as plain data — everything simulate() needs
/// to continue a run bit-identically from an event boundary. The sim layer
/// only captures and restores this struct; serialization to the versioned
/// on-disk snapshot (and the CLI-flag echo that travels with it) lives in
/// resilience/checkpoint, which sits above sim in the layering.
///
/// What is deliberately NOT here:
///  - the trace and machine size: a snapshot is only meaningful against the
///    exact trace/config it was taken from, so the consumer re-loads those
///    and the checkpoint layer stores enough CLI context to do it;
///  - the fault schedule: FaultInjector derives it deterministically from
///    FaultSpec (seed included), so restoring `next_fault` re-synchronizes
///    the cursor without serializing the event list;
///  - predictor state: ClassCorrectionPredictor learns online and is not
///    snapshotted — the checkpoint layer rejects that combination.
struct SimSnapshot {
  /// Bumped whenever the struct layout changes incompatibly; the on-disk
  /// format carries it and the reader rejects mismatches.
  static constexpr int kVersion = 1;

  struct WaitingEntry {
    int job_id = 0;
    Time estimate = 0;  ///< runtime estimate in force when queued
  };
  struct RunningEntry {
    int job_id = 0;
    Time start = 0;
    Time est_end = 0;
  };
  struct CompletionEntry {
    Time end = 0;
    int job_id = 0;
    int attempt = 0;
  };
  /// JobOutcome for a job the run has already touched (started, finished,
  /// killed, or requeued). Untouched jobs stay at their default outcome and
  /// are omitted.
  struct OutcomeEntry {
    int job_id = 0;
    Time start = 0;
    Time end = 0;
    int requeue_count = 0;
    Time lost_node_seconds = 0;
    bool completed = true;
  };
  /// Mirrors DecisionStats; mean_waiting is still the running sum here
  /// (simulate() divides by decisions only at the end of the run).
  struct DecisionStatsEntry {
    std::uint64_t decisions = 0;
    std::uint64_t with_10_plus = 0;
    std::uint64_t max_waiting = 0;
    double mean_waiting_sum = 0.0;
  };
  /// Mirrors FaultStats.
  struct FaultStatsEntry {
    std::uint64_t node_failures = 0;
    std::uint64_t node_recoveries = 0;
    std::uint64_t jobs_killed = 0;
    std::uint64_t jobs_requeued = 0;
    std::uint64_t jobs_dropped = 0;
    std::uint64_t jobs_unstarted = 0;
    double lost_node_seconds = 0.0;
    int min_capacity = 0;
  };

  Time now = 0;            ///< clock at the capture boundary
  std::uint64_t events = 0;  ///< events processed so far
  std::size_t next_arrival = 0;  ///< cursor into the trace's job list
  std::size_t next_fault = 0;    ///< cursor into the fault schedule
  int used_nodes = 0;
  int down_nodes = 0;
  Time last_event = 0;     ///< previous event time (queue-area integration)
  double queue_area = 0.0;

  std::vector<WaitingEntry> waiting;      ///< in queue order
  std::vector<RunningEntry> running;      ///< in dispatch order
  std::vector<CompletionEntry> completions;  ///< heap contents, any order
  std::vector<int> attempts;              ///< per-job attempt counters
  std::vector<OutcomeEntry> outcomes;     ///< touched jobs only

  DecisionStatsEntry decision_stats;
  FaultStatsEntry fault_stats;

  /// Opaque policy state from Scheduler::save_state() — cumulative stats,
  /// warm-start order, fair-share ledger, governor breaker state, ...
  std::string scheduler_state;
};

/// Full mid-run state of a federation of member clusters: one SimSnapshot
/// per member (in cluster-id order) plus the federation's own loop state.
/// Captured at a federation event boundary — after every member was
/// stepped to the boundary time and migrations for it were applied — so a
/// resumed federation re-enters its loop exactly where an uninterrupted
/// one would be. Serialization lives in resilience/checkpoint, same as for
/// SimSnapshot.
struct FederationSnapshot {
  /// v2 added the fault-tolerance block (chaos cursor, outage flags,
  /// health, limbo, ledger). v1 snapshots still load — the new fields
  /// default to the chaos-off state.
  static constexpr int kVersion = 2;

  std::uint64_t fed_events = 0;   ///< federation event times processed
  std::size_t next_arrival = 0;   ///< routing cursor into the global trace
  std::uint64_t migrations = 0;   ///< cross-cluster migrations so far
  std::vector<int> owner;         ///< per-job hosting cluster id
  std::vector<double> demand_ewma;  ///< per-member queue-demand EWMA
  std::vector<std::uint64_t> routed;          ///< jobs routed per member
  std::vector<std::uint64_t> migrations_in;   ///< per member
  std::vector<std::uint64_t> migrations_out;  ///< per member
  /// Opaque MetaScheduler::save_state() (round-robin cursor, ...).
  std::string meta_state;
  std::vector<SimSnapshot> members;  ///< one per member, cluster-id order

  // --- v2: federation fault-tolerance state (all empty when chaos off;
  // the chaos schedule itself re-derives from the seeded spec, so only
  // the cursor is stored, mirroring the fault-schedule treatment above).
  struct LimboEntry {
    int job = 0;
    int target = 0;  ///< member the dropped routing message addressed
  };
  struct RehomeEntry {
    int job = 0;
    int from = 0;
    int to = 0;
  };
  struct CommitEntry {
    int job = 0;
    int member = 0;
  };
  std::size_t next_chaos = 0;  ///< cursor into the chaos schedule
  std::vector<std::uint8_t> member_down;  ///< ground-truth blackout flags
  std::vector<std::uint8_t> link_down;    ///< ground-truth partition flags
  std::vector<std::string> health;  ///< per-member MemberHealth JSON
  std::vector<LimboEntry> limbo;    ///< routings dropped by an outage
  std::vector<RehomeEntry> speculative;  ///< open speculative re-homes
  std::vector<std::vector<int>> stale_waiting;  ///< per-member view at
                                                ///  LinkDown (else empty)
  std::vector<CommitEntry> commits;       ///< ledger completion commits
  std::vector<std::uint64_t> transfers_in;   ///< ledger, per member
  std::vector<std::uint64_t> transfers_out;  ///< ledger, per member
  std::uint64_t failovers = 0;
  std::uint64_t rehomes = 0;
  std::uint64_t dedupes = 0;
  std::uint64_t duplicate_runs = 0;
};

}  // namespace sbs::sim
