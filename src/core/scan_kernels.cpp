// Vector bodies of the earliest-start kernels (see scan_kernels.hpp for
// the testing contract). Structure shared by all five:
//
//  - 8 x int32 GCC vector extensions, loaded/stored via memcpy (the
//    portable unaligned access idiom — compiles to plain vector moves).
//
//  - The find-first scans walk 32-element blocks, OR-combining the four
//    comparison masks in the vector domain and testing the combined mask
//    once per block. Testing per 8-lane vector would bounce every mask
//    through the stack (the only portable lane reduction), and that
//    store-load round trip costs more than the comparisons themselves; a
//    hit rescans its block, so the returned index is still exact.
//
//  - Where the toolchain supports it, each kernel is cloned for AVX2 and
//    the loader picks the widest body the CPU has (target_clones/ifunc);
//    the default clone remains baseline x86-64, so the binary runs
//    anywhere. On toolchains without the attribute the plain body is
//    compiled alone — still correct, still vectorized at 128 bits.
//
// Every body returns exactly what its *_scalar reference returns for
// every input (integer arithmetic, no reassociation) — that equivalence
// is what tests/test_search_simd.cpp pins, and the differential matrix
// extends it to whole schedules.

#include "core/scan_kernels.hpp"

#if SBS_SIMD_KERNELS

// The vectors never cross a real ABI boundary (everything here is file-
// local or takes scalar parameters), so the psABI warning does not apply.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpsabi"

#if defined(__x86_64__) && defined(__has_attribute)
#if __has_attribute(target_clones) && defined(__gnu_linux__)
#define SBS_KERNEL_CLONES __attribute__((target_clones("default", "avx2")))
#endif
#endif
#ifndef SBS_KERNEL_CLONES
#define SBS_KERNEL_CLONES
#endif

namespace sbs::kernels {

namespace {

typedef int V8i __attribute__((vector_size(32)));

inline V8i splat(int x) { return V8i{x, x, x, x, x, x, x, x}; }

inline V8i load(const int* p) {
  V8i v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline void store(int* p, V8i v) { std::memcpy(p, &v, sizeof v); }

/// True when any lane of a comparison-result vector (-1/0 per lane) is
/// set. The memcpy round trip is the portable reduction — callers batch
/// several vectors per test to amortize it.
inline bool any_lane(V8i mask) {
  std::uint64_t w[4];
  std::memcpy(w, &mask, sizeof w);
  return (w[0] | w[1] | w[2] | w[3]) != 0;
}

}  // namespace

SBS_KERNEL_CLONES
std::size_t first_lt(const int* v, std::size_t lo, std::size_t hi, int x) {
  std::size_t i = lo;
  const V8i xs = splat(x);
  // 32-element blocks, one mask test per block; break rescans the block.
  for (; i + 32 <= hi; i += 32) {
    const V8i m = (load(v + i) < xs) | (load(v + i + 8) < xs) |
                  (load(v + i + 16) < xs) | (load(v + i + 24) < xs);
    if (any_lane(m)) break;
  }
  for (; i + 8 <= hi; i += 8) {
    if (any_lane(load(v + i) < xs)) {
      for (std::size_t k = i; k < i + 8; ++k)
        if (v[k] < x) return k;
    }
  }
  return first_lt_scalar(v, i, hi, x);
}

SBS_KERNEL_CLONES
std::size_t first_ge(const int* v, std::size_t lo, std::size_t hi, int x) {
  std::size_t i = lo;
  const V8i xs = splat(x);
  for (; i + 32 <= hi; i += 32) {
    const V8i m = (load(v + i) >= xs) | (load(v + i + 8) >= xs) |
                  (load(v + i + 16) >= xs) | (load(v + i + 24) >= xs);
    if (any_lane(m)) break;
  }
  for (; i + 8 <= hi; i += 8) {
    if (any_lane(load(v + i) >= xs)) {
      for (std::size_t k = i; k < i + 8; ++k)
        if (v[k] >= x) return k;
    }
  }
  return first_ge_scalar(v, i, hi, x);
}

SBS_KERNEL_CLONES
int range_min(const int* v, std::size_t lo, std::size_t hi) {
  std::size_t i = lo;
  int m = std::numeric_limits<int>::max();
  if (i + 8 <= hi) {
    V8i acc = splat(m);
    for (; i + 8 <= hi; i += 8) {
      const V8i lane = load(v + i);
      const V8i lt = lane < acc;
      acc = (lane & lt) | (acc & ~lt);
    }
    int lanes[8];
    std::memcpy(lanes, &acc, sizeof lanes);
    for (int lane : lanes)
      if (lane < m) m = lane;
  }
  const int tail = range_min_scalar(v, i, hi);
  return tail < m ? tail : m;
}

SBS_KERNEL_CLONES
void range_sub(int* v, std::size_t lo, std::size_t hi, int x) {
  std::size_t i = lo;
  const V8i xs = splat(x);
  for (; i + 8 <= hi; i += 8) store(v + i, load(v + i) - xs);
  range_sub_scalar(v, i, hi, x);
}

SBS_KERNEL_CLONES
void range_add(int* v, std::size_t lo, std::size_t hi, int x) {
  std::size_t i = lo;
  const V8i xs = splat(x);
  for (; i + 8 <= hi; i += 8) store(v + i, load(v + i) + xs);
  range_add_scalar(v, i, hi, x);
}

}  // namespace sbs::kernels

#pragma GCC diagnostic pop

#endif  // SBS_SIMD_KERNELS
