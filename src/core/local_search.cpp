#include "core/local_search.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace sbs {

namespace {

/// One full neighborhood sweep of adjacent swaps; returns true if any move
/// was accepted. Evaluations are charged against the budget.
bool sweep_adjacent_swaps(const SearchProblem& problem,
                          std::vector<std::size_t>& order,
                          BuiltSchedule& incumbent, std::size_t& evals,
                          std::size_t budget, std::size_t& improvements) {
  bool improved_any = false;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    if (evals >= budget) return improved_any;
    std::swap(order[i], order[i + 1]);
    const BuiltSchedule candidate = build_schedule(problem, order);
    ++evals;
    if (objective_less(candidate.value, incumbent.value)) {
      incumbent = candidate;
      ++improvements;
      improved_any = true;
    } else {
      std::swap(order[i], order[i + 1]);  // revert
    }
  }
  return improved_any;
}

/// Random reinsertion move: remove the element at i, insert before j.
bool try_reinsertion(const SearchProblem& problem,
                     std::vector<std::size_t>& order,
                     BuiltSchedule& incumbent, Rng& rng, std::size_t& evals,
                     std::size_t& improvements) {
  const std::size_t n = order.size();
  const std::size_t i = rng.index(n);
  std::size_t j = rng.index(n);
  if (i == j) return false;
  std::vector<std::size_t> candidate_order = order;
  const std::size_t moved = candidate_order[i];
  candidate_order.erase(candidate_order.begin() +
                        static_cast<std::ptrdiff_t>(i));
  if (j > i) --j;
  candidate_order.insert(candidate_order.begin() + static_cast<std::ptrdiff_t>(j),
                         moved);
  const BuiltSchedule candidate = build_schedule(problem, candidate_order);
  ++evals;
  if (objective_less(candidate.value, incumbent.value)) {
    order = std::move(candidate_order);
    incumbent = candidate;
    ++improvements;
    return true;
  }
  return false;
}

}  // namespace

LocalSearchResult local_search(const SearchProblem& problem,
                               std::span<const std::size_t> seed_order,
                               const LocalSearchConfig& config) {
  SBS_CHECK_MSG(seed_order.size() == problem.size(),
                "seed order must cover every waiting job");
  LocalSearchResult result;
  result.order.assign(seed_order.begin(), seed_order.end());

  BuiltSchedule incumbent = build_schedule(problem, result.order);
  ++result.evaluations;

  Rng rng(config.seed);
  bool keep_going = problem.size() >= 2;
  while (keep_going && result.evaluations < config.max_evaluations) {
    const bool swap_improved =
        sweep_adjacent_swaps(problem, result.order, incumbent,
                             result.evaluations, config.max_evaluations,
                             result.improvements);
    bool reinsert_improved = false;
    if (config.use_reinsertion) {
      // A small burst of random reinsertions per sweep.
      for (int k = 0; k < 8 && result.evaluations < config.max_evaluations;
           ++k)
        reinsert_improved |= try_reinsertion(problem, result.order, incumbent,
                                             rng, result.evaluations,
                                             result.improvements);
    }
    keep_going = swap_improved || reinsert_improved;
  }

  result.starts = incumbent.starts;
  result.value = incumbent.value;
  return result;
}

LocalSearchResult search_then_refine(const SearchProblem& problem,
                                     const SearchConfig& search_config,
                                     const LocalSearchConfig& config) {
  const SearchResult seed = run_search(problem, search_config);
  LocalSearchResult refined = local_search(problem, seed.order, config);
  // local_search starts from the seed's schedule, so it can only match or
  // improve it; assert the invariant in debug-style form.
  SBS_CHECK(!objective_less(seed.value, refined.value) ||
            refined.value.excess_h <= seed.value.excess_h + kObjectiveEps);
  return refined;
}

}  // namespace sbs
