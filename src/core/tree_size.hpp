#pragma once

#include <cstddef>

namespace sbs {

/// Size of the job-ordering search tree for n waiting jobs (Figure 1(d)):
/// n! root-to-leaf paths; the depth-d level holds n!/(n-d)! nodes, so the
/// node total is sum_{d=1..n} n!/(n-d)!. Returned as doubles because the
/// counts overflow 64 bits past n = 20.
struct TreeSize {
  double paths = 0.0;
  double nodes = 0.0;
};

TreeSize search_tree_size(std::size_t n);

}  // namespace sbs
