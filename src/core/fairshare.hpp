#pragma once

#include <unordered_map>
#include <vector>

#include "jobs/job.hpp"

namespace sbs {

/// Decayed per-user usage accounting for fair-share scheduling — the
/// paper's final future-work item ("incorporating special priority and
/// fairshare in the scheduling objective"). Usage is charged in
/// node-seconds when a job is dispatched and decays exponentially with a
/// configurable half-life, the standard Maui/Moab fair-share mechanism.
///
/// Integration with the search objective: a user's target wait bound is
/// scaled by how far they are above or below their fair share — heavy
/// users' jobs may wait longer before their wait counts as "excessive",
/// light users' jobs become excessive sooner, so the first objective
/// level actively evens service out.
struct FairShareConfig {
  Time half_life = kWeek;  ///< usage decay half-life
  /// Boost range for under-served users: a user at `ratio` of their fair
  /// share gets bound * clamp(ratio, 1/max_scale, 1). Bounds are only ever
  /// TIGHTENED (boosting light users), never relaxed — relaxing a heavy
  /// user's bound proportionally to the dynamic bound creates a feedback
  /// loop (their own growing wait keeps raising their allowance) that
  /// licenses starvation.
  double max_scale = 2.0;
};

class FairShareTracker {
 public:
  explicit FairShareTracker(FairShareConfig config = {});

  /// Charges a dispatched job's planned usage (nodes * estimate) at `now`.
  void charge(const Job& job, Time estimate, Time now);

  /// Decayed usage of one user at `now` (node-seconds).
  double usage(int user, Time now) const;

  /// Total decayed usage across users at `now`.
  double total_usage(Time now) const;

  /// This user's usage relative to an equal share of the total:
  /// ratio 1 = exactly fair, 2 = twice their share. Unknown users and an
  /// empty ledger yield 1.
  double share_ratio(int user, Time now) const;

  /// Target-bound scaling for the search objective (see above).
  Time adjust_bound(Time base_bound, int user, Time now) const;

  std::size_t tracked_users() const { return ledger_.size(); }

  /// Checkpoint support: the ledger as (user, usage, updated) rows in
  /// ascending user order (deterministic output for golden snapshots), and
  /// its exact restoration. Usage doubles round-trip bit-exactly through
  /// the shortest-round-trip decimal form the JSON layer emits.
  struct AccountEntry {
    int user = 0;
    double usage = 0.0;
    Time updated = 0;
  };
  std::vector<AccountEntry> export_accounts() const;
  void import_accounts(const std::vector<AccountEntry>& accounts);

 private:
  struct Account {
    double usage = 0.0;
    Time updated = 0;
  };
  double decayed(const Account& account, Time now) const;

  FairShareConfig config_;
  std::unordered_map<int, Account> ledger_;
};

}  // namespace sbs
