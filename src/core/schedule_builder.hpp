#pragma once

#include <span>
#include <vector>

#include "core/search_problem.hpp"

namespace sbs {

/// A complete tentative schedule for a decision point: one start time per
/// problem job (indexed like SearchProblem::jobs) and its objective value.
struct BuiltSchedule {
  std::vector<Time> starts;
  ObjectiveValue value;
};

/// List-schedules the jobs in the given consideration order (paper §2.2):
/// each job receives the earliest start feasible against the running jobs
/// and every job placed before it on the path. The order is a permutation
/// of [0, problem.size()).
BuiltSchedule build_schedule(const SearchProblem& problem,
                             std::span<const std::size_t> order);

}  // namespace sbs
