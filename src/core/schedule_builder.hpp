#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/scan_kernels.hpp"
#include "core/search_problem.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"

namespace sbs {

/// A complete tentative schedule for a decision point: one start time per
/// problem job (indexed like SearchProblem::jobs) and its objective value.
struct BuiltSchedule {
  std::vector<Time> starts;
  ObjectiveValue value;
};

/// List-schedules the jobs in the given consideration order (paper §2.2):
/// each job receives the earliest start feasible against the running jobs
/// and every job placed before it on the path. The order is a permutation
/// of [0, problem.size()). This free function always rebuilds from the
/// base profile — it is the naive reference the incremental engine is
/// proven against.
BuiltSchedule build_schedule(const SearchProblem& problem,
                             std::span<const std::size_t> order);

/// Cache-effectiveness counters of one ScheduleBuilder (telemetry only —
/// they never influence a placement).
struct BuilderCacheStats {
  std::uint64_t hits = 0;           ///< memoized earliest-start reuses
  std::uint64_t misses = 0;         ///< profile scans actually performed
  std::uint64_t invalidations = 0;  ///< memo discards (size-bound resets)
};

/// Incremental list-scheduling state for tree search. Every search engine
/// — and every parallel worker, privately — places jobs through one of
/// these, which keeps the placement arithmetic in a single spot and
/// bit-identical across the sequential, parallel, cached and SIMD paths.
///
/// Two modes, selected at construction and proven equivalent by the
/// differential suite (tests/test_search_incremental.cpp):
///
///  - cache = false (naive): one ResourceProfile snapshot per depth;
///    place(d, job) copies snapshot d into d+1 and reserves. Backtracking
///    is free (the next place overwrites the snapshot) but every placement
///    pays a full profile copy plus an earliest-start scan over the
///    array-of-structs step vector.
///
///  - cache = true (incremental): a single undo-log profile held as two
///    parallel arrays (times / free counts). place() appends reversible
///    reserve deltas, unplace() pops them in O(touched steps) — no copies,
///    ever. Because the profile is never copied, it can afford the layout
///    that copies would punish: the free counts are a dense int array, so
///    the earliest-start scan touches a few cache lines instead of the
///    16-byte AoS steps, and the scan's end position seeds the reserve
///    directly (no re-searching for the boundaries). On top sits a
///    per-node earliest-start memo keyed on (profile version, placement
///    shape): a version id names a profile state, and jobs with identical
///    (nodes, estimate) — job arrays, tie twins — are the same pure-
///    function input, so sibling placements of a repeated shape and
///    LDS/DDS path-prefix replays both skip the scan entirely. The memoed
///    start feeds the exact same reserve arithmetic, so results cannot
///    diverge.
///
/// The `simd` knob (cache mode only) selects between two provably
/// equivalent implementations of the scan and reserve arithmetic:
///
///  - simd = false: the scalar reference — the original fused loop,
///    kept compiled verbatim (soa_earliest_start_scalar) as the
///    differential baseline for tests and `--search-simd=off`.
///
///  - simd = true (default): the same scan decomposed into vectorizable
///    kernels (core/scan_kernels.hpp): find-first-ge over the free array
///    to skip infeasible steps 8 lanes at a time, a galloping search over
///    the sorted times for the window end, find-first-lt for the first
///    free-count violation inside the window, and range-sub/range-add for
///    the reserve/undo updates. Every kernel answer is the index/value the
///    scalar loop computes — integer arithmetic only, so the equivalence
///    is exact, and tests/test_search_simd.cpp proves it cell by cell.
///
/// In cache mode all per-path state (the SoA arrays, undo log, version
/// stack, shape table) lives in a bump Arena — the caller's per-worker
/// arena when one is passed, else a private one — so a search performs no
/// per-node heap traffic (the memo table is the one ordinary heap
/// allocation, sized in powers of two).
///
/// All modes mutate an identical step sequence through identical reserve
/// arithmetic, so earliest-start answers — and with them every schedule,
/// objective, and node count — are bit-identical by construction.
class ScheduleBuilder {
 public:
  explicit ScheduleBuilder(const SearchProblem& problem, bool cache = true,
                           bool simd = true, Arena* arena = nullptr)
      : p_(&problem), cache_(cache), simd_(simd) {
    if (!cache_) {
      profiles_.assign(problem.size() + 1, problem.base);
      return;
    }
    if (arena == nullptr) {
      owned_arena_ = std::make_unique<Arena>();
      arena = owned_arena_.get();
    }
    const std::size_t n = problem.size();
    // Exact capacity bounds: each outstanding placement inserts at most
    // two boundary steps and at most n placements are outstanding.
    const std::size_t step_cap = problem.base.step_count() + 2 * n + 2;
    const std::size_t depth_cap = n > 0 ? n : 1;
    times_.init(*arena, step_cap);
    free_.init(*arena, step_cap);
    undo_log_.init(*arena, depth_cap);
    version_stack_.init(*arena, depth_cap);
    shape_of_.init(*arena, depth_cap);
    for (const auto& s : problem.base.steps()) {
      times_.push_back(s.time);
      free_.push_back(s.free);
    }
    // Dense shape ids: jobs with the same (nodes, estimate) are the same
    // input to earliest_start, so they share memo entries.
    std::unordered_map<std::uint64_t, std::uint32_t> ids;
    ids.reserve(n);
    for (const SearchJob& s : problem.jobs) {
      const std::uint64_t key =
          static_cast<std::uint64_t>(s.estimate) * 0x10000u +
          static_cast<std::uint64_t>(s.nodes);
      const auto [it, fresh] =
          ids.emplace(key, static_cast<std::uint32_t>(ids.size()));
      (void)fresh;
      shape_of_.push_back(it->second);
    }
    n_shapes_ = ids.size();
    memo_.assign(kMemoInitialSlots, MemoSlot{});
    memo_mask_ = kMemoInitialSlots - 1;
  }

  bool cache_enabled() const { return cache_; }
  bool simd_enabled() const { return simd_; }

  /// Places `job` as the depth-d element of the current path and returns
  /// its start time. In cache mode `depth` must equal the number of
  /// outstanding placements (strict stack discipline, checked).
  Time place(std::size_t depth, std::size_t job) {
    const SearchJob& s = p_->jobs[job];
    if (!cache_) {
      ResourceProfile& profile = profiles_[depth + 1];
      profile = profiles_[depth];
      const Time t = profile.earliest_start(p_->now, s.nodes, s.estimate);
      profile.reserve(t, s.nodes, s.estimate);
      return t;
    }
    SBS_CHECK_MSG(depth == undo_log_.size(),
                  "cached ScheduleBuilder requires stack discipline");
    const std::uint64_t key =
        version_ * n_shapes_ + shape_of_[job] + 1;  // 0 = empty slot
    Time t;
    std::uint64_t child_version;
    std::size_t first_hint;
    std::size_t end_hint;
    if (MemoSlot* slot = memo_find(key); slot != nullptr) {
      // The version in the key names the exact profile state the miss saw,
      // so the recorded scan positions are still valid — a hit performs no
      // search at all, only the reserve deltas.
      t = slot->start;
      child_version = slot->child_version;
      first_hint = slot->first_hint;
      end_hint = slot->end_hint;
      ++stats_.hits;
    } else {
      t = soa_earliest_start(p_->now, s.nodes, s.estimate, first_hint,
                             end_hint);
      child_version = ++last_version_;
      memo_insert(key, t, child_version, first_hint, end_hint);
      ++stats_.misses;
    }
    undo_log_.push_back(
        soa_reserve(t, s.nodes, s.estimate, first_hint, end_hint));
    version_stack_.push_back(version_);
    version_ = child_version;
    return t;
  }

  /// Backtracks the most recent outstanding placement. A no-op in naive
  /// mode (snapshots are simply overwritten by the next place).
  void unplace() {
    if (!cache_) return;
    SBS_CHECK_MSG(!undo_log_.empty(), "unplace without a placement");
    const SoaUndo& u = undo_log_.back();
    // LIFO discipline means every index the record captured is still
    // valid: later placements have already been undone, so the arrays are
    // byte-identical to the post-reserve state.
    if (simd_) {
      kernels::range_add(free_.data(), u.first, u.last, u.nodes);
    } else {
      for (std::size_t i = u.first; i < u.last; ++i) free_[i] += u.nodes;
    }
    if (u.inserted_last) erase_step(u.last);
    if (u.inserted_first) erase_step(u.first);
    undo_log_.pop_back();
    version_ = version_stack_.back();
    version_stack_.pop_back();
  }

  /// Backtracks every outstanding placement (task reset between parallel
  /// subtrees). The memo survives — it is keyed by version, and versions
  /// name states, not paths.
  void rewind() {
    while (!undo_log_.empty()) unplace();
  }

  /// Outstanding placements (cache mode; 0 in naive mode).
  std::size_t depth() const { return undo_log_.size(); }

  const BuilderCacheStats& cache_stats() const { return stats_; }

  /// Materializes the current live profile as a step vector (tests). In
  /// naive mode this is the snapshot at the given depth.
  std::vector<ResourceProfile::Step> live_steps(std::size_t depth = 0) const {
    std::vector<ResourceProfile::Step> out;
    if (!cache_) {
      out = profiles_[depth].steps();
      return out;
    }
    out.reserve(times_.size());
    for (std::size_t i = 0; i < times_.size(); ++i)
      out.push_back(ResourceProfile::Step{times_[i], free_[i]});
    return out;
  }

 private:
  /// Undo record of one SoA reserve; indices are valid only under strict
  /// LIFO undo (same contract as ResourceProfile::ReserveUndo).
  struct SoaUndo {
    int nodes = 0;
    std::uint32_t first = 0;  ///< first decremented step index
    std::uint32_t last = 0;   ///< one past the last decremented index
    bool inserted_first = false;
    bool inserted_last = false;
  };

  struct MemoSlot {
    std::uint64_t key = 0;  ///< 0 = empty
    Time start = 0;
    std::uint64_t child_version = 0;
    std::uint32_t first_hint = 0;  ///< scan positions at the keyed version;
    std::uint32_t end_hint = 0;    ///< valid again on every hit
  };

  static constexpr std::size_t kMemoInitialSlots = std::size_t{1} << 10;
  /// Memo slot bound: a search that outgrows it (node budgets far past the
  /// paper's 100K) drops the whole memo and restarts — correctness never
  /// depends on retention.
  static constexpr std::size_t kMemoCapacity = std::size_t{1} << 21;

  /// Last step index with times_[i] <= t (mirror of
  /// ResourceProfile::step_index).
  std::size_t soa_step_index(Time t) const {
    SBS_CHECK_MSG(t >= times_.front(), "query before profile origin");
    std::size_t lo = 0;
    std::size_t hi = times_.size();
    while (lo + 1 < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (times_[mid] <= t) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Knob dispatch: both implementations return bit-identical answers and
  /// hints for every input (tests/test_search_simd.cpp).
  Time soa_earliest_start(Time from, int nodes, Time duration,
                          std::size_t& first_hint,
                          std::size_t& end_hint) const {
    return simd_ ? soa_earliest_start_simd(from, nodes, duration, first_hint,
                                           end_hint)
                 : soa_earliest_start_scalar(from, nodes, duration,
                                             first_hint, end_hint);
  }

  /// SCALAR REFERENCE (kept compiled verbatim — the `--search-simd=off`
  /// path and the differential baseline). Mirror of
  /// ResourceProfile::earliest_start over the SoA arrays, with one
  /// addition: it reports the scan's end position (`first_hint` = step
  /// containing the start, `end_hint` = first step at or past start +
  /// duration) so the subsequent reserve needs no boundary search. The
  /// returned time is bit-identical to the AoS implementation — the scan
  /// is the same algorithm over the same step sequence.
  Time soa_earliest_start_scalar(Time from, int nodes, Time duration,
                                 std::size_t& first_hint,
                                 std::size_t& end_hint) const {
    SBS_CHECK(nodes >= 1);
    SBS_CHECK(duration > 0);
    if (from < times_.front()) from = times_.front();
    std::size_t i = soa_step_index(from);
    const std::size_t n = times_.size();
    while (true) {
      const Time t = from > times_[i] ? from : times_[i];
      if (free_[i] >= nodes) {
        const Time end = t + duration;
        std::size_t k = i + 1;
        while (k < n && times_[k] < end && free_[k] >= nodes) ++k;
        if (k >= n || times_[k] >= end) {
          first_hint = i;
          end_hint = k;
          return t;
        }
        i = k;
      }
      ++i;
      SBS_CHECK_MSG(i < n || free_.back() >= nodes,
                    "no feasible start found — inconsistent profile");
      if (i >= n) {
        first_hint = n - 1;
        end_hint = n;
        return from > times_.back() ? from : times_.back();
      }
    }
  }

  /// First step index >= lo with times_[idx] >= end (galloping probe, then
  /// a binary search of the bracketed range — the window is usually a
  /// handful of steps, so the probe terminates in one or two iterations).
  std::size_t soa_first_time_ge(Time end, std::size_t lo) const {
    const std::size_t n = times_.size();
    std::size_t bound = 1;
    std::size_t known = lo;  ///< every index < known has times_ < end
    std::size_t probe = lo;
    while (probe < n && times_[probe] < end) {
      known = probe + 1;
      probe = lo + bound;
      bound *= 2;
    }
    std::size_t a = known;
    std::size_t b = probe < n ? probe : n;
    while (a < b) {
      const std::size_t mid = (a + b) / 2;
      if (times_[mid] < end) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    return a;
  }

  /// Vector form of the same scan, decomposed for the kernels: skip
  /// infeasible steps with find-first-ge, bound the window end against the
  /// sorted times, and detect the first in-window free-count violation
  /// with find-first-lt. Each candidate step and each failure index equals
  /// the scalar loop's — the loop structure differs, the visited decision
  /// sequence does not.
  Time soa_earliest_start_simd(Time from, int nodes, Time duration,
                               std::size_t& first_hint,
                               std::size_t& end_hint) const {
    SBS_CHECK(nodes >= 1);
    SBS_CHECK(duration > 0);
    if (from < times_.front()) from = times_.front();
    std::size_t i = soa_step_index(from);
    const std::size_t n = times_.size();
    for (;;) {
      if (free_[i] < nodes) {
        i = kernels::first_ge(free_.data(), i + 1, n, nodes);
        SBS_CHECK_MSG(i < n, "no feasible start found — inconsistent profile");
      }
      const Time t = from > times_[i] ? from : times_[i];
      const Time end = t + duration;
      const std::size_t k_time = soa_first_time_ge(end, i + 1);
      const std::size_t k_free =
          kernels::first_lt(free_.data(), i + 1, k_time, nodes);
      if (k_free >= k_time) {
        first_hint = i;
        end_hint = k_time;
        return t;
      }
      i = k_free;
    }
  }

  void insert_step(std::size_t at, Time t, int f) {
    times_.insert_at(at, t);
    free_.insert_at(at, f);
  }

  void erase_step(std::size_t at) {
    times_.erase_at(at);
    free_.erase_at(at);
  }

  /// SoA reserve, boundary-seeded by the scan hints (`first_hint` = step
  /// containing start, `end_hint` = first step at or past start +
  /// duration) — no boundary search of its own. Same boundary-insertion
  /// arithmetic as ResourceProfile::reserve.
  SoaUndo soa_reserve(Time start, int nodes, Time duration,
                      std::size_t first_hint, std::size_t end_hint) {
    const Time end = start + duration;
    std::size_t i = first_hint;
    std::size_t k = end_hint;
    SoaUndo u;
    u.nodes = nodes;
    std::size_t first = i;
    if (times_[i] != start) {
      ++first;
      insert_step(first, start, free_[i]);
      ++k;
      u.inserted_first = true;
    }
    const std::size_t last = k;
    if (last >= times_.size() || times_[last] != end) {
      insert_step(last, end, free_[last - 1]);
      u.inserted_last = true;
    }
    if (simd_) {
      if (kernels::range_min(free_.data(), first, last) < nodes) {
        // Unreachable on a consistent profile; replay the scalar loop for
        // its exact per-step diagnostic.
        for (std::size_t j = first; j < last; ++j)
          SBS_CHECK_MSG(free_[j] >= nodes,
                        "reservation does not fit at t=" << times_[j]);
      }
      kernels::range_sub(free_.data(), first, last, nodes);
    } else {
      for (std::size_t j = first; j < last; ++j) {
        SBS_CHECK_MSG(free_[j] >= nodes,
                      "reservation does not fit at t=" << times_[j]);
        free_[j] -= nodes;
      }
    }
    u.first = static_cast<std::uint32_t>(first);
    u.last = static_cast<std::uint32_t>(last);
    return u;
  }

  static std::uint64_t memo_hash(std::uint64_t key) {
    key *= 0x9E3779B97F4A7C15ull;
    return key ^ (key >> 32);
  }

  MemoSlot* memo_find(std::uint64_t key) {
    std::size_t idx = memo_hash(key) & memo_mask_;
    while (memo_[idx].key != 0) {
      if (memo_[idx].key == key) return &memo_[idx];
      idx = (idx + 1) & memo_mask_;
    }
    return nullptr;
  }

  void memo_insert(std::uint64_t key, Time start, std::uint64_t child_version,
                   std::size_t first_hint, std::size_t end_hint) {
    if ((memo_count_ + 1) * 4 > memo_.size() * 3) memo_grow();
    std::size_t idx = memo_hash(key) & memo_mask_;
    while (memo_[idx].key != 0) idx = (idx + 1) & memo_mask_;
    memo_[idx] = MemoSlot{key, start, child_version,
                          static_cast<std::uint32_t>(first_hint),
                          static_cast<std::uint32_t>(end_hint)};
    ++memo_count_;
  }

  void memo_grow() {
    if (memo_.size() >= kMemoCapacity) {
      // Size bound reached: drop everything (counted as an invalidation)
      // rather than growing without limit.
      for (MemoSlot& slot : memo_) slot = MemoSlot{};
      memo_count_ = 0;
      ++stats_.invalidations;
      return;
    }
    std::vector<MemoSlot> old;
    old.swap(memo_);
    memo_.assign(old.size() * 2, MemoSlot{});
    memo_mask_ = memo_.size() - 1;
    for (const MemoSlot& slot : old) {
      if (slot.key == 0) continue;
      std::size_t idx = memo_hash(slot.key) & memo_mask_;
      while (memo_[idx].key != 0) idx = (idx + 1) & memo_mask_;
      memo_[idx] = slot;
    }
  }

  const SearchProblem* p_;
  const bool cache_;
  const bool simd_;
  std::vector<ResourceProfile> profiles_;  ///< naive mode: per-depth copies
  std::unique_ptr<Arena> owned_arena_;  ///< when no caller arena was given

  // Cache mode: the one live profile as parallel arrays, its undo log,
  // and the (version, shape) memo. All arena-backed except the memo.
  ArenaVector<Time> times_;
  ArenaVector<int> free_;
  ArenaVector<SoaUndo> undo_log_;
  ArenaVector<std::uint64_t> version_stack_;
  ArenaVector<std::uint32_t> shape_of_;
  std::uint64_t n_shapes_ = 0;
  std::vector<MemoSlot> memo_;
  std::size_t memo_mask_ = 0;
  std::size_t memo_count_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t last_version_ = 0;
  BuilderCacheStats stats_;
};

}  // namespace sbs
