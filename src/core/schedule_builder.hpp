#pragma once

#include <span>
#include <vector>

#include "core/search_problem.hpp"

namespace sbs {

/// A complete tentative schedule for a decision point: one start time per
/// problem job (indexed like SearchProblem::jobs) and its objective value.
struct BuiltSchedule {
  std::vector<Time> starts;
  ObjectiveValue value;
};

/// List-schedules the jobs in the given consideration order (paper §2.2):
/// each job receives the earliest start feasible against the running jobs
/// and every job placed before it on the path. The order is a permutation
/// of [0, problem.size()).
BuiltSchedule build_schedule(const SearchProblem& problem,
                             std::span<const std::size_t> order);

/// Incremental list-scheduling state for tree search: one ResourceProfile
/// snapshot per depth, so backtracking to depth d and placing a different
/// job just overwrites snapshot d+1. Every search engine — and every
/// parallel worker, privately — places jobs through one of these, which
/// keeps the placement arithmetic in a single spot and bit-identical
/// across the sequential and parallel paths.
class ScheduleBuilder {
 public:
  explicit ScheduleBuilder(const SearchProblem& problem)
      : p_(&problem), profiles_(problem.size() + 1, problem.base) {}

  /// Places `job` as the depth-d element of the current path (profiles
  /// snapshot d -> d+1) and returns its start time.
  Time place(std::size_t depth, std::size_t job) {
    ResourceProfile& profile = profiles_[depth + 1];
    profile = profiles_[depth];
    const SearchJob& s = p_->jobs[job];
    const Time t = profile.earliest_start(p_->now, s.nodes, s.estimate);
    profile.reserve(t, s.nodes, s.estimate);
    return t;
  }

 private:
  const SearchProblem* p_;
  std::vector<ResourceProfile> profiles_;
};

}  // namespace sbs
