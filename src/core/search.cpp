#include "core/search.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "util/error.hpp"

namespace sbs {

std::string algo_name(SearchAlgo algo) {
  switch (algo) {
    case SearchAlgo::Lds: return "LDS";
    case SearchAlgo::Dds: return "DDS";
    case SearchAlgo::Dfs: return "DFS";
  }
  throw Error("unknown search algorithm");
}

std::string branching_name(Branching branching) {
  switch (branching) {
    case Branching::Fcfs: return "fcfs";
    case Branching::Lxf: return "lxf";
  }
  throw Error("unknown branching heuristic");
}

namespace {

/// Depth-first engine shared by LDS and DDS. The tree has one level per
/// waiting job; the children of a node are the not-yet-placed jobs in the
/// branching-heuristic order; child index 0 follows the heuristic and any
/// other index is one discrepancy. One "node visited" = one job placement,
/// cumulative across iterations, capped at the node limit.
class Engine {
 public:
  Engine(const SearchProblem& problem, const SearchConfig& config)
      : p_(problem), cfg_(config), n_(problem.size()) {
    seq_.resize(n_);
    std::iota(seq_.begin(), seq_.end(), std::size_t{0});
    if (cfg_.branching == Branching::Fcfs) {
      std::stable_sort(seq_.begin(), seq_.end(),
                       [&](std::size_t a, std::size_t b) {
                         const auto& ja = p_.jobs[a];
                         const auto& jb = p_.jobs[b];
                         if (ja.submit != jb.submit) return ja.submit < jb.submit;
                         return ja.job->id < jb.job->id;
                       });
    } else {
      std::stable_sort(seq_.begin(), seq_.end(),
                       [&](std::size_t a, std::size_t b) {
                         return p_.jobs[a].slowdown_now > p_.jobs[b].slowdown_now;
                       });
    }
    used_.assign(n_, 0);
    path_.resize(n_);
    path_starts_.resize(n_);
    // One profile per depth; profiles_[d] is the state after d placements.
    profiles_.assign(n_ + 1, p_.base);
    result_.value = worst_objective();
    if (cfg_.deadline_ms >= 0.0) {
      has_deadline_ = true;
      deadline_at_ = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(static_cast<std::int64_t>(
                         std::llround(cfg_.deadline_ms * 1000.0)));
    }
  }

  SearchResult run() {
    if (cfg_.algo == SearchAlgo::Dfs) {
      // Chronological DFS visits the leftmost (pure-heuristic) path first
      // by construction; the budget guard inside dfs() lets that first
      // path complete regardless of the limit.
      begin_iteration();
      result_.exhausted = dfs(0, 0.0, 0.0);
      result_.deadline_hit = deadline_hit_;
      SBS_CHECK_MSG(result_.paths_completed > 0,
                    "search produced no schedule");
      return std::move(result_);
    }

    // Iteration 0: the pure-heuristic path. Always completed, so the
    // policy never degrades below plain list scheduling by the heuristic.
    begin_iteration();
    descend_leftmost();

    bool done = false;
    if (cfg_.algo == SearchAlgo::Lds) {
      // Iteration k explores paths with exactly k discrepancies; at most
      // one discrepancy per level with >= 2 children, i.e. k <= n-1.
      for (std::size_t k = 1; !done && n_ >= 2 && k <= n_ - 1; ++k) {
        begin_iteration();
        done = !lds(0, 0.0, 0.0, 0, k);
      }
    } else {
      // Iteration i forces a discrepancy at depth i (the depth of the
      // i-th placed job, root children being depth 1).
      for (std::size_t i = 1; !done && n_ >= 2 && i <= n_ - 1; ++i) {
        begin_iteration();
        done = !dds(0, 0.0, 0.0, i);
      }
    }
    result_.exhausted = !done;
    result_.deadline_hit = deadline_hit_;

    SBS_CHECK_MSG(result_.paths_completed > 0, "search produced no schedule");
    return std::move(result_);
  }

 private:
  /// True while both budgets hold: the node limit and (when configured)
  /// the wall-clock deadline. The clock is polled every 16th call — a
  /// placement costs far more than the counter, so the deadline is honored
  /// within a negligible overshoot.
  bool budget_left() const {
    if (result_.nodes_visited >= cfg_.node_limit) return false;
    if (!has_deadline_ || deadline_hit_) return !deadline_hit_;
    if ((++deadline_poll_ & 15u) != 0) return true;
    if (std::chrono::steady_clock::now() >= deadline_at_)
      deadline_hit_ = true;
    return !deadline_hit_;
  }

  /// Places job `job` as the depth-d element of the current path.
  /// Returns the start time.
  Time place(std::size_t depth, std::size_t job) {
    ++result_.nodes_visited;
    ResourceProfile& profile = profiles_[depth + 1];
    profile = profiles_[depth];
    const SearchJob& s = p_.jobs[job];
    const Time t = profile.earliest_start(p_.now, s.nodes, s.estimate);
    profile.reserve(t, s.nodes, s.estimate);
    used_[job] = 1;
    path_[depth] = job;
    path_starts_[depth] = t;
    return t;
  }

  void unplace(std::size_t job) { used_[job] = 0; }

  void begin_iteration() {
    ++result_.iterations_started;
    result_.paths_per_iteration.push_back(0);
    // Unconditional clock check at iteration boundaries so even a 0 ms
    // deadline is detected promptly, independent of the poll counter.
    if (has_deadline_ && !deadline_hit_ &&
        std::chrono::steady_clock::now() >= deadline_at_)
      deadline_hit_ = true;
  }

  void complete_path(double excess, double bsld_sum) {
    ++result_.paths_completed;
    ++result_.paths_per_iteration.back();
    ObjectiveValue value{excess,
                         bsld_sum / static_cast<double>(std::max<std::size_t>(n_, 1))};
    if (cfg_.on_path) cfg_.on_path(path_, value);
    if (cfg_.comparator.less(value, result_.value)) {
      result_.value = value;
      result_.order.assign(path_.begin(), path_.end());
      result_.starts.assign(n_, 0);
      for (std::size_t d = 0; d < n_; ++d)
        result_.starts[path_[d]] = path_starts_[d];
      result_.improvements.push_back(Improvement{result_.nodes_visited,
                                                 result_.paths_completed, value,
                                                 path_discrepancies()});
    }
  }

  /// Discrepancy count of the current complete path: replays it against
  /// the heuristic order and counts the levels where a non-first child was
  /// taken. Only called on incumbent improvements (a handful per search),
  /// so the O(n^2) replay is off the hot path.
  std::size_t path_discrepancies() {
    disc_scratch_.assign(n_, 0);
    std::size_t disc = 0;
    for (std::size_t d = 0; d < n_; ++d) {
      std::size_t child = 0;
      for (std::size_t j : seq_) {
        if (disc_scratch_[j]) continue;
        if (j == path_[d]) break;
        ++child;
      }
      if (child > 0) ++disc;
      disc_scratch_[path_[d]] = 1;
    }
    return disc;
  }

  /// Branch-and-bound cut (optional): excess only accumulates along a path
  /// and every remaining job contributes bounded slowdown >= 1, so a
  /// partial path already no better than the incumbent cannot improve.
  bool pruned(double excess, double bsld_sum, std::size_t depth) const {
    if (!cfg_.prune || result_.paths_completed == 0) return false;
    const ObjectiveValue& best = result_.value;
    if (excess > best.excess_h + kObjectiveEps) return true;
    if (excess < best.excess_h - kObjectiveEps) return false;
    const double lb =
        (bsld_sum + static_cast<double>(n_ - depth)) / static_cast<double>(n_);
    return lb >= best.avg_bsld - kObjectiveEps;
  }

  void descend_leftmost() {
    double excess = 0.0, bsld_sum = 0.0;
    for (std::size_t d = 0; d < n_; ++d) {
      const std::size_t job = first_unused();
      const Time t = place(d, job);
      excess += p_.excess_h(job, t);
      bsld_sum += p_.bsld(job, t);
    }
    complete_path(excess, bsld_sum);
    for (std::size_t d = 0; d < n_; ++d) unplace(path_[d]);
  }

  std::size_t first_unused() const {
    for (std::size_t j : seq_)
      if (!used_[j]) return j;
    throw Error("no unused job left");
  }

  /// LDS iteration: paths with exactly `k` discrepancies, `used` so far.
  /// Returns false when the node budget ran out.
  bool lds(std::size_t depth, double excess, double bsld_sum,
           std::size_t used, std::size_t k) {
    if (depth == n_) {
      complete_path(excess, bsld_sum);
      return true;
    }
    const std::size_t remaining = n_ - depth;
    std::size_t child = 0;
    for (std::size_t j : seq_) {
      if (used_[j]) continue;
      const std::size_t d_used = used + (child > 0 ? 1 : 0);
      ++child;
      if (d_used > k) break;  // children are visited left to right
      // Levels below this child with >= 2 children: remaining - 2.
      const std::size_t max_future = remaining >= 2 ? remaining - 2 : 0;
      if (d_used + max_future < k) continue;  // cannot reach exactly k
      if (!budget_left()) return false;
      const Time t = place(depth, j);
      const double e = excess + p_.excess_h(j, t);
      const double b = bsld_sum + p_.bsld(j, t);
      bool ok = true;
      if (!pruned(e, b, depth + 1)) ok = lds(depth + 1, e, b, d_used, k);
      unplace(j);
      if (!ok) return false;
    }
    return true;
  }

  /// Chronological depth-first enumeration of the whole tree. The first
  /// complete path is exempt from the budget (anytime guarantee).
  bool dfs(std::size_t depth, double excess, double bsld_sum) {
    if (depth == n_) {
      complete_path(excess, bsld_sum);
      return true;
    }
    for (std::size_t j : seq_) {
      if (used_[j]) continue;
      if (!budget_left() && result_.paths_completed > 0) return false;
      const Time t = place(depth, j);
      const double e = excess + p_.excess_h(j, t);
      const double b = bsld_sum + p_.bsld(j, t);
      bool ok = true;
      if (!pruned(e, b, depth + 1)) ok = dfs(depth + 1, e, b);
      unplace(j);
      if (!ok) return false;
    }
    return true;
  }

  /// DDS iteration: mandatory discrepancy at depth `target` (1-based depth
  /// of placed jobs), any branch above, heuristic-only below.
  bool dds(std::size_t depth, double excess, double bsld_sum,
           std::size_t target) {
    if (depth == n_) {
      complete_path(excess, bsld_sum);
      return true;
    }
    const std::size_t child_depth = depth + 1;
    std::size_t child = 0;
    for (std::size_t j : seq_) {
      if (used_[j]) continue;
      const std::size_t c = child++;
      if (child_depth == target && c == 0) continue;  // discrepancy required
      if (child_depth > target && c > 0) break;       // heuristic only below
      if (!budget_left()) return false;
      const Time t = place(depth, j);
      const double e = excess + p_.excess_h(j, t);
      const double b = bsld_sum + p_.bsld(j, t);
      bool ok = true;
      if (!pruned(e, b, depth + 1)) ok = dds(depth + 1, e, b, target);
      unplace(j);
      if (!ok) return false;
    }
    return true;
  }

  const SearchProblem& p_;
  const SearchConfig cfg_;
  const std::size_t n_;
  std::vector<std::size_t> seq_;  ///< heuristic (leftmost-first) job order
  std::vector<char> used_;
  std::vector<char> disc_scratch_;  ///< path_discrepancies() working set
  std::vector<std::size_t> path_;
  std::vector<Time> path_starts_;
  std::vector<ResourceProfile> profiles_;
  SearchResult result_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_at_;
  mutable std::uint32_t deadline_poll_ = 0;
  mutable bool deadline_hit_ = false;
};

}  // namespace

SearchResult run_search(const SearchProblem& problem,
                        const SearchConfig& config) {
  SBS_CHECK_MSG(problem.size() >= 1, "search over an empty queue");
  SBS_CHECK(config.node_limit >= 1);
  SBS_CHECK_MSG(!(config.prune && config.comparator.weighted_alpha > 0.0),
                "branch-and-bound pruning requires the hierarchical "
                "objective");
  Engine engine(problem, config);
  return engine.run();
}

}  // namespace sbs
