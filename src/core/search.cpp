#include "core/search.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <exception>
#include <future>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>

#include "core/schedule_builder.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace sbs {

std::string algo_name(SearchAlgo algo) {
  switch (algo) {
    case SearchAlgo::Lds: return "LDS";
    case SearchAlgo::Dds: return "DDS";
    case SearchAlgo::Dfs: return "DFS";
  }
  throw Error("unknown search algorithm");
}

std::string branching_name(Branching branching) {
  switch (branching) {
    case Branching::Fcfs: return "fcfs";
    case Branching::Lxf: return "lxf";
  }
  throw Error("unknown branching heuristic");
}

std::vector<std::size_t> branching_order(const SearchProblem& problem,
                                         Branching branching) {
  std::vector<std::size_t> seq(problem.size());
  std::iota(seq.begin(), seq.end(), std::size_t{0});
  if (branching == Branching::Fcfs) {
    std::sort(seq.begin(), seq.end(), [&](std::size_t a, std::size_t b) {
      const SearchJob& ja = problem.jobs[a];
      const SearchJob& jb = problem.jobs[b];
      if (ja.submit != jb.submit) return ja.submit < jb.submit;
      return ja.job->id < jb.job->id;
    });
  } else {
    // Equal slowdowns are ranked by (submit, id), never by sort stability:
    // jobs of identical shape submitted together have exactly equal
    // slowdown_now, and a stability-dependent order would make the whole
    // search tree depend on the caller's array order.
    std::sort(seq.begin(), seq.end(), [&](std::size_t a, std::size_t b) {
      const SearchJob& ja = problem.jobs[a];
      const SearchJob& jb = problem.jobs[b];
      if (ja.slowdown_now != jb.slowdown_now)
        return ja.slowdown_now > jb.slowdown_now;
      if (ja.submit != jb.submit) return ja.submit < jb.submit;
      return ja.job->id < jb.job->id;
    });
  }
  return seq;
}

namespace {

/// Discrepancy count of a complete path: replays it against the heuristic
/// order and counts the levels where a non-first child was taken. Only
/// called on incumbent improvements (a handful per search), so the O(n^2)
/// replay is off the hot path.
std::size_t path_discrepancy_count(std::span<const std::size_t> seq,
                                   std::span<const std::size_t> path,
                                   std::vector<char>& scratch) {
  scratch.assign(seq.size(), 0);
  std::size_t disc = 0;
  for (std::size_t d = 0; d < path.size(); ++d) {
    std::size_t child = 0;
    for (std::size_t j : seq) {
      if (scratch[j]) continue;
      if (j == path[d]) break;
      ++child;
    }
    if (child > 0) ++disc;
    scratch[path[d]] = 1;
  }
  return disc;
}

/// Seeds `result` with the warm-start incumbent (SearchConfig::warm_order)
/// when the carried order is still a valid permutation of this problem's
/// jobs. The warm path is list-scheduled by the naive reference builder —
/// identical arithmetic to every engine — and recorded as a zero-node,
/// zero-path improvement so the anytime profile shows where the incumbent
/// came from. Returns false (cold start) on any mismatch. Shared by the
/// sequential and parallel engines so warm-start behavior is thread-count
/// invariant by construction.
bool apply_warm_start(const SearchProblem& p, const SearchConfig& cfg,
                      std::span<const std::size_t> seq,
                      std::vector<char>& scratch, SearchResult& result) {
  if (cfg.warm_order == nullptr) return false;
  const std::vector<std::size_t>& w = *cfg.warm_order;
  if (w.size() != p.size() || w.empty()) return false;
  scratch.assign(p.size(), 0);
  for (std::size_t j : w) {
    if (j >= p.size() || scratch[j]) return false;
    scratch[j] = 1;
  }
  const BuiltSchedule warm = build_schedule(p, w);
  result.value = warm.value;
  result.order = w;
  result.starts = warm.starts;
  result.warm_start_used = true;
  result.improvements.push_back(
      Improvement{0, 0, warm.value, path_discrepancy_count(seq, w, scratch)});
  return true;
}

/// Depth-first engine shared by LDS and DDS. The tree has one level per
/// waiting job; the children of a node are the not-yet-placed jobs in the
/// branching-heuristic order; child index 0 follows the heuristic and any
/// other index is one discrepancy. One "node visited" = one job placement,
/// cumulative across iterations, capped at the node limit.
class Engine {
 public:
  Engine(const SearchProblem& problem, const SearchConfig& config)
      : p_(problem), cfg_(config), n_(problem.size()),
        seq_(branching_order(problem, config.branching)),
        builder_(problem, config.cache, config.simd, &worker_arena()) {
    Arena& arena = worker_arena();
    used_.init(arena, n_);
    path_.init(arena, n_);
    path_starts_.init(arena, n_);
    used_.assign(n_, 0);
    path_.resize(n_);
    path_starts_.resize(n_);
    twin_prev_ = cfg_.dominance
                     ? p_.twin_prev()
                     : std::vector<std::size_t>(n_, SearchProblem::kNoTwin);
    frozen_active_ =
        cfg_.dominance && cfg_.comparator.weighted_alpha == 0.0;
    result_.value = worst_objective();
    if (cfg_.deadline_ms >= 0.0) {
      has_deadline_ = true;
      deadline_at_ = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(static_cast<std::int64_t>(
                         std::llround(cfg_.deadline_ms * 1000.0)));
    }
  }

  SearchResult run() {
    apply_warm_start(p_, cfg_, seq_, disc_scratch_, result_);

    if (cfg_.algo == SearchAlgo::Dfs) {
      // Chronological DFS visits the leftmost (pure-heuristic) path first
      // by construction; the budget guard inside dfs() lets that first
      // path complete regardless of the limit.
      begin_iteration();
      result_.exhausted = dfs(0, 0.0, 0.0);
      return finish();
    }

    // Iteration 0: the pure-heuristic path. Always completed, so the
    // policy never degrades below plain list scheduling by the heuristic.
    begin_iteration();
    descend_leftmost();

    bool done = false;
    if (cfg_.algo == SearchAlgo::Lds) {
      // Iteration k explores paths with exactly k discrepancies; at most
      // one discrepancy per level with >= 2 children, i.e. k <= n-1.
      for (std::size_t k = 1; !done && n_ >= 2 && k <= n_ - 1; ++k) {
        begin_iteration();
        done = !lds(0, 0.0, 0.0, 0, k);
      }
    } else {
      // Iteration i forces a discrepancy at depth i (the depth of the
      // i-th placed job, root children being depth 1).
      for (std::size_t i = 1; !done && n_ >= 2 && i <= n_ - 1; ++i) {
        begin_iteration();
        done = !dds(0, 0.0, 0.0, i);
      }
    }
    result_.exhausted = !done;
    return finish();
  }

 private:
  SearchResult finish() {
    result_.deadline_hit = deadline_hit_;
    const BuilderCacheStats& cs = builder_.cache_stats();
    result_.cache_hits = cs.hits;
    result_.cache_misses = cs.misses;
    result_.cache_invalidations = cs.invalidations;
    SBS_CHECK_MSG(result_.paths_completed > 0, "search produced no schedule");
    return std::move(result_);
  }

  /// True while both budgets hold: the node limit and (when configured)
  /// the wall-clock deadline. The clock is polled every 16th call — a
  /// placement costs far more than the counter, so the deadline is honored
  /// within a negligible overshoot.
  bool budget_left() const {
    if (result_.nodes_visited >= cfg_.node_limit) return false;
    if (!has_deadline_ || deadline_hit_) return !deadline_hit_;
    if ((++deadline_poll_ & 15u) != 0) return true;
    if (std::chrono::steady_clock::now() >= deadline_at_)
      deadline_hit_ = true;
    return !deadline_hit_;
  }

  /// Places job `job` as the depth-d element of the current path.
  /// Returns the start time.
  Time place(std::size_t depth, std::size_t job) {
    ++result_.nodes_visited;
    const Time t = builder_.place(depth, job);
    used_[job] = 1;
    path_[depth] = job;
    path_starts_[depth] = t;
    return t;
  }

  void unplace(std::size_t job) {
    used_[job] = 0;
    builder_.unplace();
  }

  void begin_iteration() {
    ++result_.iterations_started;
    result_.paths_per_iteration.push_back(0);
    // Freeze the incumbent for this iteration's dominance bound. Frozen at
    // the boundary — never mid-iteration — so the cut is independent of the
    // order improvements are discovered inside the iteration, which is what
    // keeps it identical across thread counts (the parallel engine freezes
    // at the same boundary).
    frozen_valid_ = frozen_active_ && !result_.improvements.empty();
    if (frozen_valid_) frozen_best_ = result_.value;
    // Unconditional clock check at iteration boundaries so even a 0 ms
    // deadline is detected promptly, independent of the poll counter.
    if (has_deadline_ && !deadline_hit_ &&
        std::chrono::steady_clock::now() >= deadline_at_)
      deadline_hit_ = true;
  }

  void complete_path(double excess, double bsld_sum) {
    ++result_.paths_completed;
    ++result_.paths_per_iteration.back();
    ObjectiveValue value{excess,
                         bsld_sum / static_cast<double>(std::max<std::size_t>(n_, 1))};
    if (cfg_.on_path) cfg_.on_path(path_, value);
    if (cfg_.comparator.less(value, result_.value)) {
      result_.value = value;
      result_.order.assign(path_.begin(), path_.end());
      result_.starts.assign(n_, 0);
      for (std::size_t d = 0; d < n_; ++d)
        result_.starts[path_[d]] = path_starts_[d];
      result_.improvements.push_back(Improvement{
          result_.nodes_visited, result_.paths_completed, value,
          path_discrepancy_count(seq_, path_, disc_scratch_)});
    }
  }

  /// Lower-bound cut: excess only accumulates along a path and every
  /// remaining job contributes bounded slowdown >= 1, so a partial path
  /// whose admissible bound is already no better than the reference
  /// incumbent cannot improve on it. The reference is the LIVE incumbent
  /// under branch-and-bound (cfg_.prune — gated on the incumbent's
  /// existence via improvements, not completed paths, so a warm-start
  /// incumbent can prune from the very first placement) and otherwise the
  /// iteration-FROZEN incumbent of the dominance layer. When both are on,
  /// the live incumbent subsumes the frozen one: live <= frozen at every
  /// point, so any path the frozen bound would cut, the live bound cuts
  /// too.
  bool bound_cut(double excess, double bsld_sum, std::size_t depth) {
    const ObjectiveValue* best = nullptr;
    if (cfg_.prune && !result_.improvements.empty())
      best = &result_.value;
    else if (frozen_valid_)
      best = &frozen_best_;
    if (best == nullptr) return false;
    bool cut;
    if (excess > best->excess_h + kObjectiveEps) {
      cut = true;
    } else if (excess < best->excess_h - kObjectiveEps) {
      cut = false;
    } else {
      const double lb = (bsld_sum + static_cast<double>(n_ - depth)) /
                        static_cast<double>(n_);
      cut = lb >= best->avg_bsld - kObjectiveEps;
    }
    if (cut) ++result_.pruned_bound;
    return cut;
  }

  /// Twin skip (SearchConfig::dominance): placing `j` while its earlier
  /// twin still waits only permutes interchangeable jobs — the canonical
  /// subtree (earlier twin first) contains a value-identical schedule for
  /// every completion under this branch. Never fires for the first unused
  /// job in seq_ (its earlier twin, sorting strictly before it in both
  /// branching orders, would itself be the first unused), so every interior
  /// node keeps at least one child and the heuristic path is untouched.
  bool twin_skip(std::size_t j) {
    const std::size_t tp = twin_prev_[j];
    if (tp == SearchProblem::kNoTwin || used_[tp]) return false;
    ++result_.pruned_twins;
    return true;
  }

  void descend_leftmost() {
    double excess = 0.0, bsld_sum = 0.0;
    for (std::size_t d = 0; d < n_; ++d) {
      const std::size_t job = first_unused();
      const Time t = place(d, job);
      excess += p_.excess_h(job, t);
      bsld_sum += p_.bsld(job, t);
    }
    complete_path(excess, bsld_sum);
    for (std::size_t d = 0; d < n_; ++d) unplace(path_[d]);
  }

  std::size_t first_unused() const {
    for (std::size_t j : seq_)
      if (!used_[j]) return j;
    throw Error("no unused job left");
  }

  /// LDS iteration: paths with exactly `k` discrepancies, `used` so far.
  /// Returns false when the node budget ran out.
  bool lds(std::size_t depth, double excess, double bsld_sum,
           std::size_t used, std::size_t k) {
    if (depth == n_) {
      complete_path(excess, bsld_sum);
      return true;
    }
    const std::size_t remaining = n_ - depth;
    std::size_t child = 0;
    for (std::size_t j : seq_) {
      if (used_[j]) continue;
      // Twin skip BEFORE child counting: the reduced tree is renumbered, so
      // skipping a twin does not spend a discrepancy slot on it.
      if (twin_skip(j)) continue;
      const std::size_t d_used = used + (child > 0 ? 1 : 0);
      ++child;
      if (d_used > k) break;  // children are visited left to right
      // Levels below this child with >= 2 children: remaining - 2.
      const std::size_t max_future = remaining >= 2 ? remaining - 2 : 0;
      if (d_used + max_future < k) continue;  // cannot reach exactly k
      if (!budget_left()) return false;
      const Time t = place(depth, j);
      const double e = excess + p_.excess_h(j, t);
      const double b = bsld_sum + p_.bsld(j, t);
      bool ok = true;
      if (!bound_cut(e, b, depth + 1)) ok = lds(depth + 1, e, b, d_used, k);
      unplace(j);
      if (!ok) return false;
    }
    return true;
  }

  /// Chronological depth-first enumeration of the whole tree. The first
  /// complete path is exempt from the budget (anytime guarantee).
  bool dfs(std::size_t depth, double excess, double bsld_sum) {
    if (depth == n_) {
      complete_path(excess, bsld_sum);
      return true;
    }
    for (std::size_t j : seq_) {
      if (used_[j]) continue;
      if (twin_skip(j)) continue;
      if (!budget_left() && result_.paths_completed > 0) return false;
      const Time t = place(depth, j);
      const double e = excess + p_.excess_h(j, t);
      const double b = bsld_sum + p_.bsld(j, t);
      bool ok = true;
      if (!bound_cut(e, b, depth + 1)) ok = dfs(depth + 1, e, b);
      unplace(j);
      if (!ok) return false;
    }
    return true;
  }

  /// DDS iteration: mandatory discrepancy at depth `target` (1-based depth
  /// of placed jobs), any branch above, heuristic-only below.
  bool dds(std::size_t depth, double excess, double bsld_sum,
           std::size_t target) {
    if (depth == n_) {
      complete_path(excess, bsld_sum);
      return true;
    }
    const std::size_t child_depth = depth + 1;
    std::size_t child = 0;
    for (std::size_t j : seq_) {
      if (used_[j]) continue;
      if (twin_skip(j)) continue;  // reduced tree: twins are not children
      const std::size_t c = child++;
      if (child_depth == target && c == 0) continue;  // discrepancy required
      if (child_depth > target && c > 0) break;       // heuristic only below
      if (!budget_left()) return false;
      const Time t = place(depth, j);
      const double e = excess + p_.excess_h(j, t);
      const double b = bsld_sum + p_.bsld(j, t);
      bool ok = true;
      if (!bound_cut(e, b, depth + 1)) ok = dds(depth + 1, e, b, target);
      unplace(j);
      if (!ok) return false;
    }
    return true;
  }

  const SearchProblem& p_;
  const SearchConfig cfg_;
  const std::size_t n_;
  const std::vector<std::size_t> seq_;  ///< heuristic (leftmost-first) order
  ScheduleBuilder builder_;
  ArenaVector<char> used_;
  std::vector<char> disc_scratch_;  ///< discrepancy-replay working set
  ArenaVector<std::size_t> path_;
  ArenaVector<Time> path_starts_;
  std::vector<std::size_t> twin_prev_;
  SearchResult result_;
  /// Dominance bound state: frozen_active_ when the config and comparator
  /// admit the frozen cut at all; frozen_valid_/frozen_best_ per iteration.
  bool frozen_active_ = false;
  bool frozen_valid_ = false;
  ObjectiveValue frozen_best_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_at_;
  mutable std::uint32_t deadline_poll_ = 0;
  mutable bool deadline_hit_ = false;
};

// ---------------------------------------------------------------------------
// Parallel engine (SearchConfig::threads >= 1).
//
// Iterations remain sequential phases — they ARE the anytime profile the
// paper measures — but within an iteration every root-level branch that
// survives the LDS/DDS filters becomes an independent subtree task.
// Workers grab tasks in canonical (heuristic-sequence) order and explore
// them speculatively, each with a private ScheduleBuilder, under a node
// cap that is provably >= the nodes the sequential engine would have
// granted that subtree: the cap is the iteration's remaining budget minus
// the observed cost of already-FINISHED predecessor tasks (unfinished ones
// count zero, so the cap only over-estimates). The merge then replays the
// tasks in canonical order and cuts at exactly the node where the
// sequential budget would have run out, reconstructing the incumbent, the
// starts, the anytime profile and the node/path/iteration accounting from
// per-task records. The merged result is therefore bit-for-bit the
// sequential result for every thread count; only wall-clock-deadline runs
// are timing-dependent, exactly as they are sequentially.
//
// Worker-side incumbents are kept as a strictly-improving local chain per
// task. Any global improvement must beat every earlier path, including the
// task-local incumbent, so the global improvements the sequential engine
// would record are a subset of the chains the merge replays. (The only
// theoretical exception needs three objective values whose pairwise gaps
// straddle the 1e-9 comparison epsilon non-transitively — a measure-zero
// corner; exact ties are transitive and safe.)

/// One entry of a task's strictly-improving local incumbent chain.
struct KeptPath {
  ObjectiveValue value;
  std::size_t offset = 0;   ///< task-local nodes visited at completion
  std::size_t ordinal = 0;  ///< 1-based completed-path ordinal in the task
  std::vector<std::size_t> order;
  std::vector<Time> starts;  ///< per-depth starts, aligned with `order`
};

/// Everything the canonical merge needs to know about one subtree task.
struct TaskResult {
  std::size_t nodes = 0;
  bool truncated = false;           ///< stopped by the node cap
  bool deadline_truncated = false;  ///< stopped by the shared deadline
  std::vector<std::size_t> path_offsets;  ///< local nodes at each completion
  std::vector<KeptPath> kept;
  /// Dominance telemetry (twin skips / frozen-bound cuts inside the task);
  /// summed over every task, including speculative work the merge discards.
  std::uint64_t pruned_twins = 0;
  std::uint64_t pruned_bound = 0;
};

/// Shared per-iteration progress: the dynamic task queue plus the observed
/// cost of finished tasks, which lets later tasks shrink their speculation
/// caps toward the true sequential allotment.
class IterationProgress {
 public:
  IterationProgress(std::size_t tasks, std::size_t budget)
      : budget_(budget),
        cost_(std::make_unique<std::atomic<std::int64_t>[]>(tasks)) {
    for (std::size_t i = 0; i < tasks; ++i)
      cost_[i].store(-1, std::memory_order_relaxed);
  }

  std::size_t grab() { return next_.fetch_add(1, std::memory_order_relaxed); }

  void record(std::size_t task, std::size_t nodes) {
    cost_[task].store(static_cast<std::int64_t>(nodes),
                      std::memory_order_release);
  }

  /// Node cap for `task`: iteration budget minus the observed cost of every
  /// finished predecessor. Unfinished predecessors contribute zero, so the
  /// cap never under-estimates what the sequential engine would grant.
  std::size_t cap_for(std::size_t task) const {
    std::int64_t sum = 0;
    for (std::size_t t = 0; t < task; ++t) {
      const std::int64_t c = cost_[t].load(std::memory_order_acquire);
      if (c >= 0) sum += c;
    }
    const auto b = static_cast<std::int64_t>(budget_);
    return sum >= b ? 0 : static_cast<std::size_t>(b - sum);
  }

 private:
  const std::size_t budget_;
  std::unique_ptr<std::atomic<std::int64_t>[]> cost_;
  std::atomic<std::size_t> next_{0};
};

/// Per-worker explorer: owns a private ScheduleBuilder and path state and
/// runs one subtree task at a time in canonical depth-first order. Shares
/// nothing mutable with other workers except the deadline flag.
class SubtreeExplorer {
 public:
  SubtreeExplorer(const SearchProblem& problem, const SearchConfig& config,
                  std::span<const std::size_t> seq,
                  const std::vector<std::size_t>* twin_prev,
                  const std::chrono::steady_clock::time_point* deadline_at,
                  std::atomic<bool>* deadline_hit)
      : p_(problem), cfg_(config), n_(problem.size()), seq_(seq),
        twin_prev_(twin_prev),
        builder_(problem, config.cache, config.simd, &worker_arena()),
        deadline_at_(deadline_at), deadline_hit_(deadline_hit) {
    Arena& arena = worker_arena();
    used_.init(arena, n_);
    path_.init(arena, n_);
    path_starts_.init(arena, n_);
    used_.assign(n_, 0);
    path_.resize(n_);
    path_starts_.resize(n_);
  }

  /// Iteration 0: the whole-tree pure-heuristic path, budget-exempt. (The
  /// heuristic path needs no twin skip: the first unused job in seq_ never
  /// has an unplaced earlier twin.)
  TaskResult run_heuristic() {
    reset(nullptr, 0, std::numeric_limits<std::size_t>::max(), nullptr);
    double excess = 0.0, bsld_sum = 0.0;
    for (std::size_t d = 0; d < n_; ++d) {
      const std::size_t job = first_unused();
      const Time t = place(d, job);
      excess += p_.excess_h(job, t);
      bsld_sum += p_.bsld(job, t);
    }
    complete_path(excess, bsld_sum);
    return std::move(res_);
  }

  /// LDS iteration `k`, the subtree under root child `c`. `root_disc` is
  /// the root branch's discrepancy contribution in the twin-REDUCED tree —
  /// the caller renumbers surviving root children, so the raw seq index no
  /// longer implies it.
  TaskResult run_lds(std::size_t c, bool root_disc, std::size_t k,
                     std::size_t cap, const IterationProgress* progress,
                     std::size_t task, const ObjectiveValue* frozen) {
    reset(progress, task, cap, frozen);
    if (begin_task()) {
      const std::size_t j = seq_[c];
      const Time t = place(0, j);
      const double e = p_.excess_h(j, t);
      const double b = p_.bsld(j, t);
      if (!bound_cut(e, b, 1)) lds(1, e, b, root_disc ? 1 : 0, k);
    }
    return std::move(res_);
  }

  /// DDS iteration `target`, the subtree under root child `c`.
  TaskResult run_dds(std::size_t c, std::size_t target, std::size_t cap,
                     const IterationProgress* progress, std::size_t task,
                     const ObjectiveValue* frozen) {
    reset(progress, task, cap, frozen);
    if (begin_task()) {
      const std::size_t j = seq_[c];
      const Time t = place(0, j);
      const double e = p_.excess_h(j, t);
      const double b = p_.bsld(j, t);
      if (!bound_cut(e, b, 1)) dds(1, e, b, target);
    }
    return std::move(res_);
  }

  /// Builder memo counters, cumulative across this worker's tasks. The
  /// memo deliberately survives reset(): versions name profile states, so
  /// prefixes replayed by later subtree tasks still hit.
  const BuilderCacheStats& cache_stats() const {
    return builder_.cache_stats();
  }

 private:
  void reset(const IterationProgress* progress, std::size_t task,
             std::size_t cap, const ObjectiveValue* frozen) {
    // run_heuristic/run_lds/run_dds return with their root placement (and,
    // for the heuristic path, the whole path) still outstanding; pop all of
    // it so the next task starts from the base profile.
    builder_.rewind();
    res_ = TaskResult{};
    progress_ = progress;
    task_ = task;
    cap_ = cap;
    frozen_ = frozen;
    local_best_ = worst_objective();
    std::fill(used_.begin(), used_.end(), 0);
  }

  /// The sequential engine's bound_cut with the per-iteration FROZEN
  /// incumbent only — the live branch-and-bound variant never reaches the
  /// parallel engine (cfg_.prune forces the sequential fallback).
  bool bound_cut(double excess, double bsld_sum, std::size_t depth) {
    if (frozen_ == nullptr) return false;
    bool cut;
    if (excess > frozen_->excess_h + kObjectiveEps) {
      cut = true;
    } else if (excess < frozen_->excess_h - kObjectiveEps) {
      cut = false;
    } else {
      const double lb = (bsld_sum + static_cast<double>(n_ - depth)) /
                        static_cast<double>(n_);
      cut = lb >= frozen_->avg_bsld - kObjectiveEps;
    }
    if (cut) ++res_.pruned_bound;
    return cut;
  }

  bool twin_skip(std::size_t j) {
    const std::size_t tp = (*twin_prev_)[j];
    if (tp == SearchProblem::kNoTwin || used_[tp]) return false;
    ++res_.pruned_twins;
    return true;
  }

  /// Mirrors the sequential root-level budget check that precedes the
  /// subtree's first placement, plus a fast path out when another worker
  /// already tripped the deadline.
  bool begin_task() {
    if (deadline_hit_ != nullptr &&
        deadline_hit_->load(std::memory_order_relaxed)) {
      res_.deadline_truncated = true;
      return false;
    }
    return budget_left();
  }

  /// Node cap first (mirroring the sequential check order), then the
  /// shared wall-clock deadline, polled every 16th placement like the
  /// sequential engine. The cap is refreshed from finished predecessors
  /// every 1024 placements so runaway speculation self-limits.
  bool budget_left() {
    if (res_.nodes >= cap_) {
      res_.truncated = true;
      return false;
    }
    if (progress_ != nullptr && (++refresh_tick_ & 1023u) == 0) {
      cap_ = std::min(cap_, progress_->cap_for(task_));
      if (res_.nodes >= cap_) {
        res_.truncated = true;
        return false;
      }
    }
    if (deadline_at_ != nullptr && (++deadline_poll_ & 15u) == 0) {
      if (deadline_hit_->load(std::memory_order_relaxed) ||
          std::chrono::steady_clock::now() >= *deadline_at_) {
        deadline_hit_->store(true, std::memory_order_relaxed);
        res_.deadline_truncated = true;
        return false;
      }
    }
    return true;
  }

  Time place(std::size_t depth, std::size_t job) {
    ++res_.nodes;
    const Time t = builder_.place(depth, job);
    used_[job] = 1;
    path_[depth] = job;
    path_starts_[depth] = t;
    return t;
  }

  void unplace(std::size_t job) {
    used_[job] = 0;
    builder_.unplace();
  }

  std::size_t first_unused() const {
    for (std::size_t j : seq_)
      if (!used_[j]) return j;
    throw Error("no unused job left");
  }

  void complete_path(double excess, double bsld_sum) {
    res_.path_offsets.push_back(res_.nodes);
    ObjectiveValue value{excess,
                         bsld_sum / static_cast<double>(std::max<std::size_t>(n_, 1))};
    if (cfg_.comparator.less(value, local_best_)) {
      local_best_ = value;
      KeptPath kp;
      kp.value = value;
      kp.offset = res_.nodes;
      kp.ordinal = res_.path_offsets.size();
      kp.order.assign(path_.begin(), path_.end());
      kp.starts.assign(path_starts_.begin(), path_starts_.end());
      res_.kept.push_back(std::move(kp));
    }
  }

  // The recursion bodies replicate the sequential engine's filters exactly
  // (same code, task-local budget); any divergence here breaks the
  // differential test.
  bool lds(std::size_t depth, double excess, double bsld_sum,
           std::size_t used, std::size_t k) {
    if (depth == n_) {
      complete_path(excess, bsld_sum);
      return true;
    }
    const std::size_t remaining = n_ - depth;
    std::size_t child = 0;
    for (std::size_t j : seq_) {
      if (used_[j]) continue;
      if (twin_skip(j)) continue;
      const std::size_t d_used = used + (child > 0 ? 1 : 0);
      ++child;
      if (d_used > k) break;
      const std::size_t max_future = remaining >= 2 ? remaining - 2 : 0;
      if (d_used + max_future < k) continue;
      if (!budget_left()) return false;
      const Time t = place(depth, j);
      const double e = excess + p_.excess_h(j, t);
      const double b = bsld_sum + p_.bsld(j, t);
      bool ok = true;
      if (!bound_cut(e, b, depth + 1)) ok = lds(depth + 1, e, b, d_used, k);
      unplace(j);
      if (!ok) return false;
    }
    return true;
  }

  bool dds(std::size_t depth, double excess, double bsld_sum,
           std::size_t target) {
    if (depth == n_) {
      complete_path(excess, bsld_sum);
      return true;
    }
    const std::size_t child_depth = depth + 1;
    std::size_t child = 0;
    for (std::size_t j : seq_) {
      if (used_[j]) continue;
      if (twin_skip(j)) continue;
      const std::size_t c = child++;
      if (child_depth == target && c == 0) continue;
      if (child_depth > target && c > 0) break;
      if (!budget_left()) return false;
      const Time t = place(depth, j);
      const double e = excess + p_.excess_h(j, t);
      const double b = bsld_sum + p_.bsld(j, t);
      bool ok = true;
      if (!bound_cut(e, b, depth + 1)) ok = dds(depth + 1, e, b, target);
      unplace(j);
      if (!ok) return false;
    }
    return true;
  }

  const SearchProblem& p_;
  const SearchConfig& cfg_;
  const std::size_t n_;
  const std::span<const std::size_t> seq_;
  const std::vector<std::size_t>* twin_prev_;
  ScheduleBuilder builder_;
  const std::chrono::steady_clock::time_point* deadline_at_;
  std::atomic<bool>* deadline_hit_;
  ArenaVector<char> used_;
  ArenaVector<std::size_t> path_;
  ArenaVector<Time> path_starts_;
  TaskResult res_;
  const IterationProgress* progress_ = nullptr;
  std::size_t task_ = 0;
  std::size_t cap_ = 0;
  const ObjectiveValue* frozen_ = nullptr;
  ObjectiveValue local_best_;
  std::uint32_t refresh_tick_ = 0;
  std::uint32_t deadline_poll_ = 0;
};

class ParallelEngine {
 public:
  ParallelEngine(const SearchProblem& problem, const SearchConfig& config,
                 ThreadPool* pool, std::uint64_t arena_epoch)
      : p_(problem), cfg_(config), n_(problem.size()),
        seq_(branching_order(problem, config.branching)),
        workers_(std::max<std::size_t>(config.threads, 1)),
        arena_epoch_(arena_epoch) {
    if (pool == nullptr) {
      owned_pool_ = std::make_unique<ThreadPool>(workers_);
      pool = owned_pool_.get();
    }
    pool_ = pool;
    explorers_.resize(workers_);
    twin_prev_ = cfg_.dominance
                     ? p_.twin_prev()
                     : std::vector<std::size_t>(n_, SearchProblem::kNoTwin);
    frozen_active_ =
        cfg_.dominance && cfg_.comparator.weighted_alpha == 0.0;
    result_.value = worst_objective();
    result_.threads_used = workers_;
    result_.worker_nodes.assign(workers_, 0);
    if (cfg_.deadline_ms >= 0.0) {
      has_deadline_ = true;
      deadline_at_ = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(static_cast<std::int64_t>(
                         std::llround(cfg_.deadline_ms * 1000.0)));
    }
  }

  SearchResult run() {
    // Warm start first, through the same shared helper as the sequential
    // engine — the seeded incumbent is thread-count invariant.
    apply_warm_start(p_, cfg_, seq_, disc_scratch_, result_);

    // Iteration 0 on the calling thread: the pure-heuristic path, exempt
    // from both budgets exactly as in the sequential engine.
    begin_iteration();
    SubtreeExplorer main_explorer(p_, cfg_, seq_, &twin_prev_,
                                  deadline_ptr(), &deadline_flag_);
    const TaskResult heuristic = main_explorer.run_heuristic();
    accept_prefix(heuristic, heuristic.nodes);

    bool done = false;
    const std::size_t last = n_ >= 2 ? n_ - 1 : 0;
    for (std::size_t param = 1; !done && param <= last; ++param)
      done = !run_iteration(param);
    result_.exhausted = !done;

    // Memo telemetry: the calling thread's iteration-0 builder plus every
    // worker's. Speculative (merge-discarded) work is included — these
    // counters report cache effectiveness, not canonical node accounting.
    add_cache_stats(main_explorer.cache_stats());
    for (const auto& e : explorers_)
      if (e) add_cache_stats(e->cache_stats());

    SBS_CHECK_MSG(result_.paths_completed > 0, "search produced no schedule");
    return std::move(result_);
  }

 private:
  const std::chrono::steady_clock::time_point* deadline_ptr() const {
    return has_deadline_ ? &deadline_at_ : nullptr;
  }

  /// Iteration bookkeeping plus the sequential engine's unconditional
  /// iteration-boundary clock check. Returns false once the deadline flag
  /// is up — the subsequent iteration is then cut before its first
  /// placement, as sequentially.
  bool begin_iteration() {
    ++result_.iterations_started;
    result_.paths_per_iteration.push_back(0);
    if (!has_deadline_) return true;
    if (!deadline_flag_.load(std::memory_order_relaxed) &&
        std::chrono::steady_clock::now() >= deadline_at_)
      deadline_flag_.store(true, std::memory_order_relaxed);
    return !deadline_flag_.load(std::memory_order_relaxed);
  }

  /// One root-level branch surviving the iteration's filters: its raw seq
  /// index plus whether it counts as a discrepancy in the twin-reduced tree
  /// (renumbered child index > 0).
  struct RootTask {
    std::size_t c = 0;
    bool disc = false;
  };

  /// Runs one LDS/DDS iteration across the pool and merges it in canonical
  /// order. Returns false when a budget or deadline cut ended the search.
  bool run_iteration(std::size_t param) {
    if (!begin_iteration()) {
      result_.deadline_hit = true;
      return false;
    }

    // Root children surviving the twin skip and the iteration's filters,
    // canonical order, renumbered AFTER the twin skip exactly as the
    // sequential loops renumber. (Root-level replica of the in-tree
    // filters: for LDS, child 0 cannot reach k discrepancies once k
    // exceeds the levels below it; for DDS, child 0 is skipped when the
    // forced discrepancy sits at depth 1. At the root nothing is placed,
    // so a job is a twin skip iff it has an earlier twin at all.)
    std::vector<RootTask> tasks;
    tasks.reserve(n_);
    std::size_t renumbered = 0;
    for (std::size_t c = 0; c < n_; ++c) {
      const std::size_t j = seq_[c];
      if (twin_prev_[j] != SearchProblem::kNoTwin) {
        ++result_.pruned_twins;
        continue;
      }
      const std::size_t rc = renumbered++;
      if (cfg_.algo == SearchAlgo::Lds) {
        if (rc == 0 && (n_ >= 2 ? n_ - 2 : 0) < param) continue;
      } else {
        if (rc == 0 && param == 1) continue;
      }
      tasks.push_back(RootTask{c, rc > 0});
    }
    // Every root branch was twin-skipped or filtered: the sequential loop
    // would fall through without touching the budget and move on.
    if (tasks.empty()) return true;

    const std::size_t budget =
        cfg_.node_limit > result_.nodes_visited
            ? cfg_.node_limit - result_.nodes_visited
            : 0;
    // Sequential twin: the root-level budget check before the iteration's
    // first placement fails, ending the search with the iteration counted.
    if (budget == 0) return false;

    // Freeze the incumbent for the iteration's dominance bound at the same
    // boundary as the sequential engine; workers only read it.
    const bool frozen_valid = frozen_active_ && !result_.improvements.empty();
    const ObjectiveValue frozen_best =
        frozen_valid ? result_.value : worst_objective();
    const ObjectiveValue* frozen = frozen_valid ? &frozen_best : nullptr;

    IterationProgress progress(tasks.size(), budget);
    std::vector<TaskResult> results(tasks.size());
    const std::size_t spawn = std::min(workers_, tasks.size());
    std::vector<std::future<void>> futures;
    futures.reserve(spawn);
    for (std::size_t w = 0; w < spawn; ++w)
      futures.push_back(pool_->submit(
          [this, w, param, frozen, &tasks, &progress, &results] {
            worker_loop(w, param, frozen, tasks, progress, results);
          }));
    std::exception_ptr error;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);

    // Pruning telemetry over every task — including speculative work the
    // canonical merge below discards, like the cache counters.
    for (const TaskResult& t : results) {
      result_.pruned_twins += t.pruned_twins;
      result_.pruned_bound += t.pruned_bound;
    }

    // Canonical merge: accept whole tasks while they fit the remaining
    // budget; cut inside the first one that does not, exactly where the
    // sequential engine's budget would have struck.
    std::size_t remaining = budget;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const TaskResult& t = results[i];
      if (t.deadline_truncated) {
        accept_prefix(t, std::min(t.nodes, remaining));
        result_.deadline_hit = true;
        return false;
      }
      if (t.truncated || t.nodes > remaining) {
        SBS_CHECK_MSG(!t.truncated || t.nodes >= remaining,
                      "subtree cap undercut the sequential budget");
        accept_prefix(t, remaining);
        return false;
      }
      accept_prefix(t, t.nodes);
      remaining -= t.nodes;
    }
    return true;
  }

  void worker_loop(std::size_t w, std::size_t param,
                   const ObjectiveValue* frozen,
                   const std::vector<RootTask>& tasks,
                   IterationProgress& progress,
                   std::vector<TaskResult>& results) {
    // Claim the search's arena epoch on this pool thread. A no-op after
    // the first iteration's claim, so explorer state (whose storage lives
    // in this thread's arena) survives across iterations of one search.
    worker_arena().begin_epoch(arena_epoch_);
    if (!explorers_[w])
      explorers_[w] = std::make_unique<SubtreeExplorer>(
          p_, cfg_, seq_, &twin_prev_, deadline_ptr(), &deadline_flag_);
    SubtreeExplorer& explorer = *explorers_[w];
    for (;;) {
      const std::size_t i = progress.grab();
      if (i >= tasks.size()) break;
      const std::size_t cap = progress.cap_for(i);
      results[i] =
          cfg_.algo == SearchAlgo::Lds
              ? explorer.run_lds(tasks[i].c, tasks[i].disc, param, cap,
                                 &progress, i, frozen)
              : explorer.run_dds(tasks[i].c, param, cap, &progress, i,
                                 frozen);
      progress.record(i, results[i].nodes);
      result_.worker_nodes[w] += results[i].nodes;
    }
  }

  void add_cache_stats(const BuilderCacheStats& cs) {
    result_.cache_hits += cs.hits;
    result_.cache_misses += cs.misses;
    result_.cache_invalidations += cs.invalidations;
  }

  /// Accepts the first `accept` nodes of a task: accounting, then the
  /// incumbent replay over the task's kept chain (canonical order, strict
  /// improvement only — ties keep the earlier incumbent, as sequentially).
  void accept_prefix(const TaskResult& t, std::size_t accept) {
    const std::size_t node_base = result_.nodes_visited;
    const std::size_t path_base = result_.paths_completed;
    std::size_t paths = 0;
    while (paths < t.path_offsets.size() && t.path_offsets[paths] <= accept)
      ++paths;
    result_.nodes_visited += accept;
    result_.paths_completed += paths;
    result_.paths_per_iteration.back() += paths;
    for (const KeptPath& kp : t.kept) {
      if (kp.offset > accept) break;
      if (!cfg_.comparator.less(kp.value, result_.value)) continue;
      result_.value = kp.value;
      result_.order = kp.order;
      result_.starts.assign(n_, 0);
      for (std::size_t d = 0; d < n_; ++d)
        result_.starts[kp.order[d]] = kp.starts[d];
      result_.improvements.push_back(Improvement{
          node_base + kp.offset, path_base + kp.ordinal, kp.value,
          path_discrepancy_count(seq_, kp.order, disc_scratch_)});
    }
  }

  const SearchProblem& p_;
  const SearchConfig cfg_;
  const std::size_t n_;
  const std::vector<std::size_t> seq_;
  const std::size_t workers_;
  const std::uint64_t arena_epoch_;
  std::vector<std::size_t> twin_prev_;
  bool frozen_active_ = false;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
  std::vector<std::unique_ptr<SubtreeExplorer>> explorers_;
  std::vector<char> disc_scratch_;
  SearchResult result_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_at_;
  std::atomic<bool> deadline_flag_{false};
};

}  // namespace

SearchResult run_search(const SearchProblem& problem,
                        const SearchConfig& config, ThreadPool* pool) {
  SBS_CHECK_MSG(problem.size() >= 1, "search over an empty queue");
  SBS_CHECK(config.node_limit >= 1);
  SBS_CHECK_MSG(!(config.prune && config.comparator.weighted_alpha > 0.0),
                "branch-and-bound pruning requires the hierarchical "
                "objective");
  // Inherently sequential configurations (DFS baseline, cross-subtree
  // incumbent pruning, the ordered on_path hook) and trivial trees run the
  // sequential engine regardless of the thread knob; see
  // SearchConfig::threads.
  const bool parallel = config.threads > 0 && config.algo != SearchAlgo::Dfs &&
                        !config.prune && !config.on_path &&
                        problem.size() >= 2;
  // One scheduling decision = one arena epoch: the calling thread's arena
  // resets here, and each parallel worker claims the same epoch on its own
  // thread-local arena before touching explorer state.
  const std::uint64_t epoch = next_arena_epoch();
  worker_arena().begin_epoch(epoch);
  if (!parallel) {
    Engine engine(problem, config);
    return engine.run();
  }
  ParallelEngine engine(problem, config, pool, epoch);
  return engine.run();
}

}  // namespace sbs
