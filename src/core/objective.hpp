#pragma once

#include <span>
#include <string>

#include "sim/scheduler.hpp"

namespace sbs {

/// Hierarchical two-level objective value (paper §2.1): schedule A beats B
/// if A has smaller total excessive wait, or equal excessive wait and lower
/// average bounded slowdown.
struct ObjectiveValue {
  double excess_h = 0.0;   ///< total normalized excessive wait, hours
  double avg_bsld = 0.0;   ///< average bounded slowdown over the queue
};

/// Comparison tolerance — excessive waits that differ by less than a small
/// epsilon are treated as ties so the slowdown level can discriminate.
inline constexpr double kObjectiveEps = 1e-9;

/// True when `a` is strictly better than `b` under the two-level objective.
bool objective_less(const ObjectiveValue& a, const ObjectiveValue& b);

/// Sentinel that loses against every real schedule.
ObjectiveValue worst_objective();

/// Schedule comparator. The paper's §2.1 contrasts the hierarchical
/// objective (alpha == 0, the default everywhere) with a weighted-sum
/// formulation score = alpha * excess_h + avg_bsld, which requires picking
/// a weight; we implement both so the design choice is benchmarkable
/// (bench_ablation_objective).
struct ObjectiveComparator {
  double weighted_alpha = 0.0;  ///< 0 = hierarchical; > 0 = weighted sum

  bool less(const ObjectiveValue& a, const ObjectiveValue& b) const {
    if (weighted_alpha <= 0.0) return objective_less(a, b);
    const double sa = weighted_alpha * a.excess_h + a.avg_bsld;
    const double sb = weighted_alpha * b.excess_h + b.avg_bsld;
    return sa < sb - kObjectiveEps;
  }
};

/// Target wait bound used by the first objective level (paper §2.1, §5).
enum class BoundKind {
  Fixed,      ///< constant ω
  Dynamic,    ///< "dynB": wait of the currently longest-waiting queued job
  PerRuntime, ///< ω(T) = clamp(base + factor * estimate, lo, hi) — the
              ///  paper's suggested future-work extension (§6.1)
};

struct BoundSpec {
  BoundKind kind = BoundKind::Dynamic;
  Time fixed = 100 * kHour;  ///< ω for Fixed

  // PerRuntime parameters.
  Time pr_base = 4 * kHour;
  double pr_factor = 5.0;
  Time pr_lo = kHour;
  Time pr_hi = 300 * kHour;

  static BoundSpec fixed_bound(Time omega);
  static BoundSpec dynamic_bound();
  static BoundSpec per_runtime(Time base, double factor, Time lo, Time hi);

  /// Per-job bound given the job's runtime estimate and the queue-level
  /// dynamic bound (max current wait, precomputed per decision point).
  Time resolve(Time estimate, Time dyn) const;

  /// Short display name: "dynB", "w=100h", or "w(T)".
  std::string label() const;
};

/// The dynB threshold at a decision point: the largest current wait among
/// queued jobs (0 for an empty queue).
Time dynamic_bound_of(std::span<const WaitingJob> waiting, Time now);

}  // namespace sbs
