#include "core/tree_size.hpp"

namespace sbs {

TreeSize search_tree_size(std::size_t n) {
  TreeSize t;
  if (n == 0) return t;
  // Walk depth 1..n accumulating the falling factorial n * (n-1) * ...
  double level = 1.0;
  for (std::size_t d = 1; d <= n; ++d) {
    level *= static_cast<double>(n - d + 1);
    t.nodes += level;
  }
  t.paths = level;  // depth-n level size is exactly n!
  return t;
}

}  // namespace sbs
