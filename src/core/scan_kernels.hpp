#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>

namespace sbs::kernels {

// Portable SIMD kernels for the earliest-start hot path: find-first scans
// and range updates over the schedule builder's dense free-node array.
//
// The vector forms use GCC/Clang vector extensions (8 x int32 = 256-bit
// lanes, lowered to whatever the target ISA provides — two SSE2 ops on
// baseline x86-64, one AVX2 op with -mavx2, NEON pairs on aarch64) with a
// scalar tail for the trailing < 8 elements. No intrinsics headers, no
// extra dependencies; on compilers without the extension every kernel
// falls back to its scalar reference.
//
// TESTING CONTRACT: each kernel has an always-compiled *_scalar reference
// with the same signature. The vector form must return bit-identical
// results for every input — tests/test_search_simd.cpp proves it on random
// arrays and the differential matrix proves it end to end (the scalar
// reference is what `--search-simd=off` runs in production).

#if (defined(__GNUC__) || defined(__clang__)) && !defined(SBS_NO_SIMD)
#define SBS_SIMD_KERNELS 1
#else
#define SBS_SIMD_KERNELS 0
#endif

/// True when the vector forms actually vectorize on this build (otherwise
/// they alias the scalar references and the `simd` knob is a no-op).
constexpr bool simd_compiled() { return SBS_SIMD_KERNELS != 0; }

/// First index in [lo, hi) with v[i] < x; hi when none.
inline std::size_t first_lt_scalar(const int* v, std::size_t lo,
                                   std::size_t hi, int x) {
  for (std::size_t i = lo; i < hi; ++i)
    if (v[i] < x) return i;
  return hi;
}

/// First index in [lo, hi) with v[i] >= x; hi when none.
inline std::size_t first_ge_scalar(const int* v, std::size_t lo,
                                   std::size_t hi, int x) {
  for (std::size_t i = lo; i < hi; ++i)
    if (v[i] >= x) return i;
  return hi;
}

/// Minimum of v[lo..hi); INT_MAX on an empty range.
inline int range_min_scalar(const int* v, std::size_t lo, std::size_t hi) {
  int m = std::numeric_limits<int>::max();
  for (std::size_t i = lo; i < hi; ++i)
    if (v[i] < m) m = v[i];
  return m;
}

/// v[i] -= x over [lo, hi).
inline void range_sub_scalar(int* v, std::size_t lo, std::size_t hi, int x) {
  for (std::size_t i = lo; i < hi; ++i) v[i] -= x;
}

/// v[i] += x over [lo, hi).
inline void range_add_scalar(int* v, std::size_t lo, std::size_t hi, int x) {
  for (std::size_t i = lo; i < hi; ++i) v[i] += x;
}

#if SBS_SIMD_KERNELS

// Out-of-line (scan_kernels.cpp): the vector forms are real functions, not
// header inlines, for two reasons. The loops test a whole block of lanes
// with one reduction instead of round-tripping a mask through memory every
// 8 elements, and the definitions carry target_clones (where the
// toolchain supports it) so the loader picks an AVX2 body on hardware
// that has it while the shipped binary stays baseline-x86-64 portable.
// The call overhead is noise against the scans they exist for.
std::size_t first_lt(const int* v, std::size_t lo, std::size_t hi, int x);
std::size_t first_ge(const int* v, std::size_t lo, std::size_t hi, int x);
int range_min(const int* v, std::size_t lo, std::size_t hi);
void range_sub(int* v, std::size_t lo, std::size_t hi, int x);
void range_add(int* v, std::size_t lo, std::size_t hi, int x);

#else  // !SBS_SIMD_KERNELS

inline std::size_t first_lt(const int* v, std::size_t lo, std::size_t hi,
                            int x) {
  return first_lt_scalar(v, lo, hi, x);
}
inline std::size_t first_ge(const int* v, std::size_t lo, std::size_t hi,
                            int x) {
  return first_ge_scalar(v, lo, hi, x);
}
inline int range_min(const int* v, std::size_t lo, std::size_t hi) {
  return range_min_scalar(v, lo, hi);
}
inline void range_sub(int* v, std::size_t lo, std::size_t hi, int x) {
  range_sub_scalar(v, lo, hi, x);
}
inline void range_add(int* v, std::size_t lo, std::size_t hi, int x) {
  range_add_scalar(v, lo, hi, x);
}

#endif  // SBS_SIMD_KERNELS

}  // namespace sbs::kernels
