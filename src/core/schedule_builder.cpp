#include "core/schedule_builder.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sbs {

BuiltSchedule build_schedule(const SearchProblem& problem,
                             std::span<const std::size_t> order) {
  SBS_CHECK_MSG(order.size() == problem.size(),
                "order must cover every waiting job");
  BuiltSchedule out;
  out.starts.assign(problem.size(), 0);
  std::vector<char> seen(problem.size(), 0);

  ResourceProfile profile = problem.base;
  double excess = 0.0;
  double bsld_sum = 0.0;
  for (std::size_t i : order) {
    SBS_CHECK_MSG(i < problem.size() && !seen[i], "order is not a permutation");
    seen[i] = 1;
    const SearchJob& s = problem.jobs[i];
    const Time t = profile.earliest_start(problem.now, s.nodes, s.estimate);
    profile.reserve(t, s.nodes, s.estimate);
    out.starts[i] = t;
    excess += problem.excess_h(i, t);
    bsld_sum += problem.bsld(i, t);
  }
  out.value.excess_h = excess;
  out.value.avg_bsld =
      problem.size() ? bsld_sum / static_cast<double>(problem.size()) : 0.0;
  return out;
}

}  // namespace sbs
