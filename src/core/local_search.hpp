#pragma once

#include <cstdint>

#include "core/schedule_builder.hpp"
#include "core/search.hpp"

namespace sbs {

/// Local-search refinement of a complete schedule — the paper's first
/// future-work item ("combining complete search algorithms with local
/// search, to possibly improve the solution", citing Crawford's
/// systematic+local hybrid). Starting from a seed ordering (typically the
/// best path the discrepancy search found), we repeatedly propose swap and
/// reinsertion moves on the consideration order, rebuild the schedule, and
/// accept strict improvements under the same hierarchical objective
/// (first-improvement hill climbing with an optional random-restart kick).
struct LocalSearchConfig {
  /// Maximum schedule rebuilds (each costs one pass of list scheduling);
  /// this is the local-search analogue of the tree-search node budget.
  std::size_t max_evaluations = 200;
  /// Neighborhood: adjacent swaps are always tried; when true, random
  /// (i, j) reinsertions are mixed in, which escapes plateaus the
  /// adjacent-swap neighborhood cannot.
  bool use_reinsertion = true;
  /// Seed for the move proposal stream (deterministic given the seed).
  std::uint64_t seed = 1;
};

struct LocalSearchResult {
  std::vector<std::size_t> order;
  std::vector<Time> starts;
  ObjectiveValue value;
  std::size_t evaluations = 0;  ///< schedule rebuilds performed
  std::size_t improvements = 0; ///< accepted moves
};

/// Refines `seed_order` (a permutation of the problem's jobs). Never
/// returns a worse schedule than the seed.
LocalSearchResult local_search(const SearchProblem& problem,
                               std::span<const std::size_t> seed_order,
                               const LocalSearchConfig& config = {});

/// Convenience: run the discrepancy search, then refine its best path.
/// The combined budget mirrors the paper's setup: L tree nodes plus
/// `config.max_evaluations` local rebuilds.
LocalSearchResult search_then_refine(const SearchProblem& problem,
                                     const SearchConfig& search_config,
                                     const LocalSearchConfig& config = {});

}  // namespace sbs
