#include "core/search_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "obs/json.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace sbs {

SearchScheduler::SearchScheduler(SearchSchedulerConfig config)
    : config_(std::move(config)), fairshare_(config_.fairshare_config) {}

SearchScheduler::~SearchScheduler() = default;

std::vector<int> SearchScheduler::select_jobs(const SchedulerState& state) {
  ++stats_.decisions;
  stats_.max_queue_depth =
      std::max<std::uint64_t>(stats_.max_queue_depth, state.waiting.size());
  if (collect_detail_) detail_ = {};
  std::vector<int> started;
  if (state.waiting.empty()) return started;

  // Fast path: when no queued job fits the free nodes, no ordering can
  // start anything now, so the (expensive) search is skipped. This is a
  // pure optimization — the chosen schedule is unaffected because only
  // start-now placements are dispatched.
  const bool any_fits =
      std::any_of(state.waiting.begin(), state.waiting.end(),
                  [&](const WaitingJob& w) {
                    return w.job->nodes <= state.free_nodes;
                  });
  if (!any_fits) return started;

  const auto t0 = std::chrono::steady_clock::now();
  SearchProblem problem = SearchProblem::from_state(state, config_.bound);
  // Every queued job may be parked (wider than a fault-degraded machine):
  // nothing to search over, nothing to start.
  if (problem.size() == 0) return started;
  if (config_.fairshare) {
    for (SearchJob& s : problem.jobs)
      s.bound = fairshare_.adjust_bound(s.bound, s.job->user, state.now);
  }
  if (config_.search.threads > 0 && !pool_)
    pool_ = std::make_unique<ThreadPool>(config_.search.threads);

  // Warm start: re-resolve the previous decision's best order (job ids)
  // against this queue. Survivors keep their relative order; jobs that
  // started or completed drop out; arrivals are appended in heuristic
  // order, so the warm path is a complete permutation of the new problem.
  // With no survivor the warm path would be exactly the iteration-0
  // heuristic path — skip it rather than report a meaningless warm start.
  SearchConfig search_cfg = config_.search;
  std::vector<std::size_t> warm;
  if (config_.warm_start && !warm_ids_.empty() && problem.size() >= 2) {
    std::unordered_map<int, std::size_t> index;
    index.reserve(problem.size());
    for (std::size_t i = 0; i < problem.size(); ++i)
      index.emplace(problem.jobs[i].job->id, i);
    warm.reserve(problem.size());
    std::vector<char> taken(problem.size(), 0);
    for (int id : warm_ids_) {
      const auto it = index.find(id);
      if (it == index.end()) continue;
      warm.push_back(it->second);
      taken[it->second] = 1;
    }
    if (!warm.empty()) {
      for (std::size_t j : branching_order(problem, search_cfg.branching))
        if (!taken[j]) warm.push_back(j);
      search_cfg.warm_order = &warm;
    }
  }

  const SearchResult result = run_search(problem, search_cfg, pool_.get());
  stats_.nodes_visited += result.nodes_visited;
  stats_.paths_explored += result.paths_completed;
  if (result.deadline_hit) ++stats_.deadline_hits;
  stats_.cache_hits += result.cache_hits;
  stats_.cache_misses += result.cache_misses;
  stats_.cache_invalidations += result.cache_invalidations;
  if (result.warm_start_used) ++stats_.warm_starts;
  stats_.pruned_twins += result.pruned_twins;
  stats_.pruned_bound += result.pruned_bound;
  if (config_.warm_start) {
    warm_ids_.clear();
    warm_ids_.reserve(result.order.size());
    for (std::size_t j : result.order)
      warm_ids_.push_back(problem.jobs[j].job->id);
  }
  if (collect_detail_) {
    detail_.iterations = result.iterations_started;
    detail_.improvements.reserve(result.improvements.size());
    for (const Improvement& imp : result.improvements)
      detail_.improvements.push_back(obs::ImprovementPoint{
          imp.nodes, imp.value.excess_h, imp.value.avg_bsld,
          imp.discrepancies});
    if (!result.improvements.empty())
      detail_.discrepancies = static_cast<std::int64_t>(
          result.improvements.back().discrepancies);
    detail_.threads_used = result.threads_used;
    detail_.worker_nodes.assign(result.worker_nodes.begin(),
                                result.worker_nodes.end());
  }

  std::span<const Time> starts = result.starts;
  LocalSearchResult refined;
  if (config_.refine) {
    refined = local_search(problem, result.order, config_.local);
    stats_.paths_explored += refined.evaluations;
    starts = refined.starts;
  }

  for (std::size_t i = 0; i < problem.size(); ++i) {
    if (starts[i] != state.now) continue;
    started.push_back(problem.jobs[i].job->id);
    if (config_.fairshare)
      fairshare_.charge(*problem.jobs[i].job, problem.jobs[i].estimate,
                        state.now);
  }
  const auto think_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  stats_.think_time_us += think_us;
  stats_.max_think_time_us = std::max(stats_.max_think_time_us, think_us);
  return started;
}

std::string SearchScheduler::save_state() const {
  obs::JsonWriter w;
  w.begin_object();
  w.field("kind", "search");
  append_stats_json(w, "stats", stats_);
  w.key("warm_ids").begin_array();
  for (const int id : warm_ids_) w.value(id);
  w.end_array();
  w.key("fairshare").begin_array();
  for (const FairShareTracker::AccountEntry& a : fairshare_.export_accounts()) {
    w.begin_object()
        .field("user", a.user)
        .field("usage", a.usage)
        .field("updated", static_cast<std::int64_t>(a.updated))
        .end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void SearchScheduler::restore_state(std::string_view state) {
  const obs::JsonValue v = obs::parse_json(state);
  SBS_CHECK_MSG(v.is_object(), "search scheduler state is not a JSON object");
  const obs::JsonValue* kind = v.find("kind");
  SBS_CHECK_MSG(kind != nullptr && kind->as_string() == "search",
                "state is not a search-scheduler snapshot");
  const obs::JsonValue* stats = v.find("stats");
  SBS_CHECK_MSG(stats != nullptr, "search scheduler state lacks stats");
  stats_ = stats_from_json(*stats);
  const obs::JsonValue* warm = v.find("warm_ids");
  SBS_CHECK_MSG(warm != nullptr && warm->is_array(),
                "search scheduler state lacks warm_ids");
  warm_ids_.clear();
  for (const obs::JsonValue& id : warm->array)
    warm_ids_.push_back(static_cast<int>(id.as_int()));
  const obs::JsonValue* fs = v.find("fairshare");
  SBS_CHECK_MSG(fs != nullptr && fs->is_array(),
                "search scheduler state lacks fairshare ledger");
  std::vector<FairShareTracker::AccountEntry> accounts;
  for (const obs::JsonValue& row : fs->array) {
    SBS_CHECK_MSG(row.is_object(), "malformed fairshare ledger row");
    FairShareTracker::AccountEntry a;
    const obs::JsonValue* user = row.find("user");
    const obs::JsonValue* usage = row.find("usage");
    const obs::JsonValue* updated = row.find("updated");
    SBS_CHECK_MSG(user && usage && updated, "malformed fairshare ledger row");
    a.user = static_cast<int>(user->as_int());
    a.usage = usage->as_double();
    a.updated = static_cast<Time>(updated->as_int());
    accounts.push_back(a);
  }
  fairshare_.import_accounts(accounts);
}

std::string SearchScheduler::name() const {
  std::string n = algo_name(config_.search.algo) + "/" +
                  branching_name(config_.search.branching) + "/" +
                  config_.bound.label();
  if (config_.refine) n += "+ls";
  if (config_.fairshare) n += "+fs";
  return n;
}

}  // namespace sbs
