#include "core/objective.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/table.hpp"

namespace sbs {

bool objective_less(const ObjectiveValue& a, const ObjectiveValue& b) {
  if (a.excess_h < b.excess_h - kObjectiveEps) return true;
  if (a.excess_h > b.excess_h + kObjectiveEps) return false;
  return a.avg_bsld < b.avg_bsld - kObjectiveEps;
}

ObjectiveValue worst_objective() {
  return ObjectiveValue{std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::infinity()};
}

BoundSpec BoundSpec::fixed_bound(Time omega) {
  SBS_CHECK(omega >= 0);
  BoundSpec b;
  b.kind = BoundKind::Fixed;
  b.fixed = omega;
  return b;
}

BoundSpec BoundSpec::dynamic_bound() {
  BoundSpec b;
  b.kind = BoundKind::Dynamic;
  return b;
}

BoundSpec BoundSpec::per_runtime(Time base, double factor, Time lo, Time hi) {
  SBS_CHECK(lo >= 0 && hi >= lo && factor >= 0.0);
  BoundSpec b;
  b.kind = BoundKind::PerRuntime;
  b.pr_base = base;
  b.pr_factor = factor;
  b.pr_lo = lo;
  b.pr_hi = hi;
  return b;
}

Time BoundSpec::resolve(Time estimate, Time dyn) const {
  switch (kind) {
    case BoundKind::Fixed:
      return fixed;
    case BoundKind::Dynamic:
      return dyn;
    case BoundKind::PerRuntime: {
      const Time raw =
          pr_base + static_cast<Time>(pr_factor * static_cast<double>(estimate));
      return std::clamp(raw, pr_lo, pr_hi);
    }
  }
  throw Error("unknown bound kind");
}

std::string BoundSpec::label() const {
  switch (kind) {
    case BoundKind::Fixed:
      return "w=" + format_double(to_hours(fixed), 0) + "h";
    case BoundKind::Dynamic:
      return "dynB";
    case BoundKind::PerRuntime:
      return "w(T)";
  }
  throw Error("unknown bound kind");
}

Time dynamic_bound_of(std::span<const WaitingJob> waiting, Time now) {
  Time bound = 0;
  for (const auto& w : waiting)
    bound = std::max(bound, now - w.job->submit);
  return bound;
}

}  // namespace sbs
