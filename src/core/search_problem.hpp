#pragma once

#include <vector>

#include "cluster/resource_profile.hpp"
#include "core/objective.hpp"
#include "sim/scheduler.hpp"

namespace sbs {

/// One waiting job inside a search problem, with everything the objective
/// and the branching heuristics need precomputed for the decision point.
struct SearchJob {
  const Job* job = nullptr;
  int nodes = 0;
  Time estimate = 0;      ///< planning runtime (>= 1s), R* = T or R
  Time submit = 0;
  Time bound = 0;         ///< resolved target wait bound for this job
  double slowdown_now = 0.0;  ///< current bounded slowdown (lxf branching key)
};

/// Immutable snapshot of one scheduling decision point: the availability
/// profile implied by the running jobs plus the queued jobs annotated with
/// their objective parameters. The search engine explores orderings of
/// `jobs`; the schedule builder assigns start times against `base`.
struct SearchProblem {
  Time now = 0;
  int capacity = 0;
  ResourceProfile base{1, 0};
  std::vector<SearchJob> jobs;

  /// Builds the snapshot from a simulator state. The dynB threshold is
  /// evaluated here, once per decision point, as the paper specifies.
  /// Waiting jobs wider than state.capacity are excluded (parked): on a
  /// fault-degraded machine they have no feasible placement, so the
  /// problem may be smaller than the queue — or empty.
  static SearchProblem from_state(const SchedulerState& state,
                                  const BoundSpec& bound);

  std::size_t size() const { return jobs.size(); }

  /// Sentinel for twin_prev(): the job has no earlier twin.
  static constexpr std::size_t kNoTwin = static_cast<std::size_t>(-1);

  /// For each job, the index of its nearest earlier twin — a job with
  /// identical (nodes, estimate, submit, bound, user) and the next-smaller
  /// id — or kNoTwin. Twins are interchangeable everywhere the search can
  /// see: they contribute identical objective terms at any start time, and
  /// both branching orders rank them by ascending id. The dominance layer
  /// (SearchConfig::dominance) therefore explores only the canonical
  /// placement order — a job whose earlier twin is still waiting is
  /// skipped, since the resulting schedule is a value-identical
  /// permutation of one the canonical subtree contains.
  std::vector<std::size_t> twin_prev() const;

  /// First-level contribution of starting job i at `start`: wait time in
  /// excess of the job's bound, in hours.
  double excess_h(std::size_t i, Time start) const;

  /// Second-level contribution: bounded slowdown (1-minute floor) of job i
  /// when started at `start`, using the planning estimate as runtime.
  double bsld(std::size_t i, Time start) const;
};

}  // namespace sbs
