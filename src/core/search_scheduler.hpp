#pragma once

#include <memory>

#include "core/fairshare.hpp"
#include "core/local_search.hpp"
#include "core/search.hpp"
#include "sim/scheduler.hpp"

namespace sbs {

class ThreadPool;

/// The paper's goal-oriented policies (§2.3): at every scheduling event,
/// build a SearchProblem from the queue, run the configured discrepancy
/// search under the node budget, and start exactly the jobs the best found
/// schedule places at the current time. Nothing is persisted between
/// events — the search re-plans from scratch, as the paper's simulator
/// does.
struct SearchSchedulerConfig {
  SearchConfig search;
  BoundSpec bound = BoundSpec::dynamic_bound();
  /// Cross-event warm start (default off, preserving the paper's
  /// re-plan-from-scratch semantics): carry the previous decision's best
  /// consideration order — as job ids, re-resolved against the new queue —
  /// into the next search as its initial incumbent. Jobs that started or
  /// left drop out; new arrivals are appended in heuristic order. The
  /// search result is never worse than a cold start under the same budgets
  /// (see SearchConfig::warm_order).
  bool warm_start = false;
  /// Hybrid mode (paper future work): refine the best tree-search path
  /// with local search before dispatching.
  bool refine = false;
  LocalSearchConfig local;
  /// Fair-share mode (paper future work): scale each job's target wait
  /// bound by its user's decayed-usage share, so the first objective
  /// level evens service across users.
  bool fairshare = false;
  FairShareConfig fairshare_config;
};

class SearchScheduler final : public Scheduler {
 public:
  explicit SearchScheduler(SearchSchedulerConfig config);
  ~SearchScheduler() override;  // out of line: ThreadPool is incomplete here

  std::vector<int> select_jobs(const SchedulerState& state) override;

  /// Canonical policy name, e.g. "DDS/lxf/dynB" or "LDS/fcfs/w=100h".
  std::string name() const override;

  SchedulerStats stats() const override { return stats_; }

  void set_collect_decision_detail(bool on) override {
    collect_detail_ = on;
    if (!on) detail_ = {};
  }
  const DecisionDetail* last_decision() const override {
    return collect_detail_ ? &detail_ : nullptr;
  }

  const SearchSchedulerConfig& config() const { return config_; }

  /// Fair-share ledger (empty unless fairshare mode is on).
  const FairShareTracker& fairshare_tracker() const { return fairshare_; }

  /// Checkpoint support: cumulative stats, the warm-start order carried
  /// across events, and the fair-share ledger. The thread pool and memo
  /// caches are NOT state — the pool is rebuilt lazily and the caches are
  /// per-decision — so a restored scheduler decides bit-identically.
  std::string save_state() const override;
  void restore_state(std::string_view state) override;

 private:
  SearchSchedulerConfig config_;
  SchedulerStats stats_;
  FairShareTracker fairshare_;
  /// Persistent worker pool for SearchConfig::threads > 0, created lazily
  /// at the first decision so thread start-up is paid once per run, not
  /// once per scheduling event.
  std::unique_ptr<ThreadPool> pool_;
  /// Previous decision's best consideration order, as job ids (warm-start
  /// mode). Ids, not indices: the queue composition changes between
  /// events, so the order is re-resolved against each new problem.
  std::vector<int> warm_ids_;
  bool collect_detail_ = false;
  DecisionDetail detail_;
};

}  // namespace sbs
