#include "core/fairshare.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sbs {

FairShareTracker::FairShareTracker(FairShareConfig config) : config_(config) {
  SBS_CHECK(config_.half_life > 0);
  SBS_CHECK(config_.max_scale >= 1.0);
}

double FairShareTracker::decayed(const Account& account, Time now) const {
  const double dt = static_cast<double>(now - account.updated);
  if (dt <= 0.0) return account.usage;
  return account.usage *
         std::exp2(-dt / static_cast<double>(config_.half_life));
}

void FairShareTracker::charge(const Job& job, Time estimate, Time now) {
  Account& account = ledger_[job.user];
  account.usage = decayed(account, now) +
                  static_cast<double>(job.nodes) *
                      static_cast<double>(std::max<Time>(estimate, 1));
  account.updated = now;
}

double FairShareTracker::usage(int user, Time now) const {
  auto it = ledger_.find(user);
  return it == ledger_.end() ? 0.0 : decayed(it->second, now);
}

double FairShareTracker::total_usage(Time now) const {
  double total = 0.0;
  for (const auto& [user, account] : ledger_) total += decayed(account, now);
  return total;
}

double FairShareTracker::share_ratio(int user, Time now) const {
  if (ledger_.empty()) return 1.0;
  const double total = total_usage(now);
  if (total <= 0.0) return 1.0;
  const double fair = total / static_cast<double>(ledger_.size());
  if (fair <= 0.0) return 1.0;
  return usage(user, now) / fair;
}

std::vector<FairShareTracker::AccountEntry> FairShareTracker::export_accounts()
    const {
  std::vector<AccountEntry> out;
  out.reserve(ledger_.size());
  for (const auto& [user, account] : ledger_)
    out.push_back({user, account.usage, account.updated});
  std::sort(out.begin(), out.end(),
            [](const AccountEntry& a, const AccountEntry& b) {
              return a.user < b.user;
            });
  return out;
}

void FairShareTracker::import_accounts(
    const std::vector<AccountEntry>& accounts) {
  ledger_.clear();
  for (const AccountEntry& a : accounts)
    ledger_[a.user] = Account{a.usage, a.updated};
}

Time FairShareTracker::adjust_bound(Time base_bound, int user, Time now) const {
  const double ratio =
      std::clamp(share_ratio(user, now), 1.0 / config_.max_scale, 1.0);
  return static_cast<Time>(
      std::llround(static_cast<double>(base_bound) * ratio));
}

}  // namespace sbs
