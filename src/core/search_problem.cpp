#include "core/search_problem.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sbs {

SearchProblem SearchProblem::from_state(const SchedulerState& state,
                                        const BoundSpec& bound) {
  SearchProblem p;
  p.now = state.now;
  p.capacity = state.capacity;
  p.base = profile_from_running(state.capacity, state.now, state.running);
  p.jobs.reserve(state.waiting.size());
  const Time dyn = dynamic_bound_of(state.waiting, state.now);
  for (const auto& w : state.waiting) {
    // Jobs wider than the current (possibly fault-degraded) machine have
    // no feasible placement in the profile; they park outside the search.
    if (w.job->nodes > state.capacity) continue;
    SearchJob s;
    s.job = w.job;
    s.nodes = w.job->nodes;
    s.estimate = std::max<Time>(w.estimate, 1);
    s.submit = w.job->submit;
    s.bound = bound.resolve(s.estimate, dyn);
    const double est =
        static_cast<double>(std::max<Time>(s.estimate, kMinute));
    s.slowdown_now =
        (static_cast<double>(state.now - s.submit) + est) / est;
    p.jobs.push_back(s);
  }
  return p;
}

double SearchProblem::excess_h(std::size_t i, Time start) const {
  const SearchJob& s = jobs[i];
  const Time wait = start - s.submit;
  return wait > s.bound ? to_hours(wait - s.bound) : 0.0;
}

double SearchProblem::bsld(std::size_t i, Time start) const {
  const SearchJob& s = jobs[i];
  const double est = static_cast<double>(std::max<Time>(s.estimate, kMinute));
  const double wait = static_cast<double>(start - s.submit);
  return std::max(1.0, (wait + est) / est);
}

}  // namespace sbs
