#include "core/search_problem.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

#include "util/error.hpp"

namespace sbs {

SearchProblem SearchProblem::from_state(const SchedulerState& state,
                                        const BoundSpec& bound) {
  SearchProblem p;
  p.now = state.now;
  p.capacity = state.capacity;
  p.base = profile_from_running(state.capacity, state.now, state.running);
  p.jobs.reserve(state.waiting.size());
  const Time dyn = dynamic_bound_of(state.waiting, state.now);
  for (const auto& w : state.waiting) {
    // Jobs wider than the current (possibly fault-degraded) machine have
    // no feasible placement in the profile; they park outside the search.
    if (w.job->nodes > state.capacity) continue;
    SearchJob s;
    s.job = w.job;
    s.nodes = w.job->nodes;
    s.estimate = std::max<Time>(w.estimate, 1);
    s.submit = w.job->submit;
    s.bound = bound.resolve(s.estimate, dyn);
    const double est =
        static_cast<double>(std::max<Time>(s.estimate, kMinute));
    s.slowdown_now =
        (static_cast<double>(state.now - s.submit) + est) / est;
    p.jobs.push_back(s);
  }
  return p;
}

std::vector<std::size_t> SearchProblem::twin_prev() const {
  std::vector<std::size_t> prev(jobs.size(), kNoTwin);
  std::vector<std::size_t> idx(jobs.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  const auto key = [this](std::size_t i) {
    const SearchJob& s = jobs[i];
    return std::make_tuple(s.nodes, s.estimate, s.submit, s.bound,
                           s.job->user, s.job->id);
  };
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return key(a) < key(b); });
  for (std::size_t i = 1; i < idx.size(); ++i) {
    const SearchJob& a = jobs[idx[i - 1]];
    const SearchJob& b = jobs[idx[i]];
    if (a.nodes == b.nodes && a.estimate == b.estimate &&
        a.submit == b.submit && a.bound == b.bound &&
        a.job->user == b.job->user)
      prev[idx[i]] = idx[i - 1];
  }
  return prev;
}

double SearchProblem::excess_h(std::size_t i, Time start) const {
  const SearchJob& s = jobs[i];
  const Time wait = start - s.submit;
  return wait > s.bound ? to_hours(wait - s.bound) : 0.0;
}

double SearchProblem::bsld(std::size_t i, Time start) const {
  const SearchJob& s = jobs[i];
  const double est = static_cast<double>(std::max<Time>(s.estimate, kMinute));
  const double wait = static_cast<double>(start - s.submit);
  return std::max(1.0, (wait + est) / est);
}

}  // namespace sbs
