#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/search_problem.hpp"

namespace sbs {

class ThreadPool;

/// Complete anytime search algorithms (paper §2.2, plus the DFS baseline
/// that motivates discrepancy search).
enum class SearchAlgo {
  Lds,  ///< limited discrepancy search: iteration k explores the paths with
        ///  exactly k discrepancies, k = 0, 1, ...
  Dds,  ///< depth-bounded discrepancy search: iteration i explores paths
        ///  with any branches above depth i, a mandatory discrepancy at
        ///  depth i, and heuristic-only branches below
  Dfs,  ///< chronological depth-first enumeration (left to right). The
        ///  classic baseline: it revises the DEEPEST decisions first, so a
        ///  wrong heuristic choice at the root is corrected last — exactly
        ///  what LDS/DDS exist to avoid. Included for the comparison.
};

/// Branching heuristics ordering the children of every tree node.
enum class Branching {
  Fcfs,  ///< arrival order (submit time, ties by id)
  Lxf,   ///< largest current bounded slowdown first, evaluated at the
         ///  decision point (static per search, as the slowdown ranking is)
};

std::string algo_name(SearchAlgo algo);
std::string branching_name(Branching branching);

/// Heuristic (leftmost-first) job order over the problem, as a permutation
/// of [0, problem.size()). Both orders are strict total orders — Fcfs by
/// (submit, id), Lxf by (slowdown desc, submit, id) — so the sequence, and
/// with it every search tree, is independent of the jobs' input order and
/// of sort-algorithm stability. That invariance is what makes the parallel
/// engine's canonical merge (and cross-thread determinism) possible.
std::vector<std::size_t> branching_order(const SearchProblem& problem,
                                         Branching branching);

struct SearchConfig {
  SearchAlgo algo = SearchAlgo::Dds;
  Branching branching = Branching::Lxf;
  /// Maximum tree nodes (job placements) visited per decision point. The
  /// 0th iteration — the pure-heuristic path — always completes even if it
  /// alone exceeds the limit, so a schedule is always produced.
  std::size_t node_limit = 1000;
  /// Wall-clock decision deadline in milliseconds; negative = disabled.
  /// Production resource managers must answer within a time budget, not a
  /// node budget: once the deadline passes, the search stops expanding and
  /// returns the best schedule found so far. The same anytime guarantee as
  /// node_limit applies — the pure-heuristic path is exempt, so even a
  /// 0 ms deadline yields a complete schedule.
  double deadline_ms = -1.0;
  /// Worker threads for the root-split parallel engine; 0 = the sequential
  /// engine, preserving today's behavior exactly. Any value >= 1 explores
  /// each iteration's root-level subtrees concurrently and merges them in
  /// canonical order, so the result — schedule, objective, anytime profile
  /// and node accounting — is identical for every thread count, and
  /// identical to threads == 0 (see docs/architecture.md). Configurations
  /// that are inherently sequential fall back to the sequential engine:
  /// the DFS baseline, branch-and-bound pruning (the incumbent bound is
  /// exploration-order dependent) and the on_path hook (its contract is
  /// every path in sequential exploration order).
  std::size_t threads = 0;
  /// Incremental schedule-building state (the default): a single undo-log
  /// ResourceProfile plus a per-node earliest-start memo keyed on
  /// (job, profile version), instead of one profile copy per tree level.
  /// Proven bit-identical to the naive builder by the differential suite
  /// (tests/test_search_incremental.cpp); `false` is the escape hatch
  /// (`sbsched --search-cache off`) and the differential baseline.
  bool cache = true;
  /// Vectorized earliest-start kernels inside the cached schedule builder
  /// (core/scan_kernels.hpp): find-first scans and range updates over the
  /// free-node array, 8 int lanes at a time with a scalar tail. The
  /// integer arithmetic is exact, so the answers are bit-identical to the
  /// scalar reference, which stays compiled and is selected by `false`
  /// (`sbsched --search-simd=off`) — and is what compilers without vector
  /// extensions run either way. No effect in naive (cache = false) mode.
  bool simd = true;
  /// Dominance/symmetry pruning (`sbsched --search-prune=off` disables):
  ///
  ///  - twin skip: jobs with identical (nodes, estimate, submit, bound,
  ///    user) — job-array twins — are interchangeable, so only the
  ///    canonical (ascending-id) placement order is explored; a branch
  ///    placing a twin whose earlier sibling still waits is skipped.
  ///
  ///  - frozen-bound cut: within an iteration, a partial path whose
  ///    admissible objective lower bound cannot beat the incumbent AS OF
  ///    THE ITERATION'S START is cut. Freezing the bound per iteration
  ///    makes the cut independent of discovery order inside the
  ///    iteration, so it is thread-count invariant and stays parallel —
  ///    unlike `prune` below, whose live incumbent forces the sequential
  ///    engine. Inactive under the weighted comparator (weighted_alpha >
  ///    0), which admits no such bound.
  ///
  /// Neither cut can remove a strictly-improving completion, so the best
  /// objective at any equal node budget is never worse, and at exhaustion
  /// it is identical (tests/test_fuzz_invariants.cpp proves both). Cut
  /// counts surface as SearchResult::pruned_twins / pruned_bound.
  bool dominance = true;
  /// Optional cross-event warm start: the previous decision point's best
  /// consideration order, re-validated against this problem and — when it
  /// is still a permutation of the queue — list-scheduled as the initial
  /// incumbent before iteration 0. The warm path costs no tree nodes and
  /// does not count as a completed path; it only seeds the incumbent, so
  /// the returned schedule is never worse than the cold search under the
  /// same budgets, and identical whenever the search runs to exhaustion.
  /// Invalidated orders (arrivals/completions changed the queue) fall back
  /// to a cold start silently. The pointee must outlive the search.
  const std::vector<std::size_t>* warm_order = nullptr;
  /// Branch-and-bound extension (paper future work): prune a partial path
  /// whose objective lower bound is already no better than the incumbent.
  /// Only valid with the hierarchical comparator (weighted_alpha == 0).
  bool prune = false;
  /// Schedule comparator; keep the default for the paper's hierarchical
  /// objective, set weighted_alpha > 0 for the weighted-sum alternative.
  ObjectiveComparator comparator;
  /// Test/analysis hook: called with the consideration order and value of
  /// every completed path, in exploration order. Leave empty in production
  /// runs.
  std::function<void(std::span<const std::size_t>, const ObjectiveValue&)>
      on_path;
};

/// One incumbent improvement during a search: after `nodes` placements
/// the best-known schedule value became `value`. The sequence of these is
/// the search's ANYTIME PROFILE — how solution quality buys into the node
/// budget, the curve that justifies choosing DDS over LDS over DFS.
struct Improvement {
  std::size_t nodes = 0;
  std::size_t path = 0;  ///< 1-based index of the improving path
  ObjectiveValue value;
  std::size_t discrepancies = 0;  ///< non-heuristic branches on the path
};

struct SearchResult {
  std::vector<std::size_t> order;  ///< best consideration order found
  std::vector<Time> starts;        ///< per problem-job start times
  ObjectiveValue value;
  std::vector<Improvement> improvements;  ///< anytime profile (first entry
                                          ///  is the heuristic path)
  std::size_t nodes_visited = 0;
  std::size_t paths_completed = 0;
  std::size_t iterations_started = 0;
  /// Complete paths per iteration (index 0 = the heuristic-only iteration);
  /// the last entry may be partial when the node budget ran out.
  std::vector<std::size_t> paths_per_iteration;
  bool exhausted = false;      ///< whole tree covered within the budgets
  bool deadline_hit = false;   ///< the wall-clock deadline cut the search
  /// Worker threads the parallel engine ran with (0 = sequential engine,
  /// including the documented fallbacks).
  std::size_t threads_used = 0;
  /// Earliest-start memo telemetry (SearchConfig::cache). Hits are
  /// placements answered from the (job, profile-version) memo without
  /// touching the profile; misses paid a profile scan; invalidations are
  /// whole-memo resets at the size bound. Telemetry only — never part of
  /// the bit-identity contract (parallel workers speculate, so their
  /// counters legitimately differ from the sequential engine's).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_invalidations = 0;
  /// The warm-start order was valid for this problem and seeded the
  /// incumbent (see SearchConfig::warm_order).
  bool warm_start_used = false;
  /// Dominance-pruning telemetry (SearchConfig::dominance): subtrees
  /// skipped as non-canonical twin permutations, and partial paths cut by
  /// the (frozen or branch-and-bound) lower bound. Telemetry only, like
  /// the cache counters — parallel workers count speculative work past the
  /// canonical budget cut, so totals legitimately vary by thread count.
  std::uint64_t pruned_twins = 0;
  std::uint64_t pruned_bound = 0;
  /// Speculative nodes explored per worker (size == threads_used). The sum
  /// may exceed nodes_visited: subtree work past the canonical budget cut
  /// is discarded by the merge, and iteration 0 runs on the calling thread
  /// so it appears in nodes_visited only.
  std::vector<std::size_t> worker_nodes;
};

/// Runs the configured discrepancy search over the problem and returns the
/// best complete schedule found. problem.size() must be >= 1. When
/// config.threads > 0, subtree tasks run on `pool` (a transient pool of
/// config.threads workers is created when null); callers issuing many
/// searches should pass a persistent pool to amortize thread start-up.
SearchResult run_search(const SearchProblem& problem,
                        const SearchConfig& config,
                        ThreadPool* pool = nullptr);

}  // namespace sbs
