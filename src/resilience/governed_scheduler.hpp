#pragma once

#include <array>
#include <memory>

#include "core/search_scheduler.hpp"
#include "policies/backfill.hpp"
#include "resilience/governor.hpp"
#include "resilience/health.hpp"
#include "sim/scheduler.hpp"

namespace sbs::resilience {

/// A search policy wrapped in the overload governor: each decision runs on
/// the rung the breaker selects, the decision's cost is fed back as health
/// signals, and the ladder moves with hysteresis. Rungs, cheapest last:
///
///   0  the configured search, untouched
///   1  same search, node budget scaled by reduced_budget_factor and
///      half the worker threads
///   2  heuristic-only descent (node_limit = 1, sequential, cold start)
///   3  plain LXF backfill (one reservation) — no search at all
///
/// Every rung is a complete policy, so a governed run always produces a
/// feasible schedule no matter how hard it is pushed. With the queue-depth
/// signal only (the wall-clock signals disabled) the whole ladder is
/// deterministic given the trace; pinning initial_level = 3 reproduces
/// plain LXF backfill decision-for-decision.
class GovernedScheduler final : public Scheduler {
 public:
  GovernedScheduler(const SearchSchedulerConfig& base,
                    const GovernorConfig& governor);

  std::vector<int> select_jobs(const SchedulerState& state) override;

  /// "gov(<base name>)", e.g. "gov(DDS/lxf/dynB)".
  std::string name() const override;

  /// Merged across rungs: counters sum (exactly one rung runs per
  /// decision), max_* fields take the max.
  SchedulerStats stats() const override;

  void set_collect_decision_detail(bool on) override;
  const DecisionDetail* last_decision() const override {
    return collect_detail_ ? &detail_ : nullptr;
  }

  /// Checkpoint support: breaker + monitor state and every rung's own
  /// snapshot, so a resumed run continues at the same ladder position with
  /// identical warm-start and fair-share state.
  std::string save_state() const override;
  void restore_state(std::string_view state) override;

  GovLevel level() const { return governor_.level(); }
  const GovernorConfig& governor_config() const { return config_; }

 private:
  GovernorConfig config_;
  Governor governor_;
  HealthMonitor monitor_;
  /// Rungs 0-2 are SearchSchedulers, rung 3 is the backfill fallback; all
  /// live for the whole run so each keeps its own cross-event state.
  std::array<std::unique_ptr<Scheduler>, kGovLevels> rungs_;
  /// Per-rung node budget, for the budget-exhausted signal (0 = no budget,
  /// i.e. the backfill rung).
  std::array<std::uint64_t, kGovLevels> node_limits_{};
  bool collect_detail_ = false;
  DecisionDetail detail_;
};

}  // namespace sbs::resilience
