#include "resilience/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace sbs::resilience {

namespace {

constexpr std::string_view kFormat = "sbs-checkpoint";
constexpr std::string_view kFedFormat = "sbs-fed-checkpoint";

void write_fully(int fd, const char* data, std::size_t size,
                 const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("write to " + path + " failed: " + std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

const obs::JsonValue& get(const obs::JsonValue& v, std::string_view key,
                          std::string_view what) {
  const obs::JsonValue* f = v.find(key);
  SBS_CHECK_MSG(f != nullptr, "checkpoint " << what << " lacks " << key);
  return *f;
}

const obs::JsonValue& at(const obs::JsonValue& row, std::size_t i,
                         std::string_view what) {
  SBS_CHECK_MSG(row.is_array() && row.array.size() > i,
                "checkpoint " << what << " row is malformed");
  return row.array[i];
}

// Writes one SimSnapshot as a JSON object (caller supplies the key or
// array slot).
void append_snapshot(obs::JsonWriter& w, const sim::SimSnapshot& s) {
  w.begin_object();
  w.field("now", static_cast<std::int64_t>(s.now))
      .field("events", s.events)
      .field("next_arrival", static_cast<std::uint64_t>(s.next_arrival))
      .field("next_fault", static_cast<std::uint64_t>(s.next_fault))
      .field("used_nodes", s.used_nodes)
      .field("down_nodes", s.down_nodes)
      .field("last_event", static_cast<std::int64_t>(s.last_event))
      .field("queue_area", s.queue_area);
  w.key("waiting").begin_array();
  for (const auto& e : s.waiting) {
    w.begin_array();
    w.value(e.job_id).value(static_cast<std::int64_t>(e.estimate));
    w.end_array();
  }
  w.end_array();
  w.key("running").begin_array();
  for (const auto& e : s.running) {
    w.begin_array();
    w.value(e.job_id)
        .value(static_cast<std::int64_t>(e.start))
        .value(static_cast<std::int64_t>(e.est_end));
    w.end_array();
  }
  w.end_array();
  w.key("completions").begin_array();
  for (const auto& e : s.completions) {
    w.begin_array();
    w.value(static_cast<std::int64_t>(e.end)).value(e.job_id).value(e.attempt);
    w.end_array();
  }
  w.end_array();
  w.key("attempts").begin_array();
  for (int a : s.attempts) w.value(a);
  w.end_array();
  w.key("outcomes").begin_array();
  for (const auto& e : s.outcomes) {
    w.begin_array();
    w.value(e.job_id)
        .value(static_cast<std::int64_t>(e.start))
        .value(static_cast<std::int64_t>(e.end))
        .value(e.requeue_count)
        .value(static_cast<std::int64_t>(e.lost_node_seconds))
        .value(e.completed);
    w.end_array();
  }
  w.end_array();
  w.key("decision_stats").begin_object();
  w.field("decisions", s.decision_stats.decisions)
      .field("with_10_plus", s.decision_stats.with_10_plus)
      .field("max_waiting", s.decision_stats.max_waiting)
      .field("mean_waiting_sum", s.decision_stats.mean_waiting_sum);
  w.end_object();
  w.key("fault_stats").begin_object();
  w.field("node_failures", s.fault_stats.node_failures)
      .field("node_recoveries", s.fault_stats.node_recoveries)
      .field("jobs_killed", s.fault_stats.jobs_killed)
      .field("jobs_requeued", s.fault_stats.jobs_requeued)
      .field("jobs_dropped", s.fault_stats.jobs_dropped)
      .field("jobs_unstarted", s.fault_stats.jobs_unstarted)
      .field("lost_node_seconds", s.fault_stats.lost_node_seconds)
      .field("min_capacity", s.fault_stats.min_capacity);
  w.end_object();
  w.field("scheduler_state", s.scheduler_state);
  w.end_object();
}

sim::SimSnapshot parse_snapshot(const obs::JsonValue& v) {
  SBS_CHECK_MSG(v.is_object(), "checkpoint snapshot is not a JSON object");
  sim::SimSnapshot s;
  s.now = get(v, "now", "snapshot").as_int();
  s.events = static_cast<std::uint64_t>(get(v, "events", "snapshot").as_int());
  s.next_arrival = static_cast<std::size_t>(
      get(v, "next_arrival", "snapshot").as_int());
  s.next_fault =
      static_cast<std::size_t>(get(v, "next_fault", "snapshot").as_int());
  s.used_nodes = static_cast<int>(get(v, "used_nodes", "snapshot").as_int());
  s.down_nodes = static_cast<int>(get(v, "down_nodes", "snapshot").as_int());
  s.last_event = get(v, "last_event", "snapshot").as_int();
  s.queue_area = get(v, "queue_area", "snapshot").as_double();
  for (const auto& row : get(v, "waiting", "snapshot").array) {
    sim::SimSnapshot::WaitingEntry e;
    e.job_id = static_cast<int>(at(row, 0, "waiting").as_int());
    e.estimate = at(row, 1, "waiting").as_int();
    s.waiting.push_back(e);
  }
  for (const auto& row : get(v, "running", "snapshot").array) {
    sim::SimSnapshot::RunningEntry e;
    e.job_id = static_cast<int>(at(row, 0, "running").as_int());
    e.start = at(row, 1, "running").as_int();
    e.est_end = at(row, 2, "running").as_int();
    s.running.push_back(e);
  }
  for (const auto& row : get(v, "completions", "snapshot").array) {
    sim::SimSnapshot::CompletionEntry e;
    e.end = at(row, 0, "completions").as_int();
    e.job_id = static_cast<int>(at(row, 1, "completions").as_int());
    e.attempt = static_cast<int>(at(row, 2, "completions").as_int());
    s.completions.push_back(e);
  }
  for (const auto& a : get(v, "attempts", "snapshot").array)
    s.attempts.push_back(static_cast<int>(a.as_int()));
  for (const auto& row : get(v, "outcomes", "snapshot").array) {
    sim::SimSnapshot::OutcomeEntry e;
    e.job_id = static_cast<int>(at(row, 0, "outcomes").as_int());
    e.start = at(row, 1, "outcomes").as_int();
    e.end = at(row, 2, "outcomes").as_int();
    e.requeue_count = static_cast<int>(at(row, 3, "outcomes").as_int());
    e.lost_node_seconds = at(row, 4, "outcomes").as_int();
    e.completed = at(row, 5, "outcomes").as_bool();
    s.outcomes.push_back(e);
  }
  const obs::JsonValue& d = get(v, "decision_stats", "snapshot");
  s.decision_stats.decisions =
      static_cast<std::uint64_t>(get(d, "decisions", "decision_stats").as_int());
  s.decision_stats.with_10_plus = static_cast<std::uint64_t>(
      get(d, "with_10_plus", "decision_stats").as_int());
  s.decision_stats.max_waiting = static_cast<std::uint64_t>(
      get(d, "max_waiting", "decision_stats").as_int());
  s.decision_stats.mean_waiting_sum =
      get(d, "mean_waiting_sum", "decision_stats").as_double();
  const obs::JsonValue& f = get(v, "fault_stats", "snapshot");
  s.fault_stats.node_failures = static_cast<std::uint64_t>(
      get(f, "node_failures", "fault_stats").as_int());
  s.fault_stats.node_recoveries = static_cast<std::uint64_t>(
      get(f, "node_recoveries", "fault_stats").as_int());
  s.fault_stats.jobs_killed =
      static_cast<std::uint64_t>(get(f, "jobs_killed", "fault_stats").as_int());
  s.fault_stats.jobs_requeued = static_cast<std::uint64_t>(
      get(f, "jobs_requeued", "fault_stats").as_int());
  s.fault_stats.jobs_dropped = static_cast<std::uint64_t>(
      get(f, "jobs_dropped", "fault_stats").as_int());
  s.fault_stats.jobs_unstarted = static_cast<std::uint64_t>(
      get(f, "jobs_unstarted", "fault_stats").as_int());
  s.fault_stats.lost_node_seconds =
      get(f, "lost_node_seconds", "fault_stats").as_double();
  s.fault_stats.min_capacity =
      static_cast<int>(get(f, "min_capacity", "fault_stats").as_int());
  s.scheduler_state = get(v, "scheduler_state", "snapshot").as_string();
  return s;
}

// The shared envelope: format marker, version, lineage, CLI echo.
template <typename AppendSnapshot>
std::string render_checkpoint(std::string_view format, int version,
                              const std::string& id, const std::string& parent,
                              const std::vector<std::pair<std::string,
                                                          std::string>>& cli,
                              AppendSnapshot&& append) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("format", format);
  w.field("version", version);
  w.field("id", id);
  w.field("parent", parent);
  w.key("cli").begin_object();
  for (const auto& [key, value] : cli) w.field(key, value);
  w.end_object();
  w.key("snapshot");
  append(w);
  w.end_object();
  return w.str();
}

// Crash-safe whole-file write: tmp + fsync + rename.
void write_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0)
    throw Error("cannot open " + tmp + ": " + std::strerror(errno));
  try {
    write_fully(fd, text.data(), text.size(), tmp);
    write_fully(fd, "\n", 1, tmp);
    if (::fsync(fd) != 0)
      throw Error("fsync of " + tmp + " failed: " + std::strerror(errno));
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw Error("cannot rename " + tmp + " over " + path + ": " +
                std::strerror(err));
  }
}

// Reads the envelope, checks the format marker and version, and returns
// the parsed document for snapshot extraction. Versions in
// [min_version, expect_version] are accepted — older snapshots load with
// the newer fields at their defaults.
obs::JsonValue read_envelope(const std::string& path, std::string_view format,
                             int min_version, int expect_version,
                             std::string& id, std::string& parent,
                             std::vector<std::pair<std::string, std::string>>&
                                 cli_out,
                             int& version_out) {
  std::ifstream in(path, std::ios::binary);
  SBS_CHECK_MSG(in.good(), "cannot open checkpoint " << path);
  std::ostringstream buf;
  buf << in.rdbuf();

  obs::JsonValue v = obs::parse_json(buf.str());
  SBS_CHECK_MSG(v.is_object(), "checkpoint " << path
                                             << " is not a JSON object");
  const obs::JsonValue& fmt = get(v, "format", "file");
  SBS_CHECK_MSG(fmt.as_string() == format,
                path << " is not an " << format << " file (format \""
                     << fmt.as_string() << "\")");
  version_out = static_cast<int>(get(v, "version", "file").as_int());
  SBS_CHECK_MSG(version_out >= min_version && version_out <= expect_version,
                "checkpoint " << path << " has snapshot version "
                              << version_out << "; this build reads versions "
                              << min_version << ".." << expect_version);
  id = get(v, "id", "file").as_string();
  parent = get(v, "parent", "file").as_string();
  const obs::JsonValue& cli = get(v, "cli", "file");
  SBS_CHECK_MSG(cli.is_object(), "checkpoint cli echo is not a JSON object");
  for (const auto& [key, value] : cli.object)
    cli_out.emplace_back(key, value.as_string());
  return v;
}

}  // namespace

std::string checkpoint_id(std::uint64_t events) {
  return "ck-" + std::to_string(events);
}

void write_checkpoint(const std::string& path, const CheckpointData& data) {
  write_atomic(path,
               render_checkpoint(kFormat, data.version, data.id, data.parent,
                                 data.cli, [&](obs::JsonWriter& w) {
                                   append_snapshot(w, data.snapshot);
                                 }));
}

CheckpointData read_checkpoint(const std::string& path) {
  CheckpointData data;
  const obs::JsonValue v =
      read_envelope(path, kFormat, sim::SimSnapshot::kVersion,
                    sim::SimSnapshot::kVersion, data.id, data.parent,
                    data.cli, data.version);
  data.snapshot = parse_snapshot(get(v, "snapshot", "file"));
  return data;
}

void write_federation_checkpoint(const std::string& path,
                                 const FederationCheckpointData& data) {
  const sim::FederationSnapshot& s = data.snapshot;
  write_atomic(
      path,
      render_checkpoint(
          kFedFormat, data.version, data.id, data.parent, data.cli,
          [&](obs::JsonWriter& w) {
            w.begin_object();
            w.field("fed_events", s.fed_events)
                .field("next_arrival",
                       static_cast<std::uint64_t>(s.next_arrival))
                .field("migrations", s.migrations);
            w.key("owner").begin_array();
            for (int o : s.owner) w.value(o);
            w.end_array();
            w.key("demand_ewma").begin_array();
            for (double e : s.demand_ewma) w.value(e);
            w.end_array();
            w.key("routed").begin_array();
            for (std::uint64_t r : s.routed) w.value(r);
            w.end_array();
            w.key("migrations_in").begin_array();
            for (std::uint64_t m : s.migrations_in) w.value(m);
            w.end_array();
            w.key("migrations_out").begin_array();
            for (std::uint64_t m : s.migrations_out) w.value(m);
            w.end_array();
            w.field("meta_state", s.meta_state);
            w.key("members").begin_array();
            for (const sim::SimSnapshot& m : s.members) append_snapshot(w, m);
            w.end_array();
            // v2: federation fault-tolerance block (chaos-off runs write
            // the empty defaults; v1 readers never see this file because
            // the envelope version is bumped with the struct).
            w.field("next_chaos", static_cast<std::uint64_t>(s.next_chaos));
            w.key("member_down").begin_array();
            for (std::uint8_t d : s.member_down) w.value(static_cast<int>(d));
            w.end_array();
            w.key("link_down").begin_array();
            for (std::uint8_t d : s.link_down) w.value(static_cast<int>(d));
            w.end_array();
            w.key("health").begin_array();
            for (const std::string& h : s.health) w.value(h);
            w.end_array();
            w.key("limbo").begin_array();
            for (const auto& e : s.limbo) {
              w.begin_array();
              w.value(e.job).value(e.target);
              w.end_array();
            }
            w.end_array();
            w.key("speculative").begin_array();
            for (const auto& e : s.speculative) {
              w.begin_array();
              w.value(e.job).value(e.from).value(e.to);
              w.end_array();
            }
            w.end_array();
            w.key("stale_waiting").begin_array();
            for (const auto& view : s.stale_waiting) {
              w.begin_array();
              for (int id : view) w.value(id);
              w.end_array();
            }
            w.end_array();
            w.key("commits").begin_array();
            for (const auto& e : s.commits) {
              w.begin_array();
              w.value(e.job).value(e.member);
              w.end_array();
            }
            w.end_array();
            w.key("transfers_in").begin_array();
            for (std::uint64_t x : s.transfers_in) w.value(x);
            w.end_array();
            w.key("transfers_out").begin_array();
            for (std::uint64_t x : s.transfers_out) w.value(x);
            w.end_array();
            w.field("failovers", s.failovers)
                .field("rehomes", s.rehomes)
                .field("dedupes", s.dedupes)
                .field("duplicate_runs", s.duplicate_runs);
            w.end_object();
          }));
}

FederationCheckpointData read_federation_checkpoint(const std::string& path) {
  FederationCheckpointData data;
  const obs::JsonValue v =
      read_envelope(path, kFedFormat, /*min_version=*/1,
                    sim::FederationSnapshot::kVersion, data.id, data.parent,
                    data.cli, data.version);
  const obs::JsonValue& s = get(v, "snapshot", "file");
  SBS_CHECK_MSG(s.is_object(), "federation snapshot is not a JSON object");
  sim::FederationSnapshot& snap = data.snapshot;
  snap.fed_events =
      static_cast<std::uint64_t>(get(s, "fed_events", "snapshot").as_int());
  snap.next_arrival =
      static_cast<std::size_t>(get(s, "next_arrival", "snapshot").as_int());
  snap.migrations =
      static_cast<std::uint64_t>(get(s, "migrations", "snapshot").as_int());
  for (const auto& o : get(s, "owner", "snapshot").array)
    snap.owner.push_back(static_cast<int>(o.as_int()));
  for (const auto& e : get(s, "demand_ewma", "snapshot").array)
    snap.demand_ewma.push_back(e.as_double());
  for (const auto& r : get(s, "routed", "snapshot").array)
    snap.routed.push_back(static_cast<std::uint64_t>(r.as_int()));
  for (const auto& m : get(s, "migrations_in", "snapshot").array)
    snap.migrations_in.push_back(static_cast<std::uint64_t>(m.as_int()));
  for (const auto& m : get(s, "migrations_out", "snapshot").array)
    snap.migrations_out.push_back(static_cast<std::uint64_t>(m.as_int()));
  snap.meta_state = get(s, "meta_state", "snapshot").as_string();
  const obs::JsonValue& members = get(s, "members", "snapshot");
  SBS_CHECK_MSG(members.is_array(), "federation members is not an array");
  for (const auto& m : members.array)
    snap.members.push_back(parse_snapshot(m));
  // v2 fault-tolerance block; a v1 file simply lacks it and keeps the
  // defaults (chaos-off state).
  if (s.find("next_chaos") != nullptr) {
    snap.next_chaos =
        static_cast<std::size_t>(get(s, "next_chaos", "snapshot").as_int());
    for (const auto& d : get(s, "member_down", "snapshot").array)
      snap.member_down.push_back(static_cast<std::uint8_t>(d.as_int()));
    for (const auto& d : get(s, "link_down", "snapshot").array)
      snap.link_down.push_back(static_cast<std::uint8_t>(d.as_int()));
    for (const auto& h : get(s, "health", "snapshot").array)
      snap.health.push_back(h.as_string());
    for (const auto& row : get(s, "limbo", "snapshot").array) {
      sim::FederationSnapshot::LimboEntry e;
      e.job = static_cast<int>(at(row, 0, "limbo").as_int());
      e.target = static_cast<int>(at(row, 1, "limbo").as_int());
      snap.limbo.push_back(e);
    }
    for (const auto& row : get(s, "speculative", "snapshot").array) {
      sim::FederationSnapshot::RehomeEntry e;
      e.job = static_cast<int>(at(row, 0, "speculative").as_int());
      e.from = static_cast<int>(at(row, 1, "speculative").as_int());
      e.to = static_cast<int>(at(row, 2, "speculative").as_int());
      snap.speculative.push_back(e);
    }
    for (const auto& view : get(s, "stale_waiting", "snapshot").array) {
      SBS_CHECK_MSG(view.is_array(),
                    "federation stale_waiting view is malformed");
      std::vector<int> ids;
      for (const auto& id : view.array)
        ids.push_back(static_cast<int>(id.as_int()));
      snap.stale_waiting.push_back(std::move(ids));
    }
    for (const auto& row : get(s, "commits", "snapshot").array) {
      sim::FederationSnapshot::CommitEntry e;
      e.job = static_cast<int>(at(row, 0, "commits").as_int());
      e.member = static_cast<int>(at(row, 1, "commits").as_int());
      snap.commits.push_back(e);
    }
    for (const auto& x : get(s, "transfers_in", "snapshot").array)
      snap.transfers_in.push_back(static_cast<std::uint64_t>(x.as_int()));
    for (const auto& x : get(s, "transfers_out", "snapshot").array)
      snap.transfers_out.push_back(static_cast<std::uint64_t>(x.as_int()));
    snap.failovers =
        static_cast<std::uint64_t>(get(s, "failovers", "snapshot").as_int());
    snap.rehomes =
        static_cast<std::uint64_t>(get(s, "rehomes", "snapshot").as_int());
    snap.dedupes =
        static_cast<std::uint64_t>(get(s, "dedupes", "snapshot").as_int());
    snap.duplicate_runs = static_cast<std::uint64_t>(
        get(s, "duplicate_runs", "snapshot").as_int());
  }
  return data;
}

}  // namespace sbs::resilience
