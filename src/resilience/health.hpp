#pragma once

#include <cstdint>
#include <string_view>

namespace sbs::obs {
class JsonWriter;
struct JsonValue;
}  // namespace sbs::obs

namespace sbs::resilience {

/// Raw per-decision signals the governed scheduler feeds the monitor —
/// the quantities telemetry already records, sampled at the source.
struct HealthSignal {
  double queue_depth = 0.0;      ///< waiting jobs at the decision
  double think_ms = 0.0;         ///< wall-clock cost of the decision
  bool deadline_overrun = false; ///< search hit SearchConfig::deadline_ms
  bool budget_exhausted = false; ///< search spent its whole node budget
};

/// Watermarks and smoothing for the health verdict. A watermark of 0
/// disables that signal entirely — e.g. golden-trace tests use queue-depth
/// only, because think time and overruns are wall-clock facts and would
/// make the ladder nondeterministic.
struct HealthConfig {
  /// EWMA weight of the newest sample (0 < alpha <= 1); higher = twitchier.
  double alpha = 0.3;
  /// Overload when the EWMA queue depth reaches this; 0 = signal off.
  double queue_high = 0.0;
  /// Overload when the EWMA think time (ms) reaches this; 0 = signal off.
  double think_ms_high = 0.0;
  /// Overload when this many consecutive decisions overran the search
  /// deadline; 0 = signal off.
  int overrun_streak_high = 0;
  /// Overload when the EWMA of the budget-exhausted indicator (fraction of
  /// recent decisions that spent their full node budget) reaches this;
  /// 0 = signal off.
  double budget_fraction_high = 0.0;
  /// Hysteresis: Recovered requires every enabled EWMA to fall below
  /// high * recovery_fraction (and the overrun streak to be zero), so the
  /// monitor cannot oscillate at a watermark.
  double recovery_fraction = 0.5;
};

enum class HealthVerdict {
  Overloaded,  ///< some enabled signal is at or above its high watermark
  Neutral,     ///< between the watermarks (hysteresis band)
  Recovered,   ///< every enabled signal is below its low watermark
};

/// EWMA smoothing of the per-decision signals into one tri-state verdict.
/// Deterministic given its inputs; fully serializable for checkpointing.
class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthConfig& config);

  HealthVerdict observe(const HealthSignal& signal);

  double ewma_queue() const { return ewma_queue_; }
  double ewma_think_ms() const { return ewma_think_ms_; }
  double ewma_budget() const { return ewma_budget_; }
  int overrun_streak() const { return overrun_streak_; }

  /// Checkpoint support: the EWMAs and streak as one JSON object value.
  void append_state(obs::JsonWriter& w, std::string_view key) const;
  void restore_state(const obs::JsonValue& v);

 private:
  HealthConfig config_;
  bool primed_ = false;  ///< first sample seeds the EWMAs directly
  double ewma_queue_ = 0.0;
  double ewma_think_ms_ = 0.0;
  double ewma_budget_ = 0.0;
  int overrun_streak_ = 0;
};

}  // namespace sbs::resilience
