#include "resilience/governor.hpp"

#include <charconv>
#include <sstream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace sbs::resilience {

const char* gov_level_name(GovLevel level) {
  switch (level) {
    case GovLevel::Full: return "full";
    case GovLevel::Reduced: return "reduced";
    case GovLevel::Heuristic: return "heuristic";
    case GovLevel::Fallback: return "fallback";
  }
  return "?";
}

namespace {

std::string trim_zeros(double v) {
  std::ostringstream os;
  os << v;  // default precision: compact, round-trips the knob values used
  return os.str();
}

double parse_double(std::string_view key, std::string_view value) {
  try {
    std::size_t used = 0;
    const std::string s(value);
    const double d = std::stod(s, &used);
    SBS_CHECK_MSG(used == s.size(), "governor threshold " << key
                                        << " has trailing garbage: " << value);
    return d;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("governor threshold " + std::string(key) +
                " is not a number: " + std::string(value));
  }
}

int parse_int(std::string_view key, std::string_view value) {
  int out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  SBS_CHECK_MSG(ec == std::errc{} && ptr == value.data() + value.size(),
                "governor threshold " << key
                                      << " is not an integer: " << value);
  return out;
}

}  // namespace

std::string GovernorConfig::spec() const {
  std::string s;
  s += "queue=" + trim_zeros(health.queue_high);
  s += ",think-ms=" + trim_zeros(health.think_ms_high);
  s += ",overrun=" + std::to_string(health.overrun_streak_high);
  s += ",budget=" + trim_zeros(health.budget_fraction_high);
  s += ",alpha=" + trim_zeros(health.alpha);
  s += ",recover=" + trim_zeros(health.recovery_fraction);
  s += ",trip=" + std::to_string(trip_decisions);
  s += ",probe=" + std::to_string(probe_after);
  s += ",promote=" + std::to_string(promote_probes);
  s += ",reduce=" + trim_zeros(reduced_budget_factor);
  s += ",level=" + std::to_string(initial_level);
  return s;
}

GovernorConfig parse_governor_thresholds(std::string_view spec) {
  GovernorConfig config;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view pair = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    SBS_CHECK_MSG(eq != std::string_view::npos,
                  "governor threshold \"" << pair << "\" is not key=value");
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    if (key == "queue") {
      config.health.queue_high = parse_double(key, value);
    } else if (key == "think-ms") {
      config.health.think_ms_high = parse_double(key, value);
    } else if (key == "overrun") {
      config.health.overrun_streak_high = parse_int(key, value);
    } else if (key == "budget") {
      config.health.budget_fraction_high = parse_double(key, value);
    } else if (key == "alpha") {
      config.health.alpha = parse_double(key, value);
    } else if (key == "recover") {
      config.health.recovery_fraction = parse_double(key, value);
    } else if (key == "trip") {
      config.trip_decisions = parse_int(key, value);
    } else if (key == "probe") {
      config.probe_after = parse_int(key, value);
    } else if (key == "promote") {
      config.promote_probes = parse_int(key, value);
    } else if (key == "reduce") {
      config.reduced_budget_factor = parse_double(key, value);
    } else if (key == "level") {
      config.initial_level = parse_int(key, value);
    } else {
      throw Error("unknown governor threshold key \"" + std::string(key) +
                  "\" (known: queue, think-ms, overrun, budget, alpha, "
                  "recover, trip, probe, promote, reduce, level)");
    }
  }
  SBS_CHECK_MSG(config.trip_decisions >= 1, "governor trip must be >= 1");
  SBS_CHECK_MSG(config.probe_after >= 1, "governor probe must be >= 1");
  SBS_CHECK_MSG(config.promote_probes >= 1, "governor promote must be >= 1");
  SBS_CHECK_MSG(config.reduced_budget_factor > 0.0 &&
                    config.reduced_budget_factor <= 1.0,
                "governor reduce must be in (0, 1]");
  SBS_CHECK_MSG(config.initial_level >= 0 &&
                    config.initial_level < kGovLevels,
                "governor level must be in [0, " << kGovLevels - 1 << "]");
  return config;
}

Governor::Governor(const GovernorConfig& config)
    : config_(config),
      level_(static_cast<GovLevel>(config.initial_level)) {}

void Governor::emit(std::string_view kind, int from, int to) {
  transitions_.push_back(obs::GovernorTransition{kind, from, to});
}

Governor::Plan Governor::plan() {
  // initial_level is a floor, not just a start: pinning level=3 turns the
  // governed policy into plain LXF backfill for good (the fallback-
  // equivalence guarantee), and a run resumed mid-degradation keeps its
  // configured floor.
  const int floor = config_.initial_level;
  const int lv = static_cast<int>(level_);
  if (lv > floor &&
      (calm_streak_ >= config_.probe_after || probe_successes_ > 0)) {
    // Half-open: run ONE decision a level up. Consecutive probes (until
    // promote_probes or a failure) avoid waiting a whole calm window
    // between the attempts of one recovery.
    probing_ = true;
    emit("probe", lv, lv - 1);
    return {static_cast<GovLevel>(lv - 1), true};
  }
  return {level_, false};
}

void Governor::report(HealthVerdict verdict) {
  const int lv = static_cast<int>(level_);
  if (probing_) {
    probing_ = false;
    if (verdict == HealthVerdict::Overloaded) {
      // The cheaper level is still too expensive: close the breaker again
      // and restart the calm window from scratch.
      emit("probe_fail", lv - 1, lv);
      probe_successes_ = 0;
      calm_streak_ = 0;
      unhealthy_streak_ = 0;
    } else {
      if (++probe_successes_ >= config_.promote_probes) {
        emit("recover", lv, lv - 1);
        level_ = static_cast<GovLevel>(lv - 1);
        probe_successes_ = 0;
        calm_streak_ = 0;
      }
    }
    return;
  }
  if (verdict == HealthVerdict::Overloaded) {
    calm_streak_ = 0;
    probe_successes_ = 0;
    if (++unhealthy_streak_ >= config_.trip_decisions &&
        lv < kGovLevels - 1) {
      emit("degrade", lv, lv + 1);
      level_ = static_cast<GovLevel>(lv + 1);
      unhealthy_streak_ = 0;
    }
    return;
  }
  unhealthy_streak_ = 0;
  // Only a full recovery verdict (below the low watermark) earns calm
  // credit; Neutral — inside the hysteresis band — holds the streak.
  if (verdict == HealthVerdict::Recovered) ++calm_streak_;
}

std::vector<obs::GovernorTransition> Governor::take_transitions() {
  std::vector<obs::GovernorTransition> out;
  out.swap(transitions_);
  return out;
}

void Governor::append_state(obs::JsonWriter& w, std::string_view key) const {
  w.key(key).begin_object();
  w.field("level", static_cast<int>(level_))
      .field("probing", probing_)
      .field("unhealthy_streak", unhealthy_streak_)
      .field("calm_streak", calm_streak_)
      .field("probe_successes", probe_successes_);
  w.end_object();
}

void Governor::restore_state(const obs::JsonValue& v) {
  SBS_CHECK_MSG(v.is_object(), "governor state is not a JSON object");
  auto get = [&](std::string_view key) -> const obs::JsonValue& {
    const obs::JsonValue* f = v.find(key);
    SBS_CHECK_MSG(f != nullptr, "governor state lacks " << key);
    return *f;
  };
  const int lv = static_cast<int>(get("level").as_int());
  SBS_CHECK_MSG(lv >= 0 && lv < kGovLevels, "governor state level invalid");
  level_ = static_cast<GovLevel>(lv);
  probing_ = get("probing").as_bool();
  unhealthy_streak_ = static_cast<int>(get("unhealthy_streak").as_int());
  calm_streak_ = static_cast<int>(get("calm_streak").as_int());
  probe_successes_ = static_cast<int>(get("probe_successes").as_int());
}

}  // namespace sbs::resilience
