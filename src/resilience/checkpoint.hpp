#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/snapshot.hpp"

namespace sbs::resilience {

/// One on-disk checkpoint: the versioned simulator snapshot plus enough
/// provenance to audit a resumed run — a lineage id derived from the event
/// count, the parent checkpoint's id (empty for a fresh run), and the
/// resolved CLI configuration echoed verbatim so `--resume` can verify it
/// is continuing the same experiment.
struct CheckpointData {
  int version = sim::SimSnapshot::kVersion;
  std::string id;      ///< "ck-<events>"
  std::string parent;  ///< id of the checkpoint this run resumed from, or ""
  /// Resolved flag echo (insertion-ordered key/value pairs), e.g.
  /// {"policy","DDS/lxf/dynB"}, {"seed","42"}. Purely informational for
  /// the snapshot consumer; sbsched uses it to cross-check --resume.
  std::vector<std::pair<std::string, std::string>> cli;
  sim::SimSnapshot snapshot;
};

/// Lineage id for a snapshot captured after `events` events.
std::string checkpoint_id(std::uint64_t events);

/// Serializes `data` as one JSON document and writes it atomically:
/// write to `<path>.tmp`, fsync, rename over `path`. A crash mid-write
/// therefore never corrupts the previous checkpoint at `path`.
void write_checkpoint(const std::string& path, const CheckpointData& data);

/// Reads and validates a checkpoint written by write_checkpoint(). Throws
/// sbs::Error on any malformed field, an unknown format marker, or a
/// snapshot version this build does not understand.
CheckpointData read_checkpoint(const std::string& path);

/// Federation analogue of CheckpointData: one FederationSnapshot (which
/// composes every member's SimSnapshot in cluster-id order) plus the same
/// lineage and CLI-echo provenance. The on-disk format carries a distinct
/// marker ("sbs-fed-checkpoint") so the single-cluster reader rejects
/// federation files with a clear error and vice versa.
struct FederationCheckpointData {
  int version = sim::FederationSnapshot::kVersion;
  std::string id;      ///< "ck-<fed_events>"
  std::string parent;  ///< id of the checkpoint this run resumed from, or ""
  std::vector<std::pair<std::string, std::string>> cli;
  sim::FederationSnapshot snapshot;
};

/// Atomic write / validated read of a federation checkpoint, with the same
/// tmp+fsync+rename crash-safety contract as write_checkpoint().
void write_federation_checkpoint(const std::string& path,
                                 const FederationCheckpointData& data);
FederationCheckpointData read_federation_checkpoint(const std::string& path);

}  // namespace sbs::resilience
