#include "resilience/health.hpp"

#include "obs/json.hpp"
#include "util/error.hpp"

namespace sbs::resilience {

HealthMonitor::HealthMonitor(const HealthConfig& config) : config_(config) {
  SBS_CHECK_MSG(config_.alpha > 0.0 && config_.alpha <= 1.0,
                "health alpha must be in (0, 1]");
  SBS_CHECK_MSG(config_.recovery_fraction > 0.0 &&
                    config_.recovery_fraction <= 1.0,
                "health recovery_fraction must be in (0, 1]");
  SBS_CHECK_MSG(config_.queue_high >= 0.0 && config_.think_ms_high >= 0.0 &&
                    config_.overrun_streak_high >= 0 &&
                    config_.budget_fraction_high >= 0.0,
                "health watermarks must be non-negative");
}

HealthVerdict HealthMonitor::observe(const HealthSignal& signal) {
  if (primed_) {
    const double a = config_.alpha;
    ewma_queue_ = a * signal.queue_depth + (1.0 - a) * ewma_queue_;
    ewma_think_ms_ = a * signal.think_ms + (1.0 - a) * ewma_think_ms_;
    ewma_budget_ = a * (signal.budget_exhausted ? 1.0 : 0.0) +
                   (1.0 - a) * ewma_budget_;
  } else {
    ewma_queue_ = signal.queue_depth;
    ewma_think_ms_ = signal.think_ms;
    ewma_budget_ = signal.budget_exhausted ? 1.0 : 0.0;
    primed_ = true;
  }
  overrun_streak_ = signal.deadline_overrun ? overrun_streak_ + 1 : 0;

  bool any_high = false;
  bool all_low = true;
  const double low = config_.recovery_fraction;
  if (config_.queue_high > 0.0) {
    any_high |= ewma_queue_ >= config_.queue_high;
    all_low &= ewma_queue_ < config_.queue_high * low;
  }
  if (config_.think_ms_high > 0.0) {
    any_high |= ewma_think_ms_ >= config_.think_ms_high;
    all_low &= ewma_think_ms_ < config_.think_ms_high * low;
  }
  if (config_.overrun_streak_high > 0) {
    any_high |= overrun_streak_ >= config_.overrun_streak_high;
    all_low &= overrun_streak_ == 0;
  }
  if (config_.budget_fraction_high > 0.0) {
    any_high |= ewma_budget_ >= config_.budget_fraction_high;
    all_low &= ewma_budget_ < config_.budget_fraction_high * low;
  }
  if (any_high) return HealthVerdict::Overloaded;
  if (all_low) return HealthVerdict::Recovered;
  return HealthVerdict::Neutral;
}

void HealthMonitor::append_state(obs::JsonWriter& w,
                                 std::string_view key) const {
  w.key(key).begin_object();
  w.field("primed", primed_)
      .field("ewma_queue", ewma_queue_)
      .field("ewma_think_ms", ewma_think_ms_)
      .field("ewma_budget", ewma_budget_)
      .field("overrun_streak", overrun_streak_);
  w.end_object();
}

void HealthMonitor::restore_state(const obs::JsonValue& v) {
  SBS_CHECK_MSG(v.is_object(), "health monitor state is not a JSON object");
  auto get = [&](std::string_view key) -> const obs::JsonValue& {
    const obs::JsonValue* f = v.find(key);
    SBS_CHECK_MSG(f != nullptr, "health monitor state lacks " << key);
    return *f;
  };
  primed_ = get("primed").as_bool();
  ewma_queue_ = get("ewma_queue").as_double();
  ewma_think_ms_ = get("ewma_think_ms").as_double();
  ewma_budget_ = get("ewma_budget").as_double();
  overrun_streak_ = static_cast<int>(get("overrun_streak").as_int());
}

}  // namespace sbs::resilience
