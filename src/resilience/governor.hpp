#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/events.hpp"
#include "resilience/health.hpp"

namespace sbs::resilience {

/// The degradation ladder, cheapest-to-run last. Every rung is still a
/// complete, feasible policy — the anytime property lifted from the search
/// to the whole system.
enum class GovLevel : int {
  Full = 0,       ///< the configured search, untouched
  Reduced = 1,    ///< same search, reduced node budget and threads
  Heuristic = 2,  ///< heuristic-only descent: one path, zero discrepancies
  Fallback = 3,   ///< plain LXF backfill, no search at all
};

inline constexpr int kGovLevels = 4;

const char* gov_level_name(GovLevel level);

/// Circuit-breaker policy knobs. Parsed from `--governor-thresholds` by
/// parse_governor_thresholds(); the defaults make a production-ish breaker
/// (think-time and overrun driven), while tests pin queue-depth-only
/// configurations for determinism.
struct GovernorConfig {
  HealthConfig health{.think_ms_high = 250.0, .overrun_streak_high = 3};
  /// Consecutive Overloaded verdicts required to degrade one level —
  /// transient one-decision spikes never move the ladder.
  int trip_decisions = 3;
  /// Non-overloaded decisions at a degraded level before a half-open
  /// recovery probe (one decision run one level up). This is the probe
  /// window: within it the ladder cannot move up, so a degrade is never
  /// immediately undone (no A->B->A flap).
  int probe_after = 25;
  /// Consecutive successful probes required to actually recover a level.
  int promote_probes = 2;
  /// Node-budget scale of GovLevel::Reduced (in (0, 1]).
  double reduced_budget_factor = 0.25;
  /// Ladder level the run starts at (0 = Full). Pinning 3 turns the
  /// governed policy into plain LXF backfill — the fallback-equivalence
  /// acceptance test.
  int initial_level = 0;

  /// Canonical echo of the resolved knobs, for telemetry and metrics.
  std::string spec() const;
};

/// Parses the `--governor-thresholds` value: comma-separated key=value
/// pairs. Keys: queue, think-ms, overrun, budget (watermarks; 0 disables),
/// alpha, recover (monitor smoothing/hysteresis), trip, probe, promote,
/// reduce, level (breaker knobs). Unknown keys throw sbs::Error. An empty
/// spec returns the defaults.
GovernorConfig parse_governor_thresholds(std::string_view spec);

/// The circuit breaker: consumes one health verdict per decision and walks
/// the ladder with hysteresis and half-open probes. Deterministic given
/// the verdict sequence; fully serializable. Usage per decision:
///
///   const GovernorDecision plan = governor.plan();   // level to run at
///   ... run the rung plan.level, measure signals ...
///   governor.report(verdict);                        // may transition
///   ... read governor.transitions() for telemetry ...
class Governor {
 public:
  explicit Governor(const GovernorConfig& config);

  struct Plan {
    GovLevel level = GovLevel::Full;  ///< rung to run this decision
    bool probe = false;               ///< this decision is a half-open probe
  };

  /// Level for the next decision. Emits a "probe" transition when the calm
  /// streak at a degraded level has earned a half-open attempt.
  Plan plan();

  /// Feeds the decision's health verdict; walks the ladder (degrade,
  /// probe_fail, recover) accordingly.
  void report(HealthVerdict verdict);

  GovLevel level() const { return level_; }

  /// Transitions emitted since the last take_transitions() call, in order.
  std::vector<obs::GovernorTransition> take_transitions();

  /// Checkpoint support (breaker state only; the monitor serializes
  /// itself separately).
  void append_state(obs::JsonWriter& w, std::string_view key) const;
  void restore_state(const obs::JsonValue& v);

 private:
  void emit(std::string_view kind, int from, int to);

  GovernorConfig config_;
  GovLevel level_;
  bool probing_ = false;       ///< the decision being planned is a probe
  int unhealthy_streak_ = 0;   ///< consecutive Overloaded verdicts
  int calm_streak_ = 0;        ///< non-Overloaded decisions at this level
  int probe_successes_ = 0;    ///< consecutive successful probes
  std::vector<obs::GovernorTransition> transitions_;
};

}  // namespace sbs::resilience
