#include "resilience/governed_scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace sbs::resilience {

GovernedScheduler::GovernedScheduler(const SearchSchedulerConfig& base,
                                     const GovernorConfig& governor)
    : config_(governor), governor_(governor), monitor_(governor.health) {
  rungs_[0] = std::make_unique<SearchScheduler>(base);
  node_limits_[0] = base.search.node_limit;

  SearchSchedulerConfig reduced = base;
  reduced.search.node_limit = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(base.search.node_limit) *
                                  governor.reduced_budget_factor));
  reduced.search.threads = base.search.threads / 2;
  rungs_[1] = std::make_unique<SearchScheduler>(reduced);
  node_limits_[1] = reduced.search.node_limit;

  SearchSchedulerConfig heuristic = base;
  heuristic.search.node_limit = 1;  // iteration 0 only: the heuristic path
  heuristic.search.threads = 0;
  heuristic.warm_start = false;
  heuristic.refine = false;
  rungs_[2] = std::make_unique<SearchScheduler>(heuristic);
  node_limits_[2] = 1;

  BackfillConfig fallback;
  fallback.priority = PriorityKind::Lxf;
  rungs_[3] = std::make_unique<BackfillScheduler>(fallback);
  node_limits_[3] = 0;
}

std::vector<int> GovernedScheduler::select_jobs(const SchedulerState& state) {
  const Governor::Plan plan = governor_.plan();
  const int rung = static_cast<int>(plan.level);
  Scheduler& policy = *rungs_[rung];

  const SchedulerStats before = policy.stats();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<int> started = policy.select_jobs(state);
  const double think_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - t0)
          .count();
  const SchedulerStats after = policy.stats();

  HealthSignal signal;
  signal.queue_depth = static_cast<double>(state.waiting.size());
  signal.think_ms = think_ms;
  signal.deadline_overrun = after.deadline_hits > before.deadline_hits;
  signal.budget_exhausted =
      node_limits_[rung] > 0 &&
      after.nodes_visited - before.nodes_visited >= node_limits_[rung];
  governor_.report(monitor_.observe(signal));

  // Drain transitions unconditionally so they cannot pile up when telemetry
  // is off; attach them (and the rung annotations) to the decision detail.
  std::vector<obs::GovernorTransition> transitions =
      governor_.take_transitions();
  if (collect_detail_) {
    const DecisionDetail* inner = policy.last_decision();
    detail_ = inner ? *inner : DecisionDetail{};
    detail_.governor_level = rung;
    detail_.governor_probe = plan.probe;
    detail_.governor_transitions = std::move(transitions);
  }
  return started;
}

std::string GovernedScheduler::name() const {
  return "gov(" + rungs_[0]->name() + ")";
}

SchedulerStats GovernedScheduler::stats() const {
  SchedulerStats total;
  for (const auto& rung : rungs_) {
    const SchedulerStats s = rung->stats();
    total.decisions += s.decisions;
    total.nodes_visited += s.nodes_visited;
    total.paths_explored += s.paths_explored;
    total.think_time_us += s.think_time_us;
    total.deadline_hits += s.deadline_hits;
    total.max_think_time_us =
        std::max(total.max_think_time_us, s.max_think_time_us);
    total.max_queue_depth = std::max(total.max_queue_depth, s.max_queue_depth);
    total.cache_hits += s.cache_hits;
    total.cache_misses += s.cache_misses;
    total.cache_invalidations += s.cache_invalidations;
    total.warm_starts += s.warm_starts;
  }
  return total;
}

void GovernedScheduler::set_collect_decision_detail(bool on) {
  collect_detail_ = on;
  if (!on) detail_ = {};
  for (auto& rung : rungs_) rung->set_collect_decision_detail(on);
}

std::string GovernedScheduler::save_state() const {
  obs::JsonWriter w;
  w.begin_object();
  w.field("kind", "governed");
  w.field("spec", config_.spec());
  governor_.append_state(w, "governor");
  monitor_.append_state(w, "monitor");
  w.key("rungs").begin_array();
  for (const auto& rung : rungs_) w.value(rung->save_state());
  w.end_array();
  w.end_object();
  return w.str();
}

void GovernedScheduler::restore_state(std::string_view state) {
  const obs::JsonValue v = obs::parse_json(state);
  SBS_CHECK_MSG(v.is_object(), "governed state is not a JSON object");
  const obs::JsonValue* kind = v.find("kind");
  SBS_CHECK_MSG(kind != nullptr && kind->as_string() == "governed",
                "state is not a governed-scheduler snapshot");
  const obs::JsonValue* spec = v.find("spec");
  SBS_CHECK_MSG(spec != nullptr, "governed state lacks spec");
  SBS_CHECK_MSG(spec->as_string() == config_.spec(),
                "governed state was written with different governor "
                "thresholds: snapshot \""
                    << spec->as_string() << "\" vs configured \""
                    << config_.spec() << "\"");
  const obs::JsonValue* gov = v.find("governor");
  SBS_CHECK_MSG(gov != nullptr, "governed state lacks governor");
  governor_.restore_state(*gov);
  const obs::JsonValue* mon = v.find("monitor");
  SBS_CHECK_MSG(mon != nullptr, "governed state lacks monitor");
  monitor_.restore_state(*mon);
  const obs::JsonValue* rungs = v.find("rungs");
  SBS_CHECK_MSG(rungs != nullptr && rungs->is_array() &&
                    rungs->array.size() == rungs_.size(),
                "governed state lacks the " << rungs_.size()
                                            << " rung snapshots");
  for (std::size_t i = 0; i < rungs_.size(); ++i)
    rungs_[i]->restore_state(rungs->array[i].as_string());
}

}  // namespace sbs::resilience
