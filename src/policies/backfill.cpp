#include "policies/backfill.hpp"

#include <algorithm>
#include <chrono>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace sbs {

BackfillScheduler::BackfillScheduler(BackfillConfig config) : config_(config) {
  SBS_CHECK(config_.reservations >= 0);
}

std::vector<int> BackfillScheduler::select_jobs(const SchedulerState& state) {
  const auto t0 = std::chrono::steady_clock::now();
  ++stats_.decisions;
  stats_.max_queue_depth =
      std::max<std::uint64_t>(stats_.max_queue_depth, state.waiting.size());
  std::vector<int> started;

  if (!state.waiting.empty()) {
    ResourceProfile profile =
        profile_from_running(state.capacity, state.now, state.running);

    const auto order = priority_order(config_.priority, state.waiting,
                                      state.now, config_.wait_weight);
    int reservations_made = 0;
    for (std::size_t idx : order) {
      const WaitingJob& w = state.waiting[idx];
      if (w.job->nodes > state.capacity) continue;  // parked until nodes return
      const Time est = std::max<Time>(w.estimate, 1);
      const Time t = profile.earliest_start(state.now, w.job->nodes, est);
      if (t == state.now) {
        profile.reserve(t, w.job->nodes, est);
        started.push_back(w.job->id);
      } else if (reservations_made < config_.reservations) {
        profile.reserve(t, w.job->nodes, est);
        ++reservations_made;
      }
      // Jobs beyond the reservation quota that cannot start now are skipped;
      // they may only backfill, which the t == now branch covers because the
      // profile already carries every reservation made so far.
    }
  }

  const auto think_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  stats_.think_time_us += think_us;
  stats_.max_think_time_us = std::max(stats_.max_think_time_us, think_us);
  return started;
}

std::string BackfillScheduler::save_state() const {
  obs::JsonWriter w;
  w.begin_object();
  w.field("kind", "backfill");
  append_stats_json(w, "stats", stats_);
  w.end_object();
  return w.str();
}

void BackfillScheduler::restore_state(std::string_view state) {
  const obs::JsonValue v = obs::parse_json(state);
  SBS_CHECK_MSG(v.is_object(), "backfill state is not a JSON object");
  const obs::JsonValue* kind = v.find("kind");
  SBS_CHECK_MSG(kind != nullptr && kind->as_string() == "backfill",
                "state is not a backfill snapshot");
  const obs::JsonValue* stats = v.find("stats");
  SBS_CHECK_MSG(stats != nullptr, "backfill state lacks stats");
  stats_ = stats_from_json(*stats);
}

std::string BackfillScheduler::name() const {
  std::string n = priority_name(config_.priority) + "-backfill";
  if (config_.reservations != 1) {
    if (config_.reservations >= kConservativeReservations)
      n += "(cons)";
    else
      n += "(res=" + std::to_string(config_.reservations) + ")";
  }
  return n;
}

}  // namespace sbs
