#include "policies/slack_backfill.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sbs {

SlackBackfillScheduler::SlackBackfillScheduler(SlackBackfillConfig config)
    : config_(config) {
  SBS_CHECK(config_.slack_factor >= 0.0);
  SBS_CHECK(config_.min_slack >= 0);
  SBS_CHECK(config_.max_protected >= 1);
}

Time SlackBackfillScheduler::deadline_of(int job_id) const {
  auto it = deadline_.find(job_id);
  return it == deadline_.end() ? 0 : it->second;
}

std::vector<int> SlackBackfillScheduler::select_jobs(
    const SchedulerState& state) {
  ++stats_.decisions;
  std::vector<int> started;
  if (state.waiting.empty()) return started;

  ResourceProfile profile =
      profile_from_running(state.capacity, state.now, state.running);

  // Promise deadlines to newly seen jobs from the current FCFS projection,
  // and drop stale entries of jobs that already left the queue.
  {
    ResourceProfile projection = profile;
    std::unordered_map<int, Time> fresh;
    for (const WaitingJob& w : state.waiting) {
      // Parked (wider than the degraded machine): no projectable start, so
      // no promise — it gets a fresh one when failed nodes return.
      if (w.job->nodes > state.capacity) continue;
      const Time est = std::max<Time>(w.estimate, 1);
      const Time t = projection.earliest_start(state.now, w.job->nodes, est);
      projection.reserve(t, w.job->nodes, est);
      auto it = deadline_.find(w.job->id);
      if (it != deadline_.end()) {
        fresh.emplace(w.job->id, it->second);
      } else {
        const Time slack = std::max<Time>(
            config_.min_slack,
            static_cast<Time>(std::llround(
                config_.slack_factor * static_cast<double>(est))));
        fresh.emplace(w.job->id, t + slack);
      }
    }
    deadline_ = std::move(fresh);
  }

  // Greedy deadline-protected packing: start any job that fits now unless
  // doing so pushes a protected job past its promise. "Past its promise"
  // is judged against a baseline FCFS projection from the same profile —
  // a promise the backlog has already made unmeetable cannot veto
  // progress (otherwise an idle machine could stall), only additional
  // delay caused by the candidate can.
  std::vector<char> taken(state.waiting.size(), 0);
  const std::size_t horizon =
      std::min(config_.max_protected, state.waiting.size());

  auto project = [&](const ResourceProfile& from, std::size_t skip,
                     std::vector<Time>& starts) {
    ResourceProfile projection = from;
    starts.assign(horizon, 0);
    for (std::size_t j = 0; j < horizon; ++j) {
      if (j == skip || taken[j]) continue;
      const WaitingJob& other = state.waiting[j];
      if (other.job->nodes > state.capacity) continue;  // parked
      const Time oest = std::max<Time>(other.estimate, 1);
      const Time t =
          projection.earliest_start(state.now, other.job->nodes, oest);
      projection.reserve(t, other.job->nodes, oest);
      starts[j] = t;
    }
  };

  std::vector<Time> baseline, with_candidate;
  project(profile, state.waiting.size(), baseline);

  for (std::size_t i = 0; i < state.waiting.size(); ++i) {
    const WaitingJob& w = state.waiting[i];
    const Time est = std::max<Time>(w.estimate, 1);
    if (!profile.fits(state.now, w.job->nodes, est)) continue;

    ResourceProfile candidate = profile;
    candidate.reserve(state.now, w.job->nodes, est);
    project(candidate, i, with_candidate);

    bool ok = true;
    for (std::size_t j = 0; j < horizon && ok; ++j) {
      if (j == i || taken[j]) continue;
      const auto dl = deadline_.find(state.waiting[j].job->id);
      if (dl == deadline_.end()) continue;  // parked job: no promise to keep
      const Time allowed = std::max(dl->second, baseline[j]);
      if (with_candidate[j] > allowed) ok = false;
    }
    if (!ok) continue;

    profile = std::move(candidate);
    taken[i] = 1;
    started.push_back(w.job->id);
    deadline_.erase(w.job->id);
    project(profile, state.waiting.size(), baseline);
  }
  return started;
}

}  // namespace sbs
