#include "policies/lookahead.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace sbs {

LookaheadScheduler::LookaheadScheduler(LookaheadConfig config)
    : config_(config) {
  SBS_CHECK(config_.max_candidates >= 1 && config_.max_candidates <= 64);
}

std::vector<int> LookaheadScheduler::select_jobs(const SchedulerState& state) {
  ++stats_.decisions;
  std::vector<int> started;
  if (state.waiting.empty()) return started;

  ResourceProfile profile =
      profile_from_running(state.capacity, state.now, state.running);

  // Jobs wider than the (possibly fault-degraded) machine are parked: they
  // cannot start, anchor the reservation, or backfill until nodes return.
  std::vector<std::size_t> eligible;
  eligible.reserve(state.waiting.size());
  for (std::size_t i = 0; i < state.waiting.size(); ++i)
    if (state.waiting[i].job->nodes <= state.capacity) eligible.push_back(i);
  if (eligible.empty()) return started;

  // The waiting span is already in FCFS order. Start the FCFS prefix.
  std::size_t head = 0;
  while (head < eligible.size()) {
    const WaitingJob& w = state.waiting[eligible[head]];
    const Time est = std::max<Time>(w.estimate, 1);
    if (profile.earliest_start(state.now, w.job->nodes, est) != state.now)
      break;
    profile.reserve(state.now, w.job->nodes, est);
    started.push_back(w.job->id);
    ++head;
  }
  if (head >= eligible.size()) return started;

  // Reservation for the head job at its shadow time.
  const WaitingJob& h = state.waiting[eligible[head]];
  const Time head_est = std::max<Time>(h.estimate, 1);
  const Time shadow =
      profile.earliest_start(state.now, h.job->nodes, head_est);
  const int extra = profile.free_at(shadow) - h.job->nodes;
  profile.reserve(shadow, h.job->nodes, head_est);
  const int free_now = profile.free_at(state.now);
  if (free_now <= 0) return started;

  // Candidates: remaining jobs that individually fit the two constraints.
  struct Candidate {
    int id;
    int nodes;
    bool crosses;  // estimated end crosses the shadow time
  };
  std::vector<Candidate> cand;
  for (std::size_t i = head + 1;
       i < eligible.size() && cand.size() < config_.max_candidates; ++i) {
    const WaitingJob& w = state.waiting[eligible[i]];
    const Time est = std::max<Time>(w.estimate, 1);
    const bool crosses = state.now + est > shadow;
    if (w.job->nodes > free_now) continue;
    if (crosses && w.job->nodes > extra) continue;
    cand.push_back(Candidate{w.job->id, w.job->nodes, crosses});
  }
  if (cand.empty()) return started;

  // 2D subset-selection DP maximizing nodes in use now:
  //   a = total nodes of chosen jobs (<= free_now)
  //   b = nodes of chosen jobs crossing the shadow time (<= extra)
  const int F = free_now;
  const int E = std::max(0, std::min(extra, free_now));
  const std::size_t cells = static_cast<std::size_t>(F + 1) * (E + 1);
  std::vector<std::uint64_t> mask(cells, 0);
  std::vector<char> reach(cells, 0);
  auto at = [&](int a, int b) { return static_cast<std::size_t>(a) * (E + 1) + b; };
  reach[at(0, 0)] = 1;

  for (std::size_t c = 0; c < cand.size(); ++c) {
    const int n = cand[c].nodes;
    const int eb = cand[c].crosses ? n : 0;
    for (int a = F - n; a >= 0; --a) {
      for (int b = E - eb; b >= 0; --b) {
        if (!reach[at(a, b)]) continue;
        const std::size_t to = at(a + n, b + eb);
        if (!reach[to]) {
          reach[to] = 1;
          mask[to] = mask[at(a, b)] | (std::uint64_t{1} << c);
        }
      }
    }
  }

  int best_a = 0, best_b = 0;
  for (int a = F; a >= 0 && best_a == 0; --a)
    for (int b = 0; b <= E; ++b)
      if (reach[at(a, b)]) {
        best_a = a;
        best_b = b;
        break;
      }
  if (best_a == 0) return started;

  const std::uint64_t chosen = mask[at(best_a, best_b)];
  for (std::size_t c = 0; c < cand.size(); ++c) {
    if (!(chosen >> c & 1)) continue;
    // The two-constraint argument guarantees the set fits; keep a defensive
    // check so an inconsistency surfaces as a skipped job, not a crash.
    auto it = std::find_if(
        state.waiting.begin(), state.waiting.end(),
        [&](const WaitingJob& w) { return w.job->id == cand[c].id; });
    const Time est = std::max<Time>(it->estimate, 1);
    if (!profile.fits(state.now, it->job->nodes, est)) continue;
    profile.reserve(state.now, it->job->nodes, est);
    started.push_back(cand[c].id);
  }
  return started;
}

}  // namespace sbs
