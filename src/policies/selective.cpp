#include "policies/selective.hpp"

#include <algorithm>

#include "policies/priority.hpp"
#include "util/error.hpp"

namespace sbs {

SelectiveBackfillScheduler::SelectiveBackfillScheduler(SelectiveConfig config)
    : config_(config) {}

double SelectiveBackfillScheduler::current_threshold() const {
  if (config_.threshold > 0.0) return config_.threshold;
  if (started_jobs_ == 0) return config_.min_threshold;
  return std::max(config_.min_threshold,
                  xfactor_sum_ / static_cast<double>(started_jobs_));
}

std::vector<int> SelectiveBackfillScheduler::select_jobs(
    const SchedulerState& state) {
  ++stats_.decisions;
  std::vector<int> started;
  if (state.waiting.empty()) return started;

  ResourceProfile profile =
      profile_from_running(state.capacity, state.now, state.running);
  const double threshold = current_threshold();

  // FCFS consideration order; reservation only for starved jobs.
  for (const WaitingJob& w : state.waiting) {
    if (w.job->nodes > state.capacity) continue;  // parked until nodes return
    const Time est = std::max<Time>(w.estimate, 1);
    const Time t = profile.earliest_start(state.now, w.job->nodes, est);
    const double xf = current_slowdown(w, state.now);
    if (t == state.now) {
      profile.reserve(t, w.job->nodes, est);
      started.push_back(w.job->id);
      xfactor_sum_ += xf;
      ++started_jobs_;
    } else if (xf >= threshold) {
      profile.reserve(t, w.job->nodes, est);
    }
  }
  return started;
}

}  // namespace sbs
