#pragma once

#include <unordered_map>

#include "sim/scheduler.hpp"

namespace sbs {

/// Slack-based backfill [Talby & Feitelson, IPPS 1999] (paper §3.2): when
/// a job first joins the queue it is promised a start time — its earliest
/// start under the then-current FCFS projection — plus a slack allowance.
/// Any job may backfill, in any order, as long as no waiting job's
/// projected start is pushed past its promise + slack. Slack trades
/// utilization (more backfilling) against guarantees (bounded delay):
/// slack 0 is conservative backfill, large slack approaches aggressive
/// EASY.
struct SlackBackfillConfig {
  /// Slack given to each job, as a multiple of its runtime estimate.
  double slack_factor = 1.0;
  /// Lower bound on the slack so short jobs are not promised the moon.
  Time min_slack = kHour;
  /// Deadline re-verification is limited to the first `max_protected`
  /// queued jobs (FCFS order) to bound the per-event cost; jobs beyond
  /// the horizon are protected the next time they move up.
  std::size_t max_protected = 64;
};

class SlackBackfillScheduler final : public Scheduler {
 public:
  explicit SlackBackfillScheduler(SlackBackfillConfig config = {});

  std::vector<int> select_jobs(const SchedulerState& state) override;
  std::string name() const override { return "Slack-backfill"; }
  SchedulerStats stats() const override { return stats_; }

  /// Deadline promised to a queued job; 0 if the job is unknown (tests).
  Time deadline_of(int job_id) const;

 private:
  SlackBackfillConfig config_;
  SchedulerStats stats_;
  std::unordered_map<int, Time> deadline_;  ///< job id -> latest start
};

}  // namespace sbs
