#pragma once

#include "sim/scheduler.hpp"

namespace sbs {

/// Lookahead backfill [Shmueli & Feitelson, JSSPP 2003], simplified to the
/// EASY shadow-time formulation: the head FCFS job holds a reservation at
/// shadow time t_s; among the remaining jobs that individually fit now, a
/// dynamic program picks the subset maximizing nodes in use, subject to
///   (a) total nodes <= free nodes now, and
///   (b) nodes of jobs whose estimated end crosses t_s <= the "extra"
///       nodes left over once the head job starts,
/// which is exactly the pair of constraints that keeps the reservation
/// intact. The paper (§3.2) found this to behave like FCFS-backfill; the
/// ablation bench verifies that shape.
struct LookaheadConfig {
  /// Cap on DP candidates (FCFS order) to bound the O(n * F * E) table.
  std::size_t max_candidates = 64;
};

class LookaheadScheduler final : public Scheduler {
 public:
  explicit LookaheadScheduler(LookaheadConfig config = {});

  std::vector<int> select_jobs(const SchedulerState& state) override;
  std::string name() const override { return "Lookahead"; }
  SchedulerStats stats() const override { return stats_; }

 private:
  LookaheadConfig config_;
  SchedulerStats stats_;
};

}  // namespace sbs
