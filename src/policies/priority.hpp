#pragma once

#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace sbs {

/// Job priority functions used by the backfill family (paper §3.2).
enum class PriorityKind {
  Fcfs,     ///< first come, first served
  Lxf,      ///< largest current (bounded) slowdown first
  Sjf,      ///< shortest estimated runtime first
  LxfWait,  ///< LXF plus a small weight on current wait ("LXF&W")
};

std::string priority_name(PriorityKind kind);

/// Current bounded slowdown of a waiting job at time `now`:
/// (wait + max(estimate, 1 min)) / max(estimate, 1 min).
double current_slowdown(const WaitingJob& w, Time now);

/// Sort key — SMALLER key means HIGHER priority (scheduled earlier).
/// `wait_weight` is the LXF&W wait coefficient in 1/hours.
double priority_key(PriorityKind kind, const WaitingJob& w, Time now,
                    double wait_weight = 0.02);

/// Indices of `waiting` sorted by decreasing priority (stable: ties keep
/// FCFS order since the simulator hands the queue in submit order).
std::vector<std::size_t> priority_order(PriorityKind kind,
                                        std::span<const WaitingJob> waiting,
                                        Time now, double wait_weight = 0.02);

}  // namespace sbs
