#pragma once

#include "sim/scheduler.hpp"

namespace sbs {

/// Selective-backfill [Srinivasan et al., JSSPP 2002]: jobs are considered
/// in FCFS order, but only jobs whose expansion factor
/// (wait + estimate) / estimate has crossed a starvation threshold receive
/// reservations; everything else backfills freely. With an adaptive
/// threshold (the running average expansion factor of started jobs) the
/// policy tracks queue pressure, which is why the paper found it to behave
/// like LXF-backfill.
struct SelectiveConfig {
  /// Fixed expansion-factor threshold; <= 0 selects the adaptive threshold.
  double threshold = 0.0;
  /// Adaptive threshold floor — avoids giving every job a reservation in
  /// an empty system.
  double min_threshold = 1.5;
};

class SelectiveBackfillScheduler final : public Scheduler {
 public:
  explicit SelectiveBackfillScheduler(SelectiveConfig config = {});

  std::vector<int> select_jobs(const SchedulerState& state) override;
  std::string name() const override { return "Selective-backfill"; }
  SchedulerStats stats() const override { return stats_; }

  double current_threshold() const;

 private:
  SelectiveConfig config_;
  SchedulerStats stats_;
  // Running mean of the expansion factor observed at job start times.
  double xfactor_sum_ = 0.0;
  std::size_t started_jobs_ = 0;
};

}  // namespace sbs
