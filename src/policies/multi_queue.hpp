#pragma once

#include <vector>

#include "sim/scheduler.hpp"

namespace sbs {

/// Queue-based priority scheduling (paper §1): "Under queue-based
/// priority schedulers (e.g., PBS, LSF), the administrators can give
/// higher priority to certain queues (e.g., short jobs). However, jobs in
/// low-priority queues may starve." Jobs are routed by estimated runtime
/// into queues; queues are served in strict priority order (all of queue
/// 0 before any of queue 1, FCFS within a queue), with backfill below the
/// protected head job. An optional aging escape hatch promotes jobs whose
/// wait exceeds a limit, which is exactly the kind of manual knob the
/// paper's goal-oriented approach replaces.
struct MultiQueueConfig {
  /// Upper estimated-runtime bound of each queue except the last (which
  /// is unbounded). Defaults to short (<= 1 h) / medium (<= 5 h) / long.
  std::vector<Time> queue_bounds = {kHour, 5 * kHour};
  int reservations = 1;
  /// Wait beyond which a job is promoted to the top queue; 0 disables
  /// aging (the starvation-prone textbook configuration).
  Time aging_limit = 0;
};

class MultiQueueScheduler final : public Scheduler {
 public:
  explicit MultiQueueScheduler(MultiQueueConfig config = {});

  std::vector<int> select_jobs(const SchedulerState& state) override;
  std::string name() const override;
  SchedulerStats stats() const override { return stats_; }

  /// Queue index a job with this estimate lands in (0 = highest priority).
  std::size_t queue_of(Time estimate) const;

 private:
  MultiQueueConfig config_;
  SchedulerStats stats_;
};

}  // namespace sbs
