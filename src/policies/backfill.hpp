#pragma once

#include "policies/priority.hpp"
#include "sim/scheduler.hpp"

namespace sbs {

/// Priority backfill (paper §3.2): jobs are considered in priority order;
/// the first `reservations` jobs that cannot start immediately receive a
/// scheduled start time (a reservation in the availability profile); every
/// other job may backfill — start now — only if doing so does not delay
/// any reservation. With FCFS priority and reservations == 1 this is the
/// classic EASY backfill; the paper uses exactly one reservation for both
/// FCFS-backfill and LXF-backfill.
/// Reservation count meaning "every queued job" — conservative backfill:
/// a job may start early only if it delays nobody's projected start.
inline constexpr int kConservativeReservations = 1 << 20;

struct BackfillConfig {
  PriorityKind priority = PriorityKind::Fcfs;
  int reservations = 1;       ///< number of priority jobs given start times
                              ///  (kConservativeReservations = all of them)
  double wait_weight = 0.02;  ///< LXF&W wait coefficient (1/hours)
};

class BackfillScheduler final : public Scheduler {
 public:
  explicit BackfillScheduler(BackfillConfig config = {});

  std::vector<int> select_jobs(const SchedulerState& state) override;
  std::string name() const override;
  SchedulerStats stats() const override { return stats_; }

  /// Checkpoint support: backfill keeps no cross-event state beyond the
  /// cumulative stats, so that is all that travels.
  std::string save_state() const override;
  void restore_state(std::string_view state) override;

 private:
  BackfillConfig config_;
  SchedulerStats stats_;
};

}  // namespace sbs
