#include "policies/weighted_priority.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/error.hpp"

namespace sbs {

WeightedPriorityScheduler::WeightedPriorityScheduler(
    WeightedPriorityConfig config)
    : config_(config) {
  SBS_CHECK(config_.reservations >= 0);
}

double WeightedPriorityScheduler::priority_of(const WaitingJob& w,
                                              Time now) const {
  const double est =
      static_cast<double>(std::max<Time>(w.estimate, kMinute));
  const double wait = static_cast<double>(now - w.job->submit);
  const double wait_h = wait / kHour;
  const double xfactor = (wait + est) / est;
  const double est_h = est / kHour;
  return config_.w_wait * wait_h + config_.w_xfactor * xfactor -
         config_.w_runtime * est_h +
         config_.w_nodes * static_cast<double>(w.job->nodes);
}

std::vector<int> WeightedPriorityScheduler::select_jobs(
    const SchedulerState& state) {
  ++stats_.decisions;
  std::vector<int> started;
  if (state.waiting.empty()) return started;

  std::vector<std::size_t> order(state.waiting.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> priority(state.waiting.size());
  for (std::size_t i = 0; i < state.waiting.size(); ++i)
    priority[i] = priority_of(state.waiting[i], state.now);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return priority[a] > priority[b];  // higher priority first
  });

  ResourceProfile profile =
      profile_from_running(state.capacity, state.now, state.running);
  int reservations_made = 0;
  for (std::size_t idx : order) {
    const WaitingJob& w = state.waiting[idx];
    if (w.job->nodes > state.capacity) continue;  // parked until nodes return
    const Time est = std::max<Time>(w.estimate, 1);
    const Time t = profile.earliest_start(state.now, w.job->nodes, est);
    if (t == state.now) {
      profile.reserve(t, w.job->nodes, est);
      started.push_back(w.job->id);
    } else if (reservations_made < config_.reservations) {
      profile.reserve(t, w.job->nodes, est);
      ++reservations_made;
    }
  }
  return started;
}

std::string WeightedPriorityScheduler::name() const {
  std::ostringstream os;
  os << "Weighted(w=" << config_.w_wait << ",x=" << config_.w_xfactor
     << ",t=" << config_.w_runtime << ",n=" << config_.w_nodes << ")";
  return os.str();
}

}  // namespace sbs
