#include "policies/priority.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace sbs {

std::string priority_name(PriorityKind kind) {
  switch (kind) {
    case PriorityKind::Fcfs: return "FCFS";
    case PriorityKind::Lxf: return "LXF";
    case PriorityKind::Sjf: return "SJF";
    case PriorityKind::LxfWait: return "LXF&W";
  }
  throw Error("unknown priority kind");
}

double current_slowdown(const WaitingJob& w, Time now) {
  const double est =
      static_cast<double>(std::max<Time>(w.estimate, kMinute));
  const double wait = static_cast<double>(now - w.job->submit);
  return (wait + est) / est;
}

double priority_key(PriorityKind kind, const WaitingJob& w, Time now,
                    double wait_weight) {
  switch (kind) {
    case PriorityKind::Fcfs:
      return static_cast<double>(w.job->submit);
    case PriorityKind::Lxf:
      return -current_slowdown(w, now);
    case PriorityKind::Sjf:
      return static_cast<double>(w.estimate);
    case PriorityKind::LxfWait:
      return -(current_slowdown(w, now) +
               wait_weight * to_hours(now - w.job->submit));
  }
  throw Error("unknown priority kind");
}

std::vector<std::size_t> priority_order(PriorityKind kind,
                                        std::span<const WaitingJob> waiting,
                                        Time now, double wait_weight) {
  std::vector<std::size_t> order(waiting.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> keys(waiting.size());
  for (std::size_t i = 0; i < waiting.size(); ++i)
    keys[i] = priority_key(kind, waiting[i], now, wait_weight);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
  return order;
}

}  // namespace sbs
