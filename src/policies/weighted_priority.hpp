#pragma once

#include "sim/scheduler.hpp"

namespace sbs {

/// Maui-style weighted-priority backfill (paper §1): "The job priority is
/// a weighted sum of job measures, such as the current job waiting time,
/// estimated run time, and requested number of processors. The weights
/// can be adjusted to change the relative importance of the measures."
/// This is the hand-tuned baseline the goal-oriented search replaces: it
/// works when the weights happen to fit the workload and silently
/// degrades when the workload drifts (bench_ablation_weights shows the
/// sensitivity).
///
/// priority = w_wait    * wait_hours
///          + w_xfactor * (wait + estimate) / estimate
///          - w_runtime * estimated_hours
///          + w_nodes   * requested_nodes
/// Higher priority is served first; scheduling is standard backfill with
/// `reservations` protected jobs.
struct WeightedPriorityConfig {
  double w_wait = 1.0;      ///< reward for waiting (fairness / aging)
  double w_xfactor = 0.0;   ///< reward for high expansion factor
  double w_runtime = 0.0;   ///< penalty for long estimates (favor short)
  double w_nodes = 0.0;     ///< reward for wide jobs (favor large-resource)
  int reservations = 1;
};

class WeightedPriorityScheduler final : public Scheduler {
 public:
  explicit WeightedPriorityScheduler(WeightedPriorityConfig config = {});

  std::vector<int> select_jobs(const SchedulerState& state) override;
  std::string name() const override;
  SchedulerStats stats() const override { return stats_; }

  /// The priority value the policy assigns to a job at time `now`.
  double priority_of(const WaitingJob& w, Time now) const;

 private:
  WeightedPriorityConfig config_;
  SchedulerStats stats_;
};

}  // namespace sbs
