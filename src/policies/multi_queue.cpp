#include "policies/multi_queue.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace sbs {

MultiQueueScheduler::MultiQueueScheduler(MultiQueueConfig config)
    : config_(std::move(config)) {
  SBS_CHECK(config_.reservations >= 0);
  SBS_CHECK(std::is_sorted(config_.queue_bounds.begin(),
                           config_.queue_bounds.end()));
}

std::size_t MultiQueueScheduler::queue_of(Time estimate) const {
  for (std::size_t q = 0; q < config_.queue_bounds.size(); ++q)
    if (estimate <= config_.queue_bounds[q]) return q;
  return config_.queue_bounds.size();
}

std::vector<int> MultiQueueScheduler::select_jobs(const SchedulerState& state) {
  ++stats_.decisions;
  std::vector<int> started;
  if (state.waiting.empty()) return started;

  // Sort by (queue, submit); aged jobs jump to queue 0.
  std::vector<std::size_t> order(state.waiting.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<std::size_t> queue(state.waiting.size());
  for (std::size_t i = 0; i < state.waiting.size(); ++i) {
    const WaitingJob& w = state.waiting[i];
    queue[i] = queue_of(std::max<Time>(w.estimate, 1));
    if (config_.aging_limit > 0 &&
        state.now - w.job->submit >= config_.aging_limit)
      queue[i] = 0;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (queue[a] != queue[b]) return queue[a] < queue[b];
                     return state.waiting[a].job->submit <
                            state.waiting[b].job->submit;
                   });

  ResourceProfile profile =
      profile_from_running(state.capacity, state.now, state.running);
  int reservations_made = 0;
  for (std::size_t idx : order) {
    const WaitingJob& w = state.waiting[idx];
    if (w.job->nodes > state.capacity) continue;  // parked until nodes return
    const Time est = std::max<Time>(w.estimate, 1);
    const Time t = profile.earliest_start(state.now, w.job->nodes, est);
    if (t == state.now) {
      profile.reserve(t, w.job->nodes, est);
      started.push_back(w.job->id);
    } else if (reservations_made < config_.reservations) {
      profile.reserve(t, w.job->nodes, est);
      ++reservations_made;
    }
  }
  return started;
}

std::string MultiQueueScheduler::name() const {
  std::string n = "MultiQueue(" +
                  std::to_string(config_.queue_bounds.size() + 1) + "q";
  if (config_.aging_limit > 0) n += ",aged";
  return n + ")";
}

}  // namespace sbs
