#include "exp/policy_factory.hpp"

#include <cstdlib>
#include <optional>

#include "policies/lookahead.hpp"
#include "policies/multi_queue.hpp"
#include "policies/selective.hpp"
#include "policies/slack_backfill.hpp"
#include "policies/weighted_priority.hpp"
#include "resilience/governed_scheduler.hpp"
#include "util/error.hpp"

namespace sbs {

std::unique_ptr<Scheduler> make_backfill(PriorityKind priority,
                                         int reservations) {
  BackfillConfig cfg;
  cfg.priority = priority;
  cfg.reservations = reservations;
  return std::make_unique<BackfillScheduler>(cfg);
}

std::unique_ptr<Scheduler> make_selective_backfill() {
  return std::make_unique<SelectiveBackfillScheduler>();
}

std::unique_ptr<Scheduler> make_lookahead() {
  return std::make_unique<LookaheadScheduler>();
}

std::unique_ptr<Scheduler> make_search_policy(SearchAlgo algo,
                                              Branching branching,
                                              BoundSpec bound,
                                              std::size_t node_limit,
                                              bool prune, double deadline_ms,
                                              std::size_t threads, bool cache,
                                              bool warm_start, bool simd,
                                              bool dominance) {
  SearchSchedulerConfig cfg;
  cfg.search.algo = algo;
  cfg.search.branching = branching;
  cfg.search.node_limit = node_limit;
  cfg.search.prune = prune;
  cfg.search.deadline_ms = deadline_ms;
  cfg.search.threads = threads;
  cfg.search.cache = cache;
  cfg.search.simd = simd;
  cfg.search.dominance = dominance;
  cfg.bound = bound;
  cfg.warm_start = warm_start;
  return std::make_unique<SearchScheduler>(cfg);
}

namespace {

/// The fixed-name (non-search) policies; nullptr when `spec` is not one.
std::unique_ptr<Scheduler> make_named_policy(const std::string& spec) {
  if (spec == "FCFS-BF") return make_backfill(PriorityKind::Fcfs);
  if (spec == "FCFS-cons-BF")
    return make_backfill(PriorityKind::Fcfs, kConservativeReservations);
  if (spec == "LXF-BF") return make_backfill(PriorityKind::Lxf);
  if (spec == "SJF-BF") return make_backfill(PriorityKind::Sjf);
  if (spec == "LXF&W-BF") return make_backfill(PriorityKind::LxfWait);
  if (spec == "Selective-BF") return make_selective_backfill();
  if (spec == "Lookahead") return make_lookahead();
  if (spec == "Slack-BF") return std::make_unique<SlackBackfillScheduler>();
  if (spec == "MultiQueue")
    return std::make_unique<MultiQueueScheduler>();
  if (spec == "MultiQueue-aged") {
    MultiQueueConfig cfg;
    cfg.aging_limit = 24 * kHour;
    return std::make_unique<MultiQueueScheduler>(cfg);
  }
  if (spec == "Weighted-BF")
    return std::make_unique<WeightedPriorityScheduler>();
  return nullptr;
}

}  // namespace

std::unique_ptr<Scheduler> make_policy(
    const std::string& spec, std::size_t node_limit, double deadline_ms,
    std::size_t threads, bool cache, bool warm_start,
    const resilience::GovernorConfig* governor, bool simd, bool dominance) {
  if (auto named = make_named_policy(spec)) {
    SBS_CHECK_MSG(governor == nullptr,
                  "--governor requires a search policy spec; \""
                      << spec << "\" has no search to degrade");
    return named;
  }

  // Search policies: "<algo>/<branching>/<bound>[+ls][+fs]" (suffixes in
  // any order).
  std::string body = spec;
  bool refine = false;
  bool fairshare = false;
  for (bool stripped = true; stripped;) {
    stripped = false;
    if (body.size() > 3 && body.substr(body.size() - 3) == "+ls") {
      refine = stripped = true;
      body = body.substr(0, body.size() - 3);
    } else if (body.size() > 3 && body.substr(body.size() - 3) == "+fs") {
      fairshare = stripped = true;
      body = body.substr(0, body.size() - 3);
    }
  }
  const std::string& spec_body = body;
  const auto slash1 = spec_body.find('/');
  const auto slash2 =
      spec_body.find('/', slash1 == std::string::npos ? 0 : slash1 + 1);
  if (slash1 == std::string::npos || slash2 == std::string::npos)
    throw Error("unrecognized policy spec: " + spec);

  const std::string algo_s = spec_body.substr(0, slash1);
  const std::string branch_s =
      spec_body.substr(slash1 + 1, slash2 - slash1 - 1);
  const std::string bound_s = spec_body.substr(slash2 + 1);

  SearchAlgo algo;
  if (algo_s == "DDS") algo = SearchAlgo::Dds;
  else if (algo_s == "LDS") algo = SearchAlgo::Lds;
  else if (algo_s == "DFS") algo = SearchAlgo::Dfs;
  else throw Error("unknown search algorithm in spec: " + spec);

  Branching branching;
  if (branch_s == "fcfs") branching = Branching::Fcfs;
  else if (branch_s == "lxf") branching = Branching::Lxf;
  else throw Error("unknown branching heuristic in spec: " + spec);

  BoundSpec bound;
  if (bound_s == "dynB") {
    bound = BoundSpec::dynamic_bound();
  } else if (bound_s.rfind("w=", 0) == 0) {
    const double hours = std::strtod(bound_s.c_str() + 2, nullptr);
    SBS_CHECK_MSG(hours >= 0.0, "bad fixed bound in spec: " << spec);
    bound = BoundSpec::fixed_bound(from_hours(hours));
  } else if (bound_s == "wT") {
    bound = BoundSpec::per_runtime(4 * kHour, 5.0, kHour, 300 * kHour);
  } else {
    throw Error("unknown bound in spec: " + spec);
  }
  SearchSchedulerConfig cfg;
  cfg.search.algo = algo;
  cfg.search.branching = branching;
  cfg.search.node_limit = node_limit;
  cfg.search.deadline_ms = deadline_ms;
  cfg.search.threads = threads;
  cfg.search.cache = cache;
  cfg.search.simd = simd;
  cfg.search.dominance = dominance;
  cfg.bound = bound;
  cfg.refine = refine;
  cfg.fairshare = fairshare;
  cfg.warm_start = warm_start;
  if (governor != nullptr)
    return std::make_unique<resilience::GovernedScheduler>(cfg, *governor);
  return std::make_unique<SearchScheduler>(cfg);
}

std::function<std::unique_ptr<Scheduler>(std::size_t)> make_policy_factory(
    const std::string& spec, std::size_t node_limit, double deadline_ms,
    std::size_t threads, bool cache, bool warm_start,
    const resilience::GovernorConfig* governor, bool simd, bool dominance) {
  // Validate once up front so a bad spec (or governor/spec mismatch) fails
  // at federation setup, not when member k is constructed.
  make_policy(spec, node_limit, deadline_ms, threads, cache, warm_start,
              governor, simd, dominance);
  std::optional<resilience::GovernorConfig> gov;
  if (governor != nullptr) gov = *governor;
  return [=](std::size_t) {
    return make_policy(spec, node_limit, deadline_ms, threads, cache,
                       warm_start, gov ? &*gov : nullptr, simd, dominance);
  };
}

}  // namespace sbs
