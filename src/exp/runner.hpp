#pragma once

#include <string>
#include <vector>

#include "jobs/trace.hpp"
#include "metrics/summary.hpp"
#include "sim/simulator.hpp"

namespace sbs::resilience {
struct GovernorConfig;
}  // namespace sbs::resilience

namespace sbs {

/// Per-month excessive-wait thresholds, derived from the month's
/// FCFS-backfill run (paper §4): the maximum and the 98th-percentile wait.
struct Thresholds {
  Time max_wait = 0;
  Time p98_wait = 0;
};

/// Runs FCFS-backfill on the trace and extracts the thresholds.
Thresholds fcfs_thresholds(const Trace& trace, const SimConfig& sim = {});

/// One (month, policy) evaluation — everything the paper's figures plot.
struct MonthEval {
  std::string month;
  std::string policy;
  Summary summary;
  double avg_queue_length = 0.0;
  ExcessiveWaitStats e_max;  ///< w.r.t. the month's FCFS-backfill max wait
  ExcessiveWaitStats e_p98;  ///< w.r.t. its 98th-percentile wait
  SchedulerStats sched;
  FaultStats faults;                 ///< all zero on a fault-free run
  std::vector<JobOutcome> outcomes;  ///< retained only when requested
};

/// Simulates `trace` under `scheduler` and aggregates the measures against
/// the given thresholds. Set `keep_outcomes` for per-class analyses.
MonthEval evaluate_policy(const Trace& trace, Scheduler& scheduler,
                          const Thresholds& thresholds,
                          const SimConfig& sim = {},
                          bool keep_outcomes = false);

/// Convenience wrapper: builds the policy by spec string (see
/// make_policy), runs it, and returns the evaluation. `deadline_ms`
/// (negative = no wall-clock deadline), `threads` (parallel search
/// workers, 0 = sequential), `cache` (incremental schedule builder) and
/// `warm_start` (cross-event incumbent carry), `simd` (vectorized
/// earliest-start kernels) and `dominance` (twin skip + frozen-bound cut)
/// apply to search policies only; a non-null `governor` wraps the search
/// in the overload governor.
MonthEval evaluate_spec(const Trace& trace, const std::string& policy_spec,
                        std::size_t node_limit, const Thresholds& thresholds,
                        const SimConfig& sim = {}, bool keep_outcomes = false,
                        double deadline_ms = -1.0, std::size_t threads = 0,
                        bool cache = true, bool warm_start = false,
                        const resilience::GovernorConfig* governor = nullptr,
                        bool simd = true, bool dominance = true);

}  // namespace sbs
