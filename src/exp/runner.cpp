#include "exp/runner.hpp"

#include "exp/policy_factory.hpp"
#include "policies/backfill.hpp"

namespace sbs {

Thresholds fcfs_thresholds(const Trace& trace, const SimConfig& sim) {
  auto fcfs = make_backfill(PriorityKind::Fcfs);
  const SimResult result = simulate(trace, *fcfs, sim);
  const Summary s = summarize(result.outcomes);
  Thresholds t;
  t.max_wait = from_hours(s.max_wait_h);
  t.p98_wait = from_hours(s.p98_wait_h);
  return t;
}

MonthEval evaluate_policy(const Trace& trace, Scheduler& scheduler,
                          const Thresholds& thresholds, const SimConfig& sim,
                          bool keep_outcomes) {
  SimResult result = simulate(trace, scheduler, sim);
  MonthEval eval;
  eval.month = trace.name;
  eval.policy = scheduler.name();
  eval.summary = summarize(result.outcomes);
  eval.avg_queue_length = result.avg_queue_length;
  eval.e_max = excessive_stats(result.outcomes, thresholds.max_wait);
  eval.e_p98 = excessive_stats(result.outcomes, thresholds.p98_wait);
  eval.sched = result.sched_stats;
  eval.faults = result.fault_stats;
  if (keep_outcomes) eval.outcomes = std::move(result.outcomes);
  return eval;
}

MonthEval evaluate_spec(const Trace& trace, const std::string& policy_spec,
                        std::size_t node_limit, const Thresholds& thresholds,
                        const SimConfig& sim, bool keep_outcomes,
                        double deadline_ms, std::size_t threads, bool cache,
                        bool warm_start,
                        const resilience::GovernorConfig* governor, bool simd,
                        bool dominance) {
  auto scheduler = make_policy(policy_spec, node_limit, deadline_ms, threads,
                               cache, warm_start, governor, simd, dominance);
  return evaluate_policy(trace, *scheduler, thresholds, sim, keep_outcomes);
}

}  // namespace sbs
