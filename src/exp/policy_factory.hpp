#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "core/search_scheduler.hpp"
#include "policies/backfill.hpp"
#include "sim/scheduler.hpp"

namespace sbs::resilience {
struct GovernorConfig;
}  // namespace sbs::resilience

namespace sbs {

/// Builders for every policy the experiments use.
std::unique_ptr<Scheduler> make_backfill(PriorityKind priority,
                                         int reservations = 1);
std::unique_ptr<Scheduler> make_selective_backfill();
std::unique_ptr<Scheduler> make_lookahead();
std::unique_ptr<Scheduler> make_search_policy(SearchAlgo algo,
                                              Branching branching,
                                              BoundSpec bound,
                                              std::size_t node_limit,
                                              bool prune = false,
                                              double deadline_ms = -1.0,
                                              std::size_t threads = 0,
                                              bool cache = true,
                                              bool warm_start = false,
                                              bool simd = true,
                                              bool dominance = true);

/// Parses a policy spec string into a scheduler:
///   "FCFS-BF" | "LXF-BF" | "SJF-BF" | "LXF&W-BF"
///   "Selective-BF" | "Lookahead" | "Slack-BF"
///   "MultiQueue" | "MultiQueue-aged" | "Weighted-BF"
///   "<DDS|LDS>/<fcfs|lxf>/<dynB|w=<hours>h|wT>[+ls]"  e.g. "DDS/lxf/dynB",
///   "LDS/lxf/w=100h", "DDS/lxf/dynB+ls". `node_limit`, `deadline_ms`
///   (wall-clock decision deadline, negative = none), `threads` (parallel
///   search workers, 0 = sequential), `cache` (incremental schedule
///   builder; false = the naive per-depth-snapshot baseline) and
///   `warm_start` (carry the previous event's best path as the next
///   search's initial incumbent), `simd` (vectorized earliest-start
///   kernels; false = the scalar reference) and `dominance` (twin-
///   permutation skip + frozen-bound cut; false = the unreduced tree)
///   apply to search policies only.
/// A non-null `governor` wraps the search policy in the overload governor
/// (resilience::GovernedScheduler); combining it with a non-search spec
/// throws — every non-search policy already IS the fallback rung.
/// Throws sbs::Error on anything unrecognized.
std::unique_ptr<Scheduler> make_policy(
    const std::string& spec, std::size_t node_limit = 1000,
    double deadline_ms = -1.0, std::size_t threads = 0, bool cache = true,
    bool warm_start = false,
    const resilience::GovernorConfig* governor = nullptr, bool simd = true,
    bool dominance = true);

/// Per-member scheduler factory for federation runs: each call constructs
/// a fresh scheduler from the same resolved spec, because policy state
/// (warm-start order, fair-share ledgers, governor breakers) must be per
/// cluster. The spec is validated eagerly — a bad spec throws here, not on
/// the first member — and the governor config is captured by value so the
/// factory outlives the caller's locals. The member index is accepted and
/// ignored: every member runs the same policy, matching the paper's
/// homogeneous-scheduler federation setup.
std::function<std::unique_ptr<Scheduler>(std::size_t)> make_policy_factory(
    const std::string& spec, std::size_t node_limit = 1000,
    double deadline_ms = -1.0, std::size_t threads = 0, bool cache = true,
    bool warm_start = false,
    const resilience::GovernorConfig* governor = nullptr, bool simd = true,
    bool dominance = true);

}  // namespace sbs
