#pragma once

#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "workload/generator.hpp"

namespace sbs {

/// Declarative experiment grid: (months x policies) at one load level and
/// estimate regime. This is the primitive behind every figure of the
/// paper — generate the months, derive each month's FCFS-backfill
/// thresholds, evaluate every policy cell, return the rows in a
/// deterministic order (month-major, policy-minor).
struct GridSpec {
  /// Months by name ("7/03"); empty = all ten study months.
  std::vector<std::string> months;
  /// Target offered load; 0 keeps each month's original load.
  double load = 0.0;
  /// Policy spec strings (see make_policy).
  std::vector<std::string> policies;
  /// Node budget for search policies.
  std::size_t node_limit = 1000;
  SimConfig sim;
  GeneratorConfig generator;
  /// Worker threads; cells are independent, so any count is safe. 0 uses
  /// the hardware concurrency.
  std::size_t threads = 1;
  /// Retain per-job outcomes in each row (memory-heavy on full months).
  bool keep_outcomes = false;
};

/// Runs the grid. Results are bit-identical regardless of `threads`.
std::vector<MonthEval> run_grid(const GridSpec& spec);

}  // namespace sbs
