#include "exp/grid.hpp"

#include <algorithm>

#include "exp/policy_factory.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace sbs {

std::vector<MonthEval> run_grid(const GridSpec& spec) {
  SBS_CHECK_MSG(!spec.policies.empty(), "grid needs at least one policy");
  // A stateful predictor would leak learned state across cells (and race
  // across threads); prediction experiments run cells individually.
  SBS_CHECK_MSG(spec.sim.predictor == nullptr,
                "run_grid does not support a shared runtime predictor");

  // Validate every policy spec up front so a typo fails fast, not after
  // minutes of simulation.
  for (const auto& policy : spec.policies) make_policy(policy, 1);

  struct MonthCell {
    Trace trace;
    Thresholds thresholds;
  };
  std::vector<MonthCell> months;
  for (const auto& stats : ncsa_months()) {
    if (!spec.months.empty() &&
        std::find(spec.months.begin(), spec.months.end(), stats.name) ==
            spec.months.end())
      continue;
    MonthCell cell;
    cell.trace = generate_month(stats, spec.generator);
    if (spec.load > 0.0) cell.trace = rescale_to_load(cell.trace, spec.load);
    months.push_back(std::move(cell));
  }
  SBS_CHECK_MSG(!spec.months.empty() ? months.size() == spec.months.size()
                                     : !months.empty(),
                "unknown month name in grid spec");

  // Phase 1: per-month FCFS thresholds (parallel over months).
  // Phase 2: all (month, policy) cells (parallel over cells).
  std::vector<MonthEval> rows(months.size() * spec.policies.size());
  auto run_cell = [&](std::size_t index) {
    const std::size_t m = index / spec.policies.size();
    const std::size_t p = index % spec.policies.size();
    rows[index] =
        evaluate_spec(months[m].trace, spec.policies[p], spec.node_limit,
                      months[m].thresholds, spec.sim, spec.keep_outcomes);
  };

  if (spec.threads == 1) {
    for (auto& cell : months) cell.thresholds = fcfs_thresholds(cell.trace, spec.sim);
    for (std::size_t i = 0; i < rows.size(); ++i) run_cell(i);
  } else {
    ThreadPool pool(spec.threads);
    pool.parallel_for(months.size(), [&](std::size_t m) {
      months[m].thresholds = fcfs_thresholds(months[m].trace, spec.sim);
    });
    pool.parallel_for(rows.size(), run_cell);
  }
  return rows;
}

}  // namespace sbs
