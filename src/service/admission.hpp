#pragma once

// Admission control for the `sbsched serve` daemon: a bounded queue with
// explicit backpressure, priority-ordered load shedding driven by the
// resilience HealthMonitor, and the drain state machine. Pure policy — no
// sockets, no clock — so every transition is unit-testable.

#include <cstdint>
#include <string_view>

#include "resilience/health.hpp"

namespace sbs::obs {
class JsonWriter;
struct JsonValue;
}  // namespace sbs::obs

namespace sbs::service {

/// The service's externally visible admission state.
enum class AdmissionState {
  Accepting,  ///< normal operation (backpressure may still apply per job)
  Shedding,   ///< health degraded: lowest-priority submissions rejected
  Draining,   ///< drain requested: no submissions admitted at all
};

const char* admission_state_name(AdmissionState s);

/// One admission decision for a submit request.
struct AdmissionVerdict {
  enum class Kind {
    Admit,       ///< enqueue the job
    RetryAfter,  ///< bounded queue full — client should back off retry_ms
    Shed,        ///< priority below the shed floor while overloaded
    Drain,       ///< server is draining, submission permanently refused
  };
  Kind kind = Kind::Admit;
  std::int64_t retry_ms = 0;  ///< meaningful for RetryAfter
  int floor = 0;              ///< shed floor in force (meaningful for Shed)
};

/// Knobs. The health watermarks come from the same HealthConfig the
/// overload governor uses (queue-depth and think-time EWMAs), so one
/// definition of "overloaded" drives both search degradation and shedding.
struct AdmissionConfig {
  /// Bounded admission queue: submissions arriving with `queue_limit`
  /// jobs already waiting get a retry_after response.
  std::size_t queue_limit = 1000;
  /// Base unit of the server-suggested retry delay; the suggestion grows
  /// linearly with the overflow depth and is capped at retry_cap_ms.
  std::int64_t retry_base_ms = 50;
  std::int64_t retry_cap_ms = 5000;
  /// Number of distinct priority classes ([0, priority_levels) accepted;
  /// the shed floor never rises above priority_levels - 1, so the highest
  /// class is only ever refused by backpressure or drain).
  int priority_levels = 4;
  /// Health watermarks feeding the shed ladder.
  resilience::HealthConfig health{.queue_high = 200.0,
                                  .think_ms_high = 250.0};
};

/// Parses a `--admission=key=value,...` flag into an AdmissionConfig.
/// Known keys: limit (queue_limit), retry-base-ms, retry-cap-ms,
/// priorities (priority_levels), queue / think-ms / alpha / recover
/// (health watermarks, same meanings as the governor thresholds). Unset
/// keys keep their defaults; an unknown key or malformed value throws
/// sbs::UsageError.
AdmissionConfig parse_admission_spec(std::string_view spec);

/// Tracks overload verdicts and turns each submit request into an
/// AdmissionVerdict. The shed floor walks one priority class per observed
/// decision: up while the monitor says Overloaded, down once it says
/// Recovered — the same hysteresis band the governor uses, so shedding
/// never flaps at a watermark. Deterministic given its inputs; fully
/// serializable for crash-safe checkpoints.
class AdmissionControl {
 public:
  explicit AdmissionControl(const AdmissionConfig& config);

  /// Feeds one scheduling decision's health signals (queue depth at the
  /// decision, think time). Moves the shed floor.
  void observe_decision(const resilience::HealthSignal& signal);

  /// Classifies one submit request against the current state.
  /// `queue_depth` is the number of jobs waiting right now.
  AdmissionVerdict admit(int priority, std::size_t queue_depth) const;

  /// Drain is one-way: once requested the service never admits again.
  void begin_drain() { draining_ = true; }
  bool draining() const { return draining_; }

  AdmissionState state() const;
  int shed_floor() const { return shed_floor_; }
  const AdmissionConfig& config() const { return config_; }

  /// Checkpoint support: floor + drain flag + monitor EWMAs as one JSON
  /// object value.
  void append_state(obs::JsonWriter& w, std::string_view key) const;
  void restore_state(const obs::JsonValue& v);

 private:
  AdmissionConfig config_;
  resilience::HealthMonitor monitor_;
  int shed_floor_ = 0;  ///< priorities below this are shed
  bool draining_ = false;
};

}  // namespace sbs::service
