#pragma once

// The `sbsched serve` daemon: a long-running scheduler service that accepts
// job submissions over a Unix-domain socket (see protocol.hpp), batches
// arrivals between scheduling decisions, and runs the machine against a
// virtual clock so a wall-clock second covers `time_scale` seconds of
// simulated machine time. The service defends itself like a real one:
//   - bounded admission queue with explicit RETRY_AFTER backpressure,
//   - priority load shedding when the health monitor says Overloaded
//     (admission.hpp), while the overload governor independently degrades
//     the search itself (resilience::GovernedScheduler),
//   - per-request timeouts on stalled partial frames,
//   - graceful drain on request or signal: stop admitting, finish the
//     queued work by fast-forwarding the virtual clock, checkpoint, flush
//     telemetry, exit cleanly,
//   - crash-safe periodic checkpoints (atomic tmp+fsync+rename) restoring
//     the admission queue and every in-flight job via --resume.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "resilience/governor.hpp"
#include "service/admission.hpp"
#include "service/protocol.hpp"
#include "sim/completion_queue.hpp"
#include "sim/scheduler.hpp"
#include "util/time.hpp"

namespace sbs::obs {
class Telemetry;
}  // namespace sbs::obs

namespace sbs::service {

/// Everything `sbsched serve` configures. Flags map 1:1; defaults match
/// the CLI defaults.
struct ServiceConfig {
  std::string socket_path;          ///< Unix-domain socket to listen on
  int capacity = 128;               ///< machine size in nodes

  // Policy knobs, same meaning as `sbsched simulate`.
  std::string policy = "DDS/lxf/dynB";
  std::size_t node_limit = 1000;    ///< search-tree node budget per decision
  double deadline_ms = -1.0;        ///< per-decision wall deadline (<0 = none)
  std::size_t threads = 0;          ///< parallel-search workers
  bool cache = true;
  bool warm_start = false;
  bool simd = true;       ///< vectorized earliest-start kernels
  bool dominance = true;  ///< twin skip + frozen-bound cut
  /// Engaged = wrap the policy in the overload governor.
  std::optional<resilience::GovernorConfig> governor;

  AdmissionConfig admission;

  /// Virtual seconds of machine time per wall-clock second. The default
  /// compresses ~17 simulated minutes into each wall second, so a 30 s
  /// smoke run covers a realistic workload slice.
  std::int64_t time_scale = 1000;
  /// Arrival batching window: at most one scheduling decision per this many
  /// wall milliseconds, so a burst of submissions is planned as one batch.
  int batch_ms = 10;
  /// A connection holding a partial frame longer than this is timed out.
  int request_timeout_ms = 5000;
  int max_connections = 64;

  obs::Telemetry* telemetry = nullptr;  ///< not owned; may be null
  std::string checkpoint_path;          ///< "" = no checkpoints
  std::uint64_t checkpoint_every = 0;   ///< decisions between checkpoints
                                        ///  (0 = only at drain)
  std::string resume_path;              ///< restore from this checkpoint
  /// Polled every loop iteration; true = begin graceful drain (the CLI
  /// points this at its SIGINT/SIGTERM flag).
  const std::atomic<bool>* interrupt = nullptr;
  /// Drain automatically after this many decisions (0 = unbounded).
  std::uint64_t max_decisions = 0;
};

/// Service-side counters, reported via the `stats` op, the final `service`
/// telemetry record, and the run() return value. requests counts every
/// well-framed request; protocol_errors counts malformed frames/requests
/// and unsatisfiable submissions (wider than the machine).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t timeouts = 0;            ///< connections timed out mid-frame
  std::uint64_t connections = 0;         ///< accepted over the lifetime
  std::uint64_t admitted = 0;
  std::uint64_t rejected_backpressure = 0;
  std::uint64_t rejected_shed = 0;
  std::uint64_t rejected_drain = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t decisions = 0;
  std::uint64_t checkpoints = 0;
};

/// The daemon. Constructing binds and listens on config.socket_path (and
/// restores the resume checkpoint if one is named), so a client may connect
/// as soon as the constructor returns; run() executes the event loop until
/// a drain completes and returns the final counters. Fatal conditions
/// (socket setup failure, corrupt checkpoint, a policy invariant violation)
/// throw sbs::Error.
class SchedulerService {
 public:
  explicit SchedulerService(const ServiceConfig& config);
  ~SchedulerService();
  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  ServiceStats run();

  /// Virtual machine time right now (monotone; jumps forward during drain).
  Time virtual_now() const;

  const ServiceStats& stats() const { return stats_; }
  const AdmissionControl& admission() const { return admission_; }

 private:
  struct Conn {
    int fd = -1;
    FrameDecoder decoder;
    std::string out;                  ///< bytes queued for write
    std::int64_t last_activity_ms = 0;
    bool closing = false;             ///< close once `out` drains
  };

  /// Everything the service knows about a job it admitted.
  struct JobInfo {
    enum class State { Waiting, Running, Done };
    State state = State::Waiting;
    int priority = 0;
    Time start = 0;
    Time end = 0;
  };

  std::int64_t wall_ms() const;

  void setup_socket();
  void accept_connections();
  void service_readable(Conn& conn);
  void flush_writes(Conn& conn);
  void handle_frame(Conn& conn, std::string_view payload);
  std::string handle_submit(const Request& req);
  std::string stats_payload(std::int64_t id) const;
  std::string status_payload(std::int64_t id, std::int64_t job) const;
  void reply(Conn& conn, std::string_view payload);
  void close_conn(Conn& conn);

  void pop_due_completions(Time vnow);
  bool want_decision(std::int64_t now_ms) const;
  void decide(Time vnow);
  int poll_timeout_ms() const;

  void begin_drain(Time vnow);
  void drain_fast_forward();
  void maybe_checkpoint();
  void write_checkpoint() const;
  void restore_checkpoint(const std::string& path);
  void emit_final_records(Time vnow);

  ServiceConfig config_;
  AdmissionControl admission_;
  std::unique_ptr<Scheduler> scheduler_;
  std::string policy_name_;  ///< scheduler_->name(), stable for telemetry
  obs::Telemetry* tel_ = nullptr;

  int listen_fd_ = -1;
  std::vector<Conn> conns_;

  // Machine state. jobs_ is a deque so Job pointers stay stable.
  std::deque<Job> jobs_;
  std::unordered_map<int, JobInfo> info_;
  std::vector<WaitingJob> waiting_;
  std::vector<RunningJob> running_;
  sim::CompletionQueue completions_;
  int used_nodes_ = 0;
  int next_job_id_ = 0;

  // Virtual clock: virtual_now = base_virtual + wall_elapsed * scale.
  std::int64_t base_wall_ms_ = 0;
  Time base_virtual_ = 0;

  ServiceStats stats_;
  bool dirty_ = false;                   ///< queue/machine changed since the
                                         ///  last decision
  std::int64_t next_decision_ms_ = 0;    ///< batching gate (wall clock)
  std::uint64_t decisions_since_checkpoint_ = 0;
  bool drained_ = false;
  bool drain_requested_ = false;

  /// Recent per-decision wall latencies and per-request handling
  /// latencies (µs), ring buffers for the stats op / final record.
  std::vector<std::uint64_t> think_ring_;
  std::vector<std::uint64_t> request_ring_;
  std::size_t think_next_ = 0;
  std::size_t request_next_ = 0;

  /// Decisions executed at each governor rung (occupancy; all at [0] when
  /// no governor is configured).
  std::array<std::uint64_t, resilience::kGovLevels> gov_decisions_{};
  int last_gov_level_ = -1;
};

/// Quantile over an unordered sample set (nearest-rank); 0 when empty.
/// Shared by the stats op and the load generator's percentile math.
std::uint64_t nearest_rank_us(std::vector<std::uint64_t> samples, double q);

}  // namespace sbs::service
