#include "service/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "exp/policy_factory.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace sbs::service {

using sim::Completion;

namespace {

constexpr std::string_view kCheckpointFormat = "sbs-service-checkpoint";
constexpr int kCheckpointVersion = 1;
constexpr std::size_t kRing = 8192;
/// Poll never sleeps longer than this so signals and the virtual clock are
/// checked promptly even on an idle socket.
constexpr int kMaxPollMs = 50;

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ring_push(std::vector<std::uint64_t>& ring, std::size_t& next,
               std::uint64_t v) {
  if (ring.size() < kRing) {
    ring.push_back(v);
    next = ring.size() % kRing;
  } else {
    ring[next] = v;
    next = (next + 1) % kRing;
  }
}

void write_fully(int fd, const char* data, std::size_t size,
                 const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("write to " + path + " failed: " + std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

const obs::JsonValue& get(const obs::JsonValue& v, std::string_view key) {
  const obs::JsonValue* f = v.find(key);
  SBS_CHECK_MSG(f != nullptr, "service checkpoint lacks \"" << key << '"');
  return *f;
}

std::uint64_t get_u64(const obs::JsonValue& v, std::string_view key) {
  const std::int64_t n = get(v, key).as_int();
  SBS_CHECK_MSG(n >= 0, "service checkpoint field \"" << key
                            << "\" is negative");
  return static_cast<std::uint64_t>(n);
}

}  // namespace

std::uint64_t nearest_rank_us(std::vector<std::uint64_t> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  rank = std::min(std::max<std::size_t>(rank, 1), samples.size());
  return samples[rank - 1];
}

SchedulerService::SchedulerService(const ServiceConfig& config)
    : config_(config), admission_(config.admission) {
  SBS_CHECK_MSG(!config_.socket_path.empty(), "serve requires a socket path");
  SBS_CHECK_MSG(config_.capacity > 0, "capacity must be positive");
  SBS_CHECK_MSG(config_.time_scale > 0, "time scale must be positive");
  SBS_CHECK_MSG(config_.batch_ms >= 0, "batch window must be >= 0");
  scheduler_ = make_policy(
      config_.policy, config_.node_limit, config_.deadline_ms,
      config_.threads, config_.cache, config_.warm_start,
      config_.governor ? &*config_.governor : nullptr, config_.simd,
      config_.dominance);
  // Detail is always collected: the stats op reports the governor rung and
  // the drain report needs rung occupancy even without a telemetry sink.
  scheduler_->set_collect_decision_detail(true);
  policy_name_ = scheduler_->name();
  tel_ = config_.telemetry;
  base_wall_ms_ = steady_ms();
  if (!config_.resume_path.empty()) restore_checkpoint(config_.resume_path);
  setup_socket();
}

SchedulerService::~SchedulerService() {
  for (Conn& c : conns_)
    if (c.fd >= 0) ::close(c.fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(config_.socket_path.c_str());
  }
}

std::int64_t SchedulerService::wall_ms() const {
  return steady_ms() - base_wall_ms_;
}

Time SchedulerService::virtual_now() const {
  return base_virtual_ + wall_ms() * config_.time_scale / 1000;
}

// ---------------------------------------------------------------------------
// Sockets

void SchedulerService::setup_socket() {
  ::unlink(config_.socket_path.c_str());  // a stale socket from a crashed run
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  SBS_CHECK_MSG(listen_fd_ >= 0, "socket(): " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  SBS_CHECK_MSG(config_.socket_path.size() < sizeof(addr.sun_path),
                "socket path too long: " << config_.socket_path);
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw Error("cannot bind " + config_.socket_path + ": " +
                std::strerror(errno));
  if (::listen(listen_fd_, 64) != 0)
    throw Error("listen on " + config_.socket_path + " failed: " +
                std::strerror(errno));
}

void SchedulerService::accept_connections() {
  while (listen_fd_ >= 0) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      throw Error(std::string("accept(): ") + std::strerror(errno));
    }
    if (conns_.size() >= static_cast<std::size_t>(config_.max_connections)) {
      ::close(fd);  // over the connection cap: refuse by closing
      continue;
    }
    ++stats_.connections;
    Conn c;
    c.fd = fd;
    c.last_activity_ms = wall_ms();
    conns_.push_back(std::move(c));
  }
}

void SchedulerService::service_readable(Conn& conn) {
  char buf[65536];
  while (conn.fd >= 0) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      conn.last_activity_ms = wall_ms();
      try {
        conn.decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        while (std::optional<std::string> frame = conn.decoder.next())
          handle_frame(conn, *frame);
      } catch (const Error& e) {
        // An unframeable stream (oversized prefix) cannot be resynced;
        // answer once and drop the connection.
        ++stats_.protocol_errors;
        reply(conn, error_response(0, e.what()));
        conn.closing = true;
        return;
      }
      continue;
    }
    if (n == 0) {  // peer closed; flush what we owe, then close
      conn.closing = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    close_conn(conn);
    return;
  }
}

void SchedulerService::flush_writes(Conn& conn) {
  while (conn.fd >= 0 && !conn.out.empty()) {
    const ssize_t n = ::write(conn.fd, conn.out.data(), conn.out.size());
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close_conn(conn);
    return;
  }
  if (conn.fd >= 0 && conn.out.empty() && conn.closing) close_conn(conn);
}

void SchedulerService::reply(Conn& conn, std::string_view payload) {
  if (conn.fd < 0) return;
  encode_frame(payload, conn.out);
}

void SchedulerService::close_conn(Conn& conn) {
  if (conn.fd >= 0) ::close(conn.fd);
  conn.fd = -1;
  conn.out.clear();
}

// ---------------------------------------------------------------------------
// Requests

void SchedulerService::handle_frame(Conn& conn, std::string_view payload) {
  const std::int64_t t0_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  ++stats_.requests;
  std::string response;
  try {
    const Request req = parse_request(payload);
    switch (req.op) {
      case Request::Op::Submit:
        response = handle_submit(req);
        break;
      case Request::Op::Status:
        response = status_payload(req.id, req.job);
        break;
      case Request::Op::Stats:
        response = stats_payload(req.id);
        break;
      case Request::Op::Drain: {
        drain_requested_ = true;
        obs::JsonWriter w;
        w.begin_object()
            .field("id", req.id)
            .field("status", "ok")
            .field("state", "draining")
            .end_object();
        response = w.str();
        break;
      }
    }
  } catch (const Error& e) {
    ++stats_.protocol_errors;
    response = error_response(0, e.what());
  }
  reply(conn, response);
  const std::int64_t t1_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  const auto us = static_cast<std::uint64_t>(t1_us - t0_us);
  ring_push(request_ring_, request_next_, us);
  if (tel_) tel_->request_handled(us);
}

std::string SchedulerService::handle_submit(const Request& req) {
  const SubmitRequest& s = req.submit;
  const Time vnow = virtual_now();
  if (s.nodes > config_.capacity) {
    ++stats_.protocol_errors;
    std::ostringstream msg;
    msg << "job wants " << s.nodes << " nodes, machine has "
        << config_.capacity;
    return error_response(req.id, msg.str());
  }
  const AdmissionVerdict v = admission_.admit(s.priority, waiting_.size());
  switch (v.kind) {
    case AdmissionVerdict::Kind::RetryAfter:
      ++stats_.rejected_backpressure;
      if (tel_) tel_->job_rejected(vnow, "backpressure", s.priority, v.retry_ms);
      return retry_after_response(req.id, v.retry_ms);
    case AdmissionVerdict::Kind::Shed:
      ++stats_.rejected_shed;
      if (tel_) tel_->job_rejected(vnow, "shed", s.priority, 0);
      return shed_response(req.id, v.floor);
    case AdmissionVerdict::Kind::Drain:
      ++stats_.rejected_drain;
      if (tel_) tel_->job_rejected(vnow, "draining", s.priority, 0);
      return draining_response(req.id);
    case AdmissionVerdict::Kind::Admit:
      break;
  }
  const int id = next_job_id_++;
  jobs_.push_back(Job{id, vnow, s.nodes, s.runtime, s.requested, s.user, true});
  const Job& j = jobs_.back();
  const Time estimate = s.requested > 0 ? s.requested : s.runtime;
  waiting_.push_back(WaitingJob{&j, estimate});
  info_[id] = JobInfo{JobInfo::State::Waiting, s.priority, 0, 0};
  ++stats_.admitted;
  dirty_ = true;
  // An admission mutates crash-relevant state even when the machine is
  // full and no decision will fire; count it toward the checkpoint cadence
  // so SIGKILL cannot lose queued-but-never-scheduled jobs.
  ++decisions_since_checkpoint_;
  if (tel_) {
    tel_->job_submitted(vnow, id, j.nodes, j.runtime, j.requested, j.user);
    tel_->job_admitted(vnow, id, s.priority,
                       static_cast<int>(waiting_.size()));
  }
  return accepted_response(req.id, id);
}

std::string SchedulerService::status_payload(std::int64_t id,
                                             std::int64_t job) const {
  obs::JsonWriter w;
  w.begin_object().field("id", id).field("status", "ok").field("job", job);
  const auto it = info_.find(static_cast<int>(job));
  if (it == info_.end()) {
    w.field("state", "unknown");
  } else {
    switch (it->second.state) {
      case JobInfo::State::Waiting:
        w.field("state", "waiting");
        break;
      case JobInfo::State::Running:
        w.field("state", "running")
            .field("start", static_cast<std::int64_t>(it->second.start));
        break;
      case JobInfo::State::Done:
        w.field("state", "done")
            .field("start", static_cast<std::int64_t>(it->second.start))
            .field("end", static_cast<std::int64_t>(it->second.end));
        break;
    }
  }
  w.end_object();
  return w.str();
}

std::string SchedulerService::stats_payload(std::int64_t id) const {
  obs::JsonWriter w;
  w.begin_object()
      .field("id", id)
      .field("status", "ok")
      .field("state", admission_state_name(admission_.state()))
      .field("t_virtual", static_cast<std::int64_t>(virtual_now()))
      .field("capacity", config_.capacity)
      .field("free_nodes", config_.capacity - used_nodes_)
      .field("queue_depth", static_cast<std::uint64_t>(waiting_.size()))
      .field("running", static_cast<std::uint64_t>(running_.size()))
      .field("shed_floor", admission_.shed_floor())
      .field("gov_level", last_gov_level_);
  w.key("gov_decisions").begin_array();
  for (const std::uint64_t n : gov_decisions_) w.value(n);
  w.end_array();
  w.field("requests", stats_.requests)
      .field("protocol_errors", stats_.protocol_errors)
      .field("timeouts", stats_.timeouts)
      .field("connections", stats_.connections)
      .field("admitted", stats_.admitted)
      .field("rejected_backpressure", stats_.rejected_backpressure)
      .field("rejected_shed", stats_.rejected_shed)
      .field("rejected_drain", stats_.rejected_drain)
      .field("started", stats_.started)
      .field("completed", stats_.completed)
      .field("decisions", stats_.decisions)
      .field("checkpoints", stats_.checkpoints)
      .field("think_p50_us", nearest_rank_us(think_ring_, 0.50))
      .field("think_p99_us", nearest_rank_us(think_ring_, 0.99))
      .field("request_p50_us", nearest_rank_us(request_ring_, 0.50))
      .field("request_p99_us", nearest_rank_us(request_ring_, 0.99))
      .end_object();
  return w.str();
}

// ---------------------------------------------------------------------------
// Machine

void SchedulerService::pop_due_completions(Time vnow) {
  while (!completions_.empty() && completions_.top().end <= vnow) {
    const Completion c = completions_.top();
    completions_.pop();
    const auto it = std::find_if(
        running_.begin(), running_.end(),
        [&](const RunningJob& r) { return r.job->id == c.job_id; });
    SBS_CHECK_MSG(it != running_.end(),
                  "completion for job " << c.job_id << " which is not running");
    used_nodes_ -= it->job->nodes;
    JobInfo& ji = info_[c.job_id];
    ji.state = JobInfo::State::Done;
    ji.end = c.end;
    if (tel_) tel_->job_finished(c.end, c.job_id);
    ++stats_.completed;
    *it = running_.back();
    running_.pop_back();
    dirty_ = true;
  }
}

bool SchedulerService::want_decision(std::int64_t now_ms) const {
  return dirty_ && !waiting_.empty() && used_nodes_ < config_.capacity &&
         now_ms >= next_decision_ms_;
}

void SchedulerService::decide(Time vnow) {
  SchedulerState state;
  state.now = vnow;
  state.capacity = config_.capacity;
  state.free_nodes = config_.capacity - used_nodes_;
  state.waiting = waiting_;
  state.running = running_;

  double max_wait_h = 0.0;
  if (tel_)
    for (const WaitingJob& w : waiting_)
      max_wait_h = std::max(max_wait_h, to_hours(vnow - w.job->submit));
  const SchedulerStats before = scheduler_->stats();

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<int> chosen = scheduler_->select_jobs(state);
  const auto wall_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  const SchedulerStats after = scheduler_->stats();
  ++stats_.decisions;
  ring_push(think_ring_, think_next_, wall_us);

  const DecisionDetail* detail = scheduler_->last_decision();
  const int level = detail ? detail->governor_level : -1;
  last_gov_level_ = level;
  gov_decisions_[static_cast<std::size_t>(std::max(level, 0))] += 1;

  if (tel_) {
    // Per-decision deltas of the cumulative SchedulerStats, exactly as the
    // offline simulator records them: summing a run's decision records
    // reproduces the aggregates.
    obs::DecisionRecord d;
    d.now = vnow;
    d.policy = policy_name_;
    d.queue_depth = static_cast<int>(state.waiting.size());
    d.free_nodes = state.free_nodes;
    d.capacity = state.capacity;
    d.max_wait_h = max_wait_h;
    d.nodes_visited = after.nodes_visited - before.nodes_visited;
    d.paths_explored = after.paths_explored - before.paths_explored;
    d.deadline_hit = after.deadline_hits > before.deadline_hits;
    d.think_us = after.think_time_us - before.think_time_us;
    d.cache_hits = after.cache_hits - before.cache_hits;
    d.cache_misses = after.cache_misses - before.cache_misses;
    d.cache_invalidations =
        after.cache_invalidations - before.cache_invalidations;
    d.warm_start_used = after.warm_starts > before.warm_starts;
    d.pruned_twins = after.pruned_twins - before.pruned_twins;
    d.pruned_bound = after.pruned_bound - before.pruned_bound;
    if (detail) {
      d.iterations = detail->iterations;
      d.discrepancies = detail->discrepancies;
      d.improvements = detail->improvements;
      d.threads_used = detail->threads_used;
      d.worker_nodes = detail->worker_nodes;
      d.governor_level = detail->governor_level;
      d.governor_probe = detail->governor_probe;
      d.governor_transitions = detail->governor_transitions;
    }
    d.started = chosen;
    tel_->decision(d);
  }

  int chosen_nodes = 0;
  for (const int id : chosen) {
    auto it = std::find_if(waiting_.begin(), waiting_.end(),
                           [id](const WaitingJob& w) { return w.job->id == id; });
    SBS_CHECK_MSG(it != waiting_.end(),
                  policy_name_ << " selected non-waiting job " << id);
    const Job& j = *it->job;
    chosen_nodes += j.nodes;
    SBS_CHECK_MSG(chosen_nodes <= state.free_nodes,
                  policy_name_ << " over-committed the machine at t=" << vnow);
    running_.push_back(RunningJob{&j, vnow, vnow + it->estimate});
    used_nodes_ += j.nodes;
    completions_.push(Completion{vnow + j.runtime, j.id, 0});
    JobInfo& ji = info_[j.id];
    ji.state = JobInfo::State::Running;
    ji.start = vnow;
    ++stats_.started;
    if (tel_) tel_->job_started(vnow, j.id, j.nodes);
    *it = waiting_.back();
    waiting_.pop_back();
  }

  // Progress guarantee, as in the offline simulator: an idle machine with
  // queued work must start something (every admitted job fits the machine).
  SBS_CHECK_MSG(!(running_.empty() && !waiting_.empty()),
                policy_name_ << " stalled with an idle machine at t=" << vnow);

  std::sort(waiting_.begin(), waiting_.end(),
            [](const WaitingJob& a, const WaitingJob& b) {
              if (a.job->submit != b.job->submit)
                return a.job->submit < b.job->submit;
              return a.job->id < b.job->id;
            });

  // One health stream drives both defenses: the governor inside the policy
  // already consumed this decision; the admission shed floor moves here.
  admission_.observe_decision(resilience::HealthSignal{
      .queue_depth = static_cast<double>(state.waiting.size()),
      .think_ms = static_cast<double>(wall_us) / 1000.0,
      .deadline_overrun = after.deadline_hits > before.deadline_hits,
      .budget_exhausted = false});

  dirty_ = false;
  next_decision_ms_ = wall_ms() + config_.batch_ms;
  ++decisions_since_checkpoint_;
}

int SchedulerService::poll_timeout_ms() const {
  std::int64_t timeout = kMaxPollMs;
  if (!completions_.empty()) {
    const Time dv = completions_.top().end - virtual_now();
    if (dv <= 0) return 0;
    timeout = std::min<std::int64_t>(
        timeout, dv * 1000 / config_.time_scale + 1);
  }
  if (dirty_ && !waiting_.empty() && used_nodes_ < config_.capacity)
    timeout = std::min<std::int64_t>(
        timeout, std::max<std::int64_t>(next_decision_ms_ - wall_ms(), 0));
  return static_cast<int>(std::max<std::int64_t>(timeout, 0));
}

// ---------------------------------------------------------------------------
// Event loop

ServiceStats SchedulerService::run() {
  if (tel_) {
    obs::RunRecord run;
    run.trace = "live";
    run.policy = policy_name_;
    run.capacity = config_.capacity;
    run.jobs = 0;  // open-ended: the service does not know its workload
    tel_->begin_run(run);
    tel_->flush();
  }

  std::vector<pollfd> pfds;
  while (!drained_) {
    pop_due_completions(virtual_now());

    if (!drain_requested_ &&
        ((config_.interrupt && config_.interrupt->load()) ||
         (config_.max_decisions > 0 &&
          stats_.decisions >= config_.max_decisions)))
      drain_requested_ = true;
    if (drain_requested_) {
      drain_fast_forward();
      break;
    }

    if (want_decision(wall_ms())) decide(virtual_now());
    // Outside the want_decision branch: admissions advance the checkpoint
    // counter too (see handle_submit), and those must reach disk even when
    // a full machine keeps decisions from firing.
    maybe_checkpoint();

    pfds.clear();
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Conn& c : conns_) {
      short events = POLLIN;
      if (!c.out.empty()) events |= POLLOUT;
      pfds.push_back(pollfd{c.fd, events, 0});
    }
    const int pr = ::poll(pfds.data(), pfds.size(), poll_timeout_ms());
    SBS_CHECK_MSG(pr >= 0 || errno == EINTR,
                  "poll(): " << std::strerror(errno));

    if (pr > 0) {
      // Connections accepted below grow conns_ past pfds; they are polled
      // from the next iteration on.
      const std::size_t polled = pfds.size() - 1;
      if (pfds[0].revents & POLLIN) accept_connections();
      for (std::size_t i = 0; i < polled; ++i) {
        Conn& c = conns_[i];
        const short re = pfds[i + 1].revents;
        if (c.fd < 0) continue;
        if (re & (POLLERR | POLLHUP | POLLNVAL)) {
          // Peer is gone; drain whatever it sent, then close.
          service_readable(c);
          close_conn(c);
          continue;
        }
        if (re & POLLIN) service_readable(c);
        if (c.fd >= 0 && (re & POLLOUT || !c.out.empty())) flush_writes(c);
      }
    }

    // Per-request timeout: a connection stalled mid-frame is dropped.
    const std::int64_t now_ms = wall_ms();
    for (Conn& c : conns_) {
      if (c.fd >= 0 && c.decoder.pending_bytes() > 0 &&
          now_ms - c.last_activity_ms > config_.request_timeout_ms) {
        ++stats_.timeouts;
        close_conn(c);
      }
    }
    std::erase_if(conns_, [](const Conn& c) { return c.fd < 0; });
  }
  return stats_;
}

// ---------------------------------------------------------------------------
// Drain

void SchedulerService::begin_drain(Time vnow) {
  if (admission_.draining()) return;
  admission_.begin_drain();
  if (tel_)
    tel_->drain_phase(vnow, "begin", waiting_.size(), running_.size());
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
}

void SchedulerService::drain_fast_forward() {
  begin_drain(virtual_now());

  // Best-effort flush of queued replies (drain acknowledgements and any
  // in-flight responses), bounded so a dead peer cannot stall the drain.
  const std::int64_t flush_deadline = wall_ms() + 250;
  while (wall_ms() < flush_deadline) {
    bool pending = false;
    for (Conn& c : conns_) {
      if (c.fd >= 0 && !c.out.empty()) {
        flush_writes(c);
        pending |= c.fd >= 0 && !c.out.empty();
      }
    }
    if (!pending) break;
    pollfd pfd{-1, POLLOUT, 0};  // settle; peers are local, one pass suffices
    ::poll(&pfd, 0, 5);
  }
  for (Conn& c : conns_) close_conn(c);
  conns_.clear();

  // Finish the admitted work by fast-forwarding the virtual clock through
  // the remaining completions — no wall time is spent "running" jobs.
  while (!waiting_.empty() || !running_.empty()) {
    Time vnow = virtual_now();
    if (!waiting_.empty() && used_nodes_ < config_.capacity) decide(vnow);
    if (waiting_.empty() && running_.empty()) break;
    SBS_CHECK_MSG(!completions_.empty(),
                  "drain stalled: queued work but nothing running");
    const Time next = completions_.top().end;
    if (next > vnow) {
      base_virtual_ += next - vnow;
      vnow = virtual_now();
    }
    pop_due_completions(vnow);
  }

  if (!config_.checkpoint_path.empty()) {
    write_checkpoint();
    ++stats_.checkpoints;
  }
  emit_final_records(virtual_now());
  drained_ = true;
}

void SchedulerService::emit_final_records(Time vnow) {
  if (!tel_) return;
  tel_->drain_phase(vnow, "complete", waiting_.size(), running_.size());
  obs::ServiceRecord r;
  r.t = vnow;
  r.requests = stats_.requests;
  r.protocol_errors = stats_.protocol_errors;
  r.timeouts = stats_.timeouts;
  r.connections = stats_.connections;
  r.admitted = stats_.admitted;
  r.rejected_backpressure = stats_.rejected_backpressure;
  r.rejected_shed = stats_.rejected_shed;
  r.rejected_drain = stats_.rejected_drain;
  r.started = stats_.started;
  r.completed = stats_.completed;
  r.decisions = stats_.decisions;
  r.checkpoints = stats_.checkpoints;
  r.request_p50_us = nearest_rank_us(request_ring_, 0.50);
  r.request_p99_us = nearest_rank_us(request_ring_, 0.99);
  r.request_p999_us = nearest_rank_us(request_ring_, 0.999);
  r.think_p50_us = nearest_rank_us(think_ring_, 0.50);
  r.think_p99_us = nearest_rank_us(think_ring_, 0.99);
  r.think_p999_us = nearest_rank_us(think_ring_, 0.999);
  r.gov_decisions = gov_decisions_;
  r.shed_floor = admission_.shed_floor();
  tel_->service_run(r);
  tel_->flush();
}

// ---------------------------------------------------------------------------
// Checkpoints

void SchedulerService::maybe_checkpoint() {
  if (config_.checkpoint_path.empty() || config_.checkpoint_every == 0)
    return;
  if (decisions_since_checkpoint_ < config_.checkpoint_every) return;
  decisions_since_checkpoint_ = 0;
  write_checkpoint();
  ++stats_.checkpoints;
}

void SchedulerService::write_checkpoint() const {
  obs::JsonWriter w;
  w.begin_object()
      .field("format", kCheckpointFormat)
      .field("version", kCheckpointVersion)
      .field("policy", config_.policy)
      .field("capacity", config_.capacity)
      .field("next_job_id", next_job_id_)
      .field("virtual_now", static_cast<std::int64_t>(virtual_now()));
  w.key("stats").begin_object();
  w.field("requests", stats_.requests)
      .field("protocol_errors", stats_.protocol_errors)
      .field("timeouts", stats_.timeouts)
      .field("connections", stats_.connections)
      .field("admitted", stats_.admitted)
      .field("rejected_backpressure", stats_.rejected_backpressure)
      .field("rejected_shed", stats_.rejected_shed)
      .field("rejected_drain", stats_.rejected_drain)
      .field("started", stats_.started)
      .field("completed", stats_.completed)
      .field("decisions", stats_.decisions)
      .field("checkpoints", stats_.checkpoints)
      .end_object();
  w.key("gov_decisions").begin_array();
  for (const std::uint64_t n : gov_decisions_) w.value(n);
  w.end_array();
  admission_.append_state(w, "admission");
  w.field("scheduler", scheduler_->save_state());
  // Live jobs only (waiting + running): done jobs need no recovery.
  w.key("jobs").begin_array();
  const auto append_job = [&](const Job& j, char state, Time start,
                              Time estimate) {
    const auto it = info_.find(j.id);
    const int priority = it == info_.end() ? 0 : it->second.priority;
    w.begin_array()
        .value(j.id)
        .value(static_cast<std::int64_t>(j.submit))
        .value(j.nodes)
        .value(static_cast<std::int64_t>(j.runtime))
        .value(static_cast<std::int64_t>(j.requested))
        .value(j.user)
        .value(priority)
        .value(std::string_view(&state, 1))
        .value(static_cast<std::int64_t>(start))
        .value(static_cast<std::int64_t>(estimate))
        .end_array();
  };
  for (const WaitingJob& wj : waiting_)
    append_job(*wj.job, 'w', 0, wj.estimate);
  for (const RunningJob& rj : running_)
    append_job(*rj.job, 'r', rj.start, rj.est_end - rj.start);
  w.end_array();
  w.end_object();

  const std::string& path = config_.checkpoint_path;
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) throw Error("cannot open " + tmp + ": " + std::strerror(errno));
  try {
    write_fully(fd, w.str().data(), w.str().size(), tmp);
    write_fully(fd, "\n", 1, tmp);
    if (::fsync(fd) != 0)
      throw Error("fsync of " + tmp + " failed: " + std::strerror(errno));
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw Error("rename " + tmp + " -> " + path + " failed: " +
                std::strerror(err));
  }
}

void SchedulerService::restore_checkpoint(const std::string& path) {
  std::ifstream in(path);
  SBS_CHECK_MSG(in, "cannot read service checkpoint " << path);
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::JsonValue v = obs::parse_json(buf.str());
  SBS_CHECK_MSG(v.is_object(), "service checkpoint is not a JSON object");
  SBS_CHECK_MSG(get(v, "format").as_string() == kCheckpointFormat,
                "not a service checkpoint: " << path);
  SBS_CHECK_MSG(get(v, "version").as_int() == kCheckpointVersion,
                "unsupported service checkpoint version");
  SBS_CHECK_MSG(get(v, "policy").as_string() == config_.policy,
                "checkpoint was taken with policy "
                    << get(v, "policy").as_string() << ", serve runs "
                    << config_.policy);
  SBS_CHECK_MSG(get(v, "capacity").as_int() == config_.capacity,
                "checkpoint machine size does not match --capacity");

  next_job_id_ = static_cast<int>(get(v, "next_job_id").as_int());
  base_virtual_ = get(v, "virtual_now").as_int();

  const obs::JsonValue& st = get(v, "stats");
  stats_.requests = get_u64(st, "requests");
  stats_.protocol_errors = get_u64(st, "protocol_errors");
  stats_.timeouts = get_u64(st, "timeouts");
  stats_.connections = get_u64(st, "connections");
  stats_.admitted = get_u64(st, "admitted");
  stats_.rejected_backpressure = get_u64(st, "rejected_backpressure");
  stats_.rejected_shed = get_u64(st, "rejected_shed");
  stats_.rejected_drain = get_u64(st, "rejected_drain");
  stats_.started = get_u64(st, "started");
  stats_.completed = get_u64(st, "completed");
  stats_.decisions = get_u64(st, "decisions");
  stats_.checkpoints = get_u64(st, "checkpoints");

  const obs::JsonValue& gov = get(v, "gov_decisions");
  SBS_CHECK_MSG(gov.is_array() && gov.array.size() == gov_decisions_.size(),
                "gov_decisions shape mismatch in service checkpoint");
  for (std::size_t i = 0; i < gov_decisions_.size(); ++i)
    gov_decisions_[i] = static_cast<std::uint64_t>(gov.array[i].as_int());

  admission_.restore_state(get(v, "admission"));
  scheduler_->restore_state(get(v, "scheduler").as_string());

  const obs::JsonValue& jobs = get(v, "jobs");
  SBS_CHECK_MSG(jobs.is_array(), "service checkpoint jobs is not an array");
  for (const obs::JsonValue& row : jobs.array) {
    SBS_CHECK_MSG(row.is_array() && row.array.size() == 10,
                  "malformed job row in service checkpoint");
    Job j;
    j.id = static_cast<int>(row.array[0].as_int());
    j.submit = row.array[1].as_int();
    j.nodes = static_cast<int>(row.array[2].as_int());
    j.runtime = row.array[3].as_int();
    j.requested = row.array[4].as_int();
    j.user = static_cast<int>(row.array[5].as_int());
    const int priority = static_cast<int>(row.array[6].as_int());
    const std::string& state = row.array[7].as_string();
    const Time start = row.array[8].as_int();
    const Time estimate = row.array[9].as_int();
    SBS_CHECK_MSG(j.id >= 0 && j.id < next_job_id_ && j.nodes > 0 &&
                      j.nodes <= config_.capacity && j.runtime > 0,
                  "job row " << j.id << " fails validation in checkpoint");
    jobs_.push_back(j);
    const Job& stored = jobs_.back();
    if (state == "w") {
      waiting_.push_back(WaitingJob{&stored, estimate});
      info_[stored.id] = JobInfo{JobInfo::State::Waiting, priority, 0, 0};
    } else if (state == "r") {
      running_.push_back(RunningJob{&stored, start, start + estimate});
      completions_.push(Completion{start + stored.runtime, stored.id, 0});
      used_nodes_ += stored.nodes;
      info_[stored.id] = JobInfo{JobInfo::State::Running, priority, start, 0};
    } else {
      throw Error("unknown job state \"" + state + "\" in service checkpoint");
    }
  }
  std::sort(waiting_.begin(), waiting_.end(),
            [](const WaitingJob& a, const WaitingJob& b) {
              if (a.job->submit != b.job->submit)
                return a.job->submit < b.job->submit;
              return a.job->id < b.job->id;
            });
  dirty_ = !waiting_.empty();
}

}  // namespace sbs::service
