#include "service/protocol.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace sbs::service {

void encode_frame(std::string_view payload, std::string& out) {
  SBS_CHECK_MSG(!payload.empty(),
                "refusing to encode an empty frame (the decoder rejects "
                "zero-length prefixes as protocol errors)");
  SBS_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                "frame payload of " << payload.size() << " bytes exceeds the "
                << kMaxFrameBytes << "-byte protocol limit");
  const auto n = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out.append(payload);
}

std::optional<std::string> FrameDecoder::next() {
  // Compact lazily: move the unread tail down once half the buffer is dead.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < 4) return std::nullopt;
  const auto* p = reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const std::uint32_t n = (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
                          (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
  // Both prefix checks run the moment the 4 header bytes are in — a bad
  // length must be a protocol error immediately, not after the connection
  // dribbles in a body that will never be valid.
  SBS_CHECK_MSG(n > 0, "frame prefix announces an empty frame (every "
                "payload is at least one JSON byte)");
  SBS_CHECK_MSG(n <= kMaxFrameBytes, "frame prefix announces " << n
                    << " bytes, protocol limit is " << kMaxFrameBytes);
  if (avail < 4 + static_cast<std::size_t>(n)) return std::nullopt;
  std::string payload = buffer_.substr(consumed_ + 4, n);
  consumed_ += 4 + n;
  return payload;
}

namespace {

const obs::JsonValue& need(const obs::JsonValue& v, std::string_view key) {
  const obs::JsonValue* f = v.find(key);
  SBS_CHECK_MSG(f != nullptr, "request lacks field \"" << key << '"');
  return *f;
}

std::int64_t need_pos(const obs::JsonValue& v, std::string_view key,
                      std::int64_t max) {
  const std::int64_t n = need(v, key).as_int();
  SBS_CHECK_MSG(n > 0 && n <= max,
                "field \"" << key << "\" = " << n << " out of range (1.."
                           << max << ")");
  return n;
}

}  // namespace

Request parse_request(std::string_view payload) {
  const obs::JsonValue v = obs::parse_json(payload);
  SBS_CHECK_MSG(v.is_object(), "request is not a JSON object");
  const std::string& op = need(v, "op").as_string();
  Request req;
  req.id = need(v, "id").as_int();
  if (op == "submit") {
    req.op = Request::Op::Submit;
    req.submit.id = req.id;
    req.submit.nodes = static_cast<int>(need_pos(v, "nodes", 1 << 20));
    req.submit.runtime = need_pos(v, "runtime", Time{1} << 40);
    if (const obs::JsonValue* r = v.find("requested")) {
      req.submit.requested = r->as_int();
      SBS_CHECK_MSG(req.submit.requested >= 0, "negative requested runtime");
    }
    if (const obs::JsonValue* u = v.find("user")) {
      req.submit.user = static_cast<int>(u->as_int());
      SBS_CHECK_MSG(req.submit.user >= 0, "negative user id");
    }
    if (const obs::JsonValue* p = v.find("priority")) {
      req.submit.priority = static_cast<int>(p->as_int());
      SBS_CHECK_MSG(req.submit.priority >= 0, "negative priority");
    }
  } else if (op == "status") {
    req.op = Request::Op::Status;
    req.job = need(v, "job").as_int();
  } else if (op == "stats") {
    req.op = Request::Op::Stats;
  } else if (op == "drain") {
    req.op = Request::Op::Drain;
  } else {
    throw Error("unknown op \"" + op + '"');
  }
  return req;
}

std::string accepted_response(std::int64_t id, int job) {
  obs::JsonWriter w;
  w.begin_object()
      .field("id", id)
      .field("status", "accepted")
      .field("job", job)
      .end_object();
  return w.str();
}

std::string retry_after_response(std::int64_t id, std::int64_t delay_ms) {
  obs::JsonWriter w;
  w.begin_object()
      .field("id", id)
      .field("status", "retry_after")
      .field("delay_ms", delay_ms)
      .end_object();
  return w.str();
}

std::string shed_response(std::int64_t id, int floor) {
  obs::JsonWriter w;
  w.begin_object()
      .field("id", id)
      .field("status", "shed")
      .field("floor", floor)
      .end_object();
  return w.str();
}

std::string draining_response(std::int64_t id) {
  obs::JsonWriter w;
  w.begin_object().field("id", id).field("status", "draining").end_object();
  return w.str();
}

std::string error_response(std::int64_t id, std::string_view message) {
  obs::JsonWriter w;
  w.begin_object()
      .field("id", id)
      .field("status", "error")
      .field("message", message)
      .end_object();
  return w.str();
}

// ---------------------------------------------------------------------------
// Blocking client

Client::Client(const std::string& socket_path, int timeout_ms)
    : timeout_ms_(timeout_ms) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  SBS_CHECK_MSG(fd_ >= 0, "socket(): " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  SBS_CHECK_MSG(socket_path.size() < sizeof(addr.sun_path),
                "socket path too long: " << socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error("cannot connect to " + socket_path + ": " +
                std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

obs::JsonValue Client::request(std::string_view payload) {
  std::string frame;
  encode_frame(payload, frame);
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("write to server failed: ") +
                  std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  char buf[4096];
  while (true) {
    if (std::optional<std::string> reply = decoder_.next()) {
      const obs::JsonValue v = obs::parse_json(*reply);
      SBS_CHECK_MSG(v.is_object(), "response is not a JSON object");
      return v;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms_);
    SBS_CHECK_MSG(pr >= 0 || errno == EINTR,
                  "poll(): " << std::strerror(errno));
    SBS_CHECK_MSG(pr != 0, "server response timed out after " << timeout_ms_
                               << " ms");
    if (pr <= 0) continue;
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("read from server failed: ") +
                  std::strerror(errno));
    }
    SBS_CHECK_MSG(n != 0, "server closed the connection mid-response");
    decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

obs::JsonValue Client::submit(const SubmitRequest& req) {
  obs::JsonWriter w;
  w.begin_object()
      .field("op", "submit")
      .field("id", req.id != 0 ? req.id : next_id_++)
      .field("nodes", req.nodes)
      .field("runtime", static_cast<std::int64_t>(req.runtime))
      .field("requested", static_cast<std::int64_t>(req.requested))
      .field("user", req.user)
      .field("priority", req.priority)
      .end_object();
  return request(w.str());
}

obs::JsonValue Client::status(std::int64_t job) {
  obs::JsonWriter w;
  w.begin_object()
      .field("op", "status")
      .field("id", next_id_++)
      .field("job", job)
      .end_object();
  return request(w.str());
}

obs::JsonValue Client::stats() {
  obs::JsonWriter w;
  w.begin_object().field("op", "stats").field("id", next_id_++).end_object();
  return request(w.str());
}

obs::JsonValue Client::drain() {
  obs::JsonWriter w;
  w.begin_object().field("op", "drain").field("id", next_id_++).end_object();
  return request(w.str());
}

}  // namespace sbs::service
