#pragma once

// Wire protocol of the `sbsched serve` daemon: length-prefixed JSON over a
// Unix-domain stream socket. Every frame is a 4-byte big-endian payload
// length followed by exactly that many bytes of UTF-8 JSON (one object).
// The prefix makes framing independent of the payload (no newline
// scanning), bounds each request up front (oversized prefixes are a
// protocol error, not an allocation), and lets a reader detect a torn
// frame — a stalled prefix or short payload — and time the peer out.
//
// Requests (client -> server), discriminated by "op"; every request
// carries a client-chosen "id" that the response echoes so clients can
// pipeline:
//   submit  {op, id, nodes, runtime, requested?, user?, priority?}
//   status  {op, id, job}
//   stats   {op, id}
//   drain   {op, id}
// Responses carry "id" and "status":
//   accepted     {id, status, job}            submit admitted; job = server id
//   retry_after  {id, status, delay_ms}       bounded queue full; the delay
//                                             is the server's backoff hint
//   shed         {id, status, floor}          load-shed (priority < floor)
//   draining     {id, status}                 server no longer admits work
//   ok           {id, status, ...}            status/stats/drain payloads
//   error        {id, status, message}        malformed request
// Field-by-field documentation lives in docs/architecture.md.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "util/time.hpp"

namespace sbs::service {

/// Frames larger than this are rejected as protocol errors before any
/// payload is read — a malicious or corrupt prefix must not drive an
/// allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 1 << 20;

/// Appends the 4-byte big-endian length prefix + payload to `out`.
void encode_frame(std::string_view payload, std::string& out);

/// Incremental frame decoder: feed bytes as they arrive, take complete
/// frames out. One decoder per connection.
class FrameDecoder {
 public:
  /// Appends raw bytes received from the peer.
  void feed(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next complete frame's payload, or nullopt when the
  /// buffered bytes do not yet hold one. Throws sbs::Error as soon as the
  /// 4 prefix bytes are in when they announce a zero-length frame or one
  /// larger than kMaxFrameBytes — without waiting for any payload.
  std::optional<std::string> next();

  /// Bytes buffered but not yet consumed (a partially received frame).
  std::size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
};

/// Parsed submit request payload.
struct SubmitRequest {
  std::int64_t id = 0;     ///< client correlation id (echoed back)
  int nodes = 1;
  Time runtime = 0;        ///< actual runtime the machine will hold nodes for
  Time requested = 0;      ///< user estimate the scheduler plans with
                           ///  (0 = plan with `runtime`)
  int user = 0;
  int priority = 0;        ///< load-shed ordering: lower sheds first
};

/// Every request, decoded. Exactly one of the op-specific members is
/// meaningful, per `op`.
struct Request {
  enum class Op { Submit, Status, Stats, Drain };
  Op op = Op::Submit;
  std::int64_t id = 0;
  SubmitRequest submit;    ///< op == Submit
  std::int64_t job = -1;   ///< op == Status
};

/// Parses one request payload. Throws sbs::Error on malformed JSON, an
/// unknown op, missing fields, or out-of-range values — the server turns
/// that into an `error` response and a protocol_errors tick.
Request parse_request(std::string_view payload);

/// Response builders. Each returns the complete JSON payload (unframed).
std::string accepted_response(std::int64_t id, int job);
std::string retry_after_response(std::int64_t id, std::int64_t delay_ms);
std::string shed_response(std::int64_t id, int floor);
std::string draining_response(std::int64_t id);
std::string error_response(std::int64_t id, std::string_view message);

/// Blocking convenience client used by tests, the CLI and simple tools
/// (the open-loop load generator drives the socket itself, nonblocking).
/// Methods throw sbs::Error on connection failure, a malformed response,
/// or when `timeout_ms` elapses mid-response.
class Client {
 public:
  explicit Client(const std::string& socket_path, int timeout_ms = 5000);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request payload and blocks for the matching response.
  obs::JsonValue request(std::string_view payload);

  /// Typed wrappers. submit() returns the raw response (callers branch on
  /// "status"); stats() and drain() return the parsed `ok` payload.
  obs::JsonValue submit(const SubmitRequest& req);
  obs::JsonValue status(std::int64_t job);
  obs::JsonValue stats();
  obs::JsonValue drain();

 private:
  int fd_ = -1;
  int timeout_ms_;
  std::int64_t next_id_ = 1;
  FrameDecoder decoder_;
};

}  // namespace sbs::service
