#include "service/admission.hpp"

#include <algorithm>
#include <string>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace sbs::service {

namespace {

double parse_spec_double(std::string_view key, std::string_view value) {
  try {
    return std::stod(std::string(value));
  } catch (const std::exception&) {
    throw UsageError("admission key \"" + std::string(key) +
                     "\" has non-numeric value \"" + std::string(value) + "\"");
  }
}

std::int64_t parse_spec_int(std::string_view key, std::string_view value) {
  const double d = parse_spec_double(key, value);
  const auto i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d)
    throw UsageError("admission key \"" + std::string(key) +
                     "\" needs an integer, got \"" + std::string(value) + "\"");
  return i;
}

}  // namespace

AdmissionConfig parse_admission_spec(std::string_view spec) {
  AdmissionConfig config;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view pair = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos)
      throw UsageError("admission setting \"" + std::string(pair) +
                       "\" is not key=value");
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    if (key == "limit") {
      const std::int64_t limit = parse_spec_int(key, value);
      if (limit <= 0) throw UsageError("admission limit must be positive");
      config.queue_limit = static_cast<std::size_t>(limit);
    } else if (key == "retry-base-ms") {
      config.retry_base_ms = parse_spec_int(key, value);
    } else if (key == "retry-cap-ms") {
      config.retry_cap_ms = parse_spec_int(key, value);
    } else if (key == "priorities") {
      config.priority_levels = static_cast<int>(parse_spec_int(key, value));
    } else if (key == "queue") {
      config.health.queue_high = parse_spec_double(key, value);
    } else if (key == "think-ms") {
      config.health.think_ms_high = parse_spec_double(key, value);
    } else if (key == "alpha") {
      config.health.alpha = parse_spec_double(key, value);
    } else if (key == "recover") {
      config.health.recovery_fraction = parse_spec_double(key, value);
    } else {
      throw UsageError("unknown admission key \"" + std::string(key) +
                       "\" (known: limit, retry-base-ms, retry-cap-ms, "
                       "priorities, queue, think-ms, alpha, recover)");
    }
  }
  return config;
}

const char* admission_state_name(AdmissionState s) {
  switch (s) {
    case AdmissionState::Accepting: return "accepting";
    case AdmissionState::Shedding: return "shedding";
    case AdmissionState::Draining: return "draining";
  }
  return "?";
}

AdmissionControl::AdmissionControl(const AdmissionConfig& config)
    : config_(config), monitor_(config.health) {
  SBS_CHECK_MSG(config_.queue_limit > 0, "queue_limit must be positive");
  SBS_CHECK_MSG(config_.priority_levels > 0,
                "priority_levels must be positive");
  SBS_CHECK_MSG(config_.retry_base_ms > 0 &&
                    config_.retry_cap_ms >= config_.retry_base_ms,
                "retry delay knobs out of order");
}

void AdmissionControl::observe_decision(
    const resilience::HealthSignal& signal) {
  const resilience::HealthVerdict verdict = monitor_.observe(signal);
  if (verdict == resilience::HealthVerdict::Overloaded) {
    shed_floor_ = std::min(shed_floor_ + 1, config_.priority_levels - 1);
  } else if (verdict == resilience::HealthVerdict::Recovered) {
    shed_floor_ = std::max(shed_floor_ - 1, 0);
  }
  // Neutral (the hysteresis band) holds the floor where it is.
}

AdmissionVerdict AdmissionControl::admit(int priority,
                                         std::size_t queue_depth) const {
  AdmissionVerdict v;
  if (draining_) {
    v.kind = AdmissionVerdict::Kind::Drain;
    return v;
  }
  if (shed_floor_ > 0 && priority < shed_floor_) {
    v.kind = AdmissionVerdict::Kind::Shed;
    v.floor = shed_floor_;
    return v;
  }
  if (queue_depth >= config_.queue_limit) {
    v.kind = AdmissionVerdict::Kind::RetryAfter;
    // The hint scales with how far past the bound the queue is: one base
    // unit per overflowing job, capped. An honest signal, not a promise —
    // clients layer their own jittered backoff on top.
    const auto overflow =
        static_cast<std::int64_t>(queue_depth - config_.queue_limit + 1);
    v.retry_ms = std::min(config_.retry_cap_ms, config_.retry_base_ms * overflow);
    return v;
  }
  v.kind = AdmissionVerdict::Kind::Admit;
  return v;
}

AdmissionState AdmissionControl::state() const {
  if (draining_) return AdmissionState::Draining;
  if (shed_floor_ > 0) return AdmissionState::Shedding;
  return AdmissionState::Accepting;
}

void AdmissionControl::append_state(obs::JsonWriter& w,
                                    std::string_view key) const {
  w.key(key).begin_object();
  w.field("shed_floor", shed_floor_).field("draining", draining_);
  monitor_.append_state(w, "monitor");
  w.end_object();
}

void AdmissionControl::restore_state(const obs::JsonValue& v) {
  SBS_CHECK_MSG(v.is_object(), "admission state is not a JSON object");
  const obs::JsonValue* floor = v.find("shed_floor");
  const obs::JsonValue* draining = v.find("draining");
  const obs::JsonValue* monitor = v.find("monitor");
  SBS_CHECK_MSG(floor && draining && monitor, "admission state incomplete");
  shed_floor_ = static_cast<int>(floor->as_int());
  SBS_CHECK_MSG(shed_floor_ >= 0 && shed_floor_ < config_.priority_levels,
                "restored shed floor " << shed_floor_ << " out of range");
  draining_ = draining->as_bool();
  monitor_.restore_state(*monitor);
}

}  // namespace sbs::service
