#include "predict/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sbs {

ClassCorrectionPredictor::ClassCorrectionPredictor(std::size_t min_observations,
                                                   double safety_stddevs)
    : min_observations_(std::max<std::size_t>(min_observations, 1)),
      safety_stddevs_(safety_stddevs) {
  SBS_CHECK(safety_stddevs >= 0.0);
}

std::size_t ClassCorrectionPredictor::node_bucket(int nodes) {
  SBS_CHECK(nodes >= 1);
  if (nodes == 1) return 0;
  if (nodes <= 4) return 1;
  if (nodes <= 16) return 2;
  if (nodes <= 64) return 3;
  return 4;
}

std::size_t ClassCorrectionPredictor::request_bucket(Time requested) {
  SBS_CHECK(requested >= 1);
  if (requested <= kHour) return 0;
  if (requested <= 4 * kHour) return 1;
  if (requested <= 12 * kHour) return 2;
  return 3;
}

void ClassCorrectionPredictor::observe(const Job& job, Time actual_runtime) {
  SBS_CHECK(actual_runtime >= 1);
  const double ratio =
      static_cast<double>(actual_runtime) /
      static_cast<double>(std::max<Time>(job.requested, 1));
  Cell& cell =
      cells_[node_bucket(job.nodes)][request_bucket(std::max<Time>(job.requested, 1))];
  cell.ratio_sum += ratio;
  cell.ratio_sumsq += ratio * ratio;
  ++cell.count;
  global_.ratio_sum += ratio;
  global_.ratio_sumsq += ratio * ratio;
  ++global_.count;
}

double ClassCorrectionPredictor::cell_estimate(const Cell& cell) const {
  const double n = static_cast<double>(cell.count);
  const double mean = cell.ratio_sum / n;
  const double var = std::max(0.0, cell.ratio_sumsq / n - mean * mean);
  return mean + safety_stddevs_ * std::sqrt(var);
}

double ClassCorrectionPredictor::bucket_ratio(std::size_t nb,
                                              std::size_t rb) const {
  SBS_CHECK(nb < kNodeBuckets && rb < kRequestBuckets);
  const Cell& cell = cells_[nb][rb];
  return cell.count ? cell.ratio_sum / static_cast<double>(cell.count) : 0.0;
}

std::size_t ClassCorrectionPredictor::bucket_count(std::size_t nb,
                                                   std::size_t rb) const {
  SBS_CHECK(nb < kNodeBuckets && rb < kRequestBuckets);
  return cells_[nb][rb].count;
}

Time ClassCorrectionPredictor::predict(const Job& job) const {
  const Time requested = std::max<Time>(job.requested, 1);
  const Cell& cell = cells_[node_bucket(job.nodes)][request_bucket(requested)];
  double ratio;
  if (cell.count >= min_observations_) {
    ratio = cell_estimate(cell);
  } else if (global_.count >= min_observations_) {
    ratio = cell_estimate(global_);
  } else {
    return requested;
  }
  const Time predicted = static_cast<Time>(
      std::llround(ratio * static_cast<double>(requested)));
  return std::clamp<Time>(predicted, 1, requested);
}

EwmaPredictor::EwmaPredictor(double alpha) : alpha_(alpha) {
  SBS_CHECK(alpha > 0.0 && alpha <= 1.0);
}

void EwmaPredictor::observe(const Job& job, Time actual_runtime) {
  SBS_CHECK(actual_runtime >= 1);
  const double ratio =
      static_cast<double>(actual_runtime) /
      static_cast<double>(std::max<Time>(job.requested, 1));
  if (!seen_any_) {
    ratio_ = ratio;
    seen_any_ = true;
  } else {
    ratio_ += alpha_ * (ratio - ratio_);
  }
}

Time EwmaPredictor::predict(const Job& job) const {
  const Time requested = std::max<Time>(job.requested, 1);
  if (!seen_any_) return requested;
  const Time predicted = static_cast<Time>(
      std::llround(ratio_ * static_cast<double>(requested)));
  return std::clamp<Time>(predicted, 1, requested);
}

}  // namespace sbs
