#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <string>

#include "jobs/job.hpp"

namespace sbs {

/// On-line job-runtime prediction — the paper's future-work item
/// "applying job runtime prediction techniques to improve the accuracy of
/// estimated job runtime for scheduling". A predictor sees every completed
/// job (actual runtime vs. the user's request) and supplies the runtime
/// estimate the scheduler plans with for each new job. Implementations
/// must never predict below 1 second; predicting above the request is
/// allowed but the stock predictors cap at R (systems kill jobs at R).
class RuntimePredictor {
 public:
  virtual ~RuntimePredictor() = default;

  /// Called by the simulator when a job completes.
  virtual void observe(const Job& job, Time actual_runtime) = 0;

  /// Estimate for a newly submitted job (uses nodes + requested runtime).
  virtual Time predict(const Job& job) const = 0;

  virtual std::string name() const = 0;
};

/// Baseline: trust the user's request verbatim (R* = R).
class IdentityPredictor final : public RuntimePredictor {
 public:
  void observe(const Job&, Time) override {}
  Time predict(const Job& job) const override { return job.requested; }
  std::string name() const override { return "identity"; }
};

/// Class-corrected predictor in the spirit of Gibbons' historical
/// profiles: jobs are bucketed by (node class x requested-runtime class);
/// each bucket tracks the running mean of the ratio T / R of completed
/// jobs, and predictions scale the request by the bucket's mean ratio
/// (falling back to the global mean, then to the raw request). A floor on
/// observations per bucket avoids trusting one-sample buckets.
class ClassCorrectionPredictor final : public RuntimePredictor {
 public:
  static constexpr std::size_t kNodeBuckets = 5;
  static constexpr std::size_t kRequestBuckets = 4;

  /// `min_observations`: bucket sample count before its mean is trusted.
  /// `safety_stddevs`: predictions use mean + k * stddev of the observed
  /// T / R ratio rather than the bare mean — underestimating a running
  /// job's remaining time corrupts every reservation behind it, while
  /// overestimating merely wastes backfill opportunities, so predictions
  /// should err high (cf. the requested-runtime literature).
  explicit ClassCorrectionPredictor(std::size_t min_observations = 5,
                                    double safety_stddevs = 1.0);

  void observe(const Job& job, Time actual_runtime) override;
  Time predict(const Job& job) const override;
  std::string name() const override { return "class-correction"; }

  /// Introspection for tests and reports.
  double bucket_ratio(std::size_t node_bucket, std::size_t request_bucket) const;
  std::size_t bucket_count(std::size_t node_bucket,
                           std::size_t request_bucket) const;

  static std::size_t node_bucket(int nodes);
  static std::size_t request_bucket(Time requested);

 private:
  struct Cell {
    double ratio_sum = 0.0;
    double ratio_sumsq = 0.0;
    std::size_t count = 0;
  };
  double cell_estimate(const Cell& cell) const;

  std::array<std::array<Cell, kRequestBuckets>, kNodeBuckets> cells_{};
  Cell global_{};
  std::size_t min_observations_;
  double safety_stddevs_;
};

/// Exponentially weighted recent-ratio predictor: one global EWMA of
/// T / R, reacting quickly to workload drift (e.g. a user cohort that
/// pads requests 8x suddenly dominating the queue).
class EwmaPredictor final : public RuntimePredictor {
 public:
  explicit EwmaPredictor(double alpha = 0.05);

  void observe(const Job& job, Time actual_runtime) override;
  Time predict(const Job& job) const override;
  std::string name() const override { return "ewma"; }

  double current_ratio() const { return ratio_; }

 private:
  double alpha_;
  double ratio_ = 1.0;
  bool seen_any_ = false;
};

}  // namespace sbs
