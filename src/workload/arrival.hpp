#pragma once

#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace sbs {

/// Arrival-process model for the synthetic workloads: a nonhomogeneous
/// base rate (diurnal cycle + weekend dip) with optional submission
/// bursts (users submitting job arrays / parameter sweeps in one go).
/// Bursts are what create the deep transient backlogs of months like the
/// real January 2004 — a stationary Poisson stream spreads the same load
/// too evenly to stress a scheduler the same way.
struct ArrivalConfig {
  double diurnal_amplitude = 0.4;  ///< 0 disables the day/night cycle
  double weekend_factor = 0.75;    ///< rate multiplier on days 5-6 of a week
  /// Probability that a submission event is a burst rather than a single
  /// job (0 disables bursts). Because bursts carry >= 2 jobs, the share
  /// of JOBS arriving in bursts is higher than this value.
  double burst_fraction = 0.0;
  /// Mean burst size (geometric distribution, >= 2 per burst).
  double burst_mean_size = 8.0;
  /// Submissions within one burst spread over this span.
  Time burst_spread = 10 * kMinute;
};

/// Samples arrival times within [begin, begin + span).
class ArrivalSampler {
 public:
  ArrivalSampler(ArrivalConfig config, Time begin, Time span);

  /// Relative arrival intensity at time t (>= 0; peak normalized ~1+amp).
  double rate_at(Time t) const;

  /// One arrival by thinning against the base rate.
  Time sample_one(Rng& rng) const;

  /// `count` arrivals: a mix of independent arrivals and bursts per the
  /// config. NOT sorted — callers pairing arrivals with independently
  /// ordered job attributes rely on the lack of time ordering (the trace
  /// is normalized later).
  std::vector<Time> sample(Rng& rng, std::size_t count) const;

 private:
  ArrivalConfig config_;
  Time begin_;
  Time span_;
};

}  // namespace sbs
