#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string_view>

#include "util/time.hpp"

namespace sbs {

/// Published per-month statistics of the NCSA IA-64 (Titan) workload,
/// transcribed from Tables 2-4 of the paper. These are the calibration
/// targets of the synthetic trace generator — the substitution for the
/// proprietary monthly traces (see DESIGN.md §2).
struct MonthStats {
  std::string_view name;  ///< "6/03" .. "3/04"
  int days;               ///< calendar days in the month
  int total_jobs;         ///< Table 3 "#jobs"
  double load;            ///< Table 3 "proc. demand" of the Total column
  Time runtime_limit;     ///< Table 2 job limit R (12 h before 12/03, then 24 h)

  /// Table 3 row pair, over the node ranges
  /// {1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, 65-128} (fractions of the month).
  std::array<double, 8> job_fraction;
  std::array<double, 8> demand_fraction;

  /// Table 4 rows, over the coarse node classes {1, 2, 3-8, 9-32, 33-128}:
  /// fraction of ALL jobs in the month with T <= 1 h resp. T > 5 h.
  std::array<double, 5> short_fraction;
  std::array<double, 5> long_fraction;
};

/// Capacity of the machine (Table 2): 128 nodes, node = allocation unit.
inline constexpr int kNcsaCapacity = 128;

/// The ten study months, June 2003 .. March 2004, in order.
std::span<const MonthStats> ncsa_months();

/// Looks a month up by name ("1/04"); throws sbs::Error when unknown.
const MonthStats& ncsa_month(std::string_view name);

/// Maps a Table 3 node-range index (0..7) to the Table 4 coarse class
/// (0..4): {1}->0, {2}->1, {3-4,5-8}->2, {9-16,17-32}->3, {33-64,65-128}->4.
std::size_t coarse_class_of_range(std::size_t range);

/// Inclusive node bounds of a Table 3 range index.
struct NodeRange {
  int lo;
  int hi;
};
NodeRange mix_range_bounds(std::size_t range);

}  // namespace sbs
