#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace sbs {

namespace {

// Runtime classes used for calibration: matches Table 4's bands with a
// medium band between them.
enum RuntimeClass { kShort = 0, kMedium = 1, kLong = 2 };

struct ClassBounds {
  Time lo;
  Time hi;
};

ClassBounds class_bounds(int cls, Time limit) {
  switch (cls) {
    case kShort: return {30, kHour};
    case kMedium: return {kHour + 1, 5 * kHour};
    default: return {5 * kHour + 1, limit};
  }
}

// Largest-remainder apportionment of `total` items over `weights`.
std::vector<std::size_t> apportion(std::span<const double> weights,
                                   std::size_t total) {
  const double wsum = std::accumulate(weights.begin(), weights.end(), 0.0);
  SBS_CHECK(wsum > 0.0);
  std::vector<std::size_t> counts(weights.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double exact = static_cast<double>(total) * weights[i] / wsum;
    counts[i] = static_cast<std::size_t>(exact);
    assigned += counts[i];
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (std::size_t k = 0; assigned < total; ++k, ++assigned)
    ++counts[remainders[k % remainders.size()].second];
  return counts;
}

// Conditional runtime-class probabilities for one coarse node class,
// derived from Table 4 (fractions of all jobs) and Table 3 (job shares).
std::array<double, 3> class_probs(const MonthStats& stats,
                                  std::size_t coarse) {
  double coarse_jobs = 0.0;
  for (std::size_t r = 0; r < 8; ++r)
    if (coarse_class_of_range(r) == coarse) coarse_jobs += stats.job_fraction[r];
  double jf_sum = std::accumulate(stats.job_fraction.begin(),
                                  stats.job_fraction.end(), 0.0);
  coarse_jobs /= jf_sum;  // normalized share of jobs in this coarse class

  double p_short = 0.0, p_long = 0.0;
  if (coarse_jobs > 1e-9) {
    p_short = stats.short_fraction[coarse] / coarse_jobs;
    p_long = stats.long_fraction[coarse] / coarse_jobs;
  }
  p_short = std::clamp(p_short, 0.0, 0.95);
  p_long = std::clamp(p_long, 0.0, 0.95);
  double p_med = 1.0 - p_short - p_long;
  if (p_med < 0.02) {  // keep a sliver of medium jobs and renormalize
    p_med = 0.02;
    const double scale = (1.0 - p_med) / (p_short + p_long);
    p_short *= scale;
    p_long *= scale;
  }
  return {p_short, p_med, p_long};
}

int sample_nodes(Rng& rng, NodeRange range) {
  if (range.lo == range.hi) return range.lo;
  // Users overwhelmingly request powers of two; keep a uniform tail so
  // every width in the range occurs.
  if (rng.bernoulli(0.6)) {
    int candidates[8];
    int n = 0;
    for (int p = 1; p <= range.hi; p *= 2)
      if (p >= range.lo) candidates[n++] = p;
    if (n > 0) return candidates[rng.index(static_cast<std::size_t>(n))];
  }
  return static_cast<int>(rng.uniform_int(range.lo, range.hi));
}

Time sample_runtime(Rng& rng, int cls, Time limit) {
  const ClassBounds b = class_bounds(cls, limit);
  return static_cast<Time>(
      std::llround(rng.log_uniform(static_cast<double>(b.lo),
                                   static_cast<double>(b.hi))));
}

// One sampled job before submit-time assignment.
struct ProtoJob {
  int nodes;
  Time runtime;
  int cls;
  std::size_t range;
};

// Scales runtimes toward per-range demand targets, clamping inside each
// job's runtime class so the Table 4 shape is preserved, then runs a
// global pass toward the month's total demand.
void calibrate_demand(std::vector<ProtoJob>& jobs, const MonthStats& stats,
                      double total_demand_target) {
  std::array<double, 8> target{};
  const double dsum = std::accumulate(stats.demand_fraction.begin(),
                                      stats.demand_fraction.end(), 0.0);
  for (std::size_t r = 0; r < 8; ++r)
    target[r] = stats.demand_fraction[r] / dsum * total_demand_target;

  auto clamp_to_class = [&](ProtoJob& j, double t) {
    const ClassBounds b = class_bounds(j.cls, stats.runtime_limit);
    j.runtime = std::clamp<Time>(static_cast<Time>(std::llround(t)), b.lo, b.hi);
  };

  for (int pass = 0; pass < 6; ++pass) {
    std::array<double, 8> achieved{};
    for (const auto& j : jobs)
      achieved[j.range] += static_cast<double>(j.nodes) *
                           static_cast<double>(j.runtime);
    for (auto& j : jobs) {
      if (achieved[j.range] <= 0.0 || target[j.range] <= 0.0) continue;
      const double f = target[j.range] / achieved[j.range];
      clamp_to_class(j, static_cast<double>(j.runtime) * f);
    }
  }
  for (int pass = 0; pass < 3; ++pass) {
    double achieved = 0.0;
    for (const auto& j : jobs)
      achieved += static_cast<double>(j.nodes) * static_cast<double>(j.runtime);
    if (achieved <= 0.0) break;
    const double f = total_demand_target / achieved;
    for (auto& j : jobs) clamp_to_class(j, static_cast<double>(j.runtime) * f);
  }
}

std::vector<ProtoJob> sample_jobs(Rng& rng, const MonthStats& stats,
                                  std::size_t count,
                                  double total_demand_target) {
  const auto counts = apportion(stats.job_fraction, count);
  std::array<std::array<double, 3>, 5> probs;
  for (std::size_t c = 0; c < 5; ++c) probs[c] = class_probs(stats, c);

  std::vector<ProtoJob> jobs;
  jobs.reserve(count);
  for (std::size_t r = 0; r < 8; ++r) {
    const NodeRange bounds = mix_range_bounds(r);
    const std::size_t coarse = coarse_class_of_range(r);
    for (std::size_t k = 0; k < counts[r]; ++k) {
      ProtoJob j;
      j.range = r;
      j.nodes = sample_nodes(rng, bounds);
      const double u = rng.uniform();
      j.cls = u < probs[coarse][kShort]
                  ? kShort
                  : (u < probs[coarse][kShort] + probs[coarse][kMedium]
                         ? kMedium
                         : kLong);
      j.runtime = sample_runtime(rng, j.cls, stats.runtime_limit);
      jobs.push_back(j);
    }
  }
  calibrate_demand(jobs, stats, total_demand_target);
  return jobs;
}

Time sample_requested(Rng& rng, Time runtime, Time limit,
                      const GeneratorConfig& cfg) {
  Time requested;
  if (rng.bernoulli(cfg.request_limit_p)) {
    requested = limit;
  } else {
    const double factor =
        rng.log_uniform(1.0, std::max(1.0, cfg.request_max_factor));
    requested = static_cast<Time>(
        std::llround(static_cast<double>(runtime) * factor));
    // Users request in coarse increments; round up to 15 minutes.
    const Time quantum = 15 * kMinute;
    requested = (requested + quantum - 1) / quantum * quantum;
  }
  return std::clamp<Time>(requested, runtime, limit);
}

// Zipf(s) sampler over 1..n via the precomputed cumulative distribution.
class ZipfSampler {
 public:
  ZipfSampler(int n, double exponent) {
    SBS_CHECK(n >= 0);
    cumulative_.reserve(static_cast<std::size_t>(n));
    double total = 0.0;
    for (int k = 1; k <= n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k), exponent);
      cumulative_.push_back(total);
    }
  }

  int sample(Rng& rng) const {
    if (cumulative_.empty()) return 0;
    const double u = rng.uniform() * cumulative_.back();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<int>(it - cumulative_.begin()) + 1;
  }

 private:
  std::vector<double> cumulative_;
};

void emit_batch(Rng& rng, const MonthStats& stats, const GeneratorConfig& cfg,
                std::size_t count, double demand_target, Time begin, Time span,
                bool in_window, std::vector<Job>& out) {
  if (count == 0 || span <= 0) return;
  const auto protos = sample_jobs(rng, stats, count, demand_target);
  const ArrivalSampler sampler(cfg.arrivals, begin, span);
  const std::vector<Time> submits = sampler.sample(rng, protos.size());
  const ZipfSampler users(cfg.num_users, cfg.zipf_exponent);
  for (std::size_t i = 0; i < protos.size(); ++i) {
    const ProtoJob& pj = protos[i];
    Job j;
    j.nodes = pj.nodes;
    j.runtime = std::max<Time>(pj.runtime, 1);
    j.submit = submits[i];
    j.requested = sample_requested(rng, j.runtime, stats.runtime_limit, cfg);
    j.user = users.sample(rng);
    j.in_window = in_window;
    out.push_back(j);
  }
}

}  // namespace

Trace generate_month(const MonthStats& stats, const GeneratorConfig& cfg) {
  SBS_CHECK(cfg.job_scale > 0.0);
  SBS_CHECK(cfg.capacity >= 1);

  std::uint64_t name_hash = 1469598103934665603ULL;
  for (char c : stats.name) name_hash = (name_hash ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  Rng rng = Rng(cfg.seed).fork(name_hash);

  Trace trace;
  trace.name = std::string(stats.name);
  trace.capacity = cfg.capacity;
  trace.window_begin = 0;
  // job_scale compresses the job count AND the window together so the
  // arrival density — and therefore the offered load and the contention
  // the policies face — is preserved in scaled-down quick runs.
  trace.window_end = static_cast<Time>(std::llround(
      static_cast<double>(stats.days) * kDay * cfg.job_scale));
  SBS_CHECK_MSG(trace.window_end >= kDay / 4,
                "job_scale too small for month " << stats.name);

  const double month_span = static_cast<double>(trace.window_end);
  const double month_demand = stats.load * cfg.capacity * month_span;
  const auto month_jobs = static_cast<std::size_t>(std::llround(
      std::max(1.0, static_cast<double>(stats.total_jobs) * cfg.job_scale)));

  emit_batch(rng, stats, cfg, month_jobs, month_demand, 0, trace.window_end,
             /*in_window=*/true, trace.jobs);

  if (cfg.warmup_cooldown) {
    const Time lead = static_cast<Time>(
        std::llround(static_cast<double>(kWeek) * cfg.job_scale));
    const double lead_frac = static_cast<double>(lead) / month_span;
    const auto lead_jobs = static_cast<std::size_t>(
        std::llround(static_cast<double>(month_jobs) * lead_frac));
    const double lead_demand = month_demand * lead_frac;
    Rng warm = rng.fork(1);
    emit_batch(warm, stats, cfg, lead_jobs, lead_demand, -lead, lead,
               /*in_window=*/false, trace.jobs);
    Rng cool = rng.fork(2);
    emit_batch(cool, stats, cfg, lead_jobs, lead_demand, trace.window_end,
               lead, /*in_window=*/false, trace.jobs);
  }

  trace.normalize();
  trace.validate();
  return trace;
}

Trace generate_month(std::string_view name, const GeneratorConfig& cfg) {
  return generate_month(ncsa_month(name), cfg);
}

std::vector<Trace> generate_all_months(const GeneratorConfig& cfg) {
  std::vector<Trace> traces;
  traces.reserve(ncsa_months().size());
  for (const auto& m : ncsa_months()) traces.push_back(generate_month(m, cfg));
  return traces;
}

}  // namespace sbs
