#pragma once

#include "jobs/trace.hpp"
#include "util/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/ncsa_tables.hpp"

namespace sbs {

/// Controls for the synthetic monthly trace generator.
struct GeneratorConfig {
  std::uint64_t seed = 2005;  ///< base seed; each month forks its own stream
  double job_scale = 1.0;     ///< scales the job count (quick test modes)
  bool warmup_cooldown = true;  ///< add the paper's 1-week lead-in/lead-out
  int capacity = kNcsaCapacity;

  /// Requested-runtime inaccuracy model: with probability `request_limit_p`
  /// the user requests the runtime limit; otherwise R = T times a
  /// log-uniform factor in [1, request_max_factor], rounded up to 15 min
  /// and clamped to the limit. Matches the "inaccurate but correlated"
  /// regime of production traces (see DESIGN.md §2).
  double request_limit_p = 0.20;
  double request_max_factor = 8.0;

  /// Arrival process (see workload/arrival.hpp). The default has a
  /// day/night cycle and a weekend dip but no bursts; setting
  /// arrivals.burst_fraction > 0 adds submission bursts (job arrays),
  /// which create the deep transient backlogs of hard months like 1/04.
  ArrivalConfig arrivals;

  /// User population for fair-share experiments: jobs are attributed to
  /// users 1..num_users with Zipf(zipf_exponent) popularity — a few heavy
  /// users dominate, as in real accounting logs. 0 disables (user = 0).
  int num_users = 40;
  double zipf_exponent = 1.0;
};

/// Generates one synthetic month calibrated to the published statistics:
/// job count, per-node-range job and demand shares (Table 3), short/long
/// runtime-class shares (Table 4), offered load, and runtime limit
/// (Table 2). The metrics window is [0, days*24h); warm-up jobs arrive in
/// the week before 0 and cool-down jobs in the week after, flagged
/// in_window = false.
Trace generate_month(const MonthStats& stats, const GeneratorConfig& config = {});

/// Convenience: by month name ("7/03").
Trace generate_month(std::string_view name, const GeneratorConfig& config = {});

/// Generates all ten study months.
std::vector<Trace> generate_all_months(const GeneratorConfig& config = {});

}  // namespace sbs
