#include "workload/arrival.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sbs {

ArrivalSampler::ArrivalSampler(ArrivalConfig config, Time begin, Time span)
    : config_(config), begin_(begin), span_(span) {
  SBS_CHECK(span > 0);
  SBS_CHECK(config_.diurnal_amplitude >= 0.0 &&
            config_.diurnal_amplitude <= 1.0);
  SBS_CHECK(config_.weekend_factor > 0.0 && config_.weekend_factor <= 1.0);
  SBS_CHECK(config_.burst_fraction >= 0.0 && config_.burst_fraction <= 1.0);
  SBS_CHECK(config_.burst_mean_size >= 2.0);
  SBS_CHECK(config_.burst_spread >= 1);
}

double ArrivalSampler::rate_at(Time t) const {
  const double day_phase =
      static_cast<double>(((t % kDay) + kDay) % kDay) /
      static_cast<double>(kDay);
  // Peak mid-day, trough at night.
  double rate = 1.0 + config_.diurnal_amplitude *
                          std::sin(6.283185307179586 * (day_phase - 0.25));
  const long long day_index = ((t / kDay) % 7 + 7) % 7;
  if (day_index >= 5) rate *= config_.weekend_factor;
  return rate;
}

Time ArrivalSampler::sample_one(Rng& rng) const {
  const double max_rate = 1.0 + config_.diurnal_amplitude;
  for (int attempt = 0; attempt < 256; ++attempt) {
    const Time t = begin_ + static_cast<Time>(rng.uniform_int(0, span_ - 1));
    if (rng.uniform() * max_rate < rate_at(t)) return t;
  }
  return begin_ + static_cast<Time>(rng.uniform_int(0, span_ - 1));
}

std::vector<Time> ArrivalSampler::sample(Rng& rng, std::size_t count) const {
  std::vector<Time> arrivals;
  arrivals.reserve(count);
  const Time end = begin_ + span_;
  while (arrivals.size() < count) {
    if (config_.burst_fraction > 0.0 &&
        rng.uniform() < config_.burst_fraction) {
      // Geometric burst size with the configured mean (min 2).
      const double p = 1.0 / (config_.burst_mean_size - 1.0);
      std::size_t size = 2;
      while (rng.uniform() >= p && size < 256) ++size;
      const Time anchor = sample_one(rng);
      for (std::size_t k = 0; k < size && arrivals.size() < count; ++k) {
        const Time offset =
            static_cast<Time>(rng.uniform_int(0, config_.burst_spread));
        arrivals.push_back(std::clamp<Time>(anchor + offset, begin_, end - 1));
      }
    } else {
      arrivals.push_back(sample_one(rng));
    }
  }
  return arrivals;
}

}  // namespace sbs
