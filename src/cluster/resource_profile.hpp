#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace sbs {

/// Stepwise free-node timeline from an origin time to +infinity.
///
/// This is the substrate both for backfill (reservations + "can it start
/// now?") and for the search-based schedule builder (tentative placement of
/// every waiting job along a path). It is a flat sorted vector of steps —
/// small (one step per live reservation boundary), cache-friendly, and cheap
/// to copy, which the tree search exploits by keeping one copy per DFS
/// level.
class ResourceProfile {
 public:
  /// One step: `free` nodes are available from `time` until the next step
  /// (the last step extends to +infinity).
  struct Step {
    Time time;
    int free;
  };

  /// Full capacity available from `origin` onward.
  ResourceProfile(int capacity, Time origin);

  int capacity() const { return capacity_; }
  Time origin() const { return steps_.front().time; }
  std::size_t step_count() const { return steps_.size(); }
  const std::vector<Step>& steps() const { return steps_; }

  /// Free nodes at time t (t >= origin()).
  int free_at(Time t) const;

  /// Earliest time >= from at which `nodes` nodes are free for the whole
  /// interval [start, start + duration). Requires 1 <= nodes <= capacity
  /// and duration > 0. Always succeeds (the far future is empty).
  Time earliest_start(Time from, int nodes, Time duration) const;

  /// True if `nodes` nodes are free over [start, start + duration).
  bool fits(Time start, int nodes, Time duration) const;

  /// Subtracts `nodes` over [start, start + duration). The interval must
  /// fit (checked); use earliest_start()/fits() first.
  void reserve(Time start, int nodes, Time duration);

  /// Reversible delta record of one reserve_logged() call: which step range
  /// was decremented and which boundaries were inserted for it. Opaque to
  /// callers — hold on to it and hand it back to undo() in strict LIFO
  /// order.
  struct ReserveUndo {
    Time start = 0;
    int nodes = 0;
    std::uint32_t first = 0;  ///< first decremented step at apply time
    std::uint32_t last = 0;   ///< one past the last decremented step
    bool inserted_first = false;  ///< a boundary was inserted at `start`
    bool inserted_last = false;   ///< a boundary was inserted at the end
  };

  /// Exactly reserve(), but returns a delta record that undo() can apply to
  /// restore the profile byte-for-byte. This is the substrate of the
  /// incremental search engine: placing a job on the path appends one
  /// record, backtracking pops it — O(touched steps) instead of an O(steps)
  /// profile copy per tree node.
  ReserveUndo reserve_logged(Time start, int nodes, Time duration);

  /// Reverts one reserve_logged() call. Records MUST be undone in reverse
  /// order of their creation (strict LIFO): only then are the recorded step
  /// indices guaranteed to address the same steps they did at apply time,
  /// restoring the exact pre-reserve step vector.
  void undo(const ReserveUndo& u);

  /// Like reserve(), but floors each step's free count at zero instead of
  /// requiring the interval to fit. Used when reconstructing a profile
  /// from running jobs on a machine whose capacity shrank underneath them
  /// (fault injection): the running set may transiently oversubscribe the
  /// degraded machine, and the profile must saturate, not throw.
  void reserve_clamped(Time start, int nodes, Time duration);

  /// Adds `nodes` back over [start, start + duration), clamped below the
  /// origin (used when building a profile from already-running jobs whose
  /// remaining interval starts at the origin). Free counts may not exceed
  /// capacity (checked).
  void release(Time start, int nodes, Time duration);

  /// Drops redundant steps (equal consecutive free counts). reserve() keeps
  /// the profile minimal already; this is for tests and release().
  void compact();

 private:
  /// Index of the step whose interval contains t.
  std::size_t step_index(Time t) const;

  /// Ensures a step boundary exists exactly at t (t >= origin) and returns
  /// its index. When `inserted` is non-null it reports whether a new step
  /// had to be created (the information undo() needs to remove it again).
  std::size_t ensure_boundary(Time t, bool* inserted = nullptr);

  std::vector<Step> steps_;
  int capacity_;
};

}  // namespace sbs
