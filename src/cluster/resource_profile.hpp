#pragma once

#include <vector>

#include "util/time.hpp"

namespace sbs {

/// Stepwise free-node timeline from an origin time to +infinity.
///
/// This is the substrate both for backfill (reservations + "can it start
/// now?") and for the search-based schedule builder (tentative placement of
/// every waiting job along a path). It is a flat sorted vector of steps —
/// small (one step per live reservation boundary), cache-friendly, and cheap
/// to copy, which the tree search exploits by keeping one copy per DFS
/// level.
class ResourceProfile {
 public:
  /// One step: `free` nodes are available from `time` until the next step
  /// (the last step extends to +infinity).
  struct Step {
    Time time;
    int free;
  };

  /// Full capacity available from `origin` onward.
  ResourceProfile(int capacity, Time origin);

  int capacity() const { return capacity_; }
  Time origin() const { return steps_.front().time; }
  std::size_t step_count() const { return steps_.size(); }
  const std::vector<Step>& steps() const { return steps_; }

  /// Free nodes at time t (t >= origin()).
  int free_at(Time t) const;

  /// Earliest time >= from at which `nodes` nodes are free for the whole
  /// interval [start, start + duration). Requires 1 <= nodes <= capacity
  /// and duration > 0. Always succeeds (the far future is empty).
  Time earliest_start(Time from, int nodes, Time duration) const;

  /// True if `nodes` nodes are free over [start, start + duration).
  bool fits(Time start, int nodes, Time duration) const;

  /// Subtracts `nodes` over [start, start + duration). The interval must
  /// fit (checked); use earliest_start()/fits() first.
  void reserve(Time start, int nodes, Time duration);

  /// Like reserve(), but floors each step's free count at zero instead of
  /// requiring the interval to fit. Used when reconstructing a profile
  /// from running jobs on a machine whose capacity shrank underneath them
  /// (fault injection): the running set may transiently oversubscribe the
  /// degraded machine, and the profile must saturate, not throw.
  void reserve_clamped(Time start, int nodes, Time duration);

  /// Adds `nodes` back over [start, start + duration), clamped below the
  /// origin (used when building a profile from already-running jobs whose
  /// remaining interval starts at the origin). Free counts may not exceed
  /// capacity (checked).
  void release(Time start, int nodes, Time duration);

  /// Drops redundant steps (equal consecutive free counts). reserve() keeps
  /// the profile minimal already; this is for tests and release().
  void compact();

 private:
  /// Index of the step whose interval contains t.
  std::size_t step_index(Time t) const;

  /// Ensures a step boundary exists exactly at t (t >= origin) and returns
  /// its index.
  std::size_t ensure_boundary(Time t);

  std::vector<Step> steps_;
  int capacity_;
};

}  // namespace sbs
