#include "cluster/resource_profile.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sbs {

ResourceProfile::ResourceProfile(int capacity, Time origin)
    : capacity_(capacity) {
  SBS_CHECK(capacity > 0);
  steps_.push_back(Step{origin, capacity});
}

std::size_t ResourceProfile::step_index(Time t) const {
  SBS_CHECK_MSG(t >= steps_.front().time, "query before profile origin");
  // Last step with time <= t. The vectors are tens of entries long, so a
  // branchless-ish linear scan from the back or binary search both work;
  // binary search keeps worst cases flat.
  auto it = std::upper_bound(
      steps_.begin(), steps_.end(), t,
      [](Time value, const Step& s) { return value < s.time; });
  return static_cast<std::size_t>(it - steps_.begin()) - 1;
}

int ResourceProfile::free_at(Time t) const { return steps_[step_index(t)].free; }

bool ResourceProfile::fits(Time start, int nodes, Time duration) const {
  SBS_CHECK(duration > 0);
  const Time end = start + duration;
  for (std::size_t i = step_index(start); i < steps_.size(); ++i) {
    if (steps_[i].time >= end) break;
    if (steps_[i].free < nodes) return false;
  }
  return true;
}

Time ResourceProfile::earliest_start(Time from, int nodes,
                                     Time duration) const {
  SBS_CHECK(nodes >= 1 && nodes <= capacity_);
  SBS_CHECK(duration > 0);
  if (from < steps_.front().time) from = steps_.front().time;

  std::size_t i = step_index(from);
  while (true) {
    // Candidate start: beginning of step i (clamped to `from`).
    const Time t = std::max(from, steps_[i].time);
    if (steps_[i].free >= nodes) {
      const Time end = t + duration;
      std::size_t k = i + 1;
      while (k < steps_.size() && steps_[k].time < end &&
             steps_[k].free >= nodes)
        ++k;
      if (k >= steps_.size() || steps_[k].time >= end) return t;
      i = k;  // blocked at step k; next candidate starts at its successor
    }
    ++i;
    // The final step extends to infinity with some free count; if even it
    // cannot host the job the capacity check above would have failed, so
    // we can always terminate.
    SBS_CHECK_MSG(i < steps_.size() || steps_.back().free >= nodes,
                  "no feasible start found — inconsistent profile");
    if (i >= steps_.size()) return std::max(from, steps_.back().time);
  }
}

std::size_t ResourceProfile::ensure_boundary(Time t, bool* inserted) {
  const std::size_t i = step_index(t);
  if (steps_[i].time == t) {
    if (inserted != nullptr) *inserted = false;
    return i;
  }
  steps_.insert(steps_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                Step{t, steps_[i].free});
  if (inserted != nullptr) *inserted = true;
  return i + 1;
}

void ResourceProfile::reserve(Time start, int nodes, Time duration) {
  SBS_CHECK(duration > 0);
  SBS_CHECK(nodes >= 1);
  const Time end = start + duration;
  const std::size_t first = ensure_boundary(start);
  const std::size_t last = ensure_boundary(end);  // first step NOT reduced
  for (std::size_t i = first; i < last; ++i) {
    SBS_CHECK_MSG(steps_[i].free >= nodes,
                  "reservation does not fit at t=" << steps_[i].time);
    steps_[i].free -= nodes;
  }
}

ResourceProfile::ReserveUndo ResourceProfile::reserve_logged(Time start,
                                                             int nodes,
                                                             Time duration) {
  SBS_CHECK(duration > 0);
  SBS_CHECK(nodes >= 1);
  const Time end = start + duration;
  ReserveUndo u;
  u.start = start;
  u.nodes = nodes;
  bool inserted_first = false;
  bool inserted_last = false;
  const std::size_t first = ensure_boundary(start, &inserted_first);
  const std::size_t last = ensure_boundary(end, &inserted_last);
  u.first = static_cast<std::uint32_t>(first);
  u.last = static_cast<std::uint32_t>(last);
  u.inserted_first = inserted_first;
  u.inserted_last = inserted_last;
  for (std::size_t i = first; i < last; ++i) {
    SBS_CHECK_MSG(steps_[i].free >= nodes,
                  "reservation does not fit at t=" << steps_[i].time);
    steps_[i].free -= nodes;
  }
  return u;
}

void ResourceProfile::undo(const ReserveUndo& u) {
  // LIFO discipline means every step the record touched is still where it
  // was at apply time: later reservations have already been undone, so the
  // step vector is byte-identical to the post-apply state.
  SBS_CHECK_MSG(u.last <= steps_.size() && u.first < u.last,
                "undo record does not match the profile (LIFO violated?)");
  SBS_CHECK_MSG(steps_[u.first].time == u.start,
                "undo record does not match the profile (LIFO violated?)");
  for (std::size_t i = u.first; i < u.last; ++i) {
    steps_[i].free += u.nodes;
    SBS_CHECK_MSG(steps_[i].free <= capacity_,
                  "undo overflows capacity at t=" << steps_[i].time);
  }
  if (u.inserted_last)
    steps_.erase(steps_.begin() + static_cast<std::ptrdiff_t>(u.last));
  if (u.inserted_first)
    steps_.erase(steps_.begin() + static_cast<std::ptrdiff_t>(u.first));
}

void ResourceProfile::reserve_clamped(Time start, int nodes, Time duration) {
  SBS_CHECK(duration > 0);
  SBS_CHECK(nodes >= 1);
  const Time end = start + duration;
  const std::size_t first = ensure_boundary(start);
  const std::size_t last = ensure_boundary(end);  // first step NOT reduced
  for (std::size_t i = first; i < last; ++i)
    steps_[i].free = std::max(0, steps_[i].free - nodes);
}

void ResourceProfile::release(Time start, int nodes, Time duration) {
  SBS_CHECK(duration > 0);
  SBS_CHECK(nodes >= 1);
  Time begin = std::max(start, steps_.front().time);
  const Time end = start + duration;
  if (end <= begin) return;
  const std::size_t first = ensure_boundary(begin);
  const std::size_t last = ensure_boundary(end);
  for (std::size_t i = first; i < last; ++i) {
    steps_[i].free += nodes;
    SBS_CHECK_MSG(steps_[i].free <= capacity_,
                  "release overflows capacity at t=" << steps_[i].time);
  }
}

void ResourceProfile::compact() {
  std::size_t out = 1;
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    if (steps_[i].free != steps_[out - 1].free) steps_[out++] = steps_[i];
  }
  steps_.resize(out);
}

}  // namespace sbs
