#pragma once

#include "util/time.hpp"

namespace sbs {

/// One batch job as submitted to the cluster. Nodes are the allocation
/// unit (the NCSA IA-64 system allocates whole dual-processor nodes).
struct Job {
  int id = 0;           ///< unique within a trace, assigned in submit order
  Time submit = 0;      ///< submission time
  int nodes = 1;        ///< requested number of nodes, N
  Time runtime = 0;     ///< actual runtime, T (> 0)
  Time requested = 0;   ///< user-requested runtime, R (>= runtime in practice
                        ///  but the library does not assume it)
  int user = 0;           ///< submitting user (fair-share accounting)
  bool in_window = true;  ///< counts toward monthly metrics (false for the
                          ///  warm-up / cool-down weeks)
};

/// Processor demand of a job in node-seconds.
constexpr double job_demand(const Job& j) {
  return static_cast<double>(j.nodes) * static_cast<double>(j.runtime);
}

}  // namespace sbs
