#pragma once

#include <string>
#include <vector>

#include "jobs/job.hpp"

namespace sbs {

/// A job trace plus the system it targets. Jobs are kept sorted by submit
/// time (ties by id); `normalize()` restores that invariant after edits.
struct Trace {
  std::string name;     ///< e.g. "7/03"
  int capacity = 128;   ///< number of nodes in the cluster
  Time window_begin = 0;  ///< metrics window [window_begin, window_end)
  Time window_end = 0;
  std::vector<Job> jobs;

  /// Sorts by (submit, id) and reassigns contiguous ids in submit order.
  void normalize();

  /// Validates invariants (positive runtimes, nodes within capacity,
  /// sortedness). Throws sbs::Error with a descriptive message.
  void validate() const;

  /// Number of jobs inside the metrics window.
  std::size_t in_window_count() const;

  /// Offered load of the in-window jobs over the metrics window:
  /// sum(N*T) / (capacity * window length).
  double offered_load() const;
};

/// Multiplies all submit times by `factor` (shrinking inter-arrival times
/// when factor < 1), rescaling the metrics window with them. This is the
/// paper's high-load transformation: runtimes and node counts are
/// untouched, so offered load scales by 1/factor.
Trace rescale_arrivals(const Trace& trace, double factor);

/// Convenience: rescale so the in-window offered load becomes `target`.
Trace rescale_to_load(const Trace& trace, double target);

}  // namespace sbs
