#include "jobs/swf.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace sbs {

std::string swf_capacity_source_name(SwfCapacitySource source) {
  switch (source) {
    case SwfCapacitySource::Default: return "default";
    case SwfCapacitySource::MaxNodes: return "MaxNodes header";
    case SwfCapacitySource::MaxProcs: return "MaxProcs header";
  }
  throw Error("unknown SWF capacity source");
}

namespace {

// Largest magnitude accepted for any SWF numeric field. Times and node
// counts beyond this would overflow the integral Job fields when cast;
// real traces stay far below it.
constexpr double kMaxFieldMagnitude = 9.0e15;

// A field value that can be safely interpreted: finite and castable.
bool sane_field(double x) {
  return std::isfinite(x) && std::abs(x) <= kMaxFieldMagnitude;
}

// Fields cast to int (job number, user id) need the tighter bound.
bool sane_int_field(double x) {
  return std::isfinite(x) && std::abs(x) <= 2147483647.0;
}

// Parses "; MaxNodes: 128"-style header values.
bool header_value(const std::string& line, const char* key, long long* out) {
  auto pos = line.find(key);
  if (pos == std::string::npos) return false;
  pos = line.find(':', pos);
  if (pos == std::string::npos) return false;
  std::istringstream is(line.substr(pos + 1));
  long long v = 0;
  if (!(is >> v)) return false;
  *out = v;
  return true;
}

}  // namespace

Trace read_swf(std::istream& in, const SwfReadOptions& options,
               SwfReadStats* stats) {
  SBS_CHECK(options.procs_per_node >= 1);
  Trace trace;
  trace.capacity = options.default_capacity;
  std::string line;
  bool capacity_from_header = false;
  Time max_end = 0;
  SwfReadStats local;
  SwfReadStats& st = stats ? *stats : local;
  st = SwfReadStats{};

  // Counts a skipped line (or throws when skipping is off).
  auto skip = [&](std::size_t& counter, const char* why) {
    if (!options.skip_invalid) throw Error(std::string(why) + ": " + line);
    ++counter;
  };

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == ';') {
      long long v = 0;
      if (header_value(line, "MaxNodes", &v) && v > 0) {
        trace.capacity = static_cast<int>(v);
        capacity_from_header = true;
        st.capacity_source = SwfCapacitySource::MaxNodes;
      } else if (!capacity_from_header && header_value(line, "MaxProcs", &v) &&
                 v > 0) {
        trace.capacity = static_cast<int>(v) / options.procs_per_node;
        st.capacity_source = SwfCapacitySource::MaxProcs;
      }
      continue;
    }
    ++st.data_lines;
    std::istringstream is(line);
    std::vector<double> f;
    double x = 0;
    while (is >> x) f.push_back(x);
    if (f.size() < 5) {
      skip(st.skipped_short, "SWF line has fewer than 5 fields");
      continue;
    }
    auto field = [&](std::size_t i) { return i < f.size() ? f[i] : -1.0; };

    // Reject NaN/inf and magnitudes that would overflow the integral job
    // fields — a static_cast of those is undefined behaviour, and the
    // resulting garbage records would silently poison the simulation.
    if (!sane_int_field(field(0)) || !sane_field(field(1)) ||
        !sane_field(field(3)) || !sane_field(field(4)) ||
        !sane_field(field(7)) || !sane_field(field(8)) ||
        !sane_int_field(field(11))) {
      skip(st.skipped_malformed, "SWF line with non-finite or overflowing field");
      continue;
    }

    Job j;
    j.id = static_cast<int>(field(0));
    j.submit = static_cast<Time>(field(1));
    j.runtime = static_cast<Time>(field(3));
    double procs = field(4);
    if (procs <= 0) procs = field(7);  // requested processors fallback
    const double req_time = field(8);
    j.requested = req_time > 0 ? static_cast<Time>(req_time) : j.runtime;

    if (j.runtime <= 0 || procs <= 0) {
      skip(st.skipped_nonpositive,
           "SWF job with non-positive runtime or processors");
      continue;
    }
    if (procs > static_cast<double>(trace.capacity) *
                    static_cast<double>(options.procs_per_node)) {
      skip(st.skipped_too_wide, "SWF job wider than the machine");
      continue;
    }
    j.nodes = static_cast<int>((procs + options.procs_per_node - 1) /
                               options.procs_per_node);
    if (j.nodes < 1) j.nodes = 1;
    if (j.nodes > trace.capacity) {
      skip(st.skipped_too_wide, "SWF job wider than the machine");
      continue;
    }
    if (j.requested < j.runtime) j.requested = j.runtime;
    const double user = field(11);  // SWF field 12: user id
    j.user = user > 0 ? static_cast<int>(user) : 0;
    trace.jobs.push_back(j);
    ++st.jobs_accepted;
    max_end = std::max(max_end, j.submit + j.runtime);
  }

  trace.normalize();
  trace.window_begin = trace.jobs.empty() ? 0 : trace.jobs.front().submit;
  trace.window_end = max_end;
  return trace;
}

Trace read_swf_file(const std::string& path, const SwfReadOptions& options,
                    SwfReadStats* stats) {
  std::ifstream in(path);
  SBS_CHECK_MSG(in.good(), "cannot open SWF file " << path);
  Trace t = read_swf(in, options, stats);
  t.name = path;
  return t;
}

void write_swf(std::ostream& out, const Trace& trace) {
  out << "; SWF export — " << trace.name << "\n";
  out << "; MaxNodes: " << trace.capacity << "\n";
  out << "; UnixStartTime: 0\n";
  for (const auto& j : trace.jobs) {
    // job submit wait run procs avgcpu mem reqprocs reqtime reqmem status
    // uid gid exe queue partition prevjob thinktime
    out << j.id + 1 << ' ' << j.submit << " -1 " << j.runtime << ' '
        << j.nodes << " -1 -1 " << j.nodes << ' ' << j.requested
        << " -1 1 " << j.user << " -1 -1 -1 -1 -1 -1\n";
  }
}

void write_swf_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  SBS_CHECK_MSG(out.good(), "cannot open SWF file for writing " << path);
  write_swf(out, trace);
}

}  // namespace sbs
