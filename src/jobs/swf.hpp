#pragma once

#include <iosfwd>
#include <string>

#include "jobs/trace.hpp"

namespace sbs {

/// Standard Workload Format (SWF) I/O, so the harness can run real public
/// traces (e.g. from the Parallel Workloads Archive) as well as synthetic
/// ones. Only the fields the simulator needs are interpreted:
///
///   field 1  job number          -> Job::id (reassigned on normalize)
///   field 2  submit time (s)     -> Job::submit
///   field 4  run time (s)        -> Job::runtime
///   field 5  allocated procs     -> Job::nodes (fallback: field 8)
///   field 8  requested procs     -> Job::nodes if field 5 missing (-1)
///   field 9  requested time (s)  -> Job::requested (fallback: runtime)
///
/// Header comments of the form "; MaxNodes: 128" / "; MaxProcs: 256" set
/// the capacity; `procs_per_node` divides processor counts down to nodes.
struct SwfReadOptions {
  int procs_per_node = 1;   ///< e.g. 2 for dual-processor-node systems
  int default_capacity = 128;  ///< used when the header names no capacity
  bool skip_invalid = true;    ///< drop jobs with missing runtime/procs
};

/// Where the trace capacity came from during a read.
enum class SwfCapacitySource {
  Default,   ///< no header value — options.default_capacity used
  MaxNodes,  ///< "; MaxNodes: N" header
  MaxProcs,  ///< "; MaxProcs: N" header divided by procs_per_node
};

std::string swf_capacity_source_name(SwfCapacitySource source);

/// Per-read accounting, so lossy loads (skip_invalid dropping lines) are
/// visible instead of silent. One counter per skip reason.
struct SwfReadStats {
  std::size_t data_lines = 0;          ///< non-comment, non-empty lines seen
  std::size_t jobs_accepted = 0;
  std::size_t skipped_short = 0;       ///< fewer than 5 whitespace fields
  std::size_t skipped_malformed = 0;   ///< NaN/inf or out-of-range numbers
  std::size_t skipped_nonpositive = 0; ///< runtime or processor count <= 0
  std::size_t skipped_too_wide = 0;    ///< wider than the machine
  SwfCapacitySource capacity_source = SwfCapacitySource::Default;

  std::size_t skipped_total() const {
    return skipped_short + skipped_malformed + skipped_nonpositive +
           skipped_too_wide;
  }
};

/// Parses an SWF stream. Throws sbs::Error on malformed numeric fields
/// unless options.skip_invalid is set (then the line is dropped and the
/// reason counted in `stats`, when provided).
Trace read_swf(std::istream& in, const SwfReadOptions& options = {},
               SwfReadStats* stats = nullptr);

/// Convenience file wrapper; throws sbs::Error if the file cannot be read.
Trace read_swf_file(const std::string& path, const SwfReadOptions& options = {},
                    SwfReadStats* stats = nullptr);

/// Writes a trace in SWF (one line per job, unused fields as -1).
void write_swf(std::ostream& out, const Trace& trace);
void write_swf_file(const std::string& path, const Trace& trace);

}  // namespace sbs
