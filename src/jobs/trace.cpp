#include "jobs/trace.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sbs {

void Trace::normalize() {
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    if (a.submit != b.submit) return a.submit < b.submit;
    return a.id < b.id;
  });
  int next_id = 0;
  for (auto& j : jobs) j.id = next_id++;
}

void Trace::validate() const {
  SBS_CHECK_MSG(capacity > 0, "trace " << name << ": capacity must be > 0");
  SBS_CHECK_MSG(window_end >= window_begin,
                "trace " << name << ": inverted metrics window");
  Time prev = jobs.empty() ? 0 : jobs.front().submit;
  for (const auto& j : jobs) {
    SBS_CHECK_MSG(j.runtime > 0, "job " << j.id << ": runtime must be > 0");
    SBS_CHECK_MSG(j.requested > 0, "job " << j.id << ": requested must be > 0");
    SBS_CHECK_MSG(j.nodes >= 1 && j.nodes <= capacity,
                  "job " << j.id << ": nodes " << j.nodes
                         << " outside [1, " << capacity << "]");
    SBS_CHECK_MSG(j.submit >= prev, "jobs not sorted by submit time");
    prev = j.submit;
  }
}

std::size_t Trace::in_window_count() const {
  return static_cast<std::size_t>(
      std::count_if(jobs.begin(), jobs.end(),
                    [](const Job& j) { return j.in_window; }));
}

double Trace::offered_load() const {
  const double span =
      static_cast<double>(window_end - window_begin) * capacity;
  if (span <= 0.0) return 0.0;
  double demand = 0.0;
  for (const auto& j : jobs)
    if (j.in_window) demand += job_demand(j);
  return demand / span;
}

Trace rescale_arrivals(const Trace& trace, double factor) {
  SBS_CHECK_MSG(factor > 0.0, "arrival rescale factor must be > 0");
  Trace out = trace;
  auto scale = [factor](Time t) {
    return static_cast<Time>(std::llround(static_cast<double>(t) * factor));
  };
  for (auto& j : out.jobs) j.submit = scale(j.submit);
  out.window_begin = scale(trace.window_begin);
  out.window_end = scale(trace.window_end);
  out.normalize();
  return out;
}

Trace rescale_to_load(const Trace& trace, double target) {
  SBS_CHECK_MSG(target > 0.0, "target load must be > 0");
  const double current = trace.offered_load();
  SBS_CHECK_MSG(current > 0.0, "trace has no in-window demand");
  return rescale_arrivals(trace, current / target);
}

}  // namespace sbs
