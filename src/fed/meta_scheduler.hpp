#pragma once

#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "jobs/job.hpp"
#include "util/time.hpp"

namespace sbs::fed {

/// Per-cluster view handed to a routing decision. Built by the Federation
/// from the member simulators' live state; `queue_demand`/`waiting` are
/// adjusted within a same-time arrival batch as jobs are routed, so a
/// batch spreads instead of dog-piling one member.
struct ClusterProbe {
  int cluster = 0;
  /// Failover verdict: false once the member's health monitor declared it
  /// down (outage or partition past the hysteresis window). Policies
  /// prefer available members; they may still return an unavailable one
  /// when no available member could ever host the job (routing stays
  /// total — the federation parks the job in limbo until recovery).
  bool available = true;
  int total_capacity = 0;  ///< member machine size (static)
  int live_capacity = 0;   ///< shrunk by current node failures
  int free_nodes = 0;      ///< live capacity minus running jobs
  std::size_t waiting = 0; ///< queued jobs (incl. same-batch routings)
  double queue_demand = 0.0;  ///< instantaneous waiting node·seconds
  double demand_ewma = 0.0;   ///< smoothed queue demand (federation EWMA)
  /// Earliest predicted start for the candidate job on this member, from a
  /// cheap per-cluster probe (free-node profile of the running set, queue
  /// greedily reserved in FCFS order). Only computed when the policy's
  /// wants_probe() is true; kUnreachable when the job cannot ever fit.
  Time earliest_start = 0;

  static constexpr Time kUnreachable = std::numeric_limits<Time>::max();
};

/// Two-level scheduling: the meta-scheduler picks the member cluster a
/// newly submitted job is routed to; the member's own search Scheduler
/// then decides when it starts. Routing must be deterministic — same
/// probes, same job, same internal state => same answer — because the
/// federation's differential and checkpoint proofs replay it.
class MetaScheduler {
 public:
  virtual ~MetaScheduler() = default;

  /// Returns the cluster id (probes[i].cluster) to route `job` to. Probes
  /// arrive in cluster-id order and are never empty. `estimate` is the
  /// runtime the member schedulers would plan with.
  virtual int route(const Job& job, Time estimate,
                    std::span<const ClusterProbe> probes) = 0;

  /// Human-readable policy name, e.g. "least-loaded".
  virtual std::string name() const = 0;

  /// Whether route() reads ClusterProbe::earliest_start. The probe costs
  /// O(queue length) per member per routed job, so the federation only
  /// computes it for policies that use it.
  virtual bool wants_probe() const { return false; }

  /// Checkpoint support, mirroring Scheduler::save_state(): round-trips
  /// the policy's cross-decision state (e.g. the round-robin cursor) as
  /// one JSON object so a resumed federation routes identically.
  virtual std::string save_state() const { return "{}"; }
  virtual void restore_state(std::string_view state) { (void)state; }
};

/// Builds a routing policy by spec: "rr" (round-robin), "least-loaded"
/// (queue-demand EWMA, the default CLI choice), "best-fit" (earliest
/// predicted start). Throws sbs::Error on unknown specs.
std::unique_ptr<MetaScheduler> make_meta(std::string_view spec);

}  // namespace sbs::fed
