#include "fed/federation.hpp"

#include <algorithm>
#include <charconv>

#include "cluster/resource_profile.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace sbs::fed {

Federation::Federation(const Trace& trace,
                       const SchedulerFactory& make_scheduler,
                       MetaScheduler& meta, const FederationConfig& config)
    : trace_(trace), meta_(meta), config_(config), tel_(config.telemetry) {
  const std::size_t n = config_.members.size();
  SBS_CHECK_MSG(n >= 1, "federation needs at least one member cluster");
  SBS_CHECK_MSG(make_scheduler != nullptr,
                "federation needs a scheduler factory");
  SBS_CHECK_MSG(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
                "ewma_alpha must be in (0, 1]");
  SBS_CHECK_MSG(config_.checkpoint_every == 0 || config_.checkpoint_sink,
                "checkpoint_every set without a checkpoint_sink");

  int total = 0;
  int widest = 0;
  for (const MemberSpec& m : config_.members) {
    SBS_CHECK_MSG(m.nodes > 0, "member cluster \"" << m.name
                               << "\" must have > 0 nodes");
    total += m.nodes;
    widest = std::max(widest, m.nodes);
  }
  // Validate the global trace once, against the widest member: every job
  // must be hostable somewhere. Members skip their own validation (their
  // capacity is legitimately smaller than some jobs they never host).
  {
    Trace global = trace_;
    global.capacity = widest;
    global.validate();
  }

  const auto& jobs = trace_.jobs;
  owner_.assign(jobs.size(), -1);
  ewma_.assign(n, 0.0);
  routed_.assign(n, 0);
  migrations_in_.assign(n, 0);
  migrations_out_.assign(n, 0);

  member_traces_.reserve(n);
  schedulers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const MemberSpec& m = config_.members[i];
    Trace mt = trace_;
    mt.capacity = m.nodes;
    mt.name = trace_.name + "/" +
              (m.name.empty() ? "c" + std::to_string(i) : m.name);
    member_traces_.push_back(std::move(mt));
    schedulers_.push_back(make_scheduler(i));
    SBS_CHECK_MSG(schedulers_.back() != nullptr,
                  "scheduler factory returned null for member " << i);
  }

  if (config_.resume != nullptr) {
    const sim::FederationSnapshot& snap = *config_.resume;
    SBS_CHECK_MSG(snap.members.size() == n,
                  "federation snapshot has " << snap.members.size()
                      << " members, run has " << n);
    SBS_CHECK_MSG(snap.owner.size() == jobs.size(),
                  "federation snapshot is for a different trace "
                  "(job count mismatch)");
    SBS_CHECK_MSG(snap.demand_ewma.size() == n &&
                      snap.routed.size() == n &&
                      snap.migrations_in.size() == n &&
                      snap.migrations_out.size() == n,
                  "federation snapshot member-array size mismatch");
    SBS_CHECK_MSG(snap.next_arrival <= jobs.size(),
                  "federation snapshot arrival cursor out of range");
    fed_events_ = snap.fed_events;
    next_arrival_ = snap.next_arrival;
    migrations_ = snap.migrations;
    owner_ = snap.owner;
    ewma_ = snap.demand_ewma;
    routed_ = snap.routed;
    migrations_in_ = snap.migrations_in;
    migrations_out_ = snap.migrations_out;
    if (!snap.meta_state.empty()) meta_.restore_state(snap.meta_state);
  }

  if (tel_)
    tel_->begin_run(obs::RunRecord{trace_.name, schedulers_.front()->name(),
                                   total, jobs.size(),
                                   n > 1 ? static_cast<int>(n) : 0});

  sims_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SimConfig mc;
    mc.use_requested_runtime = config_.use_requested_runtime;
    mc.kill_at_request = config_.kill_at_request;
    mc.requeue = config_.requeue;
    mc.max_events = config_.max_events;
    mc.faults = config_.members[i].faults;
    mc.telemetry = tel_;
    mc.emit_run_record = false;
    mc.validate_trace = false;
    // A federation of one is the plain simulator in disguise: no cluster
    // tags, so its telemetry stream stays bit-identical to simulate()'s.
    mc.cluster_id = n > 1 ? static_cast<int>(i) : -1;
    if (config_.resume != nullptr) mc.resume = &config_.resume->members[i];
    sims_.push_back(std::make_unique<sim::Simulator>(
        member_traces_[i], *schedulers_[i], mc));
    sims_.back()->enable_external_arrivals();
  }
}

Federation::~Federation() = default;

Time Federation::estimate_of(const Job& j) const {
  return config_.use_requested_runtime ? j.requested : j.runtime;
}

double Federation::queue_demand(std::size_t i) const {
  double demand = 0.0;
  for (const WaitingJob& w : sims_[i]->waiting_jobs())
    demand += static_cast<double>(w.job->nodes) *
              static_cast<double>(std::max<Time>(w.estimate, 1));
  return demand;
}

Time Federation::next_event_time() const {
  Time t = next_arrival_ < trace_.jobs.size()
               ? trace_.jobs[next_arrival_].submit
               : sim::Simulator::kNoEvent;
  for (const auto& s : sims_) t = std::min(t, s->next_event_time());
  return t;
}

std::vector<ClusterProbe> Federation::build_probes() const {
  std::vector<ClusterProbe> probes(sims_.size());
  for (std::size_t i = 0; i < sims_.size(); ++i) {
    ClusterProbe& p = probes[i];
    p.cluster = static_cast<int>(i);
    p.total_capacity = member_traces_[i].capacity;
    p.live_capacity = sims_[i]->live_capacity();
    p.free_nodes = p.live_capacity - sims_[i]->used_nodes();
    p.waiting = sims_[i]->waiting_jobs().size();
    p.queue_demand = queue_demand(i);
    p.demand_ewma = ewma_[i];
  }
  return probes;
}

// Cheap earliest-start probe: free-node profile of the member's running
// set, with the waiting queue (and jobs already routed here in this
// arrival batch) greedily reserved in order, then the candidate placed.
Time Federation::probe_earliest_start(
    std::size_t i, const Job& job, Time estimate,
    const std::vector<std::pair<int, Time>>& batch) const {
  const sim::Simulator& s = *sims_[i];
  const int cap = s.live_capacity();
  if (cap <= 0 || job.nodes > cap) return ClusterProbe::kUnreachable;
  const Time now = next_arrival_ < trace_.jobs.size()
                       ? trace_.jobs[next_arrival_].submit
                       : s.frontier();
  ResourceProfile prof = profile_from_running(cap, now, s.running_jobs());
  const auto reserve_next = [&](int nodes, Time est) {
    if (nodes > cap) return;  // parked on this member, occupies nothing
    const Time dur = std::max<Time>(est, 1);
    prof.reserve(prof.earliest_start(now, nodes, dur), nodes, dur);
  };
  for (const WaitingJob& w : s.waiting_jobs())
    reserve_next(w.job->nodes, w.estimate);
  for (const auto& [nodes, est] : batch) reserve_next(nodes, est);
  return prof.earliest_start(now, job.nodes, std::max<Time>(estimate, 1));
}

void Federation::route_arrivals(Time t) {
  const auto& jobs = trace_.jobs;
  std::vector<ClusterProbe> probes = build_probes();
  // Same-batch routings per member, so later probes in the batch see the
  // load the earlier routings already placed.
  std::vector<std::vector<std::pair<int, Time>>> batch(sims_.size());
  while (next_arrival_ < jobs.size() && jobs[next_arrival_].submit == t) {
    const Job& j = jobs[next_arrival_++];
    const Time est = estimate_of(j);
    if (meta_.wants_probe())
      for (std::size_t i = 0; i < sims_.size(); ++i)
        probes[i].earliest_start = probe_earliest_start(i, j, est, batch[i]);
    const int target = meta_.route(j, est, probes);
    SBS_CHECK_MSG(target >= 0 &&
                      static_cast<std::size_t>(target) < sims_.size(),
                  meta_.name() << " routed job " << j.id
                               << " to unknown cluster " << target);
    const auto ti = static_cast<std::size_t>(target);
    sims_[ti]->inject_arrival(j.id, t, /*record_submit=*/true);
    owner_[static_cast<std::size_t>(j.id)] = target;
    ++routed_[ti];
    probes[ti].waiting += 1;
    probes[ti].queue_demand +=
        static_cast<double>(j.nodes) *
        static_cast<double>(std::max<Time>(est, 1));
    batch[ti].emplace_back(j.nodes, est);
  }
  if (next_arrival_ >= jobs.size()) close_all_arrivals();
}

void Federation::close_all_arrivals() {
  if (arrivals_closed_) return;
  arrivals_closed_ = true;
  for (auto& s : sims_) s->close_arrivals();
}

void Federation::do_migrate(std::size_t src, std::size_t dst, int job_id,
                            Time t) {
  SBS_CHECK_MSG(sims_[src]->extract_waiting(job_id),
                "migration source lost job " << job_id);
  sims_[dst]->inject_arrival(job_id, t, /*record_submit=*/false);
  owner_[static_cast<std::size_t>(job_id)] = static_cast<int>(dst);
  ++migrations_;
  ++migrations_out_[src];
  ++migrations_in_[dst];
  if (tel_)
    tel_->job_migrated(t, job_id, static_cast<int>(src),
                       static_cast<int>(dst));
  retarget_.push_back(dst);
}

void Federation::migrate(Time t) {
  retarget_.clear();
  const std::size_t n = sims_.size();
  // Normalized load: smoothed + instantaneous backlog per node, seconds.
  const auto norm = [&](std::size_t i) {
    return (ewma_[i] + queue_demand(i)) /
           static_cast<double>(member_traces_[i].capacity);
  };

  for (std::size_t src = 0; src < n; ++src) {
    sim::Simulator& s = *sims_[src];

    // Stranded jobs: node failures shrank this member below a waiting
    // job's width. Move each to the least-loaded member that can start it
    // at current live capacity; if none exists it stays parked (the
    // source may recover first).
    const int live = s.live_capacity();
    std::vector<int> stranded;
    for (const WaitingJob& w : s.waiting_jobs())
      if (w.job->nodes > live) stranded.push_back(w.job->id);
    for (const int id : stranded) {
      const Job& j = trace_.jobs[static_cast<std::size_t>(id)];
      std::size_t best = n;
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (dst == src || sims_[dst]->live_capacity() < j.nodes) continue;
        if (best == n || norm(dst) < norm(best)) best = dst;
      }
      if (best != n) do_migrate(src, best, id, t);
    }

    // Overload rebalancing: newest waiting job that fits a sufficiently
    // less-loaded member moves there.
    if (config_.migration.max_per_event <= 0) continue;
    const double src_norm = norm(src);
    if (src_norm <=
        config_.migration.overload_backlog_h * static_cast<double>(kHour))
      continue;
    for (int moved = 0; moved < config_.migration.max_per_event; ++moved) {
      const std::vector<WaitingJob>& q = s.waiting_jobs();
      int victim = -1;
      std::size_t target = n;
      // The queue is FCFS-sorted; scan newest-first for a job with an
      // eligible destination.
      for (auto it = q.rbegin(); it != q.rend() && victim < 0; ++it) {
        for (std::size_t dst = 0; dst < n; ++dst) {
          if (dst == src || sims_[dst]->live_capacity() < it->job->nodes)
            continue;
          if (norm(dst) >= config_.migration.target_ratio * src_norm)
            continue;
          if (target == n || norm(dst) < norm(target)) target = dst;
        }
        if (target != n) victim = it->job->id;
      }
      if (victim < 0) break;
      do_migrate(src, target, victim, t);
    }
  }

  // Re-step migration targets so the injected arrivals are admitted (and
  // decided on) at `t`, in cluster-id order.
  std::sort(retarget_.begin(), retarget_.end());
  retarget_.erase(std::unique(retarget_.begin(), retarget_.end()),
                  retarget_.end());
  for (const std::size_t dst : retarget_) sims_[dst]->step(t);
}

sim::FederationSnapshot Federation::capture() const {
  sim::FederationSnapshot snap;
  snap.fed_events = fed_events_;
  snap.next_arrival = next_arrival_;
  snap.migrations = migrations_;
  snap.owner = owner_;
  snap.demand_ewma = ewma_;
  snap.routed = routed_;
  snap.migrations_in = migrations_in_;
  snap.migrations_out = migrations_out_;
  snap.meta_state = meta_.save_state();
  snap.members.reserve(sims_.size());
  for (const auto& s : sims_) snap.members.push_back(s->capture());
  return snap;
}

FederationResult Federation::run() {
  SBS_CHECK_MSG(!ran_, "Federation::run() called twice");
  ran_ = true;
  const auto& jobs = trace_.jobs;
  const std::size_t n = sims_.size();
  if (next_arrival_ >= jobs.size()) close_all_arrivals();

  while (true) {
    if (config_.interrupt != nullptr &&
        config_.interrupt->load(std::memory_order_relaxed)) {
      if (tel_) tel_->flush();
      throw Error("federation interrupted after " +
                  std::to_string(fed_events_) + " event times");
    }

    const Time t = next_event_time();
    if (t == sim::Simulator::kNoEvent) break;

    // Route this instant's arrivals first, so members admit them inside
    // the very step that handles their other events at `t` — the same
    // batching the plain simulator applies.
    if (next_arrival_ < jobs.size() && jobs[next_arrival_].submit == t)
      route_arrivals(t);

    for (auto& s : sims_) s->step(t);

    for (std::size_t i = 0; i < n; ++i)
      ewma_[i] = config_.ewma_alpha * queue_demand(i) +
                 (1.0 - config_.ewma_alpha) * ewma_[i];

    if (config_.migration.enabled && n > 1) migrate(t);

    SBS_CHECK_MSG(++fed_events_ <= config_.max_events,
                  "federation event cap hit");
    if (config_.checkpoint_every > 0 &&
        fed_events_ % config_.checkpoint_every == 0)
      config_.checkpoint_sink(capture());
  }

  FederationResult fr;
  fr.owner = owner_;
  fr.migrations = migrations_;
  fr.members.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    MemberResult mr;
    mr.name = config_.members[i].name.empty() ? "c" + std::to_string(i)
                                              : config_.members[i].name;
    mr.capacity = config_.members[i].nodes;
    mr.routed = routed_[i];
    mr.migrations_in = migrations_in_[i];
    mr.migrations_out = migrations_out_[i];
    mr.sim = sims_[i]->finish();
    fr.avg_queue_length += mr.sim.avg_queue_length;
    fr.members.push_back(std::move(mr));
  }
  fr.outcomes.resize(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const int o = fr.owner[j];
    SBS_CHECK_MSG(o >= 0 && static_cast<std::size_t>(o) < n,
                  "job " << j << " was never routed");
    fr.outcomes[j] = fr.members[static_cast<std::size_t>(o)].sim
                         .outcomes[j];
    // A migrated job's kill history lives on the members it visited before
    // its final host; fold it in so the merged outcome carries the job's
    // whole story (members it never reached contribute zeros).
    for (std::size_t i = 0; i < n; ++i) {
      if (i == static_cast<std::size_t>(o)) continue;
      const JobOutcome& visit = fr.members[i].sim.outcomes[j];
      fr.outcomes[j].requeue_count += visit.requeue_count;
      fr.outcomes[j].lost_node_seconds += visit.lost_node_seconds;
    }
  }
  return fr;
}

std::vector<MemberSpec> parse_cluster_spec(std::string_view spec) {
  std::vector<MemberSpec> members;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    MemberSpec m;
    std::string_view nodes = token;
    if (const std::size_t colon = token.find(':');
        colon != std::string_view::npos) {
      m.name = std::string(token.substr(0, colon));
      nodes = token.substr(colon + 1);
    }
    int value = 0;
    const auto [end, ec] =
        std::from_chars(nodes.data(), nodes.data() + nodes.size(), value);
    SBS_CHECK_MSG(ec == std::errc() && end == nodes.data() + nodes.size() &&
                      value > 0 && !nodes.empty(),
                  "bad --clusters token \"" << std::string(token)
                      << "\" (expected [name:]nodes with nodes > 0)");
    m.nodes = value;
    members.push_back(std::move(m));
    if (comma == spec.size()) break;
  }
  SBS_CHECK_MSG(!members.empty(), "--clusters spec is empty");
  return members;
}

}  // namespace sbs::fed
