#include "fed/federation.hpp"

#include <algorithm>
#include <charconv>

#include "cluster/resource_profile.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "util/error.hpp"

namespace sbs::fed {

Federation::Federation(const Trace& trace,
                       const SchedulerFactory& make_scheduler,
                       MetaScheduler& meta, const FederationConfig& config)
    : trace_(trace), meta_(meta), config_(config), tel_(config.telemetry) {
  const std::size_t n = config_.members.size();
  SBS_CHECK_MSG(n >= 1, "federation needs at least one member cluster");
  SBS_CHECK_MSG(make_scheduler != nullptr,
                "federation needs a scheduler factory");
  SBS_CHECK_MSG(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
                "ewma_alpha must be in (0, 1]");
  SBS_CHECK_MSG(config_.checkpoint_every == 0 || config_.checkpoint_sink,
                "checkpoint_every set without a checkpoint_sink");

  int total = 0;
  int widest = 0;
  for (const MemberSpec& m : config_.members) {
    SBS_CHECK_MSG(m.nodes > 0, "member cluster \"" << m.name
                               << "\" must have > 0 nodes");
    total += m.nodes;
    widest = std::max(widest, m.nodes);
  }
  // Validate the global trace once, against the widest member: every job
  // must be hostable somewhere. Members skip their own validation (their
  // capacity is legitimately smaller than some jobs they never host).
  {
    Trace global = trace_;
    global.capacity = widest;
    global.validate();
  }

  const auto& jobs = trace_.jobs;
  owner_.assign(jobs.size(), -1);
  ewma_.assign(n, 0.0);
  routed_.assign(n, 0);
  migrations_in_.assign(n, 0);
  migrations_out_.assign(n, 0);
  member_down_.assign(n, 0);
  link_down_.assign(n, 0);
  stale_waiting_.assign(n, {});
  ledger_.reset(n);
  if (config_.chaos != nullptr) chaos_ = config_.chaos->events();
  for (const ChaosEvent& e : chaos_)
    SBS_CHECK_MSG(e.member >= 0 && static_cast<std::size_t>(e.member) < n,
                  "chaos schedule names member " << e.member << ", run has "
                      << n << " members");
  if (!chaos_.empty()) {
    health_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) health_.emplace_back(config_.failover);
  }

  member_traces_.reserve(n);
  schedulers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const MemberSpec& m = config_.members[i];
    Trace mt = trace_;
    mt.capacity = m.nodes;
    mt.name = trace_.name + "/" +
              (m.name.empty() ? "c" + std::to_string(i) : m.name);
    member_traces_.push_back(std::move(mt));
    schedulers_.push_back(make_scheduler(i));
    SBS_CHECK_MSG(schedulers_.back() != nullptr,
                  "scheduler factory returned null for member " << i);
  }

  // Blackout windows become full-capacity NodeDown/NodeUp pairs merged
  // into each member's own fault schedule: the member sim then applies
  // its usual kill/requeue/park semantics, and the merged schedule
  // re-derives deterministically so only cursors need snapshotting.
  if (!chaos_.empty()) {
    merged_faults_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<FaultEvent> merged;
      if (config_.members[i].faults != nullptr)
        merged = config_.members[i].faults->events();
      for (const ChaosEvent& e : chaos_) {
        if (static_cast<std::size_t>(e.member) != i) continue;
        if (e.kind == ChaosKind::MemberDown)
          merged.push_back(FaultEvent{e.time, FaultKind::NodeDown,
                                      config_.members[i].nodes, -1, 0});
        else if (e.kind == ChaosKind::MemberUp)
          merged.push_back(FaultEvent{e.time, FaultKind::NodeUp,
                                      config_.members[i].nodes, -1, 0});
      }
      std::stable_sort(merged.begin(), merged.end(),
                       [](const FaultEvent& a, const FaultEvent& b) {
                         return a.time < b.time;
                       });
      merged_faults_.push_back(FaultInjector::from_events(std::move(merged)));
    }
  }

  if (config_.resume != nullptr) {
    const sim::FederationSnapshot& snap = *config_.resume;
    SBS_CHECK_MSG(snap.members.size() == n,
                  "federation snapshot has " << snap.members.size()
                      << " members, run has " << n);
    SBS_CHECK_MSG(snap.owner.size() == jobs.size(),
                  "federation snapshot is for a different trace "
                  "(job count mismatch)");
    SBS_CHECK_MSG(snap.demand_ewma.size() == n &&
                      snap.routed.size() == n &&
                      snap.migrations_in.size() == n &&
                      snap.migrations_out.size() == n,
                  "federation snapshot member-array size mismatch");
    SBS_CHECK_MSG(snap.next_arrival <= jobs.size(),
                  "federation snapshot arrival cursor out of range");
    fed_events_ = snap.fed_events;
    next_arrival_ = snap.next_arrival;
    migrations_ = snap.migrations;
    owner_ = snap.owner;
    ewma_ = snap.demand_ewma;
    routed_ = snap.routed;
    migrations_in_ = snap.migrations_in;
    migrations_out_ = snap.migrations_out;
    if (!snap.meta_state.empty()) meta_.restore_state(snap.meta_state);

    // v2 fault-tolerance block. A v1 snapshot (or a v2 one from a
    // chaos-free run) leaves these at their defaults; the ledger then
    // seeds its transfer totals from the migration counters so the
    // end-of-run balance check still holds.
    SBS_CHECK_MSG(snap.next_chaos <= chaos_.size(),
                  "federation snapshot chaos cursor out of range");
    next_chaos_ = snap.next_chaos;
    if (!snap.member_down.empty() || !snap.link_down.empty()) {
      SBS_CHECK_MSG(snap.member_down.size() == n && snap.link_down.size() == n,
                    "federation snapshot outage-flag size mismatch");
      member_down_ = snap.member_down;
      link_down_ = snap.link_down;
    }
    if (!snap.health.empty()) {
      SBS_CHECK_MSG(snap.health.size() == n && !chaos_.empty(),
                    "federation snapshot health block mismatch");
      for (std::size_t i = 0; i < n; ++i) {
        const obs::JsonValue v = obs::parse_json(snap.health[i]);
        const obs::JsonValue* h = v.find("h");
        SBS_CHECK_MSG(h != nullptr,
                      "federation snapshot health entry lacks \"h\"");
        health_[i].restore_state(*h);
      }
    }
    limbo_ = snap.limbo;
    if (!snap.stale_waiting.empty()) {
      SBS_CHECK_MSG(snap.stale_waiting.size() == n,
                    "federation snapshot stale-view size mismatch");
      stale_waiting_ = snap.stale_waiting;
    }
    for (const auto& e : snap.speculative)
      ledger_.speculative.push_back(RehomeEntry{e.job, e.from, e.to});
    for (const auto& e : snap.commits)
      ledger_.commits.push_back(JobLedger::CommitEntry{e.job, e.member});
    if (!snap.transfers_in.empty()) {
      SBS_CHECK_MSG(snap.transfers_in.size() == n &&
                        snap.transfers_out.size() == n,
                    "federation snapshot ledger size mismatch");
      ledger_.in = snap.transfers_in;
      ledger_.out = snap.transfers_out;
    } else {
      ledger_.in = migrations_in_;
      ledger_.out = migrations_out_;
    }
    ledger_.failovers = snap.failovers;
    ledger_.rehomes = snap.rehomes;
    ledger_.dedupes = snap.dedupes;
    ledger_.duplicate_runs = snap.duplicate_runs;
  }

  if (tel_)
    tel_->begin_run(obs::RunRecord{trace_.name, schedulers_.front()->name(),
                                   total, jobs.size(),
                                   n > 1 ? static_cast<int>(n) : 0});

  sims_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SimConfig mc;
    mc.use_requested_runtime = config_.use_requested_runtime;
    mc.kill_at_request = config_.kill_at_request;
    mc.requeue = config_.requeue;
    mc.max_events = config_.max_events;
    mc.faults = chaos_.empty() ? config_.members[i].faults
                               : &merged_faults_[i];
    mc.telemetry = tel_;
    mc.emit_run_record = false;
    mc.validate_trace = false;
    // A federation of one is the plain simulator in disguise: no cluster
    // tags, so its telemetry stream stays bit-identical to simulate()'s.
    mc.cluster_id = n > 1 ? static_cast<int>(i) : -1;
    if (config_.resume != nullptr) mc.resume = &config_.resume->members[i];
    sims_.push_back(std::make_unique<sim::Simulator>(
        member_traces_[i], *schedulers_[i], mc));
    sims_.back()->enable_external_arrivals();
  }
}

Federation::~Federation() = default;

Time Federation::estimate_of(const Job& j) const {
  return config_.use_requested_runtime ? j.requested : j.runtime;
}

double Federation::queue_demand(std::size_t i) const {
  double demand = 0.0;
  for (const WaitingJob& w : sims_[i]->waiting_jobs())
    demand += static_cast<double>(w.job->nodes) *
              static_cast<double>(std::max<Time>(w.estimate, 1));
  return demand;
}

Time Federation::next_event_time() const {
  Time t = next_arrival_ < trace_.jobs.size()
               ? trace_.jobs[next_arrival_].submit
               : sim::Simulator::kNoEvent;
  for (const auto& s : sims_) t = std::min(t, s->next_event_time());
  // Chaos edges are event times too (the schedule is finite), and while
  // any outage/partition/declared-down state is live, so are the health
  // probes — otherwise a federation with an empty queue would sleep
  // through its own recovery.
  if (next_chaos_ < chaos_.size()) t = std::min(t, chaos_[next_chaos_].time);
  if (failover_active())
    for (const MemberHealth& h : health_) t = std::min(t, h.next_probe());
  return t;
}

bool Federation::unreachable(std::size_t i) const {
  return member_down_[i] != 0 || link_down_[i] != 0;
}

bool Federation::failover_active() const {
  if (chaos_.empty()) return false;
  // Open speculations deliberately do NOT keep the failover clock alive:
  // a race that survives its heal-edge reconciliation (both copies ran)
  // resolves at the final merge and needs no further events — counting it
  // here would probe forever once the queues drain. Limbo needs no term
  // either: a parked routing's target is unreachable until the heal edge
  // (a chaos event of its own) delivers it.
  for (std::size_t i = 0; i < sims_.size(); ++i)
    if (unreachable(i) || health_[i].down()) return true;
  return false;
}

std::vector<ClusterProbe> Federation::build_probes() const {
  std::vector<ClusterProbe> probes(sims_.size());
  for (std::size_t i = 0; i < sims_.size(); ++i) {
    ClusterProbe& p = probes[i];
    p.cluster = static_cast<int>(i);
    p.available = chaos_.empty() || health_[i].routable();
    p.total_capacity = member_traces_[i].capacity;
    p.live_capacity = sims_[i]->live_capacity();
    p.free_nodes = p.live_capacity - sims_[i]->used_nodes();
    p.waiting = sims_[i]->waiting_jobs().size();
    p.queue_demand = queue_demand(i);
    p.demand_ewma = ewma_[i];
  }
  return probes;
}

// Cheap earliest-start probe: free-node profile of the member's running
// set, with the waiting queue (and jobs already routed here in this
// arrival batch) greedily reserved in order, then the candidate placed.
Time Federation::probe_earliest_start(
    std::size_t i, const Job& job, Time estimate,
    const std::vector<std::pair<int, Time>>& batch) const {
  const sim::Simulator& s = *sims_[i];
  const int cap = s.live_capacity();
  if (cap <= 0 || job.nodes > cap) return ClusterProbe::kUnreachable;
  const Time now = next_arrival_ < trace_.jobs.size()
                       ? trace_.jobs[next_arrival_].submit
                       : s.frontier();
  ResourceProfile prof = profile_from_running(cap, now, s.running_jobs());
  const auto reserve_next = [&](int nodes, Time est) {
    if (nodes > cap) return;  // parked on this member, occupies nothing
    const Time dur = std::max<Time>(est, 1);
    prof.reserve(prof.earliest_start(now, nodes, dur), nodes, dur);
  };
  for (const WaitingJob& w : s.waiting_jobs())
    reserve_next(w.job->nodes, w.estimate);
  for (const auto& [nodes, est] : batch) reserve_next(nodes, est);
  return prof.earliest_start(now, job.nodes, std::max<Time>(estimate, 1));
}

void Federation::route_arrivals(Time t) {
  const auto& jobs = trace_.jobs;
  std::vector<ClusterProbe> probes = build_probes();
  // Same-batch routings per member, so later probes in the batch see the
  // load the earlier routings already placed.
  std::vector<std::vector<std::pair<int, Time>>> batch(sims_.size());
  while (next_arrival_ < jobs.size() && jobs[next_arrival_].submit == t) {
    const Job& j = jobs[next_arrival_++];
    const Time est = estimate_of(j);
    if (meta_.wants_probe())
      for (std::size_t i = 0; i < sims_.size(); ++i)
        probes[i].earliest_start = probe_earliest_start(i, j, est, batch[i]);
    const int target = meta_.route(j, est, probes);
    SBS_CHECK_MSG(target >= 0 &&
                      static_cast<std::size_t>(target) < sims_.size(),
                  meta_.name() << " routed job " << j.id
                               << " to unknown cluster " << target);
    const auto ti = static_cast<std::size_t>(target);
    if (!chaos_.empty() && unreachable(ti)) {
      // The routing message is dropped by the outage/partition: the job
      // parks in meta-side limbo until the member heals (delivery at
      // reconciliation) or its health is declared down (re-route to a
      // survivor). The submit is a meta-side fact, so its record is
      // emitted here, exactly as the member would have.
      limbo_.push_back({j.id, target});
      if (tel_) {
        tel_->set_cluster(sims_.size() > 1 ? target : -1);
        tel_->job_submitted(t, j.id, j.nodes, j.runtime, j.requested, j.user);
      }
    } else {
      sims_[ti]->inject_arrival(j.id, t, /*record_submit=*/true);
    }
    owner_[static_cast<std::size_t>(j.id)] = target;
    ++routed_[ti];
    probes[ti].waiting += 1;
    probes[ti].queue_demand +=
        static_cast<double>(j.nodes) *
        static_cast<double>(std::max<Time>(est, 1));
    batch[ti].emplace_back(j.nodes, est);
  }
  if (next_arrival_ >= jobs.size()) close_all_arrivals();
}

void Federation::close_all_arrivals() {
  if (arrivals_closed_) return;
  arrivals_closed_ = true;
  for (auto& s : sims_) s->close_arrivals();
}

void Federation::transfer_owner(int job_id, std::size_t to) {
  const int prev = owner_[static_cast<std::size_t>(job_id)];
  SBS_CHECK_MSG(prev >= 0, "ownership transfer of an unrouted job "
                               << job_id);
  if (static_cast<std::size_t>(prev) == to) return;
  ledger_.transfer(static_cast<std::size_t>(prev), to);
  owner_[static_cast<std::size_t>(job_id)] = static_cast<int>(to);
}

// Re-steps members that received injected arrivals so those are admitted
// (and decided on) at `t`, in cluster-id order.
void Federation::restep(Time t) {
  std::sort(retarget_.begin(), retarget_.end());
  retarget_.erase(std::unique(retarget_.begin(), retarget_.end()),
                  retarget_.end());
  for (const std::size_t dst : retarget_) sims_[dst]->step(t);
  retarget_.clear();
}

void Federation::do_migrate(std::size_t src, std::size_t dst, int job_id,
                            Time t) {
  SBS_CHECK_MSG(sims_[src]->extract_waiting(job_id),
                "migration source lost job " << job_id);
  sims_[dst]->inject_arrival(job_id, t, /*record_submit=*/false);
  transfer_owner(job_id, dst);
  ++migrations_;
  ++migrations_out_[src];
  ++migrations_in_[dst];
  if (tel_)
    tel_->job_migrated(t, job_id, static_cast<int>(src),
                       static_cast<int>(dst));
  retarget_.push_back(dst);
}

void Federation::migrate(Time t) {
  const std::size_t n = sims_.size();
  // A member the meta cannot reach (or has declared down) neither gives
  // up nor receives migrations: its queue is frozen from the meta's point
  // of view, and failover — not load balancing — owns the dead case.
  const auto excluded = [&](std::size_t i) {
    return !chaos_.empty() && (unreachable(i) || health_[i].down());
  };
  // Normalized load: smoothed + instantaneous backlog per node, seconds.
  const auto norm = [&](std::size_t i) {
    return (ewma_[i] + queue_demand(i)) /
           static_cast<double>(member_traces_[i].capacity);
  };

  for (std::size_t src = 0; src < n; ++src) {
    if (excluded(src)) continue;
    sim::Simulator& s = *sims_[src];

    // Stranded jobs: node failures shrank this member below a waiting
    // job's width. Move each to the least-loaded member that can start it
    // at current live capacity; if none exists it stays parked (the
    // source may recover first). Jobs with an open speculative copy stay
    // put — reconciliation owns their placement.
    const int live = s.live_capacity();
    std::vector<int> stranded;
    for (const WaitingJob& w : s.waiting_jobs())
      if (w.job->nodes > live && !ledger_.speculating(w.job->id))
        stranded.push_back(w.job->id);
    for (const int id : stranded) {
      const Job& j = trace_.jobs[static_cast<std::size_t>(id)];
      std::size_t best = n;
      for (std::size_t dst = 0; dst < n; ++dst) {
        if (dst == src || excluded(dst) ||
            sims_[dst]->live_capacity() < j.nodes)
          continue;
        if (best == n || norm(dst) < norm(best)) best = dst;
      }
      if (best != n) do_migrate(src, best, id, t);
    }

    // Overload rebalancing: newest waiting job that fits a sufficiently
    // less-loaded member moves there.
    if (config_.migration.max_per_event <= 0) continue;
    const double src_norm = norm(src);
    if (src_norm <=
        config_.migration.overload_backlog_h * static_cast<double>(kHour))
      continue;
    for (int moved = 0; moved < config_.migration.max_per_event; ++moved) {
      const std::vector<WaitingJob>& q = s.waiting_jobs();
      int victim = -1;
      std::size_t target = n;
      // The queue is FCFS-sorted; scan newest-first for a job with an
      // eligible destination.
      for (auto it = q.rbegin(); it != q.rend() && victim < 0; ++it) {
        if (ledger_.speculating(it->job->id)) continue;
        for (std::size_t dst = 0; dst < n; ++dst) {
          if (dst == src || excluded(dst) ||
              sims_[dst]->live_capacity() < it->job->nodes)
            continue;
          if (norm(dst) >= config_.migration.target_ratio * src_norm)
            continue;
          if (target == n || norm(dst) < norm(target)) target = dst;
        }
        if (target != n) victim = it->job->id;
      }
      if (victim < 0) break;
      do_migrate(src, target, victim, t);
    }
  }

  restep(t);
}

// Advances the chaos cursor through every edge due at `t`, flipping the
// ground-truth flags. Runs before the member step at `t`, so the stale
// view captured at a LinkDown edge is exactly the meta's last synchronized
// look at the member's queue.
void Federation::apply_chaos_edges(Time t) {
  while (next_chaos_ < chaos_.size() && chaos_[next_chaos_].time <= t) {
    const ChaosEvent& e = chaos_[next_chaos_++];
    const auto m = static_cast<std::size_t>(e.member);
    switch (e.kind) {
      case ChaosKind::MemberDown:
        member_down_[m] = 1;
        break;
      case ChaosKind::LinkDown:
        link_down_[m] = 1;
        stale_waiting_[m].clear();
        for (const WaitingJob& w : sims_[m]->waiting_jobs())
          stale_waiting_[m].push_back(w.job->id);
        break;
      case ChaosKind::MemberUp:
        member_down_[m] = 0;
        if (!unreachable(m)) reconcile_pending_.push_back(m);
        break;
      case ChaosKind::LinkUp:
        link_down_[m] = 0;
        if (!unreachable(m)) reconcile_pending_.push_back(m);
        break;
    }
    if (tel_) tel_->chaos_event(e.time, chaos_kind_name(e.kind), e.member);
  }
}

// Least-loaded reachable member that can take `j`: live capacity first
// (can start once a slot frees), full machine size as fallback (parks
// until nodes recover). Returns member_count() when nobody qualifies.
std::size_t Federation::pick_survivor(const Job& j, std::size_t avoid) const {
  const std::size_t n = sims_.size();
  const auto norm = [&](std::size_t i) {
    return (ewma_[i] + queue_demand(i)) /
           static_cast<double>(member_traces_[i].capacity);
  };
  for (int pass = 0; pass < 2; ++pass) {
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == avoid || unreachable(i) || health_[i].down()) continue;
      const int cap = pass == 0 ? sims_[i]->live_capacity()
                                : member_traces_[i].capacity;
      if (cap < j.nodes) continue;
      if (best == n || norm(i) < norm(best)) best = i;
    }
    if (best != n) return best;
  }
  return n;
}

// The health monitor just declared member `m` down. Blackout: its queue
// really is frozen (running jobs were killed by the merged fault
// schedule), so waiting jobs are extracted and moved for real. Link-only
// partition: the member is alive and scheduling autonomously behind the
// partition, so survivors get speculative COPIES built from the meta's
// stale view and the ledger keeps the books until reconciliation.
// Re-homed jobs keep their original submit time, so they enter the
// survivor's queue at their historical FCFS position.
void Federation::rehome_member(std::size_t m, Time t) {
  // Routings parked in limbo for `m` re-route to survivors first.
  std::size_t kept = 0;
  for (const auto& e : limbo_) {
    const Job& j = trace_.jobs[static_cast<std::size_t>(e.job)];
    std::size_t s;
    if (e.target != static_cast<int>(m) ||
        (s = pick_survivor(j, m)) == sims_.size()) {
      limbo_[kept++] = e;
      continue;
    }
    sims_[s]->inject_arrival(e.job, t, /*record_submit=*/false);
    transfer_owner(e.job, s);
    ++ledger_.rehomes;
    retarget_.push_back(s);
    if (tel_)
      tel_->job_rehomed(t, e.job, static_cast<int>(m), static_cast<int>(s),
                        /*copy=*/false);
  }
  limbo_.resize(kept);

  if (member_down_[m] != 0) {
    std::vector<int> ids;
    for (const WaitingJob& w : sims_[m]->waiting_jobs())
      ids.push_back(w.job->id);
    for (const int id : ids) {
      if (ledger_.committed_to(id) != -1) continue;
      const RehomeEntry* sp = nullptr;
      for (const RehomeEntry& e : ledger_.speculative)
        if (e.job == id) sp = &e;
      if (sp != nullptr && sp->from == static_cast<int>(m)) {
        // A copy from an earlier partition of m already lives elsewhere:
        // extracting the original here IS the dedupe.
        SBS_CHECK_MSG(sims_[m]->extract_waiting(id),
                      "dead member lost job " << id);
        ++ledger_.dedupes;
        const int to = sp->to;
        ledger_.close_spec(id);
        if (tel_) tel_->job_reconciled(t, id, to, "dedupe");
        continue;
      }
      const Job& j = trace_.jobs[static_cast<std::size_t>(id)];
      const std::size_t s = pick_survivor(j, m);
      if (s == sims_.size()) continue;  // parks at m until its reboot
      SBS_CHECK_MSG(sims_[m]->extract_waiting(id),
                    "dead member lost job " << id);
      sims_[s]->inject_arrival(id, t, /*record_submit=*/false);
      if (sp != nullptr) {
        // m hosted the speculative copy and is now dark itself: the copy
        // moves on, the open speculation follows it.
        for (RehomeEntry& e : ledger_.speculative)
          if (e.job == id) e.to = static_cast<int>(s);
      }
      transfer_owner(id, s);
      ++ledger_.rehomes;
      retarget_.push_back(s);
      if (tel_)
        tel_->job_rehomed(t, id, static_cast<int>(m), static_cast<int>(s),
                          /*copy=*/false);
    }
    return;
  }

  // Link-only partition: speculate from the stale view.
  for (const int id : stale_waiting_[m]) {
    if (ledger_.speculating(id) || ledger_.committed_to(id) != -1) continue;
    if (owner_[static_cast<std::size_t>(id)] != static_cast<int>(m)) continue;
    const Job& j = trace_.jobs[static_cast<std::size_t>(id)];
    const std::size_t s = pick_survivor(j, m);
    if (s == sims_.size()) continue;
    sims_[s]->inject_arrival(id, t, /*record_submit=*/false);
    ledger_.open_spec(id, static_cast<int>(m), static_cast<int>(s));
    transfer_owner(id, s);
    ++ledger_.rehomes;
    retarget_.push_back(s);
    if (tel_)
      tel_->job_rehomed(t, id, static_cast<int>(m), static_cast<int>(s),
                        /*copy=*/true);
  }
}

// Member `m` is reachable again: ground truth replaces the stale view.
// Open speculations rooted at m resolve here; a job that completed inside
// the partition is committed and its copy extracted, so it never runs
// twice. Then the limbo routings addressed to m are finally delivered.
void Federation::reconcile(std::size_t m, Time t) {
  const auto waiting_at = [&](std::size_t i, int id) {
    for (const WaitingJob& w : sims_[i]->waiting_jobs())
      if (w.job->id == id) return true;
    return false;
  };
  const auto running_at = [&](std::size_t i, int id) {
    for (const RunningJob& r : sims_[i]->running_jobs())
      if (r.job->id == id) return true;
    return false;
  };

  std::vector<RehomeEntry> specs;
  for (const RehomeEntry& e : ledger_.speculative)
    if (e.from == static_cast<int>(m)) specs.push_back(e);
  for (const RehomeEntry& e : specs) {
    const auto to = static_cast<std::size_t>(e.to);
    if (waiting_at(m, e.job)) {
      // The original never ran behind the partition: the copy (wherever
      // it is in `to`'s pipeline) is canonical.
      SBS_CHECK_MSG(sims_[m]->extract_waiting(e.job),
                    "reconcile lost waiting job " << e.job);
      ++ledger_.dedupes;
      ledger_.close_spec(e.job);
      if (tel_) tel_->job_reconciled(t, e.job, e.to, "adopt");
    } else if (running_at(m, e.job)) {
      // The original is running at m: pull the copy back if still queued;
      // if the copy started too, both executions race to the merge.
      if (sims_[to]->extract_waiting(e.job)) {
        ++ledger_.dedupes;
        transfer_owner(e.job, m);
        ledger_.close_spec(e.job);
        if (tel_)
          tel_->job_reconciled(t, e.job, static_cast<int>(m), "return");
      } else {
        if (tel_) tel_->job_reconciled(t, e.job, static_cast<int>(m), "race");
      }
    } else {
      // Terminal at m. Migration and extraction were gated for the whole
      // partition, so the job cannot have left m: this is a genuine
      // completion (the only state with completed set and a positive
      // duration; JobOutcome defaults to completed with start == end == 0,
      // and a killed attempt zeroes its times) or a Drop-policy drop.
      const JobOutcome& oc = sims_[m]->outcome_so_far(e.job);
      if (oc.completed && oc.end > oc.start) {
        if (sims_[to]->extract_waiting(e.job)) {
          ++ledger_.dedupes;
          transfer_owner(e.job, m);
          ledger_.commit(e.job, static_cast<int>(m));
          ledger_.close_spec(e.job);
          if (tel_)
            tel_->job_reconciled(t, e.job, static_cast<int>(m), "dedupe");
        } else {
          if (tel_)
            tel_->job_reconciled(t, e.job, static_cast<int>(m), "race");
        }
      } else {
        // Dropped at m: the copy is the job's only remaining execution.
        ledger_.close_spec(e.job);
        if (tel_) tel_->job_reconciled(t, e.job, e.to, "orphan");
      }
    }
  }

  std::size_t kept = 0;
  for (const auto& e : limbo_) {
    if (e.target == static_cast<int>(m)) {
      sims_[m]->inject_arrival(e.job, t, /*record_submit=*/false);
      retarget_.push_back(m);
      if (tel_)
        tel_->job_reconciled(t, e.job, static_cast<int>(m), "deliver");
    } else {
      limbo_[kept++] = e;
    }
  }
  limbo_.resize(kept);
  stale_waiting_[m].clear();
}

void Federation::failover_tick(Time t) {
  if (!failover_active()) return;
  for (std::size_t i = 0; i < sims_.size(); ++i) {
    switch (health_[i].tick(t, !unreachable(i))) {
      case MemberHealth::Event::DeclaredDown:
        ++ledger_.failovers;
        if (tel_) tel_->member_health(t, static_cast<int>(i), /*down=*/true);
        rehome_member(i, t);
        break;
      case MemberHealth::Event::Recovered:
        if (tel_) tel_->member_health(t, static_cast<int>(i), /*down=*/false);
        break;
      case MemberHealth::Event::None:
        break;
    }
  }
  restep(t);
}

// The exactly-once proof, asserted after every run (cheap, so it also
// guards plain migration accounting when chaos is off):
//  - nothing is still in limbo and no speculation is open;
//  - per member, routed + transfers-in - transfers-out == jobs owned;
//  - every job really completed at most twice, twice only for counted
//    duplicate races, and the merged outcome matches its owner's.
void Federation::check_invariants(const FederationResult& fr) const {
  const std::size_t n = sims_.size();
  SBS_CHECK_MSG(limbo_.empty(), "exactly-once: " << limbo_.size()
                                    << " routings still in limbo");
  SBS_CHECK_MSG(ledger_.speculative.empty(),
                "exactly-once: unresolved speculative copies");
  std::vector<std::int64_t> owned(n, 0);
  for (std::size_t j = 0; j < fr.owner.size(); ++j) {
    const int o = fr.owner[j];
    SBS_CHECK_MSG(o >= 0 && static_cast<std::size_t>(o) < n,
                  "exactly-once: job " << j << " has no owner");
    ++owned[static_cast<std::size_t>(o)];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t balance = static_cast<std::int64_t>(routed_[i]) +
                                 static_cast<std::int64_t>(ledger_.in[i]) -
                                 static_cast<std::int64_t>(ledger_.out[i]);
    SBS_CHECK_MSG(balance == owned[i],
                  "ledger imbalance at member " << i << ": routed "
                      << routed_[i] << " + in " << ledger_.in[i] << " - out "
                      << ledger_.out[i] << " != owned " << owned[i]);
  }
  std::uint64_t races = 0;
  for (std::size_t j = 0; j < fr.outcomes.size(); ++j) {
    int completions = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const JobOutcome& oc = fr.members[i].sim.outcomes[j];
      // "Really ran at i" = completed with a positive duration. The flag
      // alone is not enough (JobOutcome defaults to completed for the
      // fault-free invariant, so members that never saw the job read
      // completed with start == end == 0), and absolute times are no
      // signal either (warm-up jobs submitted before the window have
      // negative ones) — but every real execution has end > start.
      if (oc.completed && oc.end > oc.start) ++completions;
    }
    SBS_CHECK_MSG(completions <= 2,
                  "exactly-once: job " << j << " ran " << completions
                                       << " times");
    if (completions == 2) ++races;
    const auto o = static_cast<std::size_t>(fr.owner[j]);
    if (fr.outcomes[j].completed) {
      const JobOutcome& oo = fr.members[o].sim.outcomes[j];
      SBS_CHECK_MSG(oo.completed && oo.end > oo.start,
                    "exactly-once: job " << j
                        << " merged from a member that never ran it");
      const int c = ledger_.committed_to(static_cast<int>(j));
      SBS_CHECK_MSG(c == -1 || c == fr.owner[j],
                    "exactly-once: job " << j << " owned by " << fr.owner[j]
                        << " but committed to " << c);
    } else {
      SBS_CHECK_MSG(completions == 0,
                    "exactly-once: job " << j
                        << " completed somewhere but reported lost");
    }
  }
  SBS_CHECK_MSG(races == ledger_.duplicate_runs,
                "exactly-once: " << races << " duplicate runs observed, "
                    << ledger_.duplicate_runs << " accounted");
}

sim::FederationSnapshot Federation::capture() const {
  sim::FederationSnapshot snap;
  snap.fed_events = fed_events_;
  snap.next_arrival = next_arrival_;
  snap.migrations = migrations_;
  snap.owner = owner_;
  snap.demand_ewma = ewma_;
  snap.routed = routed_;
  snap.migrations_in = migrations_in_;
  snap.migrations_out = migrations_out_;
  snap.meta_state = meta_.save_state();
  snap.members.reserve(sims_.size());
  for (const auto& s : sims_) snap.members.push_back(s->capture());

  snap.next_chaos = next_chaos_;
  if (!chaos_.empty()) {
    snap.member_down = member_down_;
    snap.link_down = link_down_;
    snap.health.reserve(health_.size());
    for (const MemberHealth& h : health_) {
      obs::JsonWriter w;
      w.begin_object();
      h.append_state(w, "h");
      w.end_object();
      snap.health.push_back(w.str());
    }
    snap.limbo = limbo_;
    snap.stale_waiting = stale_waiting_;
    for (const RehomeEntry& e : ledger_.speculative)
      snap.speculative.push_back({e.job, e.from, e.to});
    for (const JobLedger::CommitEntry& c : ledger_.commits)
      snap.commits.push_back({c.job, c.member});
    snap.transfers_in = ledger_.in;
    snap.transfers_out = ledger_.out;
    snap.failovers = ledger_.failovers;
    snap.rehomes = ledger_.rehomes;
    snap.dedupes = ledger_.dedupes;
    snap.duplicate_runs = ledger_.duplicate_runs;
  }
  return snap;
}

FederationResult Federation::run() {
  SBS_CHECK_MSG(!ran_, "Federation::run() called twice");
  ran_ = true;
  const auto& jobs = trace_.jobs;
  const std::size_t n = sims_.size();
  if (next_arrival_ >= jobs.size()) close_all_arrivals();

  while (true) {
    if (config_.interrupt != nullptr &&
        config_.interrupt->load(std::memory_order_relaxed)) {
      if (tel_) tel_->flush();
      throw Error("federation interrupted after " +
                  std::to_string(fed_events_) + " event times");
    }

    const Time t = next_event_time();
    if (t == sim::Simulator::kNoEvent) break;

    // Chaos edges flip first: an arrival routed at `t` already sees the
    // outage, and a LinkDown's stale view is the pre-step queue.
    if (!chaos_.empty()) apply_chaos_edges(t);

    // Route this instant's arrivals first, so members admit them inside
    // the very step that handles their other events at `t` — the same
    // batching the plain simulator applies.
    if (next_arrival_ < jobs.size() && jobs[next_arrival_].submit == t)
      route_arrivals(t);

    for (auto& s : sims_) s->step(t);

    // Members whose outage or partition just healed reconcile against
    // ground truth (post-step, so "still waiting there" is exact).
    if (!reconcile_pending_.empty()) {
      std::sort(reconcile_pending_.begin(), reconcile_pending_.end());
      reconcile_pending_.erase(std::unique(reconcile_pending_.begin(),
                                           reconcile_pending_.end()),
                               reconcile_pending_.end());
      const std::vector<std::size_t> pending = std::move(reconcile_pending_);
      reconcile_pending_.clear();
      for (const std::size_t m : pending) reconcile(m, t);
      restep(t);
    }

    for (std::size_t i = 0; i < n; ++i) {
      // No telemetry crosses an outage or partition: the EWMA freezes at
      // the last value the meta actually saw.
      if (!chaos_.empty() && unreachable(i)) continue;
      ewma_[i] = config_.ewma_alpha * queue_demand(i) +
                 (1.0 - config_.ewma_alpha) * ewma_[i];
    }

    failover_tick(t);

    if (config_.migration.enabled && n > 1) migrate(t);

    SBS_CHECK_MSG(++fed_events_ <= config_.max_events,
                  "federation event cap hit");
    if (config_.checkpoint_every > 0 &&
        fed_events_ % config_.checkpoint_every == 0)
      config_.checkpoint_sink(capture());
  }

  FederationResult fr;
  fr.migrations = migrations_;
  fr.members.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    MemberResult mr;
    mr.name = config_.members[i].name.empty() ? "c" + std::to_string(i)
                                              : config_.members[i].name;
    mr.capacity = config_.members[i].nodes;
    mr.routed = routed_[i];
    mr.migrations_in = migrations_in_[i];
    mr.migrations_out = migrations_out_[i];
    mr.sim = sims_[i]->finish();
    fr.avg_queue_length += mr.sim.avg_queue_length;
    fr.members.push_back(std::move(mr));
  }

  // Resolve the speculation races the partitions left open: both sides
  // (or neither) may have executed. The earlier finish wins — ties to the
  // original home — and the loser's whole run is booked as lost work.
  std::vector<std::pair<std::size_t, Time>> extra_lost;
  const std::vector<RehomeEntry> open_specs = ledger_.speculative;
  for (const RehomeEntry& e : open_specs) {
    const auto from = static_cast<std::size_t>(e.from);
    const auto to = static_cast<std::size_t>(e.to);
    const auto jd = static_cast<std::size_t>(e.job);
    const JobOutcome& a = fr.members[from].sim.outcomes[jd];
    const JobOutcome& b = fr.members[to].sim.outcomes[jd];
    const auto done = [](const JobOutcome& oc) {
      return oc.completed && oc.end > oc.start;
    };
    int winner;
    if (done(a) && done(b)) {
      ++ledger_.duplicate_runs;
      winner = b.end < a.end ? e.to : e.from;
      const JobOutcome& loser = winner == e.from ? b : a;
      extra_lost.emplace_back(
          jd, static_cast<Time>(trace_.jobs[jd].nodes) *
                  (loser.end - loser.start));
    } else if (done(a)) {
      winner = e.from;
    } else if (done(b)) {
      winner = e.to;
    } else {
      winner = owner_[jd];  // neither ran: current owner keeps the park
    }
    transfer_owner(e.job, static_cast<std::size_t>(winner));
    if (done(a) || done(b)) ledger_.commit(e.job, winner);
    ledger_.close_spec(e.job);
    if (tel_)
      tel_->job_reconciled(std::max(a.end, b.end), e.job, winner,
                           done(a) && done(b) ? "duplicate" : "resolve");
  }

  fr.owner = owner_;
  fr.chaos_events = static_cast<std::uint64_t>(next_chaos_);
  fr.failovers = ledger_.failovers;
  fr.rehomes = ledger_.rehomes;
  fr.dedupes = ledger_.dedupes;
  fr.duplicate_runs = ledger_.duplicate_runs;
  fr.outcomes.resize(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const int o = fr.owner[j];
    SBS_CHECK_MSG(o >= 0 && static_cast<std::size_t>(o) < n,
                  "job " << j << " was never routed");
    fr.outcomes[j] = fr.members[static_cast<std::size_t>(o)].sim
                         .outcomes[j];
    // A migrated job's kill history lives on the members it visited before
    // its final host; fold it in so the merged outcome carries the job's
    // whole story (members it never reached contribute zeros).
    for (std::size_t i = 0; i < n; ++i) {
      if (i == static_cast<std::size_t>(o)) continue;
      const JobOutcome& visit = fr.members[i].sim.outcomes[j];
      fr.outcomes[j].requeue_count += visit.requeue_count;
      fr.outcomes[j].lost_node_seconds += visit.lost_node_seconds;
    }
  }
  // The losing side of a duplicate run completed, so its member booked no
  // lost work — the federation does: that whole execution was wasted.
  for (const auto& [jd, lost] : extra_lost)
    fr.outcomes[jd].lost_node_seconds += lost;

  check_invariants(fr);
  return fr;
}

std::vector<MemberSpec> parse_cluster_spec(std::string_view spec) {
  // An operator typo, not a library bug: every rejection here is a
  // UsageError so the CLI prints usage and exits 2.
  constexpr std::size_t kMaxMembers = 1024;
  std::vector<MemberSpec> members;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    MemberSpec m;
    std::string_view nodes = token;
    if (const std::size_t colon = token.find(':');
        colon != std::string_view::npos) {
      m.name = std::string(token.substr(0, colon));
      nodes = token.substr(colon + 1);
    }
    int value = 0;
    const auto [end, ec] =
        std::from_chars(nodes.data(), nodes.data() + nodes.size(), value);
    if (ec != std::errc() || end != nodes.data() + nodes.size() ||
        nodes.empty() || value <= 0)
      throw UsageError("bad --clusters token \"" + std::string(token) +
                       "\" (expected [name:]nodes with nodes > 0)");
    m.nodes = value;
    members.push_back(std::move(m));
    if (members.size() > kMaxMembers)
      throw UsageError("--clusters spec names more than " +
                       std::to_string(kMaxMembers) + " members");
    if (comma == spec.size()) break;
  }
  if (members.empty()) throw UsageError("--clusters spec is empty");
  // Member names key the per-cluster report tables; duplicates (including
  // a given name colliding with a default "c<index>") would merge rows.
  for (std::size_t i = 0; i < members.size(); ++i) {
    const std::string a =
        members[i].name.empty() ? "c" + std::to_string(i) : members[i].name;
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      const std::string b =
          members[j].name.empty() ? "c" + std::to_string(j) : members[j].name;
      if (a == b)
        throw UsageError("duplicate --clusters member name \"" + a + "\"");
    }
  }
  return members;
}

}  // namespace sbs::fed
