#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "resilience/health.hpp"
#include "util/time.hpp"

namespace sbs::obs {
class JsonWriter;
struct JsonValue;
}  // namespace sbs::obs

namespace sbs::fed {

/// Failover tuning, all in virtual (simulation) time. The defaults give:
/// probes every 60 s, a member declared down after 3 consecutive failed
/// probes spanning at least probe_timeout seconds (hysteresis against
/// blips), then retry probes at 60 s, 120 s, 240 s, ... capped at
/// backoff_cap; recovery needs enough consecutive good probes to pull the
/// probe-failure EWMA under recovery_fraction of the trip level.
struct FailoverConfig {
  Time probe_every = 60;    ///< healthy-member probe cadence
  Time probe_timeout = 120; ///< min unreachable span before declare-down
  int fail_threshold = 3;   ///< consecutive failed probes before declare
  Time backoff_base = 60;   ///< first retry delay after declare-down
  Time backoff_cap = 1920;  ///< retry delay ceiling
  double alpha = 0.5;            ///< probe EWMA smoothing
  double recovery_fraction = 0.5;  ///< hysteresis on the way back up
};

/// Per-member failover state machine driven by virtual-time probes.
/// A probe is one reachability check at a federation event time; failures
/// feed a resilience::HealthMonitor (probe failure as the queue-depth
/// signal), whose Overloaded/Recovered verdicts provide hysteresis in both
/// directions. Deterministic and fully serializable.
class MemberHealth {
 public:
  explicit MemberHealth(const FailoverConfig& cfg);

  enum class Event {
    None,          ///< probe not due, or no state change
    DeclaredDown,  ///< hysteresis tripped: exclude from routing, re-home
    Recovered,     ///< hysteresis released: routable again
  };

  /// Fires the probe due at `t` (no-op before next_probe()). `reachable`
  /// is the ground-truth link/member state at `t`.
  Event tick(Time t, bool reachable);

  bool down() const { return down_; }
  bool routable() const { return !down_; }
  Time next_probe() const { return next_probe_; }

  /// Checkpoint support: full state as one JSON object value under `key`.
  void append_state(obs::JsonWriter& w, std::string_view key) const;
  void restore_state(const obs::JsonValue& v);

 private:
  Time backoff_delay() const;

  FailoverConfig cfg_;
  resilience::HealthMonitor monitor_;
  bool down_ = false;
  int fail_streak_ = 0;
  Time first_fail_ = 0;  ///< start of the current failure streak
  int backoff_exp_ = 0;  ///< retry exponent while down
  Time next_probe_ = 0;
};

/// One unresolved speculative re-home: a copy of `job` — last seen waiting
/// at the partitioned member `from` — was injected at `to`. Reconciliation
/// on link heal (or, for a both-sides-ran race, the final merge) resolves
/// which side's execution is canonical.
struct RehomeEntry {
  int job = 0;
  int from = 0;
  int to = 0;
};

/// Federation-level exactly-once ledger. Extends the routed/migrations
/// accounting with every ownership transfer (migration, re-home, adopt,
/// return), the set of open speculative copies, and canonical completion
/// commits, so that a job completed inside a partition is never counted
/// (or run) twice once its re-homed copy lands. The balance invariant the
/// checker asserts per member i:
///
///   routed[i] + in[i] - out[i] == |{ jobs finally owned by i }|
///
/// plus: no open speculations after the run, at most one canonical
/// completion per job, and no job lost (zero completions only for jobs
/// the merged outcome reports as never started / dropped).
struct JobLedger {
  std::vector<std::uint64_t> in;   ///< ownership transfers into member
  std::vector<std::uint64_t> out;  ///< ownership transfers out of member
  std::vector<RehomeEntry> speculative;  ///< open speculative copies
  struct CommitEntry {
    int job = 0;
    int member = 0;  ///< whose completion is canonical
  };
  std::vector<CommitEntry> commits;  ///< chaos-touched jobs only

  std::uint64_t failovers = 0;       ///< declare-down events
  std::uint64_t rehomes = 0;         ///< jobs moved off a dead member
  std::uint64_t dedupes = 0;         ///< duplicate copies extracted
  std::uint64_t duplicate_runs = 0;  ///< races where both copies executed

  void reset(std::size_t members);

  /// Records one ownership transfer (the caller updates the owner map).
  void transfer(std::size_t from, std::size_t to);

  bool speculating(int job) const;
  void open_spec(int job, int from, int to);
  void close_spec(int job);

  /// Marks `member`'s completion of `job` canonical. Throws if a
  /// different member already committed it (double-completion).
  void commit(int job, int member);
  /// -1 when no commit was recorded (the normal, chaos-untouched path).
  int committed_to(int job) const;
};

}  // namespace sbs::fed
