#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fed/failover.hpp"
#include "fed/meta_scheduler.hpp"
#include "jobs/trace.hpp"
#include "sim/simulator.hpp"

namespace sbs::fed {

/// One member cluster of a federation.
struct MemberSpec {
  std::string name;  ///< empty = "c<index>"
  int nodes = 0;     ///< machine size; must be > 0
  /// Optional per-member fault schedule. Not owned; must outlive the run.
  const FaultInjector* faults = nullptr;
};

/// Cross-cluster migration of still-waiting jobs. Two triggers, evaluated
/// after every federation event time:
///  - stranded: a waiting job wider than its member's *live* (fault-
///    degraded) capacity moves to the least-loaded member that can start
///    it at current live capacity;
///  - overload: when a member's smoothed queue backlog per node exceeds
///    `overload_backlog_h` and another member's is below `target_ratio`
///    times it, the newest waiting job that fits moves there (at most
///    `max_per_event` per member per event time, against thrash).
/// Migrated jobs keep their identity and original submit time, so they
/// re-enter the target queue at their historical FCFS position.
struct MigrationConfig {
  bool enabled = true;
  double overload_backlog_h = 8.0;
  double target_ratio = 0.5;
  int max_per_event = 1;
};

struct FederationConfig {
  std::vector<MemberSpec> members;  ///< at least one
  MigrationConfig migration;
  /// Smoothing factor of the per-member queue-demand EWMA (node·seconds),
  /// updated once per federation event time.
  double ewma_alpha = 0.2;

  // Shared member-simulator knobs (see SimConfig).
  bool use_requested_runtime = false;
  bool kill_at_request = false;
  RequeuePolicy requeue = RequeuePolicy::Resubmit;
  std::size_t max_events = 50'000'000;

  /// One telemetry front end shared by the federation and every member.
  /// The federation emits the single run record (with a "clusters" count)
  /// and "migrate" records; members tag their events with "cluster".
  obs::Telemetry* telemetry = nullptr;

  /// Checkpointing, in federation event times (0 = off): the sink
  /// receives a FederationSnapshot composing every member's SimSnapshot.
  std::uint64_t checkpoint_every = 0;
  std::function<void(const sim::FederationSnapshot&)> checkpoint_sink;

  /// Resume from a federation snapshot (same trace, same member specs,
  /// identically configured schedulers and meta-scheduler). Not owned.
  const sim::FederationSnapshot* resume = nullptr;

  /// Graceful-stop flag, polled once per federation event time.
  const std::atomic<bool>* interrupt = nullptr;

  /// Federation-scoped chaos schedule: member blackouts and meta<->member
  /// link partitions. Not owned; nullptr (or empty) = no chaos, in which
  /// case the whole fault-tolerance machinery is inert and the run is
  /// bit-identical to a chaos-free one. Blackout windows are merged into
  /// each member's node-fault schedule (full-capacity NodeDown/NodeUp
  /// pairs), so a blacked-out member kills its running jobs, parks its
  /// queue, and reboots at full capacity — any node still in repair when
  /// the blackout ends returns with it.
  const ChaosSchedule* chaos = nullptr;

  /// Probe cadence, declare-down hysteresis and retry backoff for the
  /// per-member health tracking. Only consulted while chaos is enabled.
  FailoverConfig failover;
};

/// Per-member slice of a federation run.
struct MemberResult {
  std::string name;
  int capacity = 0;
  std::uint64_t routed = 0;          ///< jobs the meta-scheduler sent here
  std::uint64_t migrations_in = 0;
  std::uint64_t migrations_out = 0;
  SimResult sim;
};

struct FederationResult {
  /// Merged per-job outcomes in job-id order: each job's outcome comes
  /// from the member that finally hosted it (for a partition race, the
  /// member whose completion the ledger committed).
  std::vector<JobOutcome> outcomes;
  double avg_queue_length = 0.0;  ///< summed over members (shared window)
  std::uint64_t migrations = 0;
  std::vector<int> owner;  ///< final hosting cluster per job
  std::vector<MemberResult> members;

  // Fault-tolerance counters (all zero when chaos is off).
  std::uint64_t chaos_events = 0;    ///< blackout/partition edges applied
  std::uint64_t failovers = 0;       ///< health declare-down events
  std::uint64_t rehomes = 0;         ///< jobs re-homed off a dead member
  std::uint64_t dedupes = 0;         ///< duplicate copies reconciled away
  std::uint64_t duplicate_runs = 0;  ///< races where both copies executed
};

/// Builds one freshly configured scheduler per member (index = cluster
/// id). Members need separate instances — policy state (warm-start order,
/// fair-share ledgers, governor breakers) is per cluster.
using SchedulerFactory =
    std::function<std::unique_ptr<Scheduler>(std::size_t member)>;

/// N member clusters — each a full sim::Simulator in external-arrival mode
/// with its own machine size, fault schedule, and search scheduler —
/// driven by one shared virtual-time event loop. At each global event time
/// the federation routes the trace's arrivals through the MetaScheduler,
/// steps every member to that time, refreshes the queue-demand EWMAs, and
/// applies cross-cluster migrations.
///
/// A federation of exactly one member is bit-identical to the plain
/// simulate() path — outcomes, stats, and telemetry stream alike (the
/// differential tests pin this); migration and cluster tagging only
/// activate with two or more members.
class Federation {
 public:
  /// The trace, scheduler factory products, meta-scheduler, telemetry and
  /// fault injectors are borrowed for the federation's lifetime. Every
  /// trace job must fit the widest member. Throws sbs::Error on invalid
  /// specs or mismatched resume snapshots.
  Federation(const Trace& trace, const SchedulerFactory& make_scheduler,
             MetaScheduler& meta, const FederationConfig& config);

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;
  ~Federation();

  /// Runs the shared event loop to completion and finalizes every member.
  /// Call exactly once. Throws sbs::Error on interrupt (after flushing
  /// telemetry) so the caller can point at the latest checkpoint.
  FederationResult run();

  /// Captures the full federation state at the current event boundary.
  sim::FederationSnapshot capture() const;

  std::size_t member_count() const { return sims_.size(); }
  const sim::Simulator& member(std::size_t i) const { return *sims_[i]; }

 private:
  Time next_event_time() const;
  Time estimate_of(const Job& j) const;
  double queue_demand(std::size_t i) const;
  std::vector<ClusterProbe> build_probes() const;
  Time probe_earliest_start(
      std::size_t i, const Job& job, Time estimate,
      const std::vector<std::pair<int, Time>>& batch) const;
  void route_arrivals(Time t);
  void close_all_arrivals();
  void migrate(Time t);
  void do_migrate(std::size_t src, std::size_t dst, int job_id, Time t);

  // Fault tolerance (inert when chaos_ is empty).
  bool unreachable(std::size_t i) const;
  bool failover_active() const;
  void apply_chaos_edges(Time t);   ///< pre-step: cursor, flags, views
  void reconcile(std::size_t m, Time t);  ///< post-step, on heal
  void failover_tick(Time t);       ///< probes, declare-down, re-home
  void rehome_member(std::size_t m, Time t);
  std::size_t pick_survivor(const Job& j, std::size_t avoid) const;
  void transfer_owner(int job_id, std::size_t to);
  void restep(Time t);              ///< re-step retarget_ members to t
  void check_invariants(const FederationResult& fr) const;

  const Trace& trace_;
  MetaScheduler& meta_;
  const FederationConfig config_;
  obs::Telemetry* const tel_;

  std::vector<Trace> member_traces_;  ///< global jobs, member capacity
  std::vector<FaultInjector> merged_faults_;  ///< member faults + blackouts
  std::vector<std::unique_ptr<Scheduler>> schedulers_;
  std::vector<std::unique_ptr<sim::Simulator>> sims_;

  std::uint64_t fed_events_ = 0;
  std::size_t next_arrival_ = 0;
  std::uint64_t migrations_ = 0;
  std::vector<int> owner_;
  std::vector<double> ewma_;
  std::vector<std::uint64_t> routed_;
  std::vector<std::uint64_t> migrations_in_;
  std::vector<std::uint64_t> migrations_out_;
  std::vector<std::size_t> retarget_;  ///< members to re-step after injection
  bool arrivals_closed_ = false;
  bool ran_ = false;

  // Fault-tolerance state. chaos_ holds the schedule's events (empty =
  // chaos off); flags are ground truth, health_ is the meta's hysteresis
  // view of it; limbo_ holds routings whose delivery an outage dropped.
  std::vector<ChaosEvent> chaos_;
  std::size_t next_chaos_ = 0;
  std::vector<std::uint8_t> member_down_;
  std::vector<std::uint8_t> link_down_;
  std::vector<MemberHealth> health_;
  std::vector<sim::FederationSnapshot::LimboEntry> limbo_;
  std::vector<std::vector<int>> stale_waiting_;  ///< meta view at LinkDown
  std::vector<std::size_t> reconcile_pending_;
  JobLedger ledger_;
};

/// Parses a `--clusters` spec: comma-separated member sizes, each
/// optionally named — "64,32,32" or "left:64,right:32". Throws
/// sbs::UsageError (with the offending token) on malformed specs:
/// non-positive or non-numeric node counts, duplicate member names
/// (defaults "c<index>" included), or absurd member counts.
std::vector<MemberSpec> parse_cluster_spec(std::string_view spec);

}  // namespace sbs::fed
