#include "fed/meta_scheduler.hpp"

#include <limits>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace sbs::fed {

namespace {

// A member can ever host the job iff its full machine is wide enough;
// degraded live capacity can recover, so it does not disqualify.
bool can_host(const ClusterProbe& p, const Job& job) {
  return p.total_capacity >= job.nodes;
}

// Routable right now: wide enough AND not declared down by the health
// monitor. Policies try these first; unavailable members are a last
// resort so routing stays total.
bool usable(const ClusterProbe& p, const Job& job) {
  return p.available && can_host(p, job);
}

// Fallback when no member is wide enough: the largest machine (lowest id
// on ties). The job will park there as "unstarted", same as a too-wide job
// parks on a single machine — routing must still be total.
int widest(std::span<const ClusterProbe> probes) {
  int best = 0;
  for (std::size_t i = 1; i < probes.size(); ++i)
    if (probes[i].total_capacity > probes[best].total_capacity)
      best = static_cast<int>(i);
  return probes[static_cast<std::size_t>(best)].cluster;
}

/// Cycles through the members, skipping ones the job can never fit.
class RoundRobinMeta final : public MetaScheduler {
 public:
  int route(const Job& job, Time, std::span<const ClusterProbe> probes)
      override {
    const std::size_t n = probes.size();
    for (std::size_t i = 0; i < n; ++i) {
      const ClusterProbe& p = probes[(cursor_ + i) % n];
      if (usable(p, job)) {
        cursor_ = (cursor_ + i + 1) % n;
        return p.cluster;
      }
    }
    // Every wide-enough member is down: fall back to the first that can
    // host (the job parks in limbo until that member recovers).
    for (std::size_t i = 0; i < n; ++i) {
      const ClusterProbe& p = probes[(cursor_ + i) % n];
      if (can_host(p, job)) {
        cursor_ = (cursor_ + i + 1) % n;
        return p.cluster;
      }
    }
    return widest(probes);
  }

  std::string name() const override { return "rr"; }

  std::string save_state() const override {
    obs::JsonWriter w;
    w.begin_object()
        .field("cursor", static_cast<std::uint64_t>(cursor_))
        .end_object();
    return w.str();
  }

  void restore_state(std::string_view state) override {
    const obs::JsonValue v = obs::parse_json(state);
    SBS_CHECK_MSG(v.is_object(), "rr meta state is not a JSON object");
    const obs::JsonValue* cur = v.find("cursor");
    SBS_CHECK_MSG(cur != nullptr, "rr meta state lacks \"cursor\"");
    cursor_ = static_cast<std::size_t>(cur->as_int());
  }

 private:
  std::size_t cursor_ = 0;
};

/// Least backlog per node: the smoothed queue demand (EWMA, maintained by
/// the federation across event times) plus the instantaneous queue demand,
/// normalized by machine size. Ties break to the lower cluster id.
class LeastLoadedMeta final : public MetaScheduler {
 public:
  int route(const Job& job, Time, std::span<const ClusterProbe> probes)
      override {
    const ClusterProbe* best = nullptr;
    double best_score = 0.0;
    for (const ClusterProbe& p : probes) {
      if (!usable(p, job)) continue;
      const double score = (p.demand_ewma + p.queue_demand) /
                           static_cast<double>(p.total_capacity);
      if (best == nullptr || score < best_score) {
        best = &p;
        best_score = score;
      }
    }
    if (best != nullptr) return best->cluster;
    // Every wide-enough member is down: the job must still route
    // somewhere (it parks in limbo until recovery).
    for (const ClusterProbe& p : probes)
      if (can_host(p, job)) return p.cluster;
    return widest(probes);
  }

  std::string name() const override { return "least-loaded"; }
};

/// Earliest predicted start via the per-cluster probe. Ties break to the
/// member with more free nodes now, then to the lower cluster id.
class BestFitMeta final : public MetaScheduler {
 public:
  int route(const Job& job, Time, std::span<const ClusterProbe> probes)
      override {
    const ClusterProbe* best = nullptr;
    for (const ClusterProbe& p : probes) {
      if (!usable(p, job) || p.earliest_start == ClusterProbe::kUnreachable)
        continue;
      if (best == nullptr || p.earliest_start < best->earliest_start ||
          (p.earliest_start == best->earliest_start &&
           p.free_nodes > best->free_nodes))
        best = &p;
    }
    if (best != nullptr) return best->cluster;
    // Every wide-enough member is currently degraded below the job or
    // declared down: park it on the first available member that can host
    // it once nodes recover, else on any that can host at all.
    for (const ClusterProbe& p : probes)
      if (usable(p, job)) return p.cluster;
    for (const ClusterProbe& p : probes)
      if (can_host(p, job)) return p.cluster;
    return widest(probes);
  }

  std::string name() const override { return "best-fit"; }
  bool wants_probe() const override { return true; }
};

}  // namespace

std::unique_ptr<MetaScheduler> make_meta(std::string_view spec) {
  if (spec == "rr" || spec == "round-robin")
    return std::make_unique<RoundRobinMeta>();
  if (spec == "least-loaded" || spec == "ll")
    return std::make_unique<LeastLoadedMeta>();
  if (spec == "best-fit" || spec == "bf")
    return std::make_unique<BestFitMeta>();
  throw Error("unknown meta-scheduler \"" + std::string(spec) +
              "\" (expected rr, least-loaded, or best-fit)");
}

}  // namespace sbs::fed
