#include "fed/failover.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace sbs::fed {

namespace {
resilience::HealthConfig probe_health_config(const FailoverConfig& cfg) {
  resilience::HealthConfig hc;
  hc.alpha = cfg.alpha;
  // Probe failures (0/1) feed the queue-depth signal: the EWMA trips at
  // 1.0 (the first failure primes it there) and recovers below
  // recovery_fraction, which takes several consecutive good probes.
  hc.queue_high = 1.0;
  hc.recovery_fraction = cfg.recovery_fraction;
  return hc;
}
}  // namespace

MemberHealth::MemberHealth(const FailoverConfig& cfg)
    : cfg_(cfg), monitor_(probe_health_config(cfg)) {
  SBS_CHECK_MSG(cfg_.probe_every > 0 && cfg_.backoff_base > 0 &&
                    cfg_.backoff_cap >= cfg_.backoff_base &&
                    cfg_.fail_threshold >= 1 && cfg_.probe_timeout >= 0,
                "invalid failover config");
}

Time MemberHealth::backoff_delay() const {
  const int shift = std::min(backoff_exp_, 20);
  const Time d = cfg_.backoff_base << shift;
  return std::min(d, cfg_.backoff_cap);
}

MemberHealth::Event MemberHealth::tick(Time t, bool reachable) {
  if (t < next_probe_) return Event::None;
  const resilience::HealthVerdict v = monitor_.observe(
      resilience::HealthSignal{reachable ? 0.0 : 1.0, 0.0, false, false});
  if (reachable) {
    fail_streak_ = 0;
  } else {
    if (fail_streak_ == 0) first_fail_ = t;
    ++fail_streak_;
  }
  if (!down_) {
    next_probe_ = t + cfg_.probe_every;
    if (v == resilience::HealthVerdict::Overloaded &&
        fail_streak_ >= cfg_.fail_threshold &&
        t - first_fail_ >= cfg_.probe_timeout) {
      down_ = true;
      backoff_exp_ = 0;
      next_probe_ = t + backoff_delay();
      return Event::DeclaredDown;
    }
    return Event::None;
  }
  if (v == resilience::HealthVerdict::Recovered) {
    down_ = false;
    backoff_exp_ = 0;
    next_probe_ = t + cfg_.probe_every;
    return Event::Recovered;
  }
  if (reachable) {
    // Reachable again but hysteresis not yet satisfied: probe at the
    // healthy cadence so recovery completes promptly.
    next_probe_ = t + cfg_.probe_every;
  } else {
    ++backoff_exp_;
    next_probe_ = t + backoff_delay();
  }
  return Event::None;
}

void MemberHealth::append_state(obs::JsonWriter& w,
                                std::string_view key) const {
  w.key(key);
  w.begin_object()
      .field("down", down_)
      .field("fail_streak", static_cast<std::int64_t>(fail_streak_))
      .field("first_fail", static_cast<std::int64_t>(first_fail_))
      .field("backoff_exp", static_cast<std::int64_t>(backoff_exp_))
      .field("next_probe", static_cast<std::int64_t>(next_probe_));
  monitor_.append_state(w, "monitor");
  w.end_object();
}

void MemberHealth::restore_state(const obs::JsonValue& v) {
  SBS_CHECK_MSG(v.is_object(), "member health state is not a JSON object");
  const auto get = [&](const char* name) -> const obs::JsonValue& {
    const obs::JsonValue* f = v.find(name);
    SBS_CHECK_MSG(f != nullptr, "member health state lacks \"" << name
                                                              << "\"");
    return *f;
  };
  down_ = get("down").as_bool();
  fail_streak_ = static_cast<int>(get("fail_streak").as_int());
  first_fail_ = static_cast<Time>(get("first_fail").as_int());
  backoff_exp_ = static_cast<int>(get("backoff_exp").as_int());
  next_probe_ = static_cast<Time>(get("next_probe").as_int());
  monitor_.restore_state(get("monitor"));
}

void JobLedger::reset(std::size_t members) {
  in.assign(members, 0);
  out.assign(members, 0);
  speculative.clear();
  commits.clear();
  failovers = rehomes = dedupes = duplicate_runs = 0;
}

void JobLedger::transfer(std::size_t from, std::size_t to) {
  SBS_CHECK_MSG(from < out.size() && to < in.size(),
                "ledger transfer between unknown members");
  ++out[from];
  ++in[to];
}

bool JobLedger::speculating(int job) const {
  return std::any_of(speculative.begin(), speculative.end(),
                     [job](const RehomeEntry& e) { return e.job == job; });
}

void JobLedger::open_spec(int job, int from, int to) {
  SBS_CHECK_MSG(!speculating(job),
                "job " << job << " already has an open speculative copy");
  speculative.push_back(RehomeEntry{job, from, to});
}

void JobLedger::close_spec(int job) {
  auto it = std::find_if(speculative.begin(), speculative.end(),
                         [job](const RehomeEntry& e) { return e.job == job; });
  SBS_CHECK_MSG(it != speculative.end(),
                "no open speculative copy for job " << job);
  speculative.erase(it);
}

void JobLedger::commit(int job, int member) {
  for (const CommitEntry& c : commits) {
    if (c.job != job) continue;
    SBS_CHECK_MSG(c.member == member,
                  "job " << job << " committed twice (members " << c.member
                         << " and " << member << ")");
    return;
  }
  commits.push_back(CommitEntry{job, member});
}

int JobLedger::committed_to(int job) const {
  for (const CommitEntry& c : commits)
    if (c.job == job) return c.member;
  return -1;
}

}  // namespace sbs::fed
