#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sbs {

/// Thrown on any violated library precondition or invariant.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on command-line misuse: an unknown option or subcommand, a
/// malformed flag value, a missing required flag. CLI drivers catch it
/// separately from Error so operator mistakes get usage text on stderr and
/// exit code 2, while genuine runtime failures stay exit code 1.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace sbs

/// Precondition/invariant check that is always on (simulation correctness
/// beats the negligible branch cost; profiles show it is not hot).
#define SBS_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::sbs::detail::fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define SBS_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream sbs_check_os;                                 \
      sbs_check_os << msg;                                             \
      ::sbs::detail::fail(#expr, __FILE__, __LINE__,                   \
                          sbs_check_os.str());                         \
    }                                                                  \
  } while (false)
