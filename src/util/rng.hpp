#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace sbs {

/// splitmix64 step — used to seed Xoshiro256** and to derive independent
/// stream seeds from a (seed, stream-id) pair.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic xoshiro256** engine. Satisfies UniformRandomBitGenerator,
/// so it can also drive <random> distributions, but the members below cover
/// everything the workload generator needs without libstdc++'s
/// platform-dependent distribution algorithms (bit-for-bit reproducibility
/// across standard libraries).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine; identical seeds yield identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child stream (e.g. one per month, per bucket).
  Rng fork(std::uint64_t stream_id) const;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Log-uniform double in [lo, hi]; requires 0 < lo <= hi.
  double log_uniform(double lo, double hi);

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box–Muller (stateless variant; discards the pair).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniform index in [0, n); requires n > 0.
  std::size_t index(std::size_t n);

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_;  // retained so fork() can derive child streams
};

}  // namespace sbs
