#pragma once

#include <map>
#include <string>
#include <vector>

namespace sbs {

/// Tiny `--key=value` / `--flag` parser shared by bench and example
/// binaries. Unknown keys are an error so typos do not silently run the
/// default configuration.
class CliArgs {
 public:
  /// `allowed` lists the recognized keys (without leading dashes).
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& allowed);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace sbs
