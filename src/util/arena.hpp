#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace sbs {

/// Bump allocator for search-node state: path arrays, used flags, the
/// schedule builder's SoA profile and undo-log segments. One Arena serves
/// one thread (see worker_arena()); a search claims it for an epoch and
/// every allocation inside that epoch is freed at once by the next
/// begin_epoch() — O(1), no per-node heap traffic, and the blocks are
/// retained so a steady-state workload stops allocating entirely after
/// the first decision (the RSS plateau the arena-stress test asserts).
///
/// Blocks grow geometrically when an epoch outgrows the retained
/// capacity, so total block count is O(log peak-bytes) for the lifetime
/// of the thread.
class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = std::size_t{1} << 16)
      : first_block_bytes_(first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (power of two, at most
  /// alignof(std::max_align_t)). The storage is valid until the next
  /// reset()/begin_epoch().
  void* allocate(std::size_t bytes, std::size_t align) {
    SBS_CHECK(align != 0 && (align & (align - 1)) == 0);
    SBS_CHECK(align <= alignof(std::max_align_t));
    if (bytes == 0) bytes = 1;
    for (;;) {
      if (block_ < blocks_.size()) {
        Block& b = blocks_[block_];
        const std::size_t at = (offset_ + align - 1) & ~(align - 1);
        if (at + bytes <= b.size) {
          offset_ = at + bytes;
          epoch_bytes_ += bytes;
          if (epoch_bytes_ > high_water_) high_water_ = epoch_bytes_;
          return b.data.get() + at;
        }
      }
      grow(bytes);
    }
  }

  /// Typed array allocation; the elements are NOT constructed (the arena
  /// only serves trivial types).
  template <typename T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Frees every allocation at once; retained blocks are reused by the
  /// next epoch.
  void reset() {
    block_ = 0;
    offset_ = 0;
    epoch_bytes_ = 0;
  }

  /// Epoch discipline: a search (one scheduling decision) claims the arena
  /// with a fresh epoch id, resetting it; re-claiming with the SAME id is
  /// a no-op, so a parallel search's workers keep their builder state
  /// alive across iterations within one decision.
  void begin_epoch(std::uint64_t epoch) {
    if (epoch == epoch_) return;
    epoch_ = epoch;
    reset();
  }

  std::uint64_t epoch() const { return epoch_; }

  /// Total bytes of retained blocks (the plateau the stress test watches).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  std::size_t block_count() const { return blocks_.size(); }

  /// Bytes handed out in the current epoch.
  std::size_t epoch_bytes() const { return epoch_bytes_; }

  /// Largest epoch_bytes() ever observed.
  std::size_t high_water_bytes() const { return high_water_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Advances to a block that can hold `bytes`, appending a geometrically
  /// larger one when the retained chain is exhausted.
  void grow(std::size_t bytes) {
    if (block_ + 1 < blocks_.size()) {
      ++block_;
      offset_ = 0;
      return;
    }
    std::size_t size = blocks_.empty() ? first_block_bytes_
                                       : blocks_.back().size * 2;
    if (size < bytes) size = bytes;
    blocks_.push_back(
        Block{std::make_unique<std::byte[]>(size), size});
    block_ = blocks_.size() - 1;
    offset_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;   ///< current block index
  std::size_t offset_ = 0;  ///< bump offset inside the current block
  std::size_t first_block_bytes_;
  std::size_t epoch_bytes_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t epoch_ = 0;
};

/// The calling thread's search arena. Search engines allocate their
/// per-decision state here; run_search() claims a fresh epoch per decision
/// on the calling thread, and each parallel worker claims the same epoch
/// on its own thread-local arena (see search.cpp). Dies with the thread;
/// allocations never cross from one thread's arena into another's
/// allocator state (cross-thread READS of arena memory are synchronized
/// by the thread pool's submit/join edges).
Arena& worker_arena();

/// Globally unique epoch ids for begin_epoch(). Monotonic across threads;
/// only inequality is ever tested.
std::uint64_t next_arena_epoch();

/// Fixed-capacity vector of a trivial type backed by an Arena. The subset
/// of std::vector the search hot path needs — push/pop, indexed access,
/// memmove-based insert/erase — with a capacity fixed at init() (the
/// search state has exact bounds: a profile gains at most two steps per
/// outstanding placement). Destruction is a no-op; the arena owns the
/// storage.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T> &&
                std::is_trivially_destructible_v<T>);

 public:
  ArenaVector() = default;

  void init(Arena& arena, std::size_t capacity) {
    data_ = arena.alloc_array<T>(capacity);
    cap_ = capacity;
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  operator std::span<const T>() const { return {data_, size_}; }

  void clear() { size_ = 0; }

  void push_back(const T& v) {
    SBS_CHECK_MSG(size_ < cap_, "ArenaVector capacity exceeded");
    data_[size_++] = v;
  }

  void pop_back() {
    SBS_CHECK(size_ > 0);
    --size_;
  }

  void resize(std::size_t n) {
    SBS_CHECK_MSG(n <= cap_, "ArenaVector capacity exceeded");
    for (std::size_t i = size_; i < n; ++i) data_[i] = T{};
    size_ = n;
  }

  void assign(std::size_t n, const T& v) {
    SBS_CHECK_MSG(n <= cap_, "ArenaVector capacity exceeded");
    for (std::size_t i = 0; i < n; ++i) data_[i] = v;
    size_ = n;
  }

  void insert_at(std::size_t at, const T& v) {
    SBS_CHECK_MSG(size_ < cap_, "ArenaVector capacity exceeded");
    SBS_CHECK(at <= size_);
    std::memmove(data_ + at + 1, data_ + at, (size_ - at) * sizeof(T));
    data_[at] = v;
    ++size_;
  }

  void erase_at(std::size_t at) {
    SBS_CHECK(at < size_);
    std::memmove(data_ + at, data_ + at + 1,
                 (size_ - at - 1) * sizeof(T));
    --size_;
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace sbs
