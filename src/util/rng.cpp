#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sbs {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t stream_id) const {
  std::uint64_t sm = seed_ ^ (0xd1b54a32d192ed03ULL * (stream_id + 1));
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SBS_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64 * span,
  // negligible for simulation purposes.
  __extension__ typedef unsigned __int128 uint128;
  const uint128 m = static_cast<uint128>(next()) * static_cast<uint128>(span);
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::log_uniform(double lo, double hi) {
  SBS_CHECK(lo > 0.0 && lo <= hi);
  return lo * std::exp(uniform() * std::log(hi / lo));
}

double Rng::exponential(double mean) {
  SBS_CHECK(mean > 0.0);
  double u = uniform();
  if (u >= 1.0) u = std::nextafter(1.0, 0.0);
  return -mean * std::log1p(-u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = std::numeric_limits<double>::min();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(6.283185307179586 * u2);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::index(std::size_t n) {
  SBS_CHECK(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

}  // namespace sbs
