#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sbs {

/// Fixed-width plain-text table, used by every bench binary to print
/// paper-style rows. Cells are strings; numeric helpers format compactly.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();
  Table& add(const std::string& cell);
  Table& add(double value, int precision = 2);
  Table& add(long long value);
  Table& add(int value) { return add(static_cast<long long>(value)); }
  Table& add(std::size_t value) { return add(static_cast<long long>(value)); }

  std::size_t num_rows() const { return rows_.size(); }

  /// Renders with a header rule and right-aligned numeric-looking columns.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no locale surprises).
std::string format_double(double value, int precision = 2);

}  // namespace sbs
