#include "util/time.hpp"

#include <cstdio>

namespace sbs {

std::string format_duration(Time t) {
  const char* sign = t < 0 ? "-" : "";
  if (t < 0) t = -t;
  const long long h = t / kHour;
  const long long m = (t % kHour) / kMinute;
  const long long s = t % kMinute;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s%lldh%02lldm%02llds", sign, h, m, s);
  return buf;
}

}  // namespace sbs
