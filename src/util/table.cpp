#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace sbs {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SBS_CHECK(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& cell) {
  SBS_CHECK_MSG(!rows_.empty(), "call row() before add()");
  SBS_CHECK_MSG(rows_.back().size() < headers_.size(),
                "row has more cells than headers");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(double value, int precision) {
  return add(format_double(value, precision));
}

Table& Table::add(long long value) { return add(std::to_string(value)); }

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != '%' && c != 'e' && c != 'E')
      return false;
  }
  return true;
}
}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      if (c) os << "  ";
      const bool right = looks_numeric(cell);
      os << (right ? std::right : std::left) << std::setw(static_cast<int>(width[c]))
         << cell;
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
}

}  // namespace sbs
