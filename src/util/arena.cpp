#include "util/arena.hpp"

#include <atomic>

namespace sbs {

Arena& worker_arena() {
  thread_local Arena arena;
  return arena;
}

std::uint64_t next_arena_epoch() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace sbs
