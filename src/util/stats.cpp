#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace sbs {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void TimeWeightedAverage::observe(double now, double value) {
  if (started_) {
    SBS_CHECK_MSG(now >= last_time_, "time must be non-decreasing");
    const double span = now - last_time_;
    weighted_sum_ += last_value_ * span;
    total_span_ += span;
  }
  started_ = true;
  last_time_ = now;
  last_value_ = value;
}

double TimeWeightedAverage::average() const {
  return total_span_ > 0.0 ? weighted_sum_ / total_span_ : 0.0;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  SBS_CHECK(p >= 0.0 && p <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double max_of(const std::vector<double>& values) {
  double m = 0.0;
  bool first = true;
  for (double v : values) {
    if (first || v > m) m = v;
    first = false;
  }
  return m;
}

}  // namespace sbs
