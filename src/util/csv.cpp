#include "util/csv.hpp"

#include "util/error.hpp"

namespace sbs {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  SBS_CHECK_MSG(out_.good(), "cannot open CSV file " << path);
  SBS_CHECK(columns_ > 0);
  emit(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  SBS_CHECK_MSG(cells.size() == columns_,
                "CSV row has " << cells.size() << " cells, expected "
                               << columns_);
  emit(cells);
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace sbs
