#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace sbs {

/// Minimal CSV writer: quotes cells containing separators, one row per
/// write_row(). Bench binaries use it to dump machine-readable series next
/// to the human-readable tables.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void write_row(const std::vector<std::string>& cells);

  const std::string& path() const { return path_; }

 private:
  void emit(const std::vector<std::string>& cells);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

/// Escapes a single CSV cell (RFC 4180 quoting).
std::string csv_escape(const std::string& cell);

}  // namespace sbs
