#pragma once

#include <cstddef>
#include <vector>

namespace sbs {

/// Single-pass accumulator for count / mean / variance / min / max
/// (Welford's algorithm — numerically stable for long simulations).
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance; 0 for n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction support).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Accumulates a piecewise-constant signal (e.g. queue length over time)
/// and reports its time-weighted average.
class TimeWeightedAverage {
 public:
  /// Records that the signal held `value` since the previous observation
  /// time up to `now`. The first call only sets the origin.
  void observe(double now, double value);

  double average() const;
  bool empty() const { return total_span_ <= 0.0; }

 private:
  bool started_ = false;
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
  double total_span_ = 0.0;
};

/// Returns the p-quantile (p in [0,1]) with linear interpolation between
/// order statistics. Copies and sorts its input; empty input returns 0.
double percentile(std::vector<double> values, double p);

/// Arithmetic mean; empty input returns 0.
double mean_of(const std::vector<double>& values);

/// Maximum; empty input returns 0.
double max_of(const std::vector<double>& values);

}  // namespace sbs
