#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"

namespace sbs {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& allowed) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw UsageError("unexpected positional argument: " + arg);
    arg = arg.substr(2);
    std::string key = arg;
    std::string value = "1";  // bare flag means true
    if (auto eq = arg.find('='); eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end())
      throw UsageError("unknown option --" + key);
    values_[key] = value;
  }
}

bool CliArgs::has(const std::string& key) const { return values_.count(key) > 0; }

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long long CliArgs::get_int(const std::string& key, long long fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second != "0" && it->second != "false" && it->second != "no";
}

}  // namespace sbs
