#pragma once

#include <cstdint>
#include <string>

namespace sbs {

/// Simulation time, in integral seconds since the start of the simulated
/// month. All event timestamps, waits and runtimes use this unit; derived
/// statistics (average waits etc.) convert to hours as doubles.
using Time = std::int64_t;

inline constexpr Time kSecond = 1;
inline constexpr Time kMinute = 60;
inline constexpr Time kHour = 3600;
inline constexpr Time kDay = 24 * kHour;
inline constexpr Time kWeek = 7 * kDay;

/// Converts an integral second count to fractional hours.
constexpr double to_hours(Time t) { return static_cast<double>(t) / kHour; }

/// Converts fractional hours to whole seconds (rounded to nearest).
constexpr Time from_hours(double h) {
  return static_cast<Time>(h * static_cast<double>(kHour) + (h >= 0 ? 0.5 : -0.5));
}

/// Formats a duration as "123h04m05s" (sign-aware), for logs and tables.
std::string format_duration(Time t);

}  // namespace sbs
