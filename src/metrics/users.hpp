#pragma once

#include <span>
#include <vector>

#include "sim/outcome.hpp"

namespace sbs {

/// Per-user service statistics, for the fair-share experiments: who got
/// which quality of service, and how uneven the spread is across users.
struct UserSummary {
  int user = 0;
  std::size_t jobs = 0;
  double avg_wait_h = 0.0;
  double avg_bsld = 0.0;
  double demand_node_h = 0.0;  ///< consumed node-hours (actual runtimes)
};

/// One row per user (ascending user id), over in-window jobs.
std::vector<UserSummary> per_user_summary(
    std::span<const JobOutcome> outcomes);

/// Inter-user service spread: the ratio of the worst to the best per-user
/// average bounded slowdown among users with at least `min_jobs` jobs.
/// 1 = perfectly even; returns 1 when fewer than two users qualify.
double user_service_spread(std::span<const JobOutcome> outcomes,
                           std::size_t min_jobs = 5);

}  // namespace sbs
