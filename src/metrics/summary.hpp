#pragma once

#include <cstddef>
#include <span>

#include "sim/outcome.hpp"

namespace sbs {

/// Aggregate performance measures over the in-window jobs of one run —
/// the measures the paper plots per month.
struct Summary {
  std::size_t jobs = 0;
  double avg_wait_h = 0.0;
  double max_wait_h = 0.0;
  double p98_wait_h = 0.0;          ///< 98th-percentile wait
  double avg_bounded_slowdown = 0.0;
  double max_bounded_slowdown = 0.0;
  double avg_turnaround_h = 0.0;
};

/// Normalized excessive-wait statistics w.r.t. one threshold (the paper's
/// E^max_fcfs-bf and E^98%_fcfs-bf when the threshold comes from the
/// month's FCFS-backfill run).
struct ExcessiveWaitStats {
  double total_h = 0.0;  ///< sum of per-job excess, hours
  std::size_t count = 0; ///< jobs with positive excess
  double avg_h = 0.0;    ///< average excess among those jobs
  double max_h = 0.0;    ///< largest per-job excess
};

/// Computes the summary over outcomes with job.in_window set (the paper
/// evaluates only jobs submitted inside the month). Jobs that never
/// completed (dropped or parked under fault injection) are excluded.
Summary summarize(std::span<const JobOutcome> outcomes);

/// Excessive-wait statistics w.r.t. `threshold` over in-window completed
/// jobs.
ExcessiveWaitStats excessive_stats(std::span<const JobOutcome> outcomes,
                                   Time threshold);

}  // namespace sbs
