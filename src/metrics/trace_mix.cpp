#include "metrics/trace_mix.hpp"

#include <array>

#include "util/error.hpp"

namespace sbs {

std::size_t mix_range(int nodes) {
  SBS_CHECK(nodes >= 1);
  if (nodes == 1) return 0;
  if (nodes == 2) return 1;
  if (nodes <= 4) return 2;
  if (nodes <= 8) return 3;
  if (nodes <= 16) return 4;
  if (nodes <= 32) return 5;
  if (nodes <= 64) return 6;
  return 7;
}

const std::string& mix_range_label(std::size_t idx) {
  static const std::array<std::string, kMixRanges> labels = {
      "1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65-128"};
  SBS_CHECK(idx < labels.size());
  return labels[idx];
}

TraceMix trace_mix(const Trace& trace) {
  TraceMix mix;
  std::array<double, kMixRanges> demand{};
  double total_demand = 0.0;
  for (const auto& j : trace.jobs) {
    if (!j.in_window) continue;
    const std::size_t r = mix_range(j.nodes);
    mix.job_fraction[r] += 1.0;
    demand[r] += job_demand(j);
    total_demand += job_demand(j);
    ++mix.total_jobs;
  }
  mix.offered_load = trace.offered_load();
  if (mix.total_jobs > 0) {
    for (auto& f : mix.job_fraction) f /= static_cast<double>(mix.total_jobs);
  }
  if (total_demand > 0.0) {
    for (std::size_t r = 0; r < kMixRanges; ++r)
      mix.demand_fraction[r] = demand[r] / total_demand;
  }
  return mix;
}

std::size_t runtime_mix_class(int nodes) {
  SBS_CHECK(nodes >= 1);
  if (nodes == 1) return 0;
  if (nodes == 2) return 1;
  if (nodes <= 8) return 2;
  if (nodes <= 32) return 3;
  return 4;
}

const std::string& runtime_mix_class_label(std::size_t idx) {
  static const std::array<std::string, RuntimeMix::kClasses> labels = {
      "1", "2", "3-8", "9-32", "33-128"};
  SBS_CHECK(idx < labels.size());
  return labels[idx];
}

RuntimeMix runtime_mix(const Trace& trace) {
  RuntimeMix mix;
  std::size_t total = 0;
  for (const auto& j : trace.jobs) {
    if (!j.in_window) continue;
    ++total;
    const std::size_t c = runtime_mix_class(j.nodes);
    if (j.runtime <= kHour) mix.short_fraction[c] += 1.0;
    if (j.runtime > 5 * kHour) mix.long_fraction[c] += 1.0;
  }
  if (total > 0) {
    for (std::size_t c = 0; c < RuntimeMix::kClasses; ++c) {
      mix.short_fraction[c] /= static_cast<double>(total);
      mix.long_fraction[c] /= static_cast<double>(total);
      mix.short_total += mix.short_fraction[c];
      mix.long_total += mix.long_fraction[c];
    }
  }
  return mix;
}

}  // namespace sbs
