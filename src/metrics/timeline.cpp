#include "metrics/timeline.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace sbs {

namespace {

std::vector<TimelinePoint> accumulate_deltas(const std::map<Time, int>& delta) {
  std::vector<TimelinePoint> timeline;
  timeline.reserve(delta.size());
  int level = 0;
  for (const auto& [t, d] : delta) {
    level += d;
    if (!timeline.empty() && timeline.back().time == t)
      timeline.back().value = level;
    else
      timeline.push_back(TimelinePoint{t, level});
  }
  return timeline;
}

}  // namespace

std::vector<TimelinePoint> utilization_timeline(
    std::span<const JobOutcome> outcomes) {
  std::map<Time, int> delta;
  for (const auto& o : outcomes) {
    delta[o.start] += o.job.nodes;
    delta[o.end] -= o.job.nodes;
  }
  return accumulate_deltas(delta);
}

std::vector<TimelinePoint> queue_timeline(
    std::span<const JobOutcome> outcomes) {
  std::map<Time, int> delta;
  for (const auto& o : outcomes) {
    if (o.start <= o.job.submit) continue;  // never queued
    delta[o.job.submit] += 1;
    delta[o.start] -= 1;
  }
  return accumulate_deltas(delta);
}

double timeline_average(std::span<const TimelinePoint> timeline, Time begin,
                        Time end) {
  SBS_CHECK(end > begin);
  double area = 0.0;
  int level = 0;
  Time cursor = begin;
  for (const auto& p : timeline) {
    if (p.time <= begin) {
      level = p.value;
      continue;
    }
    if (p.time >= end) break;
    area += static_cast<double>(level) * static_cast<double>(p.time - cursor);
    level = p.value;
    cursor = p.time;
  }
  area += static_cast<double>(level) * static_cast<double>(end - cursor);
  return area / static_cast<double>(end - begin);
}

int timeline_peak(std::span<const TimelinePoint> timeline, Time begin,
                  Time end) {
  int peak = 0;
  int level = 0;
  for (const auto& p : timeline) {
    if (p.time <= begin) {
      level = p.value;
      continue;
    }
    if (p.time >= end) break;
    peak = std::max(peak, level);
    level = p.value;
  }
  // Account for the level active entering the window and at its end.
  peak = std::max(peak, level);
  return peak;
}

double average_utilization(std::span<const JobOutcome> outcomes, int capacity,
                           Time begin, Time end) {
  SBS_CHECK(capacity > 0);
  const auto timeline = utilization_timeline(outcomes);
  return timeline_average(timeline, begin, end) / capacity;
}

std::vector<double> daily_utilization(std::span<const JobOutcome> outcomes,
                                      int capacity, Time begin, Time end) {
  SBS_CHECK(capacity > 0);
  const auto timeline = utilization_timeline(outcomes);
  std::vector<double> days;
  for (Time t = begin; t + kDay <= end; t += kDay)
    days.push_back(timeline_average(timeline, t, t + kDay) / capacity);
  return days;
}

}  // namespace sbs
