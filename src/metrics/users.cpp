#include "metrics/users.hpp"

#include <algorithm>
#include <map>

namespace sbs {

std::vector<UserSummary> per_user_summary(
    std::span<const JobOutcome> outcomes) {
  std::map<int, UserSummary> by_user;
  for (const auto& o : outcomes) {
    if (!o.job.in_window) continue;
    UserSummary& s = by_user[o.job.user];
    s.user = o.job.user;
    ++s.jobs;
    s.avg_wait_h += to_hours(o.wait());
    s.avg_bsld += bounded_slowdown(o);
    s.demand_node_h += job_demand(o.job) / kHour;
  }
  std::vector<UserSummary> result;
  result.reserve(by_user.size());
  for (auto& [user, s] : by_user) {
    s.avg_wait_h /= static_cast<double>(s.jobs);
    s.avg_bsld /= static_cast<double>(s.jobs);
    result.push_back(s);
  }
  return result;
}

double user_service_spread(std::span<const JobOutcome> outcomes,
                           std::size_t min_jobs) {
  double best = 0.0, worst = 0.0;
  bool any = false;
  for (const UserSummary& s : per_user_summary(outcomes)) {
    if (s.jobs < min_jobs) continue;
    if (!any) {
      best = worst = s.avg_bsld;
      any = true;
    } else {
      best = std::min(best, s.avg_bsld);
      worst = std::max(worst, s.avg_bsld);
    }
  }
  if (!any || best <= 0.0) return 1.0;
  return worst / best;
}

}  // namespace sbs
