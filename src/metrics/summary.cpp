#include "metrics/summary.hpp"

#include <vector>

#include "util/stats.hpp"

namespace sbs {

Summary summarize(std::span<const JobOutcome> outcomes) {
  Summary s;
  OnlineStats wait, bsld, turnaround;
  std::vector<double> waits_h;
  for (const auto& o : outcomes) {
    if (!o.job.in_window || !o.completed) continue;
    wait.add(to_hours(o.wait()));
    bsld.add(bounded_slowdown(o));
    turnaround.add(to_hours(o.turnaround()));
    waits_h.push_back(to_hours(o.wait()));
  }
  s.jobs = wait.count();
  s.avg_wait_h = wait.mean();
  s.max_wait_h = wait.max();
  s.p98_wait_h = percentile(std::move(waits_h), 0.98);
  s.avg_bounded_slowdown = bsld.mean();
  s.max_bounded_slowdown = bsld.max();
  s.avg_turnaround_h = turnaround.mean();
  return s;
}

ExcessiveWaitStats excessive_stats(std::span<const JobOutcome> outcomes,
                                   Time threshold) {
  ExcessiveWaitStats e;
  OnlineStats excess;
  for (const auto& o : outcomes) {
    if (!o.job.in_window || !o.completed) continue;
    const Time x = excessive_wait(o, threshold);
    if (x > 0) excess.add(to_hours(x));
  }
  e.total_h = excess.sum();
  e.count = excess.count();
  e.avg_h = excess.mean();
  e.max_h = excess.max();
  return e;
}

}  // namespace sbs
