#pragma once

#include <span>
#include <vector>

#include "sim/outcome.hpp"

namespace sbs {

/// Post-run timeline analyses: machine utilization and queue depth as step
/// functions reconstructed from the job outcomes. These power the
/// utilization example and give operators the Gantt-level view the
/// aggregate metrics hide.

/// One step of a piecewise-constant integer signal: `value` holds from
/// `time` until the next point.
struct TimelinePoint {
  Time time;
  int value;
};

/// Busy-node count over time (every change point). Includes out-of-window
/// jobs — they occupy the machine all the same.
std::vector<TimelinePoint> utilization_timeline(
    std::span<const JobOutcome> outcomes);

/// Queued-job count over time (submit -> start intervals).
std::vector<TimelinePoint> queue_timeline(std::span<const JobOutcome> outcomes);

/// Time-average of a step signal over [begin, end).
double timeline_average(std::span<const TimelinePoint> timeline, Time begin,
                        Time end);

/// Peak value of a step signal within [begin, end).
int timeline_peak(std::span<const TimelinePoint> timeline, Time begin,
                  Time end);

/// Average utilization (busy / capacity) over [begin, end).
double average_utilization(std::span<const JobOutcome> outcomes, int capacity,
                           Time begin, Time end);

/// Per-day utilization over [begin, end), one entry per whole day.
std::vector<double> daily_utilization(std::span<const JobOutcome> outcomes,
                                      int capacity, Time begin, Time end);

}  // namespace sbs
