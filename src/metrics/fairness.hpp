#pragma once

#include <span>

#include "sim/outcome.hpp"

namespace sbs {

/// Inequality measures over per-job service quality. Figure 5 of the
/// paper shows *which classes* pay under each policy; these indices
/// compress that into scalars an operator can track: a policy that buys
/// its averages by starving a minority scores visibly worse here.

/// Gini coefficient of the per-job values (0 = perfectly equal, ->1 =
/// concentrated on few jobs). Values must be non-negative; an empty or
/// all-zero input yields 0.
double gini(std::span<const double> values);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1 = perfectly fair,
/// 1/n = maximally unfair. Empty or all-zero input yields 1.
double jain_index(std::span<const double> values);

/// Fairness summary over in-window jobs of one run.
struct FairnessSummary {
  double gini_wait = 0.0;          ///< Gini of wait times
  double gini_bsld = 0.0;          ///< Gini of (bounded slowdown - 1)
  double jain_bsld = 0.0;          ///< Jain index of bounded slowdowns
  /// Average bounded slowdown of the worst-served 5% of jobs — the tail
  /// the max-wait metric glimpses and averages hide.
  double tail5_bsld = 0.0;
};

FairnessSummary fairness_summary(std::span<const JobOutcome> outcomes);

}  // namespace sbs
