#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "jobs/trace.hpp"

namespace sbs {

/// Table 3 node ranges: 1, 2, 3-4, 5-8, 9-16, 17-32, 33-64, 65-128.
inline constexpr std::size_t kMixRanges = 8;

/// Index of the Table 3 node range containing `nodes`.
std::size_t mix_range(int nodes);

/// Label of a Table 3 node range ("3-4", ...).
const std::string& mix_range_label(std::size_t idx);

/// Job-mix statistics of a trace, mirroring Table 3 of the paper:
/// per-node-range shares of job count and of processor demand, plus the
/// month totals. Computed over in-window jobs only.
struct TraceMix {
  std::size_t total_jobs = 0;
  double offered_load = 0.0;  ///< sum(N*T) / (capacity * window)
  std::array<double, kMixRanges> job_fraction{};     ///< sums to ~1
  std::array<double, kMixRanges> demand_fraction{};  ///< sums to ~1
};

TraceMix trace_mix(const Trace& trace);

/// Table 4 runtime-distribution statistics: fraction of all in-window jobs
/// in each (coarse node class, runtime band) cell, for the bands T <= 1h
/// and T > 5h, over the node classes 1 / 2 / 3-8 / 9-32 / 33-128.
struct RuntimeMix {
  static constexpr std::size_t kClasses = 5;
  std::array<double, kClasses> short_fraction{};  ///< T <= 1 hour
  std::array<double, kClasses> long_fraction{};   ///< T > 5 hours
  double short_total = 0.0;
  double long_total = 0.0;
};

/// Coarse node class of Table 4: 0:[1], 1:[2], 2:[3,8], 3:[9,32], 4:[33,∞).
std::size_t runtime_mix_class(int nodes);
const std::string& runtime_mix_class_label(std::size_t idx);

RuntimeMix runtime_mix(const Trace& trace);

}  // namespace sbs
