#include "metrics/fairness.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace sbs {

double gini(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  SBS_CHECK_MSG(sorted.front() >= 0.0, "gini requires non-negative values");
  double weighted = 0.0, total = 0.0;
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * sorted[i];
    total += sorted[i];
  }
  if (total <= 0.0) return 0.0;
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

double jain_index(std::span<const double> values) {
  if (values.empty()) return 1.0;
  double sum = 0.0, sumsq = 0.0;
  for (double v : values) {
    sum += v;
    sumsq += v * v;
  }
  if (sumsq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(values.size()) * sumsq);
}

FairnessSummary fairness_summary(std::span<const JobOutcome> outcomes) {
  std::vector<double> waits, bslds, excess_bslds;
  for (const auto& o : outcomes) {
    if (!o.job.in_window) continue;
    waits.push_back(static_cast<double>(o.wait()));
    const double b = bounded_slowdown(o);
    bslds.push_back(b);
    excess_bslds.push_back(b - 1.0);  // zero-wait jobs contribute 0
  }
  FairnessSummary s;
  s.gini_wait = gini(waits);
  s.gini_bsld = gini(excess_bslds);
  s.jain_bsld = jain_index(bslds);
  if (!bslds.empty()) {
    std::sort(bslds.begin(), bslds.end());
    const std::size_t tail =
        std::max<std::size_t>(1, bslds.size() / 20);  // worst 5%
    double sum = 0.0;
    for (std::size_t i = bslds.size() - tail; i < bslds.size(); ++i)
      sum += bslds[i];
    s.tail5_bsld = sum / static_cast<double>(tail);
  }
  return s;
}

}  // namespace sbs
