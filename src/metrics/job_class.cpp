#include "metrics/job_class.hpp"

#include <array>

#include "util/error.hpp"

namespace sbs {

std::size_t node_class(int nodes) {
  SBS_CHECK(nodes >= 1);
  if (nodes == 1) return 0;
  if (nodes <= 8) return 1;
  if (nodes <= 32) return 2;
  if (nodes <= 64) return 3;
  return 4;
}

std::size_t runtime_class(Time runtime) {
  SBS_CHECK(runtime > 0);
  if (runtime <= 10 * kMinute) return 0;
  if (runtime <= kHour) return 1;
  if (runtime <= 4 * kHour) return 2;
  if (runtime <= 8 * kHour) return 3;
  return 4;
}

const std::string& node_class_label(std::size_t idx) {
  static const std::array<std::string, JobClassGrid::kNodeClasses> labels = {
      "N=1", "N=2-8", "N=9-32", "N=33-64", "N=65-128"};
  SBS_CHECK(idx < labels.size());
  return labels[idx];
}

const std::string& runtime_class_label(std::size_t idx) {
  static const std::array<std::string, JobClassGrid::kRuntimeClasses> labels =
      {"T<=10m", "T=10m-1h", "T=1h-4h", "T=4h-8h", "T>8h"};
  SBS_CHECK(idx < labels.size());
  return labels[idx];
}

JobClassGrid class_grid(std::span<const JobOutcome> outcomes) {
  JobClassGrid grid;
  std::array<std::array<double, JobClassGrid::kRuntimeClasses>,
             JobClassGrid::kNodeClasses>
      sum{};
  for (const auto& o : outcomes) {
    if (!o.job.in_window) continue;
    const std::size_t n = node_class(o.job.nodes);
    const std::size_t r = runtime_class(o.job.runtime);
    sum[n][r] += to_hours(o.wait());
    ++grid.count[n][r];
  }
  for (std::size_t n = 0; n < JobClassGrid::kNodeClasses; ++n)
    for (std::size_t r = 0; r < JobClassGrid::kRuntimeClasses; ++r)
      if (grid.count[n][r])
        grid.avg_wait_h[n][r] =
            sum[n][r] / static_cast<double>(grid.count[n][r]);
  return grid;
}

}  // namespace sbs
