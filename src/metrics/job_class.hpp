#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>

#include "sim/outcome.hpp"

namespace sbs {

/// Figure 5 job classes: 5 node ranges x 5 actual-runtime ranges, matching
/// the axis ticks of the paper's surface plots (nodes 1 / 8 / 32 / 64 / 128,
/// runtime 10m / 1h / 4h / 8h / 12h+).
struct JobClassGrid {
  static constexpr std::size_t kNodeClasses = 5;
  static constexpr std::size_t kRuntimeClasses = 5;

  /// Average wait in hours per class; 0 where count is 0.
  std::array<std::array<double, kRuntimeClasses>, kNodeClasses> avg_wait_h{};
  std::array<std::array<std::size_t, kRuntimeClasses>, kNodeClasses> count{};
};

/// Node class index: 0:[1], 1:[2,8], 2:[9,32], 3:[33,64], 4:[65,∞).
std::size_t node_class(int nodes);

/// Runtime class index: 0:(0,10m], 1:(10m,1h], 2:(1h,4h], 3:(4h,8h], 4:(8h,∞).
std::size_t runtime_class(Time runtime);

/// Axis labels for tables.
const std::string& node_class_label(std::size_t idx);
const std::string& runtime_class_label(std::size_t idx);

/// Builds the per-class average-wait grid over in-window jobs.
JobClassGrid class_grid(std::span<const JobOutcome> outcomes);

}  // namespace sbs
