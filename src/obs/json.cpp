#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace sbs::obs {

// ---------------------------------------------------------------- writer

void JsonWriter::separate() {
  if (need_comma_.back()) out_.push_back(',');
  need_comma_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_.push_back('{');
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  need_comma_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_.push_back('[');
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  need_comma_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separate();
  out_.push_back('"');
  json_escape(name, out_);
  out_ += "\":";
  need_comma_.back() = false;  // the value that follows needs no comma
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  separate();
  out_.push_back('"');
  json_escape(s, out_);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  separate();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  separate();
  if (!std::isfinite(d)) {  // JSON has no inf/nan; null keeps lines parseable
    out_ += "null";
    return *this;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  SBS_CHECK(ec == std::errc());
  out_.append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  SBS_CHECK(ec == std::errc());
  out_.append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  SBS_CHECK(ec == std::errc());
  out_.append(buf, end);
  return *this;
}

void JsonWriter::clear() {
  out_.clear();
  need_comma_.assign(1, false);
}

void json_escape(std::string_view s, std::string& out) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

// ---------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    SBS_CHECK_MSG(pos_ == s_.size(), "trailing bytes after JSON value at "
                                         << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    SBS_CHECK_MSG(pos_ < s_.size(), "unexpected end of JSON input");
    return s_[pos_];
  }

  void expect(char c) {
    SBS_CHECK_MSG(pos_ < s_.size() && s_[pos_] == c,
                  "expected '" << c << "' at byte " << pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't': {
        SBS_CHECK_MSG(consume_literal("true"), "bad literal at " << pos_);
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        SBS_CHECK_MSG(consume_literal("false"), "bad literal at " << pos_);
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        return v;
      }
      case 'n': {
        SBS_CHECK_MSG(consume_literal("null"), "bad literal at " << pos_);
        return {};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      SBS_CHECK_MSG(pos_ < s_.size(), "unterminated JSON string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      SBS_CHECK_MSG(pos_ < s_.size(), "unterminated escape in JSON string");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          SBS_CHECK_MSG(pos_ + 4 <= s_.size(), "truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else throw Error("bad hex digit in \\u escape");
          }
          // Telemetry strings are ASCII; encode the code point as UTF-8.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: throw Error("unknown escape in JSON string");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+'))
      ++pos_;
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    const auto [end, ec] =
        std::from_chars(s_.data() + start, s_.data() + pos_, v.number);
    SBS_CHECK_MSG(ec == std::errc() && end == s_.data() + pos_,
                  "malformed JSON number at byte " << start);
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

const std::string& JsonValue::as_string() const {
  SBS_CHECK_MSG(kind == Kind::String, "JSON value is not a string");
  return string;
}

double JsonValue::as_double() const {
  SBS_CHECK_MSG(kind == Kind::Number, "JSON value is not a number");
  return number;
}

std::int64_t JsonValue::as_int() const {
  return static_cast<std::int64_t>(as_double());
}

bool JsonValue::as_bool() const {
  SBS_CHECK_MSG(kind == Kind::Bool, "JSON value is not a bool");
  return boolean;
}

JsonValue parse_json(std::string_view text) { return Parser(text).parse(); }

}  // namespace sbs::obs
