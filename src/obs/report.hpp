#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace sbs::obs {

/// Everything reconstructed from one run's slice of a telemetry JSONL
/// stream — no access to the live SimResult. The test suite asserts that
/// the reconstructed aggregates equal the run's SchedulerStats exactly,
/// which is what makes the event stream trustworthy as evidence.
struct RunReport {
  std::string trace;
  std::string policy;
  int capacity = 0;
  std::uint64_t trace_jobs = 0;
  /// Member-cluster count echoed by federation run records (optional
  /// "clusters" field; 0 for single-cluster runs, whose streams are
  /// bit-identical to pre-federation writers).
  int clusters = 0;

  // Job lifecycle tallies.
  std::uint64_t submits = 0;
  std::uint64_t starts = 0;       ///< start records (restarts count again)
  std::uint64_t finishes = 0;
  std::uint64_t kills = 0;
  std::uint64_t requeues = 0;
  std::uint64_t unstarted = 0;
  std::uint64_t faults_down = 0;
  std::uint64_t faults_up = 0;
  std::uint64_t migrations = 0;   ///< "migrate" records (federation runs)

  /// Per-cluster slice of the lifecycle tallies, keyed by the optional
  /// "cluster" field federation members stamp on their records. Empty for
  /// single-cluster streams.
  struct ClusterAgg {
    std::uint64_t decisions = 0;
    std::uint64_t submits = 0;
    std::uint64_t starts = 0;
    std::uint64_t finishes = 0;
    std::uint64_t kills = 0;
    std::uint64_t unstarted = 0;
    std::uint64_t faults_down = 0;
    std::uint64_t migrations_in = 0;
    std::uint64_t migrations_out = 0;
    std::uint64_t failovers = 0;    ///< health declare-down verdicts here
    std::uint64_t rehomes_in = 0;   ///< jobs re-homed onto this member
    std::uint64_t rehomes_out = 0;  ///< jobs re-homed off this member
  };
  /// Federation runs pre-create one entry per member (0..clusters-1) so a
  /// cluster that contributed no records still renders a zero row.
  std::map<int, ClusterAgg> cluster_agg;

  // Federation fault-tolerance tallies ("chaos"/"health"/"rehome"/
  // "reconcile" records; all zero unless the run injected chaos).
  std::uint64_t chaos_events = 0;    ///< ground-truth outage/partition edges
  std::uint64_t failovers = 0;       ///< health declare-down verdicts
  std::uint64_t recoveries = 0;      ///< health recovery verdicts
  std::uint64_t rehomes = 0;         ///< rehome records (moves + copies)
  std::uint64_t rehome_copies = 0;   ///< speculative copies among them
  std::uint64_t reconciles = 0;      ///< reconcile records of any action
  std::uint64_t dedupes = 0;         ///< actions dedupe/adopt/return
  std::uint64_t duplicate_runs = 0;  ///< action duplicate (both copies ran)

  // SchedulerStats reconstructed by summing per-decision deltas.
  std::uint64_t decisions = 0;
  std::uint64_t nodes_visited = 0;
  std::uint64_t paths_explored = 0;
  std::uint64_t think_time_us = 0;
  std::uint64_t deadline_hits = 0;
  std::uint64_t max_think_time_us = 0;
  std::uint64_t max_queue_depth = 0;
  std::uint64_t started_via_decisions = 0;  ///< sum of started[] lengths

  // Parallel-search accounting (optional fields: absent in streams written
  // before the threads_used/worker_nodes schema extension, reported as 0).
  std::uint64_t max_threads_used = 0;    ///< peak workers over the decisions
  std::uint64_t speculative_nodes = 0;   ///< sum over worker_nodes[]; the
                                         ///  overshoot vs nodes_visited is
                                         ///  work the deterministic merge
                                         ///  discarded

  // Incremental-engine accounting (optional fields: absent in streams
  // written before the search-cache schema extension, reported as 0).
  std::uint64_t cache_hits = 0;           ///< earliest-start memo hits
  std::uint64_t cache_misses = 0;         ///< memo misses (profile scans)
  std::uint64_t cache_invalidations = 0;  ///< whole-memo size-bound resets
  std::uint64_t warm_starts = 0;          ///< decisions seeded by the
                                          ///  previous event's best path
  std::uint64_t pruned_twins = 0;         ///< twin-permutation subtrees
                                          ///  skipped (dominance layer)
  std::uint64_t pruned_bound = 0;         ///< partial paths cut by the
                                          ///  lower bound

  // Distributions over decisions (same buckets as the live registry).
  HistogramSnapshot think_us_hist;
  HistogramSnapshot nodes_hist;
  HistogramSnapshot queue_hist;
  HistogramSnapshot max_wait_hist;

  /// Anytime-improvement profile: at node budget `budget`, how close the
  /// incumbent already was to the decision's final schedule, averaged over
  /// the decisions whose search recorded at least one incumbent by then.
  struct AnytimePoint {
    std::uint64_t budget = 0;
    std::uint64_t with_incumbent = 0;  ///< decisions with a value by then
    std::uint64_t converged = 0;       ///< incumbent already == final
    double excess_gap_h = 0.0;         ///< summed excess-vs-final gap
    double bsld_gap = 0.0;             ///< summed avg-bsld-vs-final gap
  };
  std::vector<AnytimePoint> anytime;
  std::uint64_t improvements_total = 0;
  std::uint64_t decisions_with_search = 0;  ///< discrepancies >= 0

  /// Winning-path discrepancy profile: discrepancy count -> decisions.
  std::map<std::int64_t, std::uint64_t> discrepancy_profile;

  // Provenance echoed by newer writers into the run record (optional
  // fields; absent in older streams).
  bool has_seed = false;
  std::uint64_t seed = 0;
  std::string governor;           ///< resolved governor spec, "" = none
  bool resumed = false;
  std::string checkpoint_parent;  ///< snapshot id this run resumed from

  // Overload-governor accounting ("governor" records + optional gov_level
  // decision fields; all zero when no governor wrapped the policy).
  std::uint64_t gov_degrades = 0;
  std::uint64_t gov_recoveries = 0;
  std::uint64_t gov_probes = 0;
  std::uint64_t gov_probe_failures = 0;
  int gov_final_level = -1;  ///< ladder level after the last decision
  int gov_max_level = -1;    ///< deepest degradation reached
  /// Ladder level -> decisions the governor ran at that level.
  std::map<int, std::uint64_t> gov_level_decisions;

  // Service-mode accounting ("admit"/"reject"/"drain" events from an
  // `sbsched serve` run; all zero for offline simulator runs).
  std::uint64_t admits = 0;
  std::uint64_t rejects_backpressure = 0;
  std::uint64_t rejects_shed = 0;
  std::uint64_t rejects_draining = 0;
  std::uint64_t drain_begins = 0;
  std::uint64_t drain_completes = 0;
  /// The final "service" accounting record, when the run drained cleanly.
  /// read_telemetry() cross-checks its counters against the tallied
  /// admit/reject/finish/decision records and throws on any mismatch, so a
  /// present service record certifies the whole stream reconciles.
  bool has_service_record = false;
  std::uint64_t svc_requests = 0;
  std::uint64_t svc_protocol_errors = 0;
  std::uint64_t svc_timeouts = 0;
  std::uint64_t svc_connections = 0;
  std::uint64_t svc_started = 0;
  std::uint64_t svc_checkpoints = 0;
  std::uint64_t svc_request_p50_us = 0;
  std::uint64_t svc_request_p99_us = 0;
  std::uint64_t svc_request_p999_us = 0;
  std::uint64_t svc_think_p50_us = 0;
  std::uint64_t svc_think_p99_us = 0;
  std::uint64_t svc_think_p999_us = 0;
  int svc_shed_floor = 0;
  std::vector<std::uint64_t> svc_gov_decisions;  ///< rung occupancy
};

/// Result of reading a (possibly rotated, possibly crash-truncated)
/// telemetry stream.
struct TelemetrySummary {
  std::vector<RunReport> runs;
  std::vector<std::string> segments;  ///< files read, in write order
  /// Torn final lines skipped (0 or 1): a crash can cut the stream's last
  /// write mid-line, leaving a final line with no trailing newline. Such a
  /// line that fails to parse is a crash artifact, not corruption — it is
  /// skipped and counted here. Malformed *complete* lines still throw.
  std::uint64_t torn_records = 0;
  /// Records reassembled across a segment boundary: an external rotation
  /// (e.g. logrotate copying mid-write) can cut a record between two
  /// segments; the dangling tail of one segment is stitched to the head of
  /// the next and the combined line must parse.
  std::uint64_t stitched_records = 0;
};

/// Parses a telemetry JSONL stream — `path` plus any rotated segments
/// (`path.1`, `path.2`, ...) — and aggregates per run. Throws sbs::Error on
/// unreadable files, malformed complete lines, unknown record types, or
/// missing schema fields — a telemetry file must be fully trustworthy or
/// rejected. The sole tolerated defect is a torn final line (no trailing
/// newline, the signature of a killed writer), which is skipped and counted
/// in TelemetrySummary::torn_records.
TelemetrySummary read_telemetry(const std::string& path);

/// As read_telemetry(), over an explicit ordered segment list (from a glob
/// or a comma-separated --telemetry value). The files are treated as one
/// logical stream in the given order: records may be stitched across
/// boundaries (stitched_records) and only the very last file may end in a
/// torn line.
TelemetrySummary read_telemetry_files(const std::vector<std::string>& paths);

/// Compatibility wrapper around read_telemetry() returning just the runs.
std::vector<RunReport> summarize_telemetry(const std::string& path);

/// Human-readable report: per-run reconstructed aggregates, per-decision
/// histograms, the anytime-improvement profile, and (for multi-run files)
/// a cross-policy summary table.
void print_report(const std::vector<RunReport>& runs, std::ostream& os);

/// As above, prefixed with stream-level facts (rotated segments read, torn
/// records skipped) when they are non-trivial.
void print_report(const TelemetrySummary& summary, std::ostream& os);

}  // namespace sbs::obs
