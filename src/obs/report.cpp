#include "obs/report.hpp"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <ostream>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_sink.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace sbs::obs {

namespace {

// Node budgets at which the anytime profile samples incumbent quality.
constexpr std::uint64_t kAnytimeBudgets[] = {
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1'000, 2'000, 5'000, 10'000,
    20'000, 50'000, 100'000};

HistogramSnapshot make_hist(std::string name, std::span<const double> bounds) {
  HistogramSnapshot h;
  h.name = std::move(name);
  h.bounds.assign(bounds.begin(), bounds.end());
  h.counts.assign(bounds.size() + 1, 0);
  return h;
}

void hist_observe(HistogramSnapshot& h, double v) {
  std::size_t cell = h.bounds.size();
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    if (v <= h.bounds[i]) {
      cell = i;
      break;
    }
  }
  ++h.counts[cell];
  if (h.count == 0) {
    h.min = h.max = v;
  } else {
    h.min = std::min(h.min, v);
    h.max = std::max(h.max, v);
  }
  ++h.count;
  h.sum += v;
}

RunReport fresh_run() {
  RunReport r;
  r.think_us_hist = make_hist("search.think_time_us", think_us_bounds());
  r.nodes_hist = make_hist("search.nodes_per_decision",
                           nodes_per_decision_bounds());
  r.queue_hist = make_hist("sim.queue_depth_at_decision", queue_depth_bounds());
  r.max_wait_hist = make_hist("sim.max_wait_h_at_decision", wait_h_bounds());
  for (const std::uint64_t b : kAnytimeBudgets)
    r.anytime.push_back({b, 0, 0, 0.0, 0.0});
  return r;
}

// Field accessors that fail loudly with the line number on schema breaks.
const JsonValue& need(const JsonValue& rec, std::string_view key,
                      std::size_t lineno) {
  const JsonValue* v = rec.find(key);
  SBS_CHECK_MSG(v != nullptr,
                "telemetry line " << lineno << " lacks field \"" << key << '"');
  return *v;
}

std::uint64_t need_u64(const JsonValue& rec, std::string_view key,
                       std::size_t lineno) {
  return static_cast<std::uint64_t>(need(rec, key, lineno).as_int());
}

void apply_decision(RunReport& r, const JsonValue& rec, std::size_t lineno) {
  ++r.decisions;
  const std::uint64_t nodes = need_u64(rec, "nodes_visited", lineno);
  const std::uint64_t think = need_u64(rec, "think_us", lineno);
  const std::uint64_t queue = need_u64(rec, "queue_depth", lineno);
  r.nodes_visited += nodes;
  r.paths_explored += need_u64(rec, "paths_explored", lineno);
  r.think_time_us += think;
  r.max_think_time_us = std::max(r.max_think_time_us, think);
  r.max_queue_depth = std::max(r.max_queue_depth, queue);
  if (need(rec, "deadline_hit", lineno).as_bool()) ++r.deadline_hits;
  r.started_via_decisions += need(rec, "started", lineno).array.size();

  hist_observe(r.think_us_hist, static_cast<double>(think));
  hist_observe(r.nodes_hist, static_cast<double>(nodes));
  hist_observe(r.queue_hist, static_cast<double>(queue));
  hist_observe(r.max_wait_hist, need(rec, "max_wait_h", lineno).as_double());

  const std::int64_t disc = need(rec, "discrepancies", lineno).as_int();
  if (disc >= 0) {
    ++r.decisions_with_search;
    ++r.discrepancy_profile[disc];
  }

  // Optional (newer schema): parallel-search accounting. Tolerating their
  // absence keeps streams from before the threads_used extension readable.
  if (const JsonValue* threads = rec.find("threads_used"))
    r.max_threads_used = std::max(
        r.max_threads_used, static_cast<std::uint64_t>(threads->as_int()));
  if (const JsonValue* workers = rec.find("worker_nodes")) {
    SBS_CHECK_MSG(workers->is_array(),
                  "telemetry line " << lineno << ": worker_nodes not an array");
    for (const JsonValue& w : workers->array)
      r.speculative_nodes += static_cast<std::uint64_t>(w.as_int());
  }

  // Optional (newer schema): overload-governor accounting.
  if (const JsonValue* level = rec.find("gov_level")) {
    const int lv = static_cast<int>(level->as_int());
    ++r.gov_level_decisions[lv];
    r.gov_final_level = lv;
    r.gov_max_level = std::max(r.gov_max_level, lv);
  }

  // Optional (newer schema): incremental-engine accounting.
  if (const JsonValue* hits = rec.find("cache_hits"))
    r.cache_hits += static_cast<std::uint64_t>(hits->as_int());
  if (const JsonValue* misses = rec.find("cache_misses"))
    r.cache_misses += static_cast<std::uint64_t>(misses->as_int());
  if (const JsonValue* inv = rec.find("cache_invalidations"))
    r.cache_invalidations += static_cast<std::uint64_t>(inv->as_int());
  if (const JsonValue* warm = rec.find("warm_start_used"))
    if (warm->as_bool()) ++r.warm_starts;

  // Optional (newer schema): dominance-pruning accounting.
  if (const JsonValue* twins = rec.find("pruned_twins"))
    r.pruned_twins += static_cast<std::uint64_t>(twins->as_int());
  if (const JsonValue* bound = rec.find("pruned_bound"))
    r.pruned_bound += static_cast<std::uint64_t>(bound->as_int());

  const JsonValue& improvements = need(rec, "improvements", lineno);
  SBS_CHECK_MSG(improvements.is_array(),
                "telemetry line " << lineno << ": improvements not an array");
  r.improvements_total += improvements.array.size();
  if (improvements.array.empty()) return;
  const JsonValue& fin = improvements.array.back();
  const double final_excess = need(fin, "excess_h", lineno).as_double();
  const double final_bsld = need(fin, "avg_bsld", lineno).as_double();
  for (RunReport::AnytimePoint& pt : r.anytime) {
    // Last incumbent found within the first `budget` visited nodes.
    const JsonValue* best = nullptr;
    for (const JsonValue& imp : improvements.array) {
      if (need_u64(imp, "nodes", lineno) > pt.budget) break;
      best = &imp;
    }
    if (best == nullptr) continue;
    ++pt.with_incumbent;
    const double eg = need(*best, "excess_h", lineno).as_double() - final_excess;
    const double bg = need(*best, "avg_bsld", lineno).as_double() - final_bsld;
    pt.excess_gap_h += eg;
    pt.bsld_gap += bg;
    if (eg <= 1e-9 && bg <= 1e-9) ++pt.converged;
  }
}

void apply_record(RunReport& r, const JsonValue& rec, const std::string& type,
                  std::size_t lineno) {
  // Federation members stamp their records with a "cluster" field; slice
  // the lifecycle tallies per member so the report can show where the
  // meta-scheduler sent the work. Single-cluster streams never carry it.
  if (const JsonValue* cluster = rec.find("cluster")) {
    RunReport::ClusterAgg& agg =
        r.cluster_agg[static_cast<int>(cluster->as_int())];
    if (type == "decision") ++agg.decisions;
    else if (type == "submit") ++agg.submits;
    else if (type == "start") ++agg.starts;
    else if (type == "finish") ++agg.finishes;
    else if (type == "kill") ++agg.kills;
    else if (type == "unstarted") ++agg.unstarted;
    else if (type == "fault" &&
             need(rec, "kind", lineno).as_string() == "node_down")
      ++agg.faults_down;
  }
  if (type == "decision") {
    apply_decision(r, rec, lineno);
  } else if (type == "governor") {
    const std::string& kind = need(rec, "kind", lineno).as_string();
    if (kind == "degrade") ++r.gov_degrades;
    else if (kind == "recover") ++r.gov_recoveries;
    else if (kind == "probe") ++r.gov_probes;
    else if (kind == "probe_fail") ++r.gov_probe_failures;
    else throw Error("telemetry line " + std::to_string(lineno) +
                     ": unknown governor kind " + kind);
    const int to = static_cast<int>(need(rec, "to", lineno).as_int());
    r.gov_final_level = to;
    r.gov_max_level = std::max(r.gov_max_level, to);
  } else if (type == "submit") {
    ++r.submits;
    need(rec, "job", lineno);
  } else if (type == "start") {
    ++r.starts;
    need(rec, "job", lineno);
  } else if (type == "finish") {
    ++r.finishes;
    need(rec, "job", lineno);
  } else if (type == "kill") {
    ++r.kills;
    if (need(rec, "requeued", lineno).as_bool()) ++r.requeues;
  } else if (type == "unstarted") {
    ++r.unstarted;
    need(rec, "job", lineno);
  } else if (type == "fault") {
    const std::string& kind = need(rec, "kind", lineno).as_string();
    if (kind == "node_down") ++r.faults_down;
    else if (kind == "node_up") ++r.faults_up;
    else throw Error("telemetry line " + std::to_string(lineno) +
                     ": unknown fault kind " + kind);
  } else if (type == "migrate") {
    ++r.migrations;
    need(rec, "job", lineno);
    ++r.cluster_agg[static_cast<int>(need(rec, "from", lineno).as_int())]
          .migrations_out;
    ++r.cluster_agg[static_cast<int>(need(rec, "to", lineno).as_int())]
          .migrations_in;
  } else if (type == "chaos") {
    ++r.chaos_events;
    need(rec, "event", lineno);
    need(rec, "member", lineno);
  } else if (type == "health") {
    const int member = static_cast<int>(need(rec, "member", lineno).as_int());
    const std::string& state = need(rec, "state", lineno).as_string();
    if (state == "down") {
      ++r.failovers;
      ++r.cluster_agg[member].failovers;
    } else if (state == "up") {
      ++r.recoveries;
    } else {
      throw Error("telemetry line " + std::to_string(lineno) +
                  ": unknown health state " + state);
    }
  } else if (type == "rehome") {
    ++r.rehomes;
    need(rec, "job", lineno);
    const std::string& mode = need(rec, "mode", lineno).as_string();
    if (mode == "copy") ++r.rehome_copies;
    else if (mode != "move")
      throw Error("telemetry line " + std::to_string(lineno) +
                  ": unknown rehome mode " + mode);
    ++r.cluster_agg[static_cast<int>(need(rec, "from", lineno).as_int())]
          .rehomes_out;
    ++r.cluster_agg[static_cast<int>(need(rec, "to", lineno).as_int())]
          .rehomes_in;
  } else if (type == "reconcile") {
    ++r.reconciles;
    need(rec, "job", lineno);
    need(rec, "member", lineno);
    const std::string& action = need(rec, "action", lineno).as_string();
    if (action == "dedupe" || action == "adopt" || action == "return")
      ++r.dedupes;
    else if (action == "duplicate")
      ++r.duplicate_runs;
    else if (action != "deliver" && action != "orphan" && action != "race" &&
             action != "resolve")
      throw Error("telemetry line " + std::to_string(lineno) +
                  ": unknown reconcile action " + action);
  } else if (type == "admit") {
    ++r.admits;
    need(rec, "job", lineno);
  } else if (type == "reject") {
    const std::string& reason = need(rec, "reason", lineno).as_string();
    if (reason == "backpressure") ++r.rejects_backpressure;
    else if (reason == "shed") ++r.rejects_shed;
    else if (reason == "draining") ++r.rejects_draining;
    else throw Error("telemetry line " + std::to_string(lineno) +
                     ": unknown reject reason " + reason);
  } else if (type == "drain") {
    const std::string& phase = need(rec, "phase", lineno).as_string();
    if (phase == "begin") ++r.drain_begins;
    else if (phase == "complete") ++r.drain_completes;
    else throw Error("telemetry line " + std::to_string(lineno) +
                     ": unknown drain phase " + phase);
  } else if (type == "service") {
    r.has_service_record = true;
    r.svc_requests = need_u64(rec, "requests", lineno);
    r.svc_protocol_errors = need_u64(rec, "protocol_errors", lineno);
    r.svc_timeouts = need_u64(rec, "timeouts", lineno);
    r.svc_connections = need_u64(rec, "connections", lineno);
    r.svc_started = need_u64(rec, "started", lineno);
    r.svc_checkpoints = need_u64(rec, "checkpoints", lineno);
    r.svc_request_p50_us = need_u64(rec, "request_p50_us", lineno);
    r.svc_request_p99_us = need_u64(rec, "request_p99_us", lineno);
    r.svc_request_p999_us = need_u64(rec, "request_p999_us", lineno);
    r.svc_think_p50_us = need_u64(rec, "think_p50_us", lineno);
    r.svc_think_p99_us = need_u64(rec, "think_p99_us", lineno);
    r.svc_think_p999_us = need_u64(rec, "think_p999_us", lineno);
    r.svc_shed_floor = static_cast<int>(need(rec, "shed_floor", lineno).as_int());
    const JsonValue& gov = need(rec, "gov_decisions", lineno);
    SBS_CHECK_MSG(gov.is_array(),
                  "telemetry line " << lineno << ": gov_decisions not an array");
    r.svc_gov_decisions.clear();
    for (const JsonValue& n : gov.array)
      r.svc_gov_decisions.push_back(static_cast<std::uint64_t>(n.as_int()));
    // The final record is the server's own ledger; the event stream must
    // agree with it exactly or the stream is not trustworthy evidence.
    const auto check = [&](std::string_view what, std::uint64_t record,
                           std::uint64_t tallied) {
      SBS_CHECK_MSG(record == tallied,
                    "telemetry line " << lineno << ": service record claims "
                        << record << " " << what << " but the stream tallies "
                        << tallied);
    };
    check("admitted", need_u64(rec, "admitted", lineno), r.admits);
    check("backpressure rejections",
          need_u64(rec, "rejected_backpressure", lineno),
          r.rejects_backpressure);
    check("shed rejections", need_u64(rec, "rejected_shed", lineno),
          r.rejects_shed);
    check("drain rejections", need_u64(rec, "rejected_drain", lineno),
          r.rejects_draining);
    check("completions", need_u64(rec, "completed", lineno), r.finishes);
    check("starts", r.svc_started, r.starts);
    check("decisions", need_u64(rec, "decisions", lineno), r.decisions);
    check("submissions (admit vs submit records)", r.admits, r.submits);
  } else {
    throw Error("telemetry line " + std::to_string(lineno) +
                ": unknown record type \"" + type + '"');
  }
}

}  // namespace

TelemetrySummary read_telemetry(const std::string& path) {
  return read_telemetry_files(JsonlSink::segment_paths(path));
}

TelemetrySummary read_telemetry_files(const std::vector<std::string>& paths) {
  TelemetrySummary summary;
  summary.segments = paths;
  SBS_CHECK_MSG(!summary.segments.empty(), "no telemetry files to read");

  std::size_t lineno = 0;
  // A segment ending without a newline whose tail does not parse on its
  // own: an external rotation cut a record at the boundary. The tail is
  // prepended to the next segment and the combined line must parse.
  std::string carry;
  for (std::size_t seg = 0; seg < summary.segments.size(); ++seg) {
    const std::string& seg_path = summary.segments[seg];
    const bool last_segment = seg + 1 == summary.segments.size();
    std::ifstream in(seg_path, std::ios::binary);
    SBS_CHECK_MSG(in.is_open(), "cannot open telemetry file " << seg_path);
    std::string text = carry;
    const bool stitching = !carry.empty();
    carry.clear();
    text.append((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());

    std::size_t pos = 0;
    bool first_line = true;
    while (pos < text.size()) {
      const std::size_t nl = text.find('\n', pos);
      const bool terminated = nl != std::string::npos;
      const std::string_view line(
          text.data() + pos, (terminated ? nl : text.size()) - pos);
      pos = terminated ? nl + 1 : text.size();
      ++lineno;

      if (!terminated && !last_segment) {
        // Dangling tail mid-stream. A tail that parses whole merely lost
        // its newline to the rotation; anything else must complete in the
        // next segment's head.
        try {
          const JsonValue probe = parse_json(line);
          if (!probe.is_object()) throw Error("not an object");
        } catch (const Error&) {
          carry.assign(line);
          --lineno;
          break;
        }
      }
      if (first_line && stitching) ++summary.stitched_records;
      first_line = false;

      // A final line with no trailing newline is the signature of a killed
      // writer: the last buffered write was cut mid-line. If it does not
      // parse as a complete record, skip and count it instead of rejecting
      // the whole stream. (A truncation can only parse if the cut landed
      // exactly after the closing brace, i.e. the record is whole.)
      const bool torn_candidate = last_segment && !terminated;
      SBS_CHECK_MSG(!line.empty(), "telemetry line " << lineno << " is empty");
      JsonValue rec;
      try {
        rec = parse_json(line);
        SBS_CHECK_MSG(rec.is_object(),
                      "telemetry line " << lineno << " is not a JSON object");
      } catch (const Error& e) {
        if (torn_candidate) {
          ++summary.torn_records;
          break;
        }
        throw Error("telemetry line " + std::to_string(lineno) + " (" +
                    seg_path + "): " + e.what());
      }
      const std::string& type = need(rec, "type", lineno).as_string();
      if (type == "run") {
        RunReport r = fresh_run();
        r.trace = need(rec, "trace", lineno).as_string();
        r.policy = need(rec, "policy", lineno).as_string();
        r.capacity = static_cast<int>(need(rec, "capacity", lineno).as_int());
        r.trace_jobs = need_u64(rec, "jobs", lineno);
        if (const JsonValue* seed = rec.find("seed")) {
          r.has_seed = true;
          r.seed = static_cast<std::uint64_t>(seed->as_int());
        }
        if (const JsonValue* gov = rec.find("governor"))
          r.governor = gov->as_string();
        if (const JsonValue* resumed = rec.find("resumed"))
          r.resumed = resumed->as_bool();
        if (const JsonValue* parent = rec.find("checkpoint_parent"))
          r.checkpoint_parent = parent->as_string();
        if (const JsonValue* clusters = rec.find("clusters")) {
          r.clusters = static_cast<int>(clusters->as_int());
          // One slice per member up front: a cluster that contributes no
          // records (e.g. blacked out for the whole run) must still render
          // a zero row in the federation table, not vanish from it.
          for (int c = 0; c < r.clusters; ++c) r.cluster_agg[c];
        }
        summary.runs.push_back(std::move(r));
        continue;
      }
      SBS_CHECK_MSG(!summary.runs.empty(),
                    "telemetry line " << lineno
                                      << " appears before any run record");
      apply_record(summary.runs.back(), rec, type, lineno);
    }
  }
  SBS_CHECK_MSG(carry.empty(), "telemetry stream ends inside a record "
                "carried past " << summary.segments.back());
  SBS_CHECK_MSG(lineno > 0, "telemetry file " << summary.segments.front()
                                              << " is empty");
  return summary;
}

std::vector<RunReport> summarize_telemetry(const std::string& path) {
  return read_telemetry(path).runs;
}

void print_report(const std::vector<RunReport>& runs, std::ostream& os) {
  Table top({"trace", "policy", "decisions", "jobs started", "avg think (us)",
             "max think (us)", "max queue", "deadline hits"});
  for (const RunReport& r : runs) {
    const double avg_think =
        r.decisions ? static_cast<double>(r.think_time_us) /
                          static_cast<double>(r.decisions)
                    : 0.0;
    top.row()
        .add(r.trace)
        .add(r.policy)
        .add(static_cast<long long>(r.decisions))
        .add(static_cast<long long>(r.starts))
        .add(avg_think, 1)
        .add(static_cast<long long>(r.max_think_time_us))
        .add(static_cast<long long>(r.max_queue_depth))
        .add(static_cast<long long>(r.deadline_hits));
  }
  top.print(os);

  for (const RunReport& r : runs) {
    os << "\n== " << r.trace << " / " << r.policy << " (capacity "
       << r.capacity << ", " << r.trace_jobs << " jobs) ==\n";

    if (r.has_seed || !r.governor.empty() || r.resumed) {
      os << "\nProvenance:\n";
      Table prov({"field", "value"});
      if (r.has_seed) prov.row().add("seed").add(std::to_string(r.seed));
      if (!r.governor.empty()) prov.row().add("governor").add(r.governor);
      if (r.resumed) {
        prov.row().add("resumed").add("yes");
        prov.row().add("checkpoint parent").add(r.checkpoint_parent);
      }
      prov.print(os);
    }

    os << "\nAggregates reconstructed from the event stream:\n";
    Table agg({"measure", "value"});
    agg.row().add("decisions").add(static_cast<long long>(r.decisions));
    agg.row()
        .add("jobs started")
        .add(static_cast<long long>(r.started_via_decisions));
    agg.row().add("submits").add(static_cast<long long>(r.submits));
    agg.row().add("finishes").add(static_cast<long long>(r.finishes));
    if (r.kills || r.unstarted || r.faults_down) {
      agg.row().add("kills").add(static_cast<long long>(r.kills));
      agg.row().add("requeues").add(static_cast<long long>(r.requeues));
      agg.row().add("never started").add(static_cast<long long>(r.unstarted));
      agg.row()
          .add("node faults (down/up)")
          .add(std::to_string(r.faults_down) + "/" +
               std::to_string(r.faults_up));
    }
    agg.row()
        .add("search nodes visited")
        .add(static_cast<long long>(r.nodes_visited));
    agg.row()
        .add("paths explored")
        .add(static_cast<long long>(r.paths_explored));
    agg.row()
        .add("think time total (ms)")
        .add(static_cast<double>(r.think_time_us) / 1000.0, 1);
    agg.row()
        .add("max think time (us)")
        .add(static_cast<long long>(r.max_think_time_us));
    agg.row()
        .add("max queue depth")
        .add(static_cast<long long>(r.max_queue_depth));
    agg.row()
        .add("deadline hits")
        .add(static_cast<long long>(r.deadline_hits));
    if (r.max_threads_used > 0) {
      agg.row()
          .add("search threads (max)")
          .add(static_cast<long long>(r.max_threads_used));
      agg.row()
          .add("speculative worker nodes")
          .add(static_cast<long long>(r.speculative_nodes));
    }
    if (r.cache_hits || r.cache_misses) {
      const double total =
          static_cast<double>(r.cache_hits + r.cache_misses);
      agg.row()
          .add("cache hits / misses")
          .add(std::to_string(r.cache_hits) + "/" +
               std::to_string(r.cache_misses) + " (" +
               format_double(100.0 * static_cast<double>(r.cache_hits) / total,
                             1) +
               "% hit)");
      agg.row()
          .add("cache invalidations")
          .add(static_cast<long long>(r.cache_invalidations));
    }
    if (r.warm_starts > 0)
      agg.row()
          .add("warm-started decisions")
          .add(static_cast<long long>(r.warm_starts));
    if (r.pruned_twins || r.pruned_bound) {
      agg.row()
          .add("pruned twin subtrees")
          .add(static_cast<long long>(r.pruned_twins));
      agg.row()
          .add("pruned by bound")
          .add(static_cast<long long>(r.pruned_bound));
    }
    agg.print(os);

    // Federation section: how the meta-scheduler spread the work across
    // member clusters and how much cross-cluster migration happened.
    if (r.clusters > 0 || r.migrations > 0 || !r.cluster_agg.empty()) {
      os << "\nFederation (" << r.clusters << " member clusters, "
         << r.migrations << " migrations):\n";
      Table fed({"cluster", "decisions", "submits", "starts", "finishes",
                 "kills", "unstarted", "faults", "migr in/out"});
      for (const auto& [id, a] : r.cluster_agg)
        fed.row()
            .add(id)
            .add(static_cast<long long>(a.decisions))
            .add(static_cast<long long>(a.submits))
            .add(static_cast<long long>(a.starts))
            .add(static_cast<long long>(a.finishes))
            .add(static_cast<long long>(a.kills))
            .add(static_cast<long long>(a.unstarted))
            .add(static_cast<long long>(a.faults_down))
            .add(std::to_string(a.migrations_in) + "/" +
                 std::to_string(a.migrations_out));
      fed.print(os);
    }

    // Fault-tolerance section (chaos runs only): ground-truth outage
    // edges, failover verdicts, and the exactly-once ledger's actions.
    if (r.chaos_events || r.failovers || r.rehomes || r.reconciles) {
      os << "\nFault tolerance (chaos run):\n";
      Table ft({"measure", "value"});
      ft.row()
          .add("chaos edges")
          .add(static_cast<long long>(r.chaos_events));
      ft.row()
          .add("failovers (recoveries)")
          .add(std::to_string(r.failovers) + " (" +
               std::to_string(r.recoveries) + ")");
      ft.row()
          .add("jobs re-homed (spec copies)")
          .add(std::to_string(r.rehomes) + " (" +
               std::to_string(r.rehome_copies) + ")");
      ft.row()
          .add("reconcile actions")
          .add(static_cast<long long>(r.reconciles));
      ft.row()
          .add("duplicates reconciled")
          .add(static_cast<long long>(r.dedupes));
      ft.row()
          .add("duplicate executions")
          .add(static_cast<long long>(r.duplicate_runs));
      ft.print(os);
      if (!r.cluster_agg.empty()) {
        Table per({"cluster", "failovers", "rehomes in/out"});
        for (const auto& [id, a] : r.cluster_agg)
          per.row()
              .add(id)
              .add(static_cast<long long>(a.failovers))
              .add(std::to_string(a.rehomes_in) + "/" +
                   std::to_string(a.rehomes_out));
        per.print(os);
      }
    }

    // Circuit-breaker state over the run: where the ladder ended, how deep
    // it went, and how the decisions were spread across the levels.
    if (r.gov_final_level >= 0) {
      os << "\nOverload governor (degradation ladder 0=full search .. "
            "3=backfill fallback):\n";
      Table gov({"measure", "value"});
      gov.row().add("final level").add(r.gov_final_level);
      gov.row().add("deepest level").add(r.gov_max_level);
      gov.row().add("degrades").add(static_cast<long long>(r.gov_degrades));
      gov.row()
          .add("recoveries")
          .add(static_cast<long long>(r.gov_recoveries));
      gov.row()
          .add("probes (failed)")
          .add(std::to_string(r.gov_probes) + " (" +
               std::to_string(r.gov_probe_failures) + ")");
      gov.print(os);
      if (!r.gov_level_decisions.empty()) {
        Table levels({"level", "decisions", "share"});
        for (const auto& [level, n] : r.gov_level_decisions)
          levels.row()
              .add(level)
              .add(static_cast<long long>(n))
              .add(format_double(100.0 * static_cast<double>(n) /
                                     static_cast<double>(r.decisions),
                                 1) +
                   "%");
        levels.print(os);
      }
    }

    // Service-mode section: admission ledger + latency quantiles of a
    // `sbsched serve` run. The reader already verified the final service
    // record against the tallied events, so these numbers are reconciled.
    if (r.admits || r.rejects_backpressure || r.rejects_shed ||
        r.rejects_draining || r.has_service_record) {
      os << "\nService admission (reconciled against the final service "
            "record):\n";
      Table svc({"measure", "value"});
      svc.row().add("admitted").add(static_cast<long long>(r.admits));
      svc.row()
          .add("rejected: backpressure")
          .add(static_cast<long long>(r.rejects_backpressure));
      svc.row()
          .add("rejected: shed")
          .add(static_cast<long long>(r.rejects_shed));
      svc.row()
          .add("rejected: draining")
          .add(static_cast<long long>(r.rejects_draining));
      svc.row()
          .add("drain begin/complete")
          .add(std::to_string(r.drain_begins) + "/" +
               std::to_string(r.drain_completes));
      if (r.has_service_record) {
        svc.row()
            .add("requests (protocol errors)")
            .add(std::to_string(r.svc_requests) + " (" +
                 std::to_string(r.svc_protocol_errors) + ")");
        svc.row()
            .add("request timeouts")
            .add(static_cast<long long>(r.svc_timeouts));
        svc.row()
            .add("connections")
            .add(static_cast<long long>(r.svc_connections));
        svc.row()
            .add("checkpoints")
            .add(static_cast<long long>(r.svc_checkpoints));
        svc.row()
            .add("request p50/p99/p999 (us)")
            .add(std::to_string(r.svc_request_p50_us) + "/" +
                 std::to_string(r.svc_request_p99_us) + "/" +
                 std::to_string(r.svc_request_p999_us));
        svc.row()
            .add("decision p50/p99/p999 (us)")
            .add(std::to_string(r.svc_think_p50_us) + "/" +
                 std::to_string(r.svc_think_p99_us) + "/" +
                 std::to_string(r.svc_think_p999_us));
        svc.row().add("final shed floor").add(r.svc_shed_floor);
        std::string occupancy;
        for (std::size_t i = 0; i < r.svc_gov_decisions.size(); ++i) {
          if (i > 0) occupancy += "/";
          occupancy += std::to_string(r.svc_gov_decisions[i]);
        }
        svc.row().add("decisions per governor rung").add(occupancy);
      } else {
        svc.row().add("final service record").add("MISSING (unclean exit)");
      }
      svc.print(os);
    }

    MetricsSnapshot hists;
    hists.histograms = {r.think_us_hist, r.nodes_hist, r.queue_hist,
                        r.max_wait_hist};
    hists.print(os);

    if (!r.discrepancy_profile.empty()) {
      os << "\nWinning-path discrepancies (" << r.decisions_with_search
         << " search decisions):\n";
      Table disc({"discrepancies", "decisions", "share"});
      for (const auto& [d, n] : r.discrepancy_profile)
        disc.row()
            .add(static_cast<long long>(d))
            .add(static_cast<long long>(n))
            .add(format_double(100.0 * static_cast<double>(n) /
                                   static_cast<double>(r.decisions_with_search),
                               1) +
                 "%");
      disc.print(os);
    }

    if (r.improvements_total > 0) {
      os << "\nAnytime profile (incumbent quality vs node budget; gaps are "
            "means over decisions with an incumbent by that budget):\n";
      Table any({"node budget", "decisions", "converged", "excess gap (h)",
                 "bsld gap"});
      for (const RunReport::AnytimePoint& pt : r.anytime) {
        if (pt.with_incumbent == 0) continue;
        const double n = static_cast<double>(pt.with_incumbent);
        any.row()
            .add(static_cast<long long>(pt.budget))
            .add(static_cast<long long>(pt.with_incumbent))
            .add(format_double(
                     100.0 * static_cast<double>(pt.converged) / n, 1) +
                 "%")
            .add(pt.excess_gap_h / n, 4)
            .add(pt.bsld_gap / n, 4);
      }
      any.print(os);
    }
  }
}

void print_report(const TelemetrySummary& summary, std::ostream& os) {
  if (summary.segments.size() > 1)
    os << "Stream spans " << summary.segments.size()
       << " rotated segments (" << summary.segments.front() << " .. "
       << summary.segments.back() << ")\n";
  if (summary.stitched_records > 0)
    os << "Stitched " << summary.stitched_records
       << " record(s) cut across segment boundaries by an external "
          "rotation\n";
  if (summary.torn_records > 0)
    os << "WARNING: skipped " << summary.torn_records
       << " torn record(s) at the end of the stream (crash artifact; all "
          "complete records were kept)\n";
  print_report(summary.runs, os);
}

}  // namespace sbs::obs
