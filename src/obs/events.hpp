#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "util/time.hpp"

namespace sbs::obs {

/// One incumbent improvement inside a single decision's search, in the flat
/// numeric form telemetry records (the core library's Improvement carries
/// the same data with its own ObjectiveValue type; schedulers convert).
struct ImprovementPoint {
  std::uint64_t nodes = 0;       ///< tree nodes visited when found
  double excess_h = 0.0;         ///< objective level 1 of the incumbent
  double avg_bsld = 0.0;         ///< objective level 2 of the incumbent
  std::uint64_t discrepancies = 0;  ///< discrepancies of the improving path
};

/// One overload-governor level change, recorded inside the decision that
/// caused it. `kind` is "degrade", "probe", "probe_fail", or "recover";
/// levels are the resilience ladder (0 = full search .. 3 = backfill
/// fallback).
struct GovernorTransition {
  std::string_view kind;
  int from = 0;
  int to = 0;
};

/// One scheduling decision, as recorded by the simulator. Search counters
/// are per-decision deltas of the policy's cumulative SchedulerStats, so
/// summing any field over a run's decision records reproduces the run
/// aggregate exactly. Non-search policies report zero nodes/paths and -1
/// discrepancies.
struct DecisionRecord {
  Time now = 0;
  std::string_view policy;
  int queue_depth = 0;   ///< waiting jobs when the policy was invoked
  int free_nodes = 0;
  int capacity = 0;      ///< live machine size (shrinks under faults)
  double max_wait_h = 0.0;  ///< longest current wait in the queue, hours
  std::uint64_t nodes_visited = 0;
  std::uint64_t paths_explored = 0;
  std::uint64_t iterations = 0;
  std::int64_t discrepancies = -1;  ///< winning path; -1 = not a search
  bool deadline_hit = false;
  std::uint64_t think_us = 0;
  std::uint64_t threads_used = 0;  ///< parallel-search workers (0 = sequential)
  /// Earliest-start memo deltas for this decision (zero for non-search
  /// policies and for `--search-cache off`); see SchedulerStats.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_invalidations = 0;
  bool warm_start_used = false;  ///< search seeded by the previous event's
                                 ///  best path (SearchConfig::warm_order)
  /// Dominance-pruning deltas for this decision (zero for non-search
  /// policies and for `--search-prune off`); see SchedulerStats.
  std::uint64_t pruned_twins = 0;
  std::uint64_t pruned_bound = 0;
  std::span<const int> started;  ///< job ids dispatched at `now`
  std::span<const ImprovementPoint> improvements;  ///< anytime profile
  /// Speculative nodes explored per parallel worker (empty = sequential).
  /// The sum can exceed nodes_visited: subtree work past the deterministic
  /// merge cut is discarded but still costs wall clock.
  std::span<const std::uint64_t> worker_nodes;
  /// Degradation-ladder level the governor ran this decision at, -1 when no
  /// governor wraps the policy (the field is then omitted from JSONL).
  int governor_level = -1;
  bool governor_probe = false;  ///< this decision was a half-open probe
  /// Level changes the governor made while handling this decision (each is
  /// also emitted as its own "governor" record).
  std::span<const GovernorTransition> governor_transitions;
};

/// Run boundary record: everything after it (until the next RunRecord)
/// belongs to this trace/policy pair. Compare-style runs append several
/// runs into one stream.
struct RunRecord {
  std::string_view trace;
  std::string_view policy;
  int capacity = 0;
  std::uint64_t jobs = 0;
  /// Member-cluster count of a federation run (0 = plain single-machine
  /// run; the field is then omitted from JSONL). A federation emits one
  /// run record; its members tag their events with "cluster" instead.
  int clusters = 0;
};

/// Final accounting record of a `sbsched serve` run, emitted once when the
/// drain completes. Every counter is the server-side truth the load
/// generator's client-side tallies reconcile against: admitted must equal
/// the client's accepted submissions, each rejected_* its rejection class,
/// completed the jobs the drain finished. Latency quantiles are
/// nearest-rank over the most recent samples (bounded ring buffers):
/// request_* covers request handling wall time, think_* the scheduler's
/// per-decision wall time.
struct ServiceRecord {
  Time t = 0;  ///< virtual time at drain completion
  std::uint64_t requests = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t connections = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_backpressure = 0;
  std::uint64_t rejected_shed = 0;
  std::uint64_t rejected_drain = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t decisions = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t request_p50_us = 0;
  std::uint64_t request_p99_us = 0;
  std::uint64_t request_p999_us = 0;
  std::uint64_t think_p50_us = 0;
  std::uint64_t think_p99_us = 0;
  std::uint64_t think_p999_us = 0;
  /// Decisions executed at each governor rung (index = ladder level; all
  /// at [0] when no governor wraps the policy).
  std::span<const std::uint64_t> gov_decisions;
  int shed_floor = 0;  ///< admission shed floor at drain time
};

/// Provenance echoed into the run record and the metrics JSON so a run is
/// reproducible from its artifacts alone: the resolved RNG seed, the
/// governor spec (empty = no governor), and checkpoint lineage (the id of
/// the snapshot this run resumed from, empty for a fresh run).
struct RunContext {
  bool has_seed = false;
  std::uint64_t seed = 0;
  std::string governor;          ///< resolved --governor/--governor-thresholds
  std::string checkpoint_parent; ///< snapshot id resumed from, "" = fresh
  bool resumed = false;
};

}  // namespace sbs::obs
