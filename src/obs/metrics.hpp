#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sbs::obs {

/// Monotone event counter. Increments are single relaxed atomic adds so
/// hot-path instrumentation costs a handful of nanoseconds.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge that also tracks the maximum ever set — the cheap way
/// to get "peak queue depth" style facts without a histogram.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(std::int64_t v);
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
};

/// Immutable copy of a histogram's state; see Histogram::snapshot().
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;          ///< ascending inclusive upper bounds
  std::vector<std::uint64_t> counts;   ///< bounds.size() cells + 1 overflow
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< meaningful only when count > 0
  double max = 0.0;

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// Fixed-bucket histogram: observe() finds the first bucket whose upper
/// bound is >= the value (linear scan — bucket lists are short) and bumps
/// one relaxed atomic cell. sum/min/max use CAS loops, still lock-free.
class Histogram {
 public:
  Histogram(std::string name, std::span<const double> bounds);

  void observe(double v);
  HistogramSnapshot snapshot() const;
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;  ///< + overflow cell
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Value-copy of a whole registry at one instant. Later registry updates
/// never show through a snapshot (the test suite asserts this isolation).
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
    std::int64_t max = 0;
    bool ever_set = false;
  };

  struct LabelValue {
    std::string name;
    std::string value;
  };

  std::vector<LabelValue> labels;
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Fixed-width tables: counters/gauges, then one bucket table per
  /// histogram. Empty (never-touched) instruments are skipped.
  void print(std::ostream& os) const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
};

/// Named-instrument registry. Creation (first call per name) takes a mutex;
/// the returned references are stable for the registry's lifetime, so hot
/// paths resolve each instrument once and then increment lock-free.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` (ascending) is consulted only on first creation.
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  /// Free-form provenance string attached to snapshots (seed, governor
  /// spec, checkpoint lineage, ...). Re-setting a name overwrites it.
  void set_label(std::string_view name, std::string_view value);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<MetricsSnapshot::LabelValue> labels_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace sbs::obs
