#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sbs::obs {

/// Append-only JSON emitter producing one compact value (no whitespace).
/// Commas are inserted automatically; the caller is responsible for
/// balancing begin/end calls. Built for the telemetry hot path: everything
/// appends into one reused std::string, no tree is materialized.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits `"name":` — must be followed by a value or begin_*().
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double d);  ///< shortest round-trip decimal form
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  /// Shorthand for key(name).value(v).
  template <typename T>
  JsonWriter& field(std::string_view name, T v) {
    return key(name).value(v);
  }

  const std::string& str() const { return out_; }
  void clear();

 private:
  void separate();

  std::string out_;
  std::vector<char> need_comma_{false};  ///< one flag per nesting level
};

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
void json_escape(std::string_view s, std::string& out);

/// Parsed JSON value (recursive). Object member order is preserved.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Typed accessors; throw sbs::Error on kind mismatch.
  const std::string& as_string() const;
  double as_double() const;
  std::int64_t as_int() const;
  bool as_bool() const;
};

/// Parses exactly one JSON value covering all of `text` (surrounding
/// whitespace allowed). Throws sbs::Error on any syntax error, including
/// trailing garbage — telemetry consumers must reject malformed lines
/// loudly, not skip them.
JsonValue parse_json(std::string_view text);

}  // namespace sbs::obs
