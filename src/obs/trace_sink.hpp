#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sbs::obs {

/// Destination for structured telemetry records. Implementations receive
/// one complete JSON object per call (no trailing newline) and decide how
/// to persist it.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void write(std::string_view json_line) = 0;
  virtual void flush() {}
};

/// Durability and rotation knobs for JsonlSink. The defaults reproduce the
/// original buffered behavior: one file, ~64 KiB write chunks, no fsync
/// until flush()/close.
struct JsonlSinkOptions {
  /// Buffer size that triggers a write() syscall.
  std::size_t flush_bytes = 64 * 1024;
  /// Records between fsync barriers; 0 = fsync only on flush()/close.
  /// A crash (even SIGKILL) loses at most this many records plus the
  /// in-memory buffer — pair with `sbsched report`'s torn-tail tolerance.
  std::uint64_t fsync_every_lines = 0;
  /// Size-based rotation: once the active segment exceeds this many bytes
  /// the sink continues in `<path>.1`, `<path>.2`, ... (0 = never rotate).
  /// Readers consume segments in that order (see segment_paths()).
  std::uint64_t rotate_bytes = 0;
  /// Append to an existing stream instead of truncating — used by resumed
  /// runs so one stream carries the pre-crash and post-resume portions.
  /// With rotation, appending continues in the newest existing segment.
  bool append = false;
};

/// Buffered JSON-Lines file sink: records accumulate in memory and are
/// written in ~64 KiB chunks, so per-event cost is an append, not a
/// syscall. flush() drains the buffer, flushes and fsyncs; the destructor
/// flushes too, so a sink going out of scope never loses lines. Every live
/// sink is also registered with a process-wide std::atexit hook, so plain
/// exit() paths (including uncaught-exception terminations routed through
/// exit) drain whatever buffers remain.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(const std::string& path, JsonlSinkOptions options = {});
  ~JsonlSink() override;

  void write(std::string_view json_line) override;

  /// Drains the buffer and fsyncs the active segment, so every record
  /// handed to write() so far survives a crash from here on.
  void flush() override;

  const std::string& path() const { return path_; }
  std::uint64_t lines_written() const { return lines_; }
  /// Segments opened by this sink so far (1 = no rotation yet).
  std::size_t segments_opened() const { return segment_ + 1; }

  /// Existing on-disk segments of a (possibly rotated) stream, in write
  /// order: `path`, then `path.1`, `path.2`, ... while they exist.
  static std::vector<std::string> segment_paths(const std::string& path);

  /// Flushes every live JsonlSink (the atexit hook; safe to call directly).
  static void flush_all();

 private:
  std::string segment_name(std::size_t segment) const;
  void open_segment(std::size_t segment, bool append);
  void drain_locked();       ///< buffer -> write() syscall
  void sync_locked();        ///< fsync the active fd
  void maybe_rotate_locked();

  std::string path_;
  JsonlSinkOptions options_;
  int fd_ = -1;
  std::size_t segment_ = 0;          ///< 0 = base path, n = "<path>.n"
  std::uint64_t segment_bytes_ = 0;  ///< bytes written to the active segment
  std::string buffer_;
  std::uint64_t lines_ = 0;
  std::uint64_t unsynced_lines_ = 0;
  std::mutex mu_;
};

}  // namespace sbs::obs
