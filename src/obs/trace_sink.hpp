#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

namespace sbs::obs {

/// Destination for structured telemetry records. Implementations receive
/// one complete JSON object per call (no trailing newline) and decide how
/// to persist it.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void write(std::string_view json_line) = 0;
  virtual void flush() {}
};

/// Buffered JSON-Lines file sink: records accumulate in memory and are
/// written in ~64 KiB chunks, so per-event cost is an append, not a
/// syscall. flush() drains the buffer and flushes the stream; the
/// destructor flushes too, so a sink going out of scope never loses lines.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;

  void write(std::string_view json_line) override;
  void flush() override;

  const std::string& path() const { return path_; }
  std::uint64_t lines_written() const { return lines_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::string buffer_;
  std::uint64_t lines_ = 0;
  std::mutex mu_;
};

}  // namespace sbs::obs
