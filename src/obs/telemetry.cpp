#include "obs/telemetry.hpp"

namespace sbs::obs {

namespace {

// Bucket bounds sized to the quantities the paper discusses: think times of
// tens of microseconds to tens of milliseconds, node budgets of 1K-100K,
// queues of "at least 10 waiting jobs", waits of hours to days.
constexpr double kThinkUsBounds[] = {10,    50,     100,    500,    1'000,
                                     5'000, 10'000, 50'000, 100'000, 500'000};
constexpr double kNodesBounds[] = {1,    10,    100,    500,     1'000,
                                   4'000, 8'000, 32'000, 100'000};
constexpr double kQueueBounds[] = {1, 2, 5, 10, 20, 50, 100, 200, 500};
constexpr double kWaitHBounds[] = {0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128};

}  // namespace

std::span<const double> think_us_bounds() { return kThinkUsBounds; }
std::span<const double> nodes_per_decision_bounds() { return kNodesBounds; }
std::span<const double> queue_depth_bounds() { return kQueueBounds; }
std::span<const double> wait_h_bounds() { return kWaitHBounds; }

Telemetry::Telemetry(std::unique_ptr<TraceSink> sink)
    : sink_(std::move(sink)) {
  decisions_ = &registry_.counter("sim.decisions");
  deadline_hits_ = &registry_.counter("search.deadline_hits");
  nodes_visited_ = &registry_.counter("search.nodes_visited");
  paths_explored_ = &registry_.counter("search.paths_explored");
  cache_hits_ = &registry_.counter("search.cache_hits");
  cache_misses_ = &registry_.counter("search.cache_misses");
  cache_invalidations_ = &registry_.counter("search.cache_invalidations");
  warm_starts_ = &registry_.counter("search.warm_starts");
  pruned_twins_ = &registry_.counter("search.pruned_twins");
  pruned_bound_ = &registry_.counter("search.pruned_bound");
  jobs_submitted_ = &registry_.counter("sim.jobs.submitted");
  jobs_started_ = &registry_.counter("sim.jobs.started");
  jobs_finished_ = &registry_.counter("sim.jobs.finished");
  jobs_killed_ = &registry_.counter("sim.jobs.killed");
  jobs_requeued_ = &registry_.counter("sim.jobs.requeued");
  jobs_unstarted_ = &registry_.counter("sim.jobs.unstarted");
  faults_down_ = &registry_.counter("sim.faults.node_down");
  faults_up_ = &registry_.counter("sim.faults.node_up");
  migrations_ = &registry_.counter("fed.migrations");
  chaos_events_ = &registry_.counter("fed.chaos_events");
  failovers_ = &registry_.counter("fed.failovers");
  recoveries_ = &registry_.counter("fed.recoveries");
  rehomed_ = &registry_.counter("fed.rehomed");
  dedupes_ = &registry_.counter("fed.dedupes");
  duplicate_runs_ = &registry_.counter("fed.duplicate_runs");
  gov_degrades_ = &registry_.counter("governor.degrades");
  gov_recoveries_ = &registry_.counter("governor.recoveries");
  gov_probes_ = &registry_.counter("governor.probes");
  gov_probe_failures_ = &registry_.counter("governor.probe_failures");
  gov_level_ = &registry_.gauge("governor.level");
  queue_depth_ = &registry_.gauge("sim.queue_depth");
  free_nodes_ = &registry_.gauge("sim.free_nodes");
  capacity_ = &registry_.gauge("sim.capacity");
  svc_admitted_ = &registry_.counter("service.admitted");
  svc_rejected_backpressure_ =
      &registry_.counter("service.rejected.backpressure");
  svc_rejected_shed_ = &registry_.counter("service.rejected.shed");
  svc_rejected_drain_ = &registry_.counter("service.rejected.draining");
  svc_requests_ = &registry_.counter("service.requests");
  think_us_ = &registry_.histogram("search.think_time_us", kThinkUsBounds);
  nodes_per_decision_ =
      &registry_.histogram("search.nodes_per_decision", kNodesBounds);
  queue_at_decision_ =
      &registry_.histogram("sim.queue_depth_at_decision", kQueueBounds);
  max_wait_at_decision_ =
      &registry_.histogram("sim.max_wait_h_at_decision", kWaitHBounds);
  request_us_ = &registry_.histogram("service.request_us", kThinkUsBounds);
}

void Telemetry::emit() {
  if (sink_) sink_->write(line_.str());
  line_.clear();
}

void Telemetry::cluster_field() {
  if (cluster_ >= 0) line_.field("cluster", cluster_);
}

void Telemetry::set_context(const RunContext& ctx) {
  context_ = ctx;
  has_context_ = true;
  if (ctx.has_seed)
    registry_.set_label("run.seed", std::to_string(ctx.seed));
  if (!ctx.governor.empty())
    registry_.set_label("run.governor", ctx.governor);
  if (ctx.resumed) {
    registry_.set_label("run.resumed", "true");
    registry_.set_label("run.checkpoint_parent", ctx.checkpoint_parent);
  }
}

void Telemetry::begin_run(const RunRecord& run) {
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "run")
      .field("trace", run.trace)
      .field("policy", run.policy)
      .field("capacity", run.capacity)
      .field("jobs", run.jobs);
  if (run.clusters > 0) line_.field("clusters", run.clusters);
  if (has_context_) {
    if (context_.has_seed) line_.field("seed", context_.seed);
    if (!context_.governor.empty())
      line_.field("governor", context_.governor);
    line_.field("resumed", context_.resumed);
    if (context_.resumed)
      line_.field("checkpoint_parent", context_.checkpoint_parent);
  }
  line_.end_object();
  emit();
}

void Telemetry::governor_transition(Time t, const GovernorTransition& tr) {
  if (tr.kind == "degrade") gov_degrades_->add();
  else if (tr.kind == "recover") gov_recoveries_->add();
  else if (tr.kind == "probe") gov_probes_->add();
  else if (tr.kind == "probe_fail") gov_probe_failures_->add();
  gov_level_->set(tr.to);
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "governor")
      .field("t", static_cast<std::int64_t>(t))
      .field("kind", tr.kind)
      .field("from", tr.from)
      .field("to", tr.to)
      .end_object();
  emit();
}

void Telemetry::decision(const DecisionRecord& d) {
  // Ladder transitions come first so a reader replaying the stream knows
  // the level this very decision ran at by the time it sees the record.
  for (const GovernorTransition& tr : d.governor_transitions)
    governor_transition(d.now, tr);
  if (d.governor_level >= 0) gov_level_->set(d.governor_level);
  decisions_->add();
  if (d.deadline_hit) deadline_hits_->add();
  nodes_visited_->add(d.nodes_visited);
  paths_explored_->add(d.paths_explored);
  cache_hits_->add(d.cache_hits);
  cache_misses_->add(d.cache_misses);
  cache_invalidations_->add(d.cache_invalidations);
  if (d.warm_start_used) warm_starts_->add();
  pruned_twins_->add(d.pruned_twins);
  pruned_bound_->add(d.pruned_bound);
  jobs_started_->add(d.started.size());
  queue_depth_->set(d.queue_depth);
  free_nodes_->set(d.free_nodes);
  capacity_->set(d.capacity);
  think_us_->observe(static_cast<double>(d.think_us));
  nodes_per_decision_->observe(static_cast<double>(d.nodes_visited));
  queue_at_decision_->observe(static_cast<double>(d.queue_depth));
  max_wait_at_decision_->observe(d.max_wait_h);

  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "decision")
      .field("t", static_cast<std::int64_t>(d.now));
  cluster_field();
  line_.field("policy", d.policy)
      .field("queue_depth", d.queue_depth)
      .field("free_nodes", d.free_nodes)
      .field("capacity", d.capacity)
      .field("max_wait_h", d.max_wait_h)
      .field("nodes_visited", d.nodes_visited)
      .field("paths_explored", d.paths_explored)
      .field("iterations", d.iterations)
      .field("discrepancies", d.discrepancies)
      .field("deadline_hit", d.deadline_hit)
      .field("think_us", d.think_us)
      .field("threads_used", d.threads_used)
      .field("cache_hits", d.cache_hits)
      .field("cache_misses", d.cache_misses)
      .field("cache_invalidations", d.cache_invalidations)
      .field("warm_start_used", d.warm_start_used)
      .field("pruned_twins", d.pruned_twins)
      .field("pruned_bound", d.pruned_bound);
  if (d.governor_level >= 0) {
    line_.field("gov_level", d.governor_level)
        .field("gov_probe", d.governor_probe);
  }
  line_.key("started").begin_array();
  for (const int id : d.started) line_.value(id);
  line_.end_array();
  line_.key("worker_nodes").begin_array();
  for (const std::uint64_t nodes : d.worker_nodes) line_.value(nodes);
  line_.end_array();
  line_.key("improvements").begin_array();
  for (const ImprovementPoint& p : d.improvements) {
    line_.begin_object()
        .field("nodes", p.nodes)
        .field("excess_h", p.excess_h)
        .field("avg_bsld", p.avg_bsld)
        .field("discrepancies", p.discrepancies)
        .end_object();
  }
  line_.end_array().end_object();
  emit();
}

void Telemetry::job_submitted(Time t, int job, int nodes, Time runtime,
                              Time requested, int user) {
  jobs_submitted_->add();
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "submit")
      .field("t", static_cast<std::int64_t>(t));
  cluster_field();
  line_.field("job", job)
      .field("nodes", nodes)
      .field("runtime", static_cast<std::int64_t>(runtime))
      .field("requested", static_cast<std::int64_t>(requested))
      .field("user", user)
      .end_object();
  emit();
}

void Telemetry::job_started(Time t, int job, int nodes) {
  if (!sink_) return;  // counted in decision() via started.size()
  line_.clear();
  line_.begin_object()
      .field("type", "start")
      .field("t", static_cast<std::int64_t>(t));
  cluster_field();
  line_.field("job", job)
      .field("nodes", nodes)
      .end_object();
  emit();
}

void Telemetry::job_finished(Time t, int job) {
  jobs_finished_->add();
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "finish")
      .field("t", static_cast<std::int64_t>(t));
  cluster_field();
  line_.field("job", job)
      .end_object();
  emit();
}

void Telemetry::job_killed(Time t, int job, bool requeued) {
  jobs_killed_->add();
  if (requeued) jobs_requeued_->add();
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "kill")
      .field("t", static_cast<std::int64_t>(t));
  cluster_field();
  line_.field("job", job)
      .field("requeued", requeued)
      .end_object();
  emit();
}

void Telemetry::job_unstarted(Time t, int job) {
  jobs_unstarted_->add();
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "unstarted")
      .field("t", static_cast<std::int64_t>(t));
  cluster_field();
  line_.field("job", job)
      .end_object();
  emit();
}

void Telemetry::node_fault(Time t, bool down, int nodes, int capacity_after) {
  (down ? faults_down_ : faults_up_)->add();
  capacity_->set(capacity_after);
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "fault")
      .field("t", static_cast<std::int64_t>(t));
  cluster_field();
  line_.field("kind", down ? "node_down" : "node_up")
      .field("nodes", nodes)
      .field("capacity", capacity_after)
      .end_object();
  emit();
}

void Telemetry::job_migrated(Time t, int job, int from, int to) {
  migrations_->add();
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "migrate")
      .field("t", static_cast<std::int64_t>(t))
      .field("job", job)
      .field("from", from)
      .field("to", to)
      .end_object();
  emit();
}

void Telemetry::chaos_event(Time t, std::string_view kind, int member) {
  chaos_events_->add();
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "chaos")
      .field("t", static_cast<std::int64_t>(t))
      .field("event", kind)
      .field("member", member)
      .end_object();
  emit();
}

void Telemetry::member_health(Time t, int member, bool down) {
  (down ? failovers_ : recoveries_)->add();
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "health")
      .field("t", static_cast<std::int64_t>(t))
      .field("member", member)
      .field("state", down ? "down" : "up")
      .end_object();
  emit();
}

void Telemetry::job_rehomed(Time t, int job, int from, int to, bool copy) {
  rehomed_->add();
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "rehome")
      .field("t", static_cast<std::int64_t>(t))
      .field("job", job)
      .field("from", from)
      .field("to", to)
      .field("mode", copy ? "copy" : "move")
      .end_object();
  emit();
}

void Telemetry::job_reconciled(Time t, int job, int member,
                               std::string_view action) {
  if (action == "dedupe" || action == "adopt" || action == "return")
    dedupes_->add();
  else if (action == "duplicate")
    duplicate_runs_->add();
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "reconcile")
      .field("t", static_cast<std::int64_t>(t))
      .field("job", job)
      .field("member", member)
      .field("action", action)
      .end_object();
  emit();
}

void Telemetry::job_admitted(Time t, int job, int priority, int queue_depth) {
  svc_admitted_->add();
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "admit")
      .field("t", static_cast<std::int64_t>(t))
      .field("job", job)
      .field("priority", priority)
      .field("queue_depth", queue_depth)
      .end_object();
  emit();
}

void Telemetry::job_rejected(Time t, std::string_view reason, int priority,
                             std::int64_t retry_ms) {
  if (reason == "backpressure") svc_rejected_backpressure_->add();
  else if (reason == "shed") svc_rejected_shed_->add();
  else svc_rejected_drain_->add();
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "reject")
      .field("t", static_cast<std::int64_t>(t))
      .field("reason", reason)
      .field("priority", priority)
      .field("retry_ms", retry_ms)
      .end_object();
  emit();
}

void Telemetry::drain_phase(Time t, std::string_view phase,
                            std::size_t waiting, std::size_t running) {
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "drain")
      .field("t", static_cast<std::int64_t>(t))
      .field("phase", phase)
      .field("waiting", static_cast<std::uint64_t>(waiting))
      .field("running", static_cast<std::uint64_t>(running))
      .end_object();
  emit();
}

void Telemetry::service_run(const ServiceRecord& r) {
  if (!sink_) return;
  line_.clear();
  line_.begin_object()
      .field("type", "service")
      .field("t", static_cast<std::int64_t>(r.t))
      .field("requests", r.requests)
      .field("protocol_errors", r.protocol_errors)
      .field("timeouts", r.timeouts)
      .field("connections", r.connections)
      .field("admitted", r.admitted)
      .field("rejected_backpressure", r.rejected_backpressure)
      .field("rejected_shed", r.rejected_shed)
      .field("rejected_drain", r.rejected_drain)
      .field("started", r.started)
      .field("completed", r.completed)
      .field("decisions", r.decisions)
      .field("checkpoints", r.checkpoints)
      .field("request_p50_us", r.request_p50_us)
      .field("request_p99_us", r.request_p99_us)
      .field("request_p999_us", r.request_p999_us)
      .field("think_p50_us", r.think_p50_us)
      .field("think_p99_us", r.think_p99_us)
      .field("think_p999_us", r.think_p999_us)
      .field("shed_floor", r.shed_floor);
  line_.key("gov_decisions").begin_array();
  for (const std::uint64_t n : r.gov_decisions) line_.value(n);
  line_.end_array().end_object();
  emit();
}

void Telemetry::request_handled(std::uint64_t us) {
  svc_requests_->add();
  request_us_->observe(static_cast<double>(us));
}

void Telemetry::flush() {
  if (sink_) sink_->flush();
}

}  // namespace sbs::obs
