#pragma once

#include <memory>

#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"

namespace sbs::obs {

/// Canonical histogram bucket bounds, shared by the live registry and the
/// offline report so both render identical tables.
std::span<const double> think_us_bounds();
std::span<const double> nodes_per_decision_bounds();
std::span<const double> queue_depth_bounds();
std::span<const double> wait_h_bounds();

/// Decision-level telemetry front end: one call per scheduling event / job
/// lifecycle transition / fault. Every call updates the metrics registry
/// (cheap counters + fixed-bucket histograms) and, when a sink is attached,
/// appends one JSONL record. Attach via SimConfig::telemetry; a null
/// pointer there keeps the simulator's hot path entirely untouched.
///
/// JSONL schema (one object per line, discriminated by "type"):
///   run       trace, policy, capacity, jobs
///             [+ seed, governor, checkpoint_parent, resumed when a
///              RunContext was set — provenance for reproducing the run]
///   decision  t, policy, queue_depth, free_nodes, capacity, max_wait_h,
///             nodes_visited, paths_explored, iterations, discrepancies,
///             deadline_hit, think_us, threads_used, cache_hits,
///             cache_misses, cache_invalidations, warm_start_used,
///             started[], worker_nodes[], improvements[]
///             [+ gov_level, gov_probe when a governor wraps the policy]
///   governor  t, kind ("degrade"|"probe"|"probe_fail"|"recover"),
///             from, to  — one record per degradation-ladder transition
///   submit    t, job, nodes, runtime, requested, user
///   start     t, job, nodes
///   finish    t, job
///   kill      t, job, requeued
///   unstarted t, job
///   fault     t, kind ("node_down"|"node_up"), nodes, capacity
///   migrate   t, job, from, to — cross-cluster migration of a waiting job
/// Chaos runs (`--chaos`, federation fault tolerance) additionally emit:
///   chaos     t, event ("member-down"|"member-up"|"link-down"|"link-up"),
///             member — one ground-truth outage/partition edge
///   health    t, member, state ("down"|"up") — failover declare/recover
///   rehome    t, job, from, to, mode ("move"|"copy") — failover re-home
///   reconcile t, job, member, action ("deliver"|"adopt"|"return"|
///             "dedupe"|"orphan"|"race"|"resolve"|"duplicate") — one
///             exactly-once ledger action
/// Federation runs (`--clusters`): the run record carries a "clusters"
/// member count, and every per-cluster record above (decision + job
/// lifecycle + fault) carries a "cluster" member id. Single-cluster runs
/// omit both fields, so pre-federation streams and readers stay compatible.
/// Service-mode records (`sbsched serve`; absent from offline runs):
///   admit     t, job, priority, queue_depth — submission admitted
///   reject    t, reason ("backpressure"|"shed"|"draining"), priority,
///             retry_ms — submission refused
///   drain     t, phase ("begin"|"complete"), waiting, running
///   service   t + every ServiceRecord counter and latency quantile —
///             the final accounting record of a serve run
/// Field-by-field documentation lives in docs/architecture.md.
class Telemetry {
 public:
  /// `sink` may be null: metrics only, no event stream.
  explicit Telemetry(std::unique_ptr<TraceSink> sink = nullptr);

  MetricsRegistry& metrics() { return registry_; }
  const MetricsRegistry& metrics() const { return registry_; }
  bool has_sink() const { return sink_ != nullptr; }

  /// Provenance echoed into subsequent run records and into metrics-JSON
  /// labels. Call before begin_run().
  void set_context(const RunContext& ctx);

  /// Member-cluster id stamped onto subsequent per-cluster records
  /// (decision, job lifecycle, fault). Negative (the default) omits the
  /// field. A federation's member simulators set this before emitting.
  void set_cluster(int cluster) { cluster_ = cluster; }

  void begin_run(const RunRecord& run);
  void decision(const DecisionRecord& d);
  /// One degradation-ladder transition (also summarized in the enclosing
  /// decision record's gov_level field and in governor.* counters).
  void governor_transition(Time t, const GovernorTransition& tr);
  void job_submitted(Time t, int job, int nodes, Time runtime, Time requested,
                     int user);
  void job_started(Time t, int job, int nodes);
  void job_finished(Time t, int job);
  void job_killed(Time t, int job, bool requeued);
  void job_unstarted(Time t, int job);
  void node_fault(Time t, bool down, int nodes, int capacity_after);
  /// Cross-cluster migration of a still-waiting job (federation runs).
  /// Emitted by the federation itself, not a member: `from`/`to` identify
  /// the clusters explicitly, so the record carries no "cluster" field.
  void job_migrated(Time t, int job, int from, int to);

  // Federation fault-tolerance events (chaos runs only; like migrate,
  // emitted by the federation itself, so no "cluster" field).
  /// One chaos-schedule edge: kind is chaos_kind_name() ("member-down",
  /// "member-up", "link-down", "link-up").
  void chaos_event(Time t, std::string_view kind, int member);
  /// A health declare-down (failover begins) or recovery verdict.
  void member_health(Time t, int member, bool down);
  /// A job re-homed off a failed member: `copy` marks a speculative copy
  /// (link partition, original still queued behind it) vs a real move.
  void job_rehomed(Time t, int job, int from, int to, bool copy);
  /// One reconciliation/ledger action for a job: "deliver", "adopt",
  /// "return", "dedupe", "orphan", "race", "resolve", "duplicate".
  void job_reconciled(Time t, int job, int member, std::string_view action);

  // Service-mode events (`sbsched serve`).
  void job_admitted(Time t, int job, int priority, int queue_depth);
  void job_rejected(Time t, std::string_view reason, int priority,
                    std::int64_t retry_ms);
  void drain_phase(Time t, std::string_view phase, std::size_t waiting,
                   std::size_t running);
  void service_run(const ServiceRecord& r);
  /// Metrics-only: one request's server-side handling latency.
  void request_handled(std::uint64_t us);

  /// Drains the sink's buffer to disk. Called by the simulator at the end
  /// of every run so the file is complete between runs.
  void flush();

 private:
  void emit();  ///< writes line_ to the sink and clears it

  MetricsRegistry registry_;
  std::unique_ptr<TraceSink> sink_;
  JsonWriter line_;
  RunContext context_;
  bool has_context_ = false;
  int cluster_ = -1;

  /// Appends the optional "cluster" field to the record being built.
  void cluster_field();

  // Hot-path instrument handles, resolved once at construction.
  Counter* decisions_;
  Counter* deadline_hits_;
  Counter* nodes_visited_;
  Counter* paths_explored_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* cache_invalidations_;
  Counter* warm_starts_;
  Counter* pruned_twins_;
  Counter* pruned_bound_;
  Counter* jobs_submitted_;
  Counter* jobs_started_;
  Counter* jobs_finished_;
  Counter* jobs_killed_;
  Counter* jobs_requeued_;
  Counter* jobs_unstarted_;
  Counter* faults_down_;
  Counter* faults_up_;
  Counter* migrations_;
  Counter* chaos_events_;
  Counter* failovers_;
  Counter* recoveries_;
  Counter* rehomed_;
  Counter* dedupes_;
  Counter* duplicate_runs_;
  Counter* gov_degrades_;
  Counter* gov_recoveries_;
  Counter* gov_probes_;
  Counter* gov_probe_failures_;
  Gauge* gov_level_;
  Gauge* queue_depth_;
  Gauge* free_nodes_;
  Gauge* capacity_;
  Counter* svc_admitted_;
  Counter* svc_rejected_backpressure_;
  Counter* svc_rejected_shed_;
  Counter* svc_rejected_drain_;
  Counter* svc_requests_;
  Histogram* think_us_;
  Histogram* nodes_per_decision_;
  Histogram* queue_at_decision_;
  Histogram* max_wait_at_decision_;
  Histogram* request_us_;
};

}  // namespace sbs::obs
