#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>

#include "obs/json.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace sbs::obs {

namespace {

// Relaxed CAS-loop updates for atomic doubles (fetch_add on atomic<double>
// is C++20 but not universally lowered to hardware; the loop is portable
// and uncontended in practice — one simulation thread per registry).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string compact_number(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)))
    return std::to_string(static_cast<long long>(v));
  return format_double(v, 2);
}

std::string bucket_label(const std::vector<double>& bounds, std::size_t i) {
  if (i < bounds.size()) return "<= " + compact_number(bounds[i]);
  return "> " + compact_number(bounds.back());
}

}  // namespace

void Gauge::set(std::int64_t v) {
  value_.store(v, std::memory_order_relaxed);
  std::int64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::string name, std::span<const double> bounds)
    : name_(std::move(name)), bounds_(bounds.begin(), bounds.end()) {
  SBS_CHECK_MSG(!bounds_.empty(), "histogram " << name_ << " has no buckets");
  SBS_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram " << name_ << " bounds not ascending");
  cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) cells_[i] = 0;
}

void Histogram::observe(double v) {
  std::size_t cell = bounds_.size();  // overflow unless a bound catches it
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      cell = i;
      break;
    }
  }
  cells_[cell].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.name = name_;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    s.counts[i] = cells_[i].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count ? min_.load(std::memory_order_relaxed) : 0.0;
  s.max = s.count ? max_.load(std::memory_order_relaxed) : 0.0;
  return s;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counters_)
    if (c->name() == name) return *c;
  counters_.push_back(std::make_unique<Counter>(std::string(name)));
  return *counters_.back();
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& g : gauges_)
    if (g->name() == name) return *g;
  gauges_.push_back(std::make_unique<Gauge>(std::string(name)));
  return *gauges_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& h : histograms_)
    if (h->name() == name) return *h;
  histograms_.push_back(std::make_unique<Histogram>(std::string(name), bounds));
  return *histograms_.back();
}

void MetricsRegistry::set_label(std::string_view name, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& l : labels_) {
    if (l.name == name) {
      l.value = std::string(value);
      return;
    }
  }
  labels_.push_back({std::string(name), std::string(value)});
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.labels = labels_;
  for (const auto& c : counters_)
    s.counters.push_back({c->name(), c->value()});
  for (const auto& g : gauges_) {
    const bool ever = g->max() != std::numeric_limits<std::int64_t>::min();
    s.gauges.push_back({g->name(), g->value(), ever ? g->max() : 0, ever});
  }
  for (const auto& h : histograms_) s.histograms.push_back(h->snapshot());
  return s;
}

void MetricsSnapshot::print(std::ostream& os) const {
  if (!labels.empty()) {
    Table t({"label", "value"});
    for (const auto& l : labels) t.row().add(l.name).add(l.value);
    t.print(os);
    os << '\n';
  }
  if (!counters.empty() || !gauges.empty()) {
    Table t({"metric", "value", "max"});
    for (const auto& c : counters)
      t.row().add(c.name).add(static_cast<long long>(c.value)).add("-");
    for (const auto& g : gauges) {
      if (!g.ever_set) continue;
      t.row()
          .add(g.name)
          .add(static_cast<long long>(g.value))
          .add(static_cast<long long>(g.max));
    }
    t.print(os);
  }
  for (const auto& h : histograms) {
    if (h.count == 0) continue;
    os << '\n'
       << h.name << ": n=" << h.count << " mean=" << format_double(h.mean(), 2)
       << " min=" << format_double(h.min, 2)
       << " max=" << format_double(h.max, 2) << '\n';
    Table t({"bucket", "count", "share"});
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      t.row()
          .add(bucket_label(h.bounds, i))
          .add(static_cast<long long>(h.counts[i]))
          .add(format_double(100.0 * static_cast<double>(h.counts[i]) /
                                 static_cast<double>(h.count),
                             1) +
               "%");
    }
    t.print(os);
  }
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("labels").begin_object();
  for (const auto& l : labels) w.field(l.name, l.value);
  w.end_object();
  w.key("counters").begin_object();
  for (const auto& c : counters) w.field(c.name, c.value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : gauges) {
    if (!g.ever_set) continue;
    w.key(g.name).begin_object();
    w.field("value", g.value).field("max", g.max);
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : histograms) {
    w.key(h.name).begin_object();
    w.field("count", h.count)
        .field("sum", h.sum)
        .field("min", h.min)
        .field("max", h.max);
    w.key("bounds").begin_array();
    for (const double b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const std::uint64_t c : h.counts) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace sbs::obs
