#include "obs/trace_sink.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"

namespace sbs::obs {

namespace {

// Live-sink registry backing the std::atexit flush. Function-local statics
// so the registry outlives every sink regardless of construction order.
std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<JsonlSink*>& registry() {
  static std::vector<JsonlSink*> sinks;
  return sinks;
}

void register_sink(JsonlSink* sink) {
  static bool atexit_installed = [] {
    std::atexit(&JsonlSink::flush_all);
    return true;
  }();
  (void)atexit_installed;
  std::lock_guard<std::mutex> lock(registry_mutex());
  registry().push_back(sink);
}

void unregister_sink(JsonlSink* sink) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  auto& sinks = registry();
  sinks.erase(std::remove(sinks.begin(), sinks.end(), sink), sinks.end());
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::uint64_t file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

void write_fully(int fd, const char* data, std::size_t size,
                 const std::string& path) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      SBS_CHECK_MSG(false, "write to telemetry file " << path
                               << " failed: " << std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

JsonlSink::JsonlSink(const std::string& path, JsonlSinkOptions options)
    : path_(path), options_(options) {
  SBS_CHECK_MSG(options_.flush_bytes > 0, "flush_bytes must be positive");
  std::size_t segment = 0;
  if (options_.append && options_.rotate_bytes > 0) {
    // Resume writing into the newest existing segment of the stream.
    while (file_exists(segment_name(segment + 1))) ++segment;
  }
  open_segment(segment, options_.append);
  buffer_.reserve(2 * options_.flush_bytes);
  register_sink(this);
}

JsonlSink::~JsonlSink() {
  unregister_sink(this);
  std::lock_guard<std::mutex> lock(mu_);
  drain_locked();
  sync_locked();
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::string JsonlSink::segment_name(std::size_t segment) const {
  if (segment == 0) return path_;
  return path_ + "." + std::to_string(segment);
}

void JsonlSink::open_segment(std::size_t segment, bool append) {
  const std::string name = segment_name(segment);
  int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
  flags |= append ? O_APPEND : O_TRUNC;
  const int fd = ::open(name.c_str(), flags, 0644);
  SBS_CHECK_MSG(fd >= 0, "cannot open telemetry file "
                             << name << ": " << std::strerror(errno));
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
  segment_ = segment;
  segment_bytes_ = append ? file_size(name) : 0;
}

void JsonlSink::write(std::string_view json_line) {
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.append(json_line);
  buffer_.push_back('\n');
  ++lines_;
  ++unsynced_lines_;
  if (buffer_.size() >= options_.flush_bytes) {
    drain_locked();
    maybe_rotate_locked();
  }
  if (options_.fsync_every_lines > 0 &&
      unsynced_lines_ >= options_.fsync_every_lines) {
    drain_locked();
    sync_locked();
    maybe_rotate_locked();
  }
}

void JsonlSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  drain_locked();
  sync_locked();
}

void JsonlSink::drain_locked() {
  if (buffer_.empty() || fd_ < 0) return;
  write_fully(fd_, buffer_.data(), buffer_.size(), segment_name(segment_));
  segment_bytes_ += buffer_.size();
  buffer_.clear();
}

void JsonlSink::sync_locked() {
  if (fd_ >= 0 && unsynced_lines_ > 0) {
    ::fsync(fd_);
    unsynced_lines_ = 0;
  }
}

void JsonlSink::maybe_rotate_locked() {
  if (options_.rotate_bytes == 0 || segment_bytes_ < options_.rotate_bytes)
    return;
  // Rotation happens on a record boundary (the buffer was just drained),
  // so every segment holds whole lines and readers can concatenate them.
  sync_locked();
  open_segment(segment_ + 1, /*append=*/false);
}

std::vector<std::string> JsonlSink::segment_paths(const std::string& path) {
  std::vector<std::string> out;
  if (!file_exists(path)) return out;
  out.push_back(path);
  for (std::size_t i = 1;; ++i) {
    const std::string name = path + "." + std::to_string(i);
    if (!file_exists(name)) break;
    out.push_back(name);
  }
  return out;
}

void JsonlSink::flush_all() {
  std::vector<JsonlSink*> sinks;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    sinks = registry();
  }
  for (JsonlSink* sink : sinks) sink->flush();
}

}  // namespace sbs::obs
