#include "obs/trace_sink.hpp"

#include "util/error.hpp"

namespace sbs::obs {

namespace {
constexpr std::size_t kFlushThreshold = 64 * 1024;
}

JsonlSink::JsonlSink(const std::string& path) : path_(path), out_(path) {
  SBS_CHECK_MSG(out_.is_open(), "cannot open telemetry file " << path);
  buffer_.reserve(2 * kFlushThreshold);
}

JsonlSink::~JsonlSink() { flush(); }

void JsonlSink::write(std::string_view json_line) {
  std::lock_guard<std::mutex> lock(mu_);
  buffer_.append(json_line);
  buffer_.push_back('\n');
  ++lines_;
  if (buffer_.size() >= kFlushThreshold) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
}

void JsonlSink::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!buffer_.empty()) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  out_.flush();
}

}  // namespace sbs::obs
