// sbsched — command-line driver for the search-based scheduling library.
//
//   sbsched generate --month=7/03 --out=month.swf [--scale=1] [--seed=N]
//       Write a synthetic NCSA-calibrated month as an SWF trace.
//
//   sbsched analyze --trace=month.swf [--procs-per-node=1]
//       Print the trace's job mix (Table-3 style), runtime mix (Table-4
//       style) and offered load.
//
//   sbsched simulate --trace=month.swf --policy=DDS/lxf/dynB
//            [--nodes=1000] [--rstar=actual|requested|predicted]
//            [--load=0.9] [--classes] [--timeline=out.csv]
//            [--faults=mtbf:86400,mttr:3600,seed:7[,block:2-8][,killmtbf:N]]
//            [--requeue=resubmit|drop] [--search-deadline-ms=50]
//            [--search-threads=4] [--search-cache=on|off]
//            [--warm-start=on|off] [--governor=on|off]
//            [--governor-thresholds=queue=20,trip=3,...]
//            [--clusters=left:64,right:32 [--meta=least-loaded|rr|best-fit]
//             [--migrate=on|off]
//             [--chaos=mtbf:259200,mttr:7200[,linkmtbf:N,linkmttr:N,seed:N]]]
//            [--checkpoint=run.ckpt --checkpoint-every=N] [--resume=run.ckpt]
//            [--outcomes=jobs.csv] [--telemetry=run.jsonl]
//            [--telemetry-fsync=N] [--telemetry-rotate-mb=N] [--metrics]
//       Run one policy and report every aggregate measure; optionally the
//       per-class wait grid, a utilization/queue timeline CSV, seeded
//       fault injection, a wall-clock search deadline, a parallel search
//       worker count (identical schedules at any count), the incremental
//       search engine escape hatch, cross-event warm starts, the overload
//       governor (graceful search degradation), periodic crash-safe
//       checkpoints with bit-identical --resume, a per-job outcome CSV, a
//       decision-level JSONL event stream with durability knobs, and the
//       metrics-registry tables. --clusters federates the trace across N
//       member clusters (each with its own search scheduler and fault
//       schedule), routed by the --meta policy with cross-cluster
//       migration of waiting jobs on overload or node failure. --chaos
//       additionally injects whole-member blackouts and meta<->member
//       link partitions; the federation routes around unhealthy members,
//       re-homes their queued jobs, and reconciles duplicates through an
//       exactly-once ledger when partitions heal.
//
//   sbsched compare --trace=month.swf [--policies=FCFS-BF,LXF-BF,DDS/lxf/dynB]
//            [--nodes=1000] [--rstar=...] [--load=0.9] [--faults=...]
//            [--requeue=...] [--search-deadline-ms=N] [--search-threads=N]
//            [--search-cache=on|off] [--warm-start=on|off]
//            [--telemetry=runs.jsonl] [--metrics]
//       Side-by-side comparison with FCFS-derived excessive-wait measures.
//
//   sbsched serve --socket=/tmp/sbsched.sock [--capacity=128]
//            [--policy=DDS/lxf/dynB] [--time-scale=1000] [--batch-ms=10]
//            [--admission=limit=1000,priorities=4,...]
//            [--governor=on] [--checkpoint=svc.ckpt] [--resume=svc.ckpt]
//            [--telemetry=svc.jsonl] [--max-decisions=N]
//       Run the scheduler as a long-lived daemon: job submissions arrive
//       over a Unix-domain socket (length-prefixed JSON, see
//       src/service/protocol.hpp), arrivals are batched between decisions,
//       and the machine runs against a compressed virtual clock. Bounded
//       admission queue with RETRY_AFTER backpressure, priority load
//       shedding under overload, graceful drain on SIGINT/SIGTERM, and
//       crash-safe checkpoints. Pairs with tools/sbsched_loadgen.
//
//   sbsched report --telemetry=run.jsonl[,more.jsonl|glob*]
//       Summarize a telemetry stream written by simulate/compare/serve:
//       per-run aggregates, decision histograms, the anytime-improvement
//       profile and the service admission ledger. Accepts a single path
//       (rotated segments are discovered automatically), a comma-separated
//       list, or a glob — explicit lists are read as one logical stream
//       with records stitched across segment boundaries.

#include <glob.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exp/policy_factory.hpp"
#include "exp/runner.hpp"
#include "fed/federation.hpp"
#include "jobs/swf.hpp"
#include "metrics/summary.hpp"
#include "metrics/job_class.hpp"
#include "metrics/timeline.hpp"
#include "metrics/trace_mix.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_sink.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/governor.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace sbs::cli {
namespace {

/// Set by SIGINT/SIGTERM and polled by the simulator between events, so an
/// interrupted run flushes its telemetry, leaves the newest checkpoint
/// intact and exits through the normal (atexit-flushing) path.
std::atomic<bool> g_interrupted{false};

void handle_interrupt(int) { g_interrupted.store(true); }

void install_signal_handlers() {
  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
}

int usage() {
  std::cerr <<
      "usage: sbsched <command> [--options]\n"
      "\n"
      "  generate  --out=month.swf [--month=7/03] [--scale=1] [--seed=N]\n"
      "            [--load=0.9]\n"
      "      Write a synthetic NCSA-calibrated month as an SWF trace.\n"
      "\n"
      "  analyze   --trace=month.swf [--procs-per-node=1] [--load=0.9]\n"
      "      Print the trace's job mix, runtime mix and offered load.\n"
      "\n"
      "  simulate  --trace=month.swf [--policy=DDS/lxf/dynB] [--nodes=1000]\n"
      "            [--rstar=actual|requested|predicted] [--load=0.9]\n"
      "            [--classes] [--timeline=out.csv]\n"
      "            [--faults=mtbf:86400,mttr:3600,seed:7[,block:2-8]"
      "[,killmtbf:N]]\n"
      "            [--requeue=resubmit|drop] [--search-deadline-ms=50]\n"
      "            [--search-threads=4] [--search-cache=on|off]\n"
      "            [--search-simd=on|off] [--search-prune=on|off]\n"
      "            [--warm-start=on|off] [--governor=on|off]\n"
      "            [--governor-thresholds=queue=20,trip=3,...]\n"
      "            [--clusters=left:64,right:32]\n"
      "            [--meta=least-loaded|rr|best-fit] [--migrate=on|off]\n"
      "            [--chaos=mtbf:259200,mttr:7200"
      "[,linkmtbf:N,linkmttr:N,seed:N]]\n"
      "            [--checkpoint=run.ckpt --checkpoint-every=N]\n"
      "            [--resume=run.ckpt] [--outcomes=jobs.csv]\n"
      "            [--telemetry=run.jsonl] [--telemetry-fsync=N]\n"
      "            [--telemetry-rotate-mb=N] [--metrics]\n"
      "      Run one policy and report every aggregate measure. --faults\n"
      "      injects seeded node failures/repairs, --requeue picks the fate\n"
      "      of killed jobs, --search-deadline-ms bounds each decision's\n"
      "      wall clock. --search-threads runs the tree search on N worker\n"
      "      threads (0 = sequential; any N yields the identical schedule,\n"
      "      only faster). --search-cache=off disables the incremental\n"
      "      schedule builder (escape hatch; schedules are identical either\n"
      "      way, off is only slower). --search-simd=off selects the scalar\n"
      "      reference earliest-start scan (bit-identical, only slower).\n"
      "      --search-prune=off disables dominance pruning — the twin-\n"
      "      permutation skip and the frozen-incumbent bound cut (with\n"
      "      pruning the schedule is never worse at the same budget, but\n"
      "      node accounting differs). --warm-start=on seeds each search\n"
      "      with the previous decision's best path (never worse under the\n"
      "      same budget; default off preserves the paper's re-plan-from-\n"
      "      scratch semantics). --governor=on wraps the search policy in\n"
      "      the overload governor: a circuit breaker that degrades\n"
      "      full search -> reduced budget -> heuristic-only -> LXF\n"
      "      backfill under overload and recovers through half-open\n"
      "      probes (--governor-thresholds tunes it; see DESIGN.md).\n"
      "      --checkpoint + --checkpoint-every=N atomically rewrite a\n"
      "      versioned snapshot every N events; --resume continues from it\n"
      "      bit-identically (same trace and flags required; SIGINT/SIGTERM\n"
      "      stop cleanly at the next event). --outcomes writes the per-job\n"
      "      CSV. --telemetry streams one JSONL record per decision and job\n"
      "      lifecycle event (--telemetry-fsync=N fsyncs every N lines,\n"
      "      --telemetry-rotate-mb=N rotates segments); --metrics prints\n"
      "      the counter and histogram tables. --clusters=[name:]N,...\n"
      "      federates the trace across N member clusters, each a full\n"
      "      simulator with its own scheduler and fault schedule under one\n"
      "      shared virtual-time loop; --meta picks the routing policy\n"
      "      (least-loaded queue-demand EWMA, round-robin, or best-fit by\n"
      "      earliest predicted start) and --migrate=off disables cross-\n"
      "      cluster migration of waiting jobs. A federation of one is\n"
      "      bit-identical to the plain run. Federation checkpoints use\n"
      "      their own format and compose every member's snapshot.\n"
      "      --chaos injects whole-member blackouts (mtbf/mttr) and\n"
      "      meta<->member link partitions (linkmtbf/linkmttr), seeded and\n"
      "      deterministic: the meta-scheduler probes member health, routes\n"
      "      around declared-down members with hysteresis and backoff,\n"
      "      re-homes queued jobs off dead members at their original FCFS\n"
      "      position, and reconciles partition-doubled jobs through an\n"
      "      exactly-once ledger when the link heals. Checkpoints taken\n"
      "      mid-outage resume bit-identically.\n"
      "\n"
      "  compare   --trace=month.swf [--policies=FCFS-BF,LXF-BF,DDS/lxf/dynB]\n"
      "            [--nodes=1000] [--rstar=...] [--load=0.9] [--faults=...]\n"
      "            [--requeue=...] [--search-deadline-ms=N]\n"
      "            [--search-threads=N] [--search-cache=on|off]\n"
      "            [--search-simd=on|off] [--search-prune=on|off]\n"
      "            [--warm-start=on|off] [--telemetry=runs.jsonl] [--metrics]\n"
      "      Side-by-side comparison with FCFS-derived excessive-wait\n"
      "      measures; telemetry appends every policy's run to one stream.\n"
      "\n"
      "  serve     --socket=/tmp/sbsched.sock [--capacity=128]\n"
      "            [--policy=DDS/lxf/dynB] [--nodes=1000]\n"
      "            [--search-deadline-ms=N] [--search-threads=N]\n"
      "            [--search-cache=on|off] [--search-simd=on|off]\n"
      "            [--search-prune=on|off] [--warm-start=on|off]\n"
      "            [--governor=on|off] [--governor-thresholds=...]\n"
      "            [--admission=limit=1000,retry-base-ms=50,retry-cap-ms=5000,"
      "priorities=4,queue=200,think-ms=250,alpha=...,recover=...]\n"
      "            [--time-scale=1000] [--batch-ms=10]\n"
      "            [--request-timeout-ms=5000] [--max-connections=64]\n"
      "            [--max-decisions=N]\n"
      "            [--checkpoint=svc.ckpt] [--checkpoint-every=N]\n"
      "            [--resume=svc.ckpt] [--telemetry=svc.jsonl]\n"
      "            [--telemetry-fsync=N] [--telemetry-rotate-mb=N]\n"
      "            [--metrics]\n"
      "      Run the scheduler as a long-lived daemon on a Unix-domain\n"
      "      socket (length-prefixed JSON protocol; drive it with\n"
      "      sbsched_loadgen). Arrivals are batched between decisions\n"
      "      (--batch-ms) and the machine runs --time-scale virtual seconds\n"
      "      per wall second. --admission tunes the bounded queue,\n"
      "      retry_after backoff hints and priority shedding watermarks.\n"
      "      SIGINT/SIGTERM (or a client drain request) stops admissions,\n"
      "      fast-forwards the queued work, checkpoints, flushes telemetry\n"
      "      and exits 0. --resume restores a service checkpoint, admission\n"
      "      queue included.\n"
      "\n"
      "  report    --telemetry=run.jsonl[,more.jsonl|glob*]\n"
      "      Summarize a telemetry stream: per-run aggregates, decision\n"
      "      histograms, the anytime-improvement profile, governor breaker\n"
      "      activity, service admission ledger and run provenance. A\n"
      "      single path reads its rotated segments automatically; a\n"
      "      comma-separated list or glob is read as one logical stream,\n"
      "      stitching records cut at segment boundaries. A torn final\n"
      "      line (crash mid-write) is skipped with a warning.\n"
      "\n"
      "Operator errors (unknown command or option, malformed flag value)\n"
      "print this text and exit 2; runtime failures exit 1.\n";
  return 2;
}

/// Builds the telemetry front end from --telemetry/--metrics and the
/// durability knobs. Returns null when neither flag is given, so the
/// simulator hot path stays untouched. A resumed run appends to the
/// existing stream instead of truncating it.
std::unique_ptr<obs::Telemetry> make_telemetry(const CliArgs& args,
                                               bool append = false) {
  const std::string path = args.get("telemetry", "");
  const bool metrics = args.get_bool("metrics", false);
  if (path.empty() && !metrics) return nullptr;
  std::unique_ptr<obs::TraceSink> sink;
  if (!path.empty()) {
    obs::JsonlSinkOptions options;
    options.fsync_every_lines =
        static_cast<std::size_t>(args.get_int("telemetry-fsync", 0));
    options.rotate_bytes = static_cast<std::size_t>(
        args.get_int("telemetry-rotate-mb", 0) * 1024 * 1024);
    options.append = append;
    sink = std::make_unique<obs::JsonlSink>(path, options);
  }
  return std::make_unique<obs::Telemetry>(std::move(sink));
}

/// End-of-command telemetry epilogue shared by simulate and compare.
void finish_telemetry(const CliArgs& args, obs::Telemetry* tel) {
  if (!tel) return;
  tel->flush();
  if (args.get_bool("metrics", false)) {
    std::cout << '\n';
    tel->metrics().snapshot().print(std::cout);
  }
  if (const std::string path = args.get("telemetry", ""); !path.empty())
    std::cout << "\nwrote telemetry to " << path
              << " (inspect with `sbsched report --telemetry=" << path
              << "`)\n";
}

Trace load_trace(const CliArgs& args, SwfReadStats* stats = nullptr) {
  const std::string path = args.get("trace", "");
  if (path.empty()) throw UsageError("--trace=<file.swf> is required");
  SwfReadOptions options;
  options.procs_per_node =
      static_cast<int>(args.get_int("procs-per-node", 1));
  Trace trace = read_swf_file(path, options, stats);
  const double load = args.get_double("load", 0.0);
  if (load > 0.0) trace = rescale_to_load(trace, load);
  return trace;
}

/// Builds the fault schedule from --faults/--requeue and wires it into the
/// sim config. The injector must outlive the simulation, hence the
/// caller-owned storage. Returns the resolved fault seed (the only RNG the
/// simulator has) so runs can echo it into telemetry and metrics.
std::optional<std::uint64_t> apply_fault_flags(
    const CliArgs& args, const Trace& trace, SimConfig& sim,
    std::unique_ptr<FaultInjector>& injector) {
  const std::string requeue = args.get("requeue", "resubmit");
  if (requeue == "drop") sim.requeue = RequeuePolicy::Drop;
  else if (requeue != "resubmit")
    throw UsageError("--requeue must be resubmit or drop");

  const std::string spec = args.get("faults", "");
  if (spec.empty()) return std::nullopt;
  const FaultSpec fs = parse_fault_spec(spec);
  injector = std::make_unique<FaultInjector>(FaultInjector::from_spec(
      fs, trace.window_begin, trace.window_end, trace.capacity));
  sim.faults = injector.get();
  return fs.seed;
}

/// Parses an on|off flag shared by --search-cache and --warm-start.
bool on_off_flag(const CliArgs& args, const std::string& key,
                 bool default_on) {
  const std::string v = args.get(key, default_on ? "on" : "off");
  if (v == "on") return true;
  if (v == "off") return false;
  throw UsageError("--" + key + " must be on or off");
}

/// Parses --governor/--governor-thresholds. nullopt = governor off.
std::optional<resilience::GovernorConfig> governor_flags(const CliArgs& args) {
  const bool on = on_off_flag(args, "governor", false);
  const std::string spec = args.get("governor-thresholds", "");
  if (!on) {
    if (!spec.empty())
      throw UsageError("--governor-thresholds requires --governor=on");
    return std::nullopt;
  }
  return resilience::parse_governor_thresholds(spec);
}

SimConfig sim_config(const CliArgs& args,
                     std::unique_ptr<RuntimePredictor>& predictor) {
  SimConfig sim;
  const std::string rstar = args.get("rstar", "actual");
  if (rstar == "requested") {
    sim.use_requested_runtime = true;
  } else if (rstar == "predicted") {
    predictor = std::make_unique<ClassCorrectionPredictor>();
    sim.predictor = predictor.get();
  } else if (rstar != "actual") {
    throw UsageError("--rstar must be actual, requested or predicted");
  }
  return sim;
}

int cmd_generate(int argc, char** argv) {
  CliArgs args(argc, argv, {"month", "out", "scale", "seed", "load"});
  const std::string month = args.get("month", "7/03");
  const std::string out = args.get("out", "");
  if (out.empty()) throw UsageError("--out=<file.swf> is required");
  GeneratorConfig cfg;
  cfg.job_scale = args.get_double("scale", 1.0);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2005));
  Trace trace = generate_month(month, cfg);
  const double load = args.get_double("load", 0.0);
  if (load > 0.0) trace = rescale_to_load(trace, load);
  write_swf_file(out, trace);
  std::cout << "wrote " << trace.jobs.size() << " jobs (" << month
            << ", load " << format_double(trace.offered_load(), 3) << ") to "
            << out << '\n';
  return 0;
}

int cmd_analyze(int argc, char** argv) {
  CliArgs args(argc, argv, {"trace", "procs-per-node", "load"});
  SwfReadStats read_stats;
  const Trace trace = load_trace(args, &read_stats);
  const TraceMix mix = trace_mix(trace);
  const RuntimeMix rmix = runtime_mix(trace);

  std::cout << "trace: " << trace.name << '\n'
            << "capacity: " << trace.capacity << " nodes (source: "
            << swf_capacity_source_name(read_stats.capacity_source) << ")\n"
            << "parsed lines: " << read_stats.data_lines << " ("
            << read_stats.jobs_accepted << " jobs accepted, "
            << read_stats.skipped_total() << " skipped)\n";
  if (read_stats.skipped_total() > 0) {
    std::cout << "  skipped: " << read_stats.skipped_short << " short, "
              << read_stats.skipped_malformed << " malformed, "
              << read_stats.skipped_nonpositive << " non-positive, "
              << read_stats.skipped_too_wide << " too wide\n";
  }
  std::cout << "jobs (in window): " << mix.total_jobs << '\n'
            << "offered load: " << format_double(mix.offered_load, 3)
            << "\n\nJob mix by requested nodes:\n";
  Table t({"range", "jobs", "demand"});
  for (std::size_t r = 0; r < kMixRanges; ++r)
    t.row()
        .add(mix_range_label(r))
        .add(format_double(100.0 * mix.job_fraction[r], 1) + "%")
        .add(format_double(100.0 * mix.demand_fraction[r], 1) + "%");
  t.print(std::cout);

  std::cout << "\nRuntime mix (fractions of all jobs):\n";
  Table rt({"node class", "T<=1h", "T>5h"});
  for (std::size_t c = 0; c < RuntimeMix::kClasses; ++c)
    rt.row()
        .add(runtime_mix_class_label(c))
        .add(format_double(100.0 * rmix.short_fraction[c], 1) + "%")
        .add(format_double(100.0 * rmix.long_fraction[c], 1) + "%");
  rt.print(std::cout);
  return 0;
}

/// The federated path of `simulate`, taken when --clusters is given: N
/// member clusters (each a full simulator + its own search scheduler and
/// fault schedule) under one shared virtual-time loop, with the
/// meta-scheduler routing arrivals and cross-cluster migration rebalancing
/// waiting jobs. Shares the plain path's flag vocabulary; checkpoints use
/// the federation format ("sbs-fed-checkpoint").
int cmd_simulate_federation(const CliArgs& args) {
  // Validate every flag before touching the filesystem, mirroring the
  // single-cluster path.
  std::vector<fed::MemberSpec> members =
      fed::parse_cluster_spec(args.get("clusters", ""));
  for (std::size_t i = 0; i < members.size(); ++i)
    if (members[i].name.empty()) members[i].name = "c" + std::to_string(i);
  const std::unique_ptr<fed::MetaScheduler> meta =
      fed::make_meta(args.get("meta", "least-loaded"));

  fed::FederationConfig fc;
  fc.migration.enabled = on_off_flag(args, "migrate", true);
  const std::string rstar = args.get("rstar", "actual");
  if (rstar == "requested") {
    fc.use_requested_runtime = true;
  } else if (rstar != "actual") {
    throw UsageError(rstar == "predicted"
                         ? "--clusters does not support --rstar=predicted: "
                           "the online predictor is per machine and its "
                           "state is not snapshotted"
                         : "--rstar must be actual or requested");
  }
  const std::string requeue = args.get("requeue", "resubmit");
  if (requeue == "drop") fc.requeue = RequeuePolicy::Drop;
  else if (requeue != "resubmit")
    throw UsageError("--requeue must be resubmit or drop");

  const std::string spec = args.get("policy", "DDS/lxf/dynB");
  const auto L = static_cast<std::size_t>(args.get_int("nodes", 1000));
  const double deadline_ms = args.get_double("search-deadline-ms", -1.0);
  const auto threads =
      static_cast<std::size_t>(args.get_int("search-threads", 0));
  const bool cache = on_off_flag(args, "search-cache", true);
  const bool simd = on_off_flag(args, "search-simd", true);
  const bool prune = on_off_flag(args, "search-prune", true);
  const bool warm = on_off_flag(args, "warm-start", false);
  const std::optional<resilience::GovernorConfig> governor =
      governor_flags(args);
  std::optional<ChaosSpec> chaos_spec;
  if (const std::string cspec = args.get("chaos", ""); !cspec.empty())
    chaos_spec = parse_chaos_spec(cspec);

  const Trace trace = load_trace(args);

  // Federation-scoped chaos: blackout and link-partition windows generated
  // deterministically from the spec's seed over the trace window.
  std::optional<ChaosSchedule> chaos;
  if (chaos_spec) {
    chaos.emplace(ChaosSchedule::from_spec(
        *chaos_spec, trace.window_begin, trace.window_end,
        static_cast<int>(members.size())));
    fc.chaos = &*chaos;
  }

  // Per-member fault schedules from one --faults spec: each member derives
  // its own deterministic schedule (seed + cluster id) against its own
  // machine size, so failures are independent across the federation yet
  // reproducible from the one seed.
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  std::optional<std::uint64_t> seed;
  if (const std::string fspec = args.get("faults", ""); !fspec.empty()) {
    const FaultSpec fs = parse_fault_spec(fspec);
    seed = fs.seed;
    for (std::size_t i = 0; i < members.size(); ++i) {
      FaultSpec mfs = fs;
      mfs.seed = fs.seed + i;
      injectors.push_back(std::make_unique<FaultInjector>(
          FaultInjector::from_spec(mfs, trace.window_begin, trace.window_end,
                                   members[i].nodes)));
      members[i].faults = injectors.back().get();
    }
  }
  fc.members = members;

  const std::string ckpt_path = args.get("checkpoint", "");
  const auto ckpt_every =
      static_cast<std::uint64_t>(args.get_int("checkpoint-every", 0));
  const std::string resume_path = args.get("resume", "");
  if (ckpt_path.empty() != (ckpt_every == 0))
    throw UsageError(
        "--checkpoint and --checkpoint-every must be given together");

  const std::vector<std::pair<std::string, std::string>> cli_echo = {
      {"clusters", args.get("clusters", "")},
      {"meta", meta->name()},
      {"migrate", fc.migration.enabled ? "on" : "off"},
      {"chaos", args.get("chaos", "")},
      {"policy", spec},
      {"nodes", std::to_string(L)},
      {"rstar", rstar},
      {"load", args.get("load", "")},
      {"faults", args.get("faults", "")},
      {"requeue", requeue},
      {"search-threads", std::to_string(threads)},
      {"search-cache", cache ? "on" : "off"},
      {"search-simd", simd ? "on" : "off"},
      {"search-prune", prune ? "on" : "off"},
      {"warm-start", warm ? "on" : "off"},
      {"governor", governor ? "on" : "off"},
      {"governor-thresholds", governor ? governor->spec() : ""},
  };

  resilience::FederationCheckpointData resume_data;
  std::string parent_id;
  if (!resume_path.empty()) {
    resume_data = resilience::read_federation_checkpoint(resume_path);
    parent_id = resume_data.id;
    for (const auto& [key, stored] : resume_data.cli)
      for (const auto& [ours_key, ours] : cli_echo)
        if (key == ours_key && stored != ours)
          throw Error("--resume configuration mismatch: checkpoint has --" +
                      key + "=" + stored + ", this run has --" + key + "=" +
                      ours);
    fc.resume = &resume_data.snapshot;
    std::cout << "resuming from " << resume_path << " (" << resume_data.id
              << ", federation event " << resume_data.snapshot.fed_events
              << ")\n";
  }
  if (!ckpt_path.empty()) {
    fc.checkpoint_every = ckpt_every;
    fc.checkpoint_sink = [&](const sim::FederationSnapshot& snap) {
      resilience::FederationCheckpointData data;
      data.id = resilience::checkpoint_id(snap.fed_events);
      data.parent = parent_id;
      data.cli = cli_echo;
      data.snapshot = snap;
      resilience::write_federation_checkpoint(ckpt_path, data);
    };
  }

  install_signal_handlers();
  fc.interrupt = &g_interrupted;

  const std::unique_ptr<obs::Telemetry> telemetry =
      make_telemetry(args, /*append=*/!resume_path.empty());
  fc.telemetry = telemetry.get();
  if (telemetry) {
    obs::RunContext context;
    if (seed) {
      context.has_seed = true;
      context.seed = *seed;
    }
    if (governor) context.governor = governor->spec();
    context.checkpoint_parent = parent_id;
    context.resumed = !resume_path.empty();
    telemetry->set_context(context);
  }

  const auto factory =
      make_policy_factory(spec, L, deadline_ms, threads, cache, warm,
                          governor ? &*governor : nullptr, simd, prune);

  fed::FederationResult fr;
  try {
    fed::Federation federation(trace, factory, *meta, fc);
    fr = federation.run();
  } catch (const Error& e) {
    if (g_interrupted.load()) {
      std::cerr << "interrupted: " << e.what() << '\n';
      if (!ckpt_path.empty())
        std::cerr << "resume with: sbsched simulate --resume=" << ckpt_path
                  << " <same flags>\n";
      return 130;
    }
    throw;
  }

  int total_nodes = 0;
  for (const fed::MemberSpec& m : members) total_nodes += m.nodes;
  const Summary summary = summarize(fr.outcomes);
  std::cout << "policy: " << spec << " via meta " << meta->name() << " over "
            << members.size() << " clusters (" << total_nodes
            << " nodes)\njobs: " << summary.jobs << '\n';
  Table t({"measure", "value"});
  t.row().add("avg wait (h)").add(summary.avg_wait_h);
  t.row().add("max wait (h)").add(summary.max_wait_h);
  t.row().add("p98 wait (h)").add(summary.p98_wait_h);
  t.row().add("avg bounded slowdown").add(summary.avg_bounded_slowdown);
  t.row().add("avg turnaround (h)").add(summary.avg_turnaround_h);
  t.row().add("avg queue length (all members)").add(fr.avg_queue_length);
  t.row().add("cross-cluster migrations")
      .add(static_cast<long long>(fr.migrations));
  t.row().add("utilization").add(average_utilization(
      fr.outcomes, total_nodes, trace.window_begin, trace.window_end));
  t.print(std::cout);

  std::cout << "\nPer-member accounting:\n";
  Table mt({"cluster", "nodes", "routed", "migr in/out", "decisions",
            "jobs killed", "never started", "avg queue len"});
  for (const fed::MemberResult& mr : fr.members)
    mt.row()
        .add(mr.name)
        .add(mr.capacity)
        .add(static_cast<long long>(mr.routed))
        .add(std::to_string(mr.migrations_in) + "/" +
             std::to_string(mr.migrations_out))
        .add(static_cast<long long>(mr.sim.decision_stats.decisions))
        .add(static_cast<long long>(mr.sim.fault_stats.jobs_killed))
        .add(static_cast<long long>(mr.sim.fault_stats.jobs_unstarted))
        .add(mr.sim.avg_queue_length);
  mt.print(std::cout);

  if (args.get_bool("classes", false)) {
    const JobClassGrid grid = class_grid(fr.outcomes);
    std::cout << "\nAvg wait (h) per job class:\n";
    std::vector<std::string> headers = {"class"};
    for (std::size_t r = 0; r < JobClassGrid::kRuntimeClasses; ++r)
      headers.push_back(runtime_class_label(r));
    Table ct(headers);
    for (std::size_t n = 0; n < JobClassGrid::kNodeClasses; ++n) {
      ct.row().add(node_class_label(n));
      for (std::size_t r = 0; r < JobClassGrid::kRuntimeClasses; ++r)
        ct.add(grid.count[n][r] ? format_double(grid.avg_wait_h[n][r], 1)
                                : std::string("-"));
    }
    ct.print(std::cout);
  }

  finish_telemetry(args, telemetry.get());

  if (const std::string path = args.get("outcomes", ""); !path.empty()) {
    CsvWriter csv(path, {"job_id", "cluster", "start_s", "end_s", "requeues",
                         "lost_node_s", "completed"});
    for (std::size_t j = 0; j < fr.outcomes.size(); ++j) {
      const auto& o = fr.outcomes[j];
      csv.write_row({std::to_string(o.job.id), std::to_string(fr.owner[j]),
                     std::to_string(o.start), std::to_string(o.end),
                     std::to_string(o.requeue_count),
                     std::to_string(o.lost_node_seconds),
                     o.completed ? "1" : "0"});
    }
    std::cout << "\nwrote outcomes to " << path << '\n';
  }

  if (const std::string path = args.get("timeline", ""); !path.empty()) {
    CsvWriter csv(path, {"time_s", "busy_nodes", "queued_jobs"});
    const auto util = utilization_timeline(fr.outcomes);
    const auto queue = queue_timeline(fr.outcomes);
    std::size_t qi = 0;
    int queued = 0;
    for (const auto& p : util) {
      while (qi < queue.size() && queue[qi].time <= p.time)
        queued = queue[qi++].value;
      csv.write_row({std::to_string(p.time), std::to_string(p.value),
                     std::to_string(queued)});
    }
    std::cout << "\nwrote timeline to " << path << '\n';
  }
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  CliArgs args(argc, argv,
               {"trace", "procs-per-node", "policy", "nodes", "rstar",
                "load", "classes", "timeline", "faults", "requeue",
                "search-deadline-ms", "search-threads", "search-cache",
                "search-simd", "search-prune", "warm-start", "governor",
                "governor-thresholds", "clusters", "meta", "migrate",
                "chaos", "checkpoint", "checkpoint-every", "resume",
                "outcomes",
                "telemetry", "telemetry-fsync", "telemetry-rotate-mb",
                "metrics"});
  if (!args.get("clusters", "").empty()) return cmd_simulate_federation(args);
  if (!args.get("meta", "").empty() || !args.get("migrate", "").empty() ||
      !args.get("chaos", "").empty())
    throw UsageError("--meta/--migrate/--chaos require --clusters");
  // Validate every flag before touching the filesystem, so operator
  // mistakes exit 2 even when the inputs are also wrong.
  std::unique_ptr<RuntimePredictor> predictor;
  SimConfig sim = sim_config(args, predictor);
  const std::string spec = args.get("policy", "DDS/lxf/dynB");
  const auto L = static_cast<std::size_t>(args.get_int("nodes", 1000));
  const double deadline_ms =
      args.get_double("search-deadline-ms", -1.0);
  const auto threads =
      static_cast<std::size_t>(args.get_int("search-threads", 0));
  const bool cache = on_off_flag(args, "search-cache", true);
  const bool simd = on_off_flag(args, "search-simd", true);
  const bool prune = on_off_flag(args, "search-prune", true);
  const bool warm = on_off_flag(args, "warm-start", false);
  const std::optional<resilience::GovernorConfig> governor =
      governor_flags(args);

  const Trace trace = load_trace(args);
  std::unique_ptr<FaultInjector> injector;
  const std::optional<std::uint64_t> seed =
      apply_fault_flags(args, trace, sim, injector);

  const std::string ckpt_path = args.get("checkpoint", "");
  const auto ckpt_every =
      static_cast<std::uint64_t>(args.get_int("checkpoint-every", 0));
  const std::string resume_path = args.get("resume", "");
  if (ckpt_path.empty() != (ckpt_every == 0))
    throw UsageError(
        "--checkpoint and --checkpoint-every must be given together");
  if ((!ckpt_path.empty() || !resume_path.empty()) && sim.predictor != nullptr)
    throw UsageError(
        "--rstar=predicted cannot be checkpointed or resumed: the "
        "predictor learns online and its state is not snapshotted");

  // The resolved configuration that must match between the checkpointing
  // run and the resuming run for bit-identity; echoed into every
  // checkpoint and cross-checked by --resume.
  const std::vector<std::pair<std::string, std::string>> cli_echo = {
      {"policy", spec},
      {"nodes", std::to_string(L)},
      {"rstar", args.get("rstar", "actual")},
      {"load", args.get("load", "")},
      {"faults", args.get("faults", "")},
      {"requeue", args.get("requeue", "resubmit")},
      {"search-threads", std::to_string(threads)},
      {"search-cache", cache ? "on" : "off"},
      {"search-simd", simd ? "on" : "off"},
      {"search-prune", prune ? "on" : "off"},
      {"warm-start", warm ? "on" : "off"},
      {"governor", governor ? "on" : "off"},
      {"governor-thresholds", governor ? governor->spec() : ""},
  };

  resilience::CheckpointData resume_data;
  std::string parent_id;
  if (!resume_path.empty()) {
    resume_data = resilience::read_checkpoint(resume_path);
    parent_id = resume_data.id;
    for (const auto& [key, stored] : resume_data.cli)
      for (const auto& [ours_key, ours] : cli_echo)
        if (key == ours_key && stored != ours)
          throw Error("--resume configuration mismatch: checkpoint has --" +
                      key + "=" + stored + ", this run has --" + key + "=" +
                      ours);
    sim.resume = &resume_data.snapshot;
    std::cout << "resuming from " << resume_path << " (" << resume_data.id
              << ", event " << resume_data.snapshot.events << ", t="
              << resume_data.snapshot.now << "s)\n";
  }
  if (!ckpt_path.empty()) {
    sim.checkpoint_every = ckpt_every;
    sim.checkpoint_sink = [&](const sim::SimSnapshot& snap) {
      resilience::CheckpointData data;
      data.id = resilience::checkpoint_id(snap.events);
      data.parent = parent_id;
      data.cli = cli_echo;
      data.snapshot = snap;
      resilience::write_checkpoint(ckpt_path, data);
    };
  }

  install_signal_handlers();
  sim.interrupt = &g_interrupted;

  const std::unique_ptr<obs::Telemetry> telemetry =
      make_telemetry(args, /*append=*/!resume_path.empty());
  sim.telemetry = telemetry.get();
  if (telemetry) {
    obs::RunContext context;
    if (seed) {
      context.has_seed = true;
      context.seed = *seed;
    }
    if (governor) context.governor = governor->spec();
    context.checkpoint_parent = parent_id;
    context.resumed = !resume_path.empty();
    telemetry->set_context(context);
  }

  // Thresholds always come from the fault-free FCFS-backfill run, so the
  // excessive-wait measures quantify degradation against a healthy machine.
  // That internal run stays out of the telemetry stream, which records only
  // the requested policy. On --resume it is simply re-run: it is
  // deterministic, so the thresholds are identical to the original run's.
  SimConfig healthy = sim;
  healthy.faults = nullptr;
  healthy.telemetry = nullptr;
  healthy.resume = nullptr;
  healthy.checkpoint_every = 0;
  healthy.checkpoint_sink = nullptr;
  MonthEval eval;
  try {
    const Thresholds th = fcfs_thresholds(trace, healthy);
    eval = evaluate_spec(trace, spec, L, th, sim, true, deadline_ms, threads,
                         cache, warm, governor ? &*governor : nullptr, simd,
                         prune);
  } catch (const Error& e) {
    if (g_interrupted.load()) {
      std::cerr << "interrupted: " << e.what() << '\n';
      if (!ckpt_path.empty())
        std::cerr << "resume with: sbsched simulate --resume=" << ckpt_path
                  << " <same flags>\n";
      return 130;
    }
    throw;
  }

  std::cout << "policy: " << eval.policy << "\njobs: " << eval.summary.jobs
            << '\n';
  Table t({"measure", "value"});
  t.row().add("avg wait (h)").add(eval.summary.avg_wait_h);
  t.row().add("max wait (h)").add(eval.summary.max_wait_h);
  t.row().add("p98 wait (h)").add(eval.summary.p98_wait_h);
  t.row().add("avg bounded slowdown").add(eval.summary.avg_bounded_slowdown);
  t.row().add("avg turnaround (h)").add(eval.summary.avg_turnaround_h);
  t.row().add("avg queue length").add(eval.avg_queue_length);
  t.row().add("total E^max vs FCFS-BF (h)").add(eval.e_max.total_h);
  t.row().add("jobs with E^max").add(eval.e_max.count);
  t.row().add("total E^98% vs FCFS-BF (h)").add(eval.e_p98.total_h);
  t.row().add("utilization").add(average_utilization(
      eval.outcomes, trace.capacity, trace.window_begin, trace.window_end));
  if (eval.sched.nodes_visited > 0) {
    t.row().add("search nodes visited").add(eval.sched.nodes_visited);
    t.row().add("scheduling decisions").add(eval.sched.decisions);
  }
  t.row().add("max think time (us)").add(eval.sched.max_think_time_us);
  t.row().add("max queue depth").add(eval.sched.max_queue_depth);
  if (eval.sched.deadline_hits > 0)
    t.row().add("search deadline hits").add(eval.sched.deadline_hits);
  if (sim.faults != nullptr) {
    t.row().add("node failures").add(eval.faults.node_failures);
    t.row().add("min capacity (nodes)").add(eval.faults.min_capacity);
    t.row().add("jobs killed by faults").add(eval.faults.jobs_killed);
    t.row().add("jobs requeued").add(eval.faults.jobs_requeued);
    t.row().add("jobs dropped").add(eval.faults.jobs_dropped);
    t.row().add("jobs never started").add(eval.faults.jobs_unstarted);
    t.row()
        .add("lost node-hours")
        .add(eval.faults.lost_node_seconds / 3600.0);
  }
  t.print(std::cout);

  if (args.get_bool("classes", false)) {
    const JobClassGrid grid = class_grid(eval.outcomes);
    std::cout << "\nAvg wait (h) per job class:\n";
    std::vector<std::string> headers = {"class"};
    for (std::size_t r = 0; r < JobClassGrid::kRuntimeClasses; ++r)
      headers.push_back(runtime_class_label(r));
    Table ct(headers);
    for (std::size_t n = 0; n < JobClassGrid::kNodeClasses; ++n) {
      ct.row().add(node_class_label(n));
      for (std::size_t r = 0; r < JobClassGrid::kRuntimeClasses; ++r)
        ct.add(grid.count[n][r] ? format_double(grid.avg_wait_h[n][r], 1)
                                : std::string("-"));
    }
    ct.print(std::cout);
  }

  finish_telemetry(args, telemetry.get());

  if (const std::string path = args.get("outcomes", ""); !path.empty()) {
    CsvWriter csv(path, {"job_id", "start_s", "end_s", "requeues",
                         "lost_node_s", "completed"});
    for (const auto& o : eval.outcomes)
      csv.write_row({std::to_string(o.job.id), std::to_string(o.start),
                     std::to_string(o.end), std::to_string(o.requeue_count),
                     std::to_string(o.lost_node_seconds),
                     o.completed ? "1" : "0"});
    std::cout << "\nwrote outcomes to " << path << '\n';
  }

  if (const std::string path = args.get("timeline", ""); !path.empty()) {
    CsvWriter csv(path, {"time_s", "busy_nodes", "queued_jobs"});
    const auto util = utilization_timeline(eval.outcomes);
    const auto queue = queue_timeline(eval.outcomes);
    // Merge the two step functions on their union of change points.
    std::size_t qi = 0;
    int queued = 0;
    for (const auto& p : util) {
      while (qi < queue.size() && queue[qi].time <= p.time)
        queued = queue[qi++].value;
      csv.write_row({std::to_string(p.time), std::to_string(p.value),
                     std::to_string(queued)});
    }
    std::cout << "\nwrote timeline to " << path << '\n';
  }
  return 0;
}

int cmd_compare(int argc, char** argv) {
  CliArgs args(argc, argv,
               {"trace", "procs-per-node", "policies", "nodes", "rstar",
                "load", "faults", "requeue", "search-deadline-ms",
                "search-threads", "search-cache", "search-simd",
                "search-prune", "warm-start", "governor",
                "governor-thresholds", "telemetry", "telemetry-fsync",
                "telemetry-rotate-mb", "metrics"});
  std::unique_ptr<RuntimePredictor> predictor;
  SimConfig sim = sim_config(args, predictor);
  const std::optional<resilience::GovernorConfig> governor =
      governor_flags(args);
  const Trace trace = load_trace(args);
  std::unique_ptr<FaultInjector> injector;
  const std::optional<std::uint64_t> seed =
      apply_fault_flags(args, trace, sim, injector);
  const std::unique_ptr<obs::Telemetry> telemetry = make_telemetry(args);
  sim.telemetry = telemetry.get();
  if (telemetry) {
    obs::RunContext context;
    if (seed) {
      context.has_seed = true;
      context.seed = *seed;
    }
    if (governor) context.governor = governor->spec();
    telemetry->set_context(context);
  }
  const auto L = static_cast<std::size_t>(args.get_int("nodes", 1000));
  const double deadline_ms =
      args.get_double("search-deadline-ms", -1.0);
  const auto threads =
      static_cast<std::size_t>(args.get_int("search-threads", 0));
  const bool cache = on_off_flag(args, "search-cache", true);
  const bool simd = on_off_flag(args, "search-simd", true);
  const bool prune = on_off_flag(args, "search-prune", true);
  const bool warm = on_off_flag(args, "warm-start", false);

  std::vector<std::string> specs;
  std::string list = args.get("policies", "FCFS-BF,LXF-BF,DDS/lxf/dynB");
  while (!list.empty()) {
    const auto comma = list.find(',');
    specs.push_back(list.substr(0, comma));
    list = comma == std::string::npos ? "" : list.substr(comma + 1);
  }

  // As in cmd_simulate: thresholds from the fault-free FCFS-backfill run,
  // kept out of the telemetry stream.
  SimConfig healthy = sim;
  healthy.faults = nullptr;
  healthy.telemetry = nullptr;
  const Thresholds th = fcfs_thresholds(trace, healthy);
  Table t({"policy", "avg wait (h)", "max wait (h)", "p98 wait (h)",
           "avg bsld", "E^max tot (h)", "#w/E^max", "max think (us)",
           "max queue"});
  for (const auto& spec : specs) {
    // A fresh predictor per policy keeps the comparisons independent.
    std::unique_ptr<RuntimePredictor> local;
    SimConfig policy_sim = sim;
    if (sim.predictor) {
      local = std::make_unique<ClassCorrectionPredictor>();
      policy_sim.predictor = local.get();
    }
    const MonthEval eval =
        evaluate_spec(trace, spec, L, th, policy_sim, false, deadline_ms,
                      threads, cache, warm, governor ? &*governor : nullptr,
                      simd, prune);
    t.row()
        .add(eval.policy)
        .add(eval.summary.avg_wait_h)
        .add(eval.summary.max_wait_h)
        .add(eval.summary.p98_wait_h)
        .add(eval.summary.avg_bounded_slowdown)
        .add(eval.e_max.total_h, 1)
        .add(eval.e_max.count)
        .add(eval.sched.max_think_time_us)
        .add(eval.sched.max_queue_depth);
  }
  t.print(std::cout);
  finish_telemetry(args, telemetry.get());
  return 0;
}

int cmd_serve(int argc, char** argv) {
  CliArgs args(argc, argv,
               {"socket", "capacity", "policy", "nodes", "search-deadline-ms",
                "search-threads", "search-cache", "search-simd",
                "search-prune", "warm-start", "governor",
                "governor-thresholds", "admission", "time-scale", "batch-ms",
                "request-timeout-ms", "max-connections", "max-decisions",
                "checkpoint", "checkpoint-every", "resume", "telemetry",
                "telemetry-fsync", "telemetry-rotate-mb", "metrics"});
  service::ServiceConfig cfg;
  cfg.socket_path = args.get("socket", "");
  if (cfg.socket_path.empty())
    throw UsageError("--socket=<path> is required");
  cfg.capacity = static_cast<int>(args.get_int("capacity", 128));
  if (cfg.capacity <= 0) throw UsageError("--capacity must be positive");
  cfg.policy = args.get("policy", "DDS/lxf/dynB");
  cfg.node_limit = static_cast<std::size_t>(args.get_int("nodes", 1000));
  cfg.deadline_ms = args.get_double("search-deadline-ms", -1.0);
  cfg.threads = static_cast<std::size_t>(args.get_int("search-threads", 0));
  cfg.cache = on_off_flag(args, "search-cache", true);
  cfg.simd = on_off_flag(args, "search-simd", true);
  cfg.dominance = on_off_flag(args, "search-prune", true);
  cfg.warm_start = on_off_flag(args, "warm-start", false);
  cfg.governor = governor_flags(args);
  cfg.admission = service::parse_admission_spec(args.get("admission", ""));
  cfg.time_scale = args.get_int("time-scale", 1000);
  if (cfg.time_scale <= 0) throw UsageError("--time-scale must be positive");
  cfg.batch_ms = static_cast<int>(args.get_int("batch-ms", 10));
  if (cfg.batch_ms < 0) throw UsageError("--batch-ms must be >= 0");
  cfg.request_timeout_ms =
      static_cast<int>(args.get_int("request-timeout-ms", 5000));
  cfg.max_connections = static_cast<int>(args.get_int("max-connections", 64));
  cfg.max_decisions =
      static_cast<std::uint64_t>(args.get_int("max-decisions", 0));
  cfg.checkpoint_path = args.get("checkpoint", "");
  cfg.checkpoint_every =
      static_cast<std::uint64_t>(args.get_int("checkpoint-every", 0));
  cfg.resume_path = args.get("resume", "");
  if (!args.has("checkpoint") && args.has("checkpoint-every"))
    throw UsageError("--checkpoint-every requires --checkpoint");

  install_signal_handlers();
  cfg.interrupt = &g_interrupted;

  const std::unique_ptr<obs::Telemetry> telemetry =
      make_telemetry(args, /*append=*/!cfg.resume_path.empty());
  cfg.telemetry = telemetry.get();
  if (telemetry) {
    obs::RunContext context;
    if (cfg.governor) context.governor = cfg.governor->spec();
    context.resumed = !cfg.resume_path.empty();
    telemetry->set_context(context);
  }

  service::SchedulerService service(cfg);
  // Flushed before the event loop so a harness can wait for this line as
  // the readiness signal.
  std::cout << "serving on " << cfg.socket_path << ": capacity "
            << cfg.capacity << " nodes, policy " << cfg.policy << ", x"
            << cfg.time_scale << " virtual time"
            << (cfg.resume_path.empty() ? "" : " (resumed)") << std::endl;
  const service::ServiceStats stats = service.run();

  std::cout << "drained at t=" << service.virtual_now() << "s\n";
  Table t({"counter", "value"});
  t.row().add("requests").add(stats.requests);
  t.row().add("protocol errors").add(stats.protocol_errors);
  t.row().add("connections").add(stats.connections);
  t.row().add("request timeouts").add(stats.timeouts);
  t.row().add("admitted").add(stats.admitted);
  t.row().add("rejected (backpressure)").add(stats.rejected_backpressure);
  t.row().add("rejected (shed)").add(stats.rejected_shed);
  t.row().add("rejected (draining)").add(stats.rejected_drain);
  t.row().add("started").add(stats.started);
  t.row().add("completed").add(stats.completed);
  t.row().add("decisions").add(stats.decisions);
  t.row().add("checkpoints").add(stats.checkpoints);
  t.print(std::cout);

  finish_telemetry(args, telemetry.get());
  return 0;
}

/// Orders telemetry segment files in write order. Rotation keeps the bare
/// path as the oldest segment and appends ".1", ".2", ... for newer ones,
/// so "run.jsonl.10" must sort after "run.jsonl.2" — plain lexicographic
/// order (what glob() returns) would interleave them.
void sort_segment_paths(std::vector<std::string>& paths) {
  const auto split = [](const std::string& p) {
    const auto dot = p.find_last_of('.');
    std::pair<std::string, long long> out{p, -1};
    if (dot == std::string::npos || dot + 1 == p.size()) return out;
    const std::string suffix = p.substr(dot + 1);
    if (suffix.find_first_not_of("0123456789") != std::string::npos)
      return out;
    out.first = p.substr(0, dot);
    out.second = std::stoll(suffix);
    return out;
  };
  std::stable_sort(paths.begin(), paths.end(),
                   [&](const std::string& a, const std::string& b) {
                     const auto ka = split(a);
                     const auto kb = split(b);
                     return ka.first != kb.first ? ka.first < kb.first
                                                 : ka.second < kb.second;
                   });
}

/// Expands a --telemetry value that names multiple files: a comma-separated
/// list whose entries may be globs. List order is preserved; each glob's
/// matches are sorted into segment write order.
std::vector<std::string> expand_telemetry_paths(const std::string& value) {
  std::vector<std::string> paths;
  std::string rest = value;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string token = rest.substr(0, comma);
    rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    if (token.empty()) continue;
    if (token.find_first_of("*?[") != std::string::npos) {
      ::glob_t g{};
      const int rc = ::glob(token.c_str(), 0, nullptr, &g);
      if (rc == GLOB_NOMATCH) {
        ::globfree(&g);
        throw Error("--telemetry glob \"" + token + "\" matched no files");
      }
      SBS_CHECK_MSG(rc == 0, "glob(" << token << ") failed");
      std::vector<std::string> matched(g.gl_pathv, g.gl_pathv + g.gl_pathc);
      ::globfree(&g);
      sort_segment_paths(matched);
      paths.insert(paths.end(), matched.begin(), matched.end());
    } else {
      paths.push_back(token);
    }
  }
  if (paths.empty())
    throw Error("--telemetry \"" + value + "\" names no files");
  return paths;
}

int cmd_report(int argc, char** argv) {
  CliArgs args(argc, argv, {"telemetry"});
  const std::string value = args.get("telemetry", "");
  if (value.empty())
    throw UsageError("--telemetry=<file.jsonl[,more|glob]> is required");
  // A plain single path keeps the automatic `.1`, `.2` segment discovery;
  // a list or glob is read exactly as given, as one logical stream.
  const bool multi = value.find_first_of(",*?[") != std::string::npos;
  const obs::TelemetrySummary summary =
      multi ? obs::read_telemetry_files(expand_telemetry_paths(value))
            : obs::read_telemetry(value);
  obs::print_report(summary, std::cout);
  return 0;
}

}  // namespace
}  // namespace sbs::cli

int main(int argc, char** argv) {
  using namespace sbs::cli;
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "generate") return cmd_generate(argc - 1, argv + 1);
    if (command == "analyze") return cmd_analyze(argc - 1, argv + 1);
    if (command == "simulate") return cmd_simulate(argc - 1, argv + 1);
    if (command == "compare") return cmd_compare(argc - 1, argv + 1);
    if (command == "serve") return cmd_serve(argc - 1, argv + 1);
    if (command == "report") return cmd_report(argc - 1, argv + 1);
    throw sbs::UsageError("unknown command \"" + command + "\"");
  } catch (const sbs::UsageError& e) {
    // Operator error: say what was wrong, show usage, exit 2 — distinct
    // from runtime failures (exit 1) so scripts can tell them apart.
    std::cerr << "error: " << e.what() << '\n';
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
