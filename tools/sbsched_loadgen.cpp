// sbsched_loadgen — open-loop overload harness for `sbsched serve`.
//
//   sbsched_loadgen --socket=/tmp/sbsched.sock
//       [--rate-start=5] [--rate-stop=50] [--rate-step=5]
//       [--step-seconds=5] [--nodes-min=1] [--nodes-max=32]
//       [--runtime-min=60] [--runtime-max=3600] [--priorities=4]
//       [--seed=1] [--retry-base-ms=50] [--retry-cap-ms=5000]
//       [--max-retries=6] [--stats-interval-ms=500] [--settle-ms=2000]
//       [--drain=on|off] [--out=loadgen.json]
//
// Sweeps the arrival rate from --rate-start to --rate-stop jobs/second in
// --rate-step increments, holding each rate for --step-seconds of wall
// clock. The generator is OPEN-LOOP: submissions fire on a Poisson arrival
// schedule that does not wait for responses, so offered load keeps rising
// even while the server is rejecting — exactly the regime that exercises
// backpressure, shedding and the overload governor. Rejected submissions
// (retry_after) are retried with capped exponential backoff plus jitter,
// honoring the server's delay hint; shed and draining rejections are
// terminal. A stats poll every --stats-interval-ms samples queue depth,
// shed floor and governor rung occupancy.
//
// Output is one machine-readable JSON document (stdout or --out): a row
// per rate step with client-side p50/p99/p999 request latency, the
// server's decision-latency quantiles, rejection counts by class, queue
// depth, and the governor-rung occupancy delta over the step; plus totals
// and the server's own final counters so a harness can reconcile the two
// sides exactly. Everything random is derived from --seed.

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace sbs::loadgen {
namespace {

std::int64_t wall_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// SplitMix64: tiny, seedable, identical on every platform (unlike the
/// standard-library distributions, whose output may differ by vendor).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double u01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [lo, hi].
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next() % static_cast<std::uint64_t>(hi - lo + 1));
  }

  /// Exponential inter-arrival gap (µs) for `rate` arrivals per second.
  std::int64_t exp_gap_us(double rate) {
    const double u = 1.0 - u01();  // (0, 1]
    return static_cast<std::int64_t>(-std::log(u) / rate * 1e6) + 1;
  }

 private:
  std::uint64_t state_;
};

/// One rate step's accumulators.
struct StepStats {
  double rate = 0.0;
  std::int64_t begin_us = 0;
  std::int64_t end_us = 0;
  std::uint64_t offered = 0;    ///< first-attempt submissions fired
  std::uint64_t attempts = 0;   ///< submissions including retries
  std::uint64_t accepted = 0;
  std::uint64_t rejected_backpressure = 0;
  std::uint64_t rejected_shed = 0;
  std::uint64_t rejected_draining = 0;
  std::uint64_t gave_up = 0;    ///< retry budget exhausted
  std::uint64_t errors = 0;     ///< error responses
  std::vector<std::uint64_t> request_us;  ///< client-side latencies
  std::uint64_t queue_depth_max = 0;
  std::uint64_t queue_depth_sum = 0;
  std::uint64_t queue_samples = 0;
  int shed_floor_max = 0;
  int gov_level_max = -1;
  std::uint64_t think_p50_us = 0;  ///< last server sample in the step
  std::uint64_t think_p99_us = 0;
  std::vector<std::uint64_t> gov_begin;  ///< rung occupancy at step start
  std::vector<std::uint64_t> gov_end;
};

/// A scheduled future action, ordered by due time.
struct Event {
  enum class Kind { Arrival, Retry, StatsPoll };
  std::int64_t due_us = 0;
  Kind kind = Kind::Arrival;
  service::SubmitRequest job;  ///< meaningful for Retry
  int attempt = 0;             ///< retries already made (Retry)
  bool operator>(const Event& other) const { return due_us > other.due_us; }
};

/// What we remember about an in-flight request until its response arrives.
struct Pending {
  bool is_stats = false;
  std::int64_t sent_us = 0;
  int step = 0;
  int attempt = 0;
  service::SubmitRequest job;
};

struct Config {
  std::string socket_path;
  double rate_start = 5.0;
  double rate_stop = 50.0;
  double rate_step = 5.0;
  double step_seconds = 5.0;
  int nodes_min = 1, nodes_max = 32;
  std::int64_t runtime_min = 60, runtime_max = 3600;
  int priorities = 4;
  std::uint64_t seed = 1;
  std::int64_t retry_base_ms = 50, retry_cap_ms = 5000;
  int max_retries = 6;
  std::int64_t stats_interval_ms = 500;
  std::int64_t settle_ms = 2000;
  bool drain = false;
  std::string out_path;
};

class LoadGen {
 public:
  explicit LoadGen(const Config& cfg) : cfg_(cfg), rng_(cfg.seed) {
    connect_socket();
  }

  ~LoadGen() {
    if (fd_ >= 0) ::close(fd_);
  }

  int run() {
    const std::int64_t t0 = wall_us();
    begin_step(t0);
    schedule_at(t0 + rng_.exp_gap_us(current_rate()), Event::Kind::Arrival);
    schedule_at(t0, Event::Kind::StatsPoll);

    while (true) {
      const std::int64_t now = wall_us();
      // Step boundaries are checked eagerly so a stalled socket cannot
      // stretch a step.
      if (!sweep_done_ && now >= step_end_us_) advance_step(now);
      if (sweep_done_ && finished(now)) break;
      fire_due_events(now);
      pump_socket();
    }
    finish();
    write_output();
    return 0;
  }

 private:
  double current_rate() const {
    return cfg_.rate_start + cfg_.rate_step * static_cast<double>(step_);
  }

  bool last_step() const {
    return cfg_.rate_start + cfg_.rate_step * static_cast<double>(step_ + 1) >
           cfg_.rate_stop + 1e-9;
  }

  bool finished(std::int64_t now) const {
    if (!inflight_.empty() && now < sweep_end_us_ + cfg_.settle_ms * 1000)
      return false;
    return true;
  }

  void connect_socket() {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    SBS_CHECK_MSG(fd_ >= 0, "socket(): " << std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    SBS_CHECK_MSG(cfg_.socket_path.size() < sizeof(addr.sun_path),
                  "socket path too long: " << cfg_.socket_path);
    std::strncpy(addr.sun_path, cfg_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    const int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr));
    SBS_CHECK_MSG(rc == 0, "connect(" << cfg_.socket_path
                                      << "): " << std::strerror(errno));
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }

  void schedule(Event e) { events_.push(std::move(e)); }

  void schedule_at(std::int64_t due_us, Event::Kind kind) {
    Event e;
    e.due_us = due_us;
    e.kind = kind;
    schedule(std::move(e));
  }

  void begin_step(std::int64_t now) {
    StepStats s;
    s.rate = current_rate();
    s.begin_us = now;
    s.gov_begin = last_gov_;
    steps_.push_back(std::move(s));
    step_end_us_ =
        now + static_cast<std::int64_t>(cfg_.step_seconds * 1e6);
  }

  void advance_step(std::int64_t now) {
    steps_.back().end_us = now;
    steps_.back().gov_end = last_gov_;
    if (last_step()) {
      sweep_done_ = true;
      sweep_end_us_ = now;
      return;
    }
    ++step_;
    begin_step(now);
  }

  void fire_due_events(std::int64_t now) {
    while (!events_.empty() && events_.top().due_us <= now) {
      Event e = events_.top();
      events_.pop();
      switch (e.kind) {
        case Event::Kind::Arrival: {
          if (sweep_done_) break;  // sweep over: stop generating
          service::SubmitRequest job;
          job.nodes = static_cast<int>(
              rng_.uniform(cfg_.nodes_min, cfg_.nodes_max));
          job.runtime = rng_.uniform(cfg_.runtime_min, cfg_.runtime_max);
          job.requested = job.runtime;
          job.user = static_cast<int>(rng_.uniform(0, 16));
          job.priority = static_cast<int>(
              rng_.uniform(0, cfg_.priorities - 1));
          ++steps_.back().offered;
          send_submit(job, /*attempt=*/0, now);
          schedule_at(now + rng_.exp_gap_us(current_rate()),
                      Event::Kind::Arrival);
          break;
        }
        case Event::Kind::Retry:
          send_submit(e.job, e.attempt, now);
          break;
        case Event::Kind::StatsPoll: {
          send_stats(now);
          schedule_at(now + cfg_.stats_interval_ms * 1000,
                      Event::Kind::StatsPoll);
          break;
        }
      }
    }
  }

  void send_submit(const service::SubmitRequest& job, int attempt,
                   std::int64_t now) {
    const std::int64_t id = next_id_++;
    obs::JsonWriter w;
    w.begin_object()
        .field("op", "submit")
        .field("id", id)
        .field("nodes", job.nodes)
        .field("runtime", static_cast<std::int64_t>(job.runtime))
        .field("requested", static_cast<std::int64_t>(job.requested))
        .field("user", job.user)
        .field("priority", job.priority)
        .end_object();
    service::encode_frame(w.str(), out_);
    inflight_[id] = Pending{false, now, step_, attempt, job};
    ++steps_.back().attempts;
  }

  void send_stats(std::int64_t now) {
    const std::int64_t id = next_id_++;
    obs::JsonWriter w;
    w.begin_object().field("op", "stats").field("id", id).end_object();
    service::encode_frame(w.str(), out_);
    Pending p;
    p.is_stats = true;
    p.sent_us = now;
    p.step = step_;
    inflight_[id] = p;
  }

  /// One poll round: flush queued writes, read whatever arrived, dispatch
  /// complete response frames. The poll timeout is bounded by the next
  /// scheduled event so arrivals stay on schedule.
  void pump_socket() {
    const std::int64_t now = wall_us();
    std::int64_t next_due = step_end_us_;
    if (!events_.empty()) next_due = std::min(next_due, events_.top().due_us);
    int timeout_ms =
        static_cast<int>(std::max<std::int64_t>(0, (next_due - now) / 1000));
    timeout_ms = std::min(timeout_ms, 50);

    pollfd pfd{fd_, POLLIN, 0};
    if (!out_.empty()) pfd.events |= POLLOUT;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0) return;

    if (pfd.revents & POLLOUT) {
      const ssize_t n = ::write(fd_, out_.data(), out_.size());
      if (n > 0) out_.erase(0, static_cast<std::size_t>(n));
      else if (n < 0 && errno != EAGAIN && errno != EINTR)
        throw Error(std::string("write(): ") + std::strerror(errno));
    }
    if (pfd.revents & (POLLIN | POLLHUP)) {
      char buf[65536];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n > 0) {
        decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
        while (auto payload = decoder_.next()) handle_response(*payload);
      } else if (n == 0) {
        throw Error("server closed the connection mid-run");
      } else if (errno != EAGAIN && errno != EINTR) {
        throw Error(std::string("read(): ") + std::strerror(errno));
      }
    }
  }

  void handle_response(std::string_view payload) {
    const obs::JsonValue v = obs::parse_json(payload);
    const obs::JsonValue* idv = v.find("id");
    const obs::JsonValue* statusv = v.find("status");
    SBS_CHECK_MSG(idv && statusv, "response missing id/status: " << payload);
    const auto it = inflight_.find(idv->as_int());
    if (it == inflight_.end()) return;  // late response for a forgotten id
    const Pending p = it->second;
    inflight_.erase(it);
    const std::int64_t now = wall_us();
    StepStats& s = steps_[static_cast<std::size_t>(p.step)];

    if (p.is_stats) {
      record_stats_sample(v, s);
      return;
    }

    s.request_us.push_back(static_cast<std::uint64_t>(now - p.sent_us));
    const std::string& status = statusv->as_string();
    if (status == "accepted") {
      ++s.accepted;
    } else if (status == "retry_after") {
      ++s.rejected_backpressure;
      retry_later(p, v, now, s);
    } else if (status == "shed") {
      ++s.rejected_shed;  // terminal: same priority would shed again
    } else if (status == "draining") {
      ++s.rejected_draining;  // terminal: the server never re-admits
    } else if (status == "error") {
      ++s.errors;
    } else {
      throw Error("unknown response status \"" + status + "\"");
    }
  }

  /// Backoff: at least the server's hint, at least base*2^attempt, plus up
  /// to 25% jitter, capped. The jitter keeps synchronized retries from
  /// re-forming the burst that caused the rejection.
  void retry_later(const Pending& p, const obs::JsonValue& v,
                   std::int64_t now, StepStats& s) {
    if (p.attempt >= cfg_.max_retries) {
      ++s.gave_up;
      return;
    }
    const obs::JsonValue* hint = v.find("delay_ms");
    std::int64_t delay = hint ? hint->as_int() : cfg_.retry_base_ms;
    delay = std::max(delay, cfg_.retry_base_ms << p.attempt);
    delay = std::min(delay, cfg_.retry_cap_ms);
    delay += static_cast<std::int64_t>(static_cast<double>(delay) * 0.25 *
                                       rng_.u01());
    delay = std::min(delay, cfg_.retry_cap_ms);
    Event e;
    e.due_us = now + delay * 1000;
    e.kind = Event::Kind::Retry;
    e.job = p.job;
    e.attempt = p.attempt + 1;
    schedule(std::move(e));
  }

  void record_stats_sample(const obs::JsonValue& v, StepStats& s) {
    const auto u64 = [&](const char* key) -> std::uint64_t {
      const obs::JsonValue* f = v.find(key);
      return f ? static_cast<std::uint64_t>(f->as_int()) : 0;
    };
    const std::uint64_t depth = u64("queue_depth");
    s.queue_depth_max = std::max(s.queue_depth_max, depth);
    s.queue_depth_sum += depth;
    ++s.queue_samples;
    if (const obs::JsonValue* f = v.find("shed_floor"))
      s.shed_floor_max =
          std::max(s.shed_floor_max, static_cast<int>(f->as_int()));
    if (const obs::JsonValue* f = v.find("gov_level"))
      s.gov_level_max =
          std::max(s.gov_level_max, static_cast<int>(f->as_int()));
    s.think_p50_us = u64("think_p50_us");
    s.think_p99_us = u64("think_p99_us");
    if (const obs::JsonValue* g = v.find("gov_decisions");
        g && g->is_array()) {
      last_gov_.clear();
      for (const obs::JsonValue& e : g->array)
        last_gov_.push_back(static_cast<std::uint64_t>(e.as_int()));
    }
  }

  /// After the sweep: capture the server's final counters with one last
  /// synchronous stats round-trip, then optionally ask it to drain.
  void finish() {
    if (!steps_.empty() && steps_.back().end_us == 0) {
      steps_.back().end_us = wall_us();
      steps_.back().gov_end = last_gov_;
    }
    service::Client client(cfg_.socket_path);
    final_stats_ = client.stats();
    if (cfg_.drain) {
      client.drain();
      drained_ = true;
    }
  }

  void append_step(obs::JsonWriter& w, const StepStats& s) const {
    using service::nearest_rank_us;
    w.begin_object()
        .field("rate_jobs_per_s", s.rate)
        .field("duration_ms", (s.end_us - s.begin_us) / 1000)
        .field("offered", s.offered)
        .field("attempts", s.attempts)
        .field("accepted", s.accepted)
        .field("rejected_backpressure", s.rejected_backpressure)
        .field("rejected_shed", s.rejected_shed)
        .field("rejected_draining", s.rejected_draining)
        .field("gave_up", s.gave_up)
        .field("errors", s.errors)
        .field("request_p50_us", nearest_rank_us(s.request_us, 0.50))
        .field("request_p99_us", nearest_rank_us(s.request_us, 0.99))
        .field("request_p999_us", nearest_rank_us(s.request_us, 0.999))
        .field("think_p50_us", s.think_p50_us)
        .field("think_p99_us", s.think_p99_us)
        .field("queue_depth_max", s.queue_depth_max)
        .field("queue_depth_mean",
               s.queue_samples
                   ? static_cast<double>(s.queue_depth_sum) /
                         static_cast<double>(s.queue_samples)
                   : 0.0)
        .field("shed_floor_max", s.shed_floor_max)
        .field("gov_level_max", s.gov_level_max);
    // Occupancy delta: decisions spent on each governor rung during this
    // step (from the stats samples bracketing it).
    w.key("gov_decisions_delta").begin_array();
    for (std::size_t i = 0; i < s.gov_end.size(); ++i) {
      const std::uint64_t before = i < s.gov_begin.size() ? s.gov_begin[i] : 0;
      w.value(s.gov_end[i] - before);
    }
    w.end_array();
    w.end_object();
  }

  void write_output() const {
    obs::JsonWriter w;
    w.begin_object()
        .field("socket", cfg_.socket_path)
        .field("seed", cfg_.seed)
        .field("drained", drained_);
    w.key("steps").begin_array();
    for (const StepStats& s : steps_) append_step(w, s);
    w.end_array();

    StepStats total;
    std::vector<std::uint64_t> all_us;
    for (const StepStats& s : steps_) {
      total.offered += s.offered;
      total.attempts += s.attempts;
      total.accepted += s.accepted;
      total.rejected_backpressure += s.rejected_backpressure;
      total.rejected_shed += s.rejected_shed;
      total.rejected_draining += s.rejected_draining;
      total.gave_up += s.gave_up;
      total.errors += s.errors;
      all_us.insert(all_us.end(), s.request_us.begin(), s.request_us.end());
    }
    w.key("totals")
        .begin_object()
        .field("offered", total.offered)
        .field("attempts", total.attempts)
        .field("accepted", total.accepted)
        .field("rejected_backpressure", total.rejected_backpressure)
        .field("rejected_shed", total.rejected_shed)
        .field("rejected_draining", total.rejected_draining)
        .field("gave_up", total.gave_up)
        .field("errors", total.errors)
        .field("request_p50_us", service::nearest_rank_us(all_us, 0.50))
        .field("request_p99_us", service::nearest_rank_us(all_us, 0.99))
        .field("request_p999_us", service::nearest_rank_us(all_us, 0.999))
        .end_object();

    // The server's own counters at sweep end, verbatim, so a harness can
    // reconcile both sides without a second tool.
    w.key("server").begin_object();
    if (final_stats_.is_object())
      for (const auto& [key, value] : final_stats_.object) {
        if (key == "id" || key == "status") continue;
        if (value.kind == obs::JsonValue::Kind::Number) {
          w.field(key, value.as_double());
        } else if (value.kind == obs::JsonValue::Kind::String) {
          w.field(key, value.as_string());
        } else if (value.is_array()) {
          w.key(key).begin_array();
          for (const obs::JsonValue& e : value.array) w.value(e.as_double());
          w.end_array();
        }
      }
    w.end_object();
    w.end_object();

    if (cfg_.out_path.empty()) {
      std::cout << w.str() << '\n';
    } else {
      std::ofstream out(cfg_.out_path);
      SBS_CHECK_MSG(out.good(), "cannot open " << cfg_.out_path);
      out << w.str() << '\n';
      std::cerr << "wrote " << cfg_.out_path << '\n';
    }
  }

  Config cfg_;
  Rng rng_;
  int fd_ = -1;
  std::string out_;
  service::FrameDecoder decoder_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::map<std::int64_t, Pending> inflight_;
  std::int64_t next_id_ = 1;
  int step_ = 0;
  std::int64_t step_end_us_ = 0;
  std::int64_t sweep_end_us_ = 0;
  bool sweep_done_ = false;
  bool drained_ = false;
  std::vector<StepStats> steps_;
  std::vector<std::uint64_t> last_gov_;
  obs::JsonValue final_stats_;
};

int usage() {
  std::cerr <<
      "usage: sbsched_loadgen --socket=<path>\n"
      "    [--rate-start=5] [--rate-stop=50] [--rate-step=5]\n"
      "    [--step-seconds=5] [--nodes-min=1] [--nodes-max=32]\n"
      "    [--runtime-min=60] [--runtime-max=3600] [--priorities=4]\n"
      "    [--seed=1] [--retry-base-ms=50] [--retry-cap-ms=5000]\n"
      "    [--max-retries=6] [--stats-interval-ms=500] [--settle-ms=2000]\n"
      "    [--drain=on|off] [--out=loadgen.json]\n"
      "Open-loop Poisson load sweep against an `sbsched serve` socket;\n"
      "prints one JSON document of per-step latency/rejection/governor\n"
      "measurements. --drain=on asks the server to drain afterwards.\n";
  return 2;
}

int run(int argc, char** argv) {
  CliArgs args(argc, argv,
               {"socket", "rate-start", "rate-stop", "rate-step",
                "step-seconds", "nodes-min", "nodes-max", "runtime-min",
                "runtime-max", "priorities", "seed", "retry-base-ms",
                "retry-cap-ms", "max-retries", "stats-interval-ms",
                "settle-ms", "drain", "out"});
  Config cfg;
  cfg.socket_path = args.get("socket", "");
  if (cfg.socket_path.empty()) throw UsageError("--socket=<path> is required");
  cfg.rate_start = args.get_double("rate-start", 5.0);
  cfg.rate_stop = args.get_double("rate-stop", 50.0);
  cfg.rate_step = args.get_double("rate-step", 5.0);
  if (cfg.rate_start <= 0 || cfg.rate_step <= 0 ||
      cfg.rate_stop < cfg.rate_start)
    throw UsageError("rates must satisfy 0 < rate-start <= rate-stop "
                     "with rate-step > 0");
  cfg.step_seconds = args.get_double("step-seconds", 5.0);
  if (cfg.step_seconds <= 0) throw UsageError("--step-seconds must be > 0");
  cfg.nodes_min = static_cast<int>(args.get_int("nodes-min", 1));
  cfg.nodes_max = static_cast<int>(args.get_int("nodes-max", 32));
  if (cfg.nodes_min < 1 || cfg.nodes_max < cfg.nodes_min)
    throw UsageError("need 1 <= nodes-min <= nodes-max");
  cfg.runtime_min = args.get_int("runtime-min", 60);
  cfg.runtime_max = args.get_int("runtime-max", 3600);
  if (cfg.runtime_min < 1 || cfg.runtime_max < cfg.runtime_min)
    throw UsageError("need 1 <= runtime-min <= runtime-max");
  cfg.priorities = static_cast<int>(args.get_int("priorities", 4));
  if (cfg.priorities < 1) throw UsageError("--priorities must be >= 1");
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.retry_base_ms = args.get_int("retry-base-ms", 50);
  cfg.retry_cap_ms = args.get_int("retry-cap-ms", 5000);
  cfg.max_retries = static_cast<int>(args.get_int("max-retries", 6));
  cfg.stats_interval_ms = args.get_int("stats-interval-ms", 500);
  cfg.settle_ms = args.get_int("settle-ms", 2000);
  const std::string drain = args.get("drain", "off");
  if (drain != "on" && drain != "off")
    throw UsageError("--drain must be on or off");
  cfg.drain = drain == "on";
  cfg.out_path = args.get("out", "");

  LoadGen gen(cfg);
  return gen.run();
}

}  // namespace
}  // namespace sbs::loadgen

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  try {
    return sbs::loadgen::run(argc, argv);
  } catch (const sbs::UsageError& e) {
    std::cerr << "error: " << e.what() << '\n';
    return sbs::loadgen::usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
