
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/backfill.cpp" "src/policies/CMakeFiles/sbs_policies.dir/backfill.cpp.o" "gcc" "src/policies/CMakeFiles/sbs_policies.dir/backfill.cpp.o.d"
  "/root/repo/src/policies/lookahead.cpp" "src/policies/CMakeFiles/sbs_policies.dir/lookahead.cpp.o" "gcc" "src/policies/CMakeFiles/sbs_policies.dir/lookahead.cpp.o.d"
  "/root/repo/src/policies/multi_queue.cpp" "src/policies/CMakeFiles/sbs_policies.dir/multi_queue.cpp.o" "gcc" "src/policies/CMakeFiles/sbs_policies.dir/multi_queue.cpp.o.d"
  "/root/repo/src/policies/priority.cpp" "src/policies/CMakeFiles/sbs_policies.dir/priority.cpp.o" "gcc" "src/policies/CMakeFiles/sbs_policies.dir/priority.cpp.o.d"
  "/root/repo/src/policies/selective.cpp" "src/policies/CMakeFiles/sbs_policies.dir/selective.cpp.o" "gcc" "src/policies/CMakeFiles/sbs_policies.dir/selective.cpp.o.d"
  "/root/repo/src/policies/slack_backfill.cpp" "src/policies/CMakeFiles/sbs_policies.dir/slack_backfill.cpp.o" "gcc" "src/policies/CMakeFiles/sbs_policies.dir/slack_backfill.cpp.o.d"
  "/root/repo/src/policies/weighted_priority.cpp" "src/policies/CMakeFiles/sbs_policies.dir/weighted_priority.cpp.o" "gcc" "src/policies/CMakeFiles/sbs_policies.dir/weighted_priority.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/sbs_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/jobs/CMakeFiles/sbs_jobs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
