file(REMOVE_RECURSE
  "libsbs_policies.a"
)
