file(REMOVE_RECURSE
  "CMakeFiles/sbs_policies.dir/backfill.cpp.o"
  "CMakeFiles/sbs_policies.dir/backfill.cpp.o.d"
  "CMakeFiles/sbs_policies.dir/lookahead.cpp.o"
  "CMakeFiles/sbs_policies.dir/lookahead.cpp.o.d"
  "CMakeFiles/sbs_policies.dir/multi_queue.cpp.o"
  "CMakeFiles/sbs_policies.dir/multi_queue.cpp.o.d"
  "CMakeFiles/sbs_policies.dir/priority.cpp.o"
  "CMakeFiles/sbs_policies.dir/priority.cpp.o.d"
  "CMakeFiles/sbs_policies.dir/selective.cpp.o"
  "CMakeFiles/sbs_policies.dir/selective.cpp.o.d"
  "CMakeFiles/sbs_policies.dir/slack_backfill.cpp.o"
  "CMakeFiles/sbs_policies.dir/slack_backfill.cpp.o.d"
  "CMakeFiles/sbs_policies.dir/weighted_priority.cpp.o"
  "CMakeFiles/sbs_policies.dir/weighted_priority.cpp.o.d"
  "libsbs_policies.a"
  "libsbs_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbs_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
