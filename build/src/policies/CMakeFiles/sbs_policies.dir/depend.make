# Empty dependencies file for sbs_policies.
# This may be replaced when dependencies are built.
