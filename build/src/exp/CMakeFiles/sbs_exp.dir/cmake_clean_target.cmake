file(REMOVE_RECURSE
  "libsbs_exp.a"
)
