file(REMOVE_RECURSE
  "CMakeFiles/sbs_exp.dir/grid.cpp.o"
  "CMakeFiles/sbs_exp.dir/grid.cpp.o.d"
  "CMakeFiles/sbs_exp.dir/policy_factory.cpp.o"
  "CMakeFiles/sbs_exp.dir/policy_factory.cpp.o.d"
  "CMakeFiles/sbs_exp.dir/runner.cpp.o"
  "CMakeFiles/sbs_exp.dir/runner.cpp.o.d"
  "libsbs_exp.a"
  "libsbs_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbs_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
