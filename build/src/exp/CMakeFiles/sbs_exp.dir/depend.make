# Empty dependencies file for sbs_exp.
# This may be replaced when dependencies are built.
