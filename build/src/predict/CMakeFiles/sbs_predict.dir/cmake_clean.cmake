file(REMOVE_RECURSE
  "CMakeFiles/sbs_predict.dir/predictor.cpp.o"
  "CMakeFiles/sbs_predict.dir/predictor.cpp.o.d"
  "libsbs_predict.a"
  "libsbs_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbs_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
