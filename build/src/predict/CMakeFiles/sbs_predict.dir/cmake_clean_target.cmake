file(REMOVE_RECURSE
  "libsbs_predict.a"
)
