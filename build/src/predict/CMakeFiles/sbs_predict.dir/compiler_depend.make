# Empty compiler generated dependencies file for sbs_predict.
# This may be replaced when dependencies are built.
