file(REMOVE_RECURSE
  "CMakeFiles/sbs_core.dir/fairshare.cpp.o"
  "CMakeFiles/sbs_core.dir/fairshare.cpp.o.d"
  "CMakeFiles/sbs_core.dir/local_search.cpp.o"
  "CMakeFiles/sbs_core.dir/local_search.cpp.o.d"
  "CMakeFiles/sbs_core.dir/objective.cpp.o"
  "CMakeFiles/sbs_core.dir/objective.cpp.o.d"
  "CMakeFiles/sbs_core.dir/schedule_builder.cpp.o"
  "CMakeFiles/sbs_core.dir/schedule_builder.cpp.o.d"
  "CMakeFiles/sbs_core.dir/search.cpp.o"
  "CMakeFiles/sbs_core.dir/search.cpp.o.d"
  "CMakeFiles/sbs_core.dir/search_problem.cpp.o"
  "CMakeFiles/sbs_core.dir/search_problem.cpp.o.d"
  "CMakeFiles/sbs_core.dir/search_scheduler.cpp.o"
  "CMakeFiles/sbs_core.dir/search_scheduler.cpp.o.d"
  "CMakeFiles/sbs_core.dir/tree_size.cpp.o"
  "CMakeFiles/sbs_core.dir/tree_size.cpp.o.d"
  "libsbs_core.a"
  "libsbs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
