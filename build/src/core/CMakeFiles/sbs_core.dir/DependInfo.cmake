
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fairshare.cpp" "src/core/CMakeFiles/sbs_core.dir/fairshare.cpp.o" "gcc" "src/core/CMakeFiles/sbs_core.dir/fairshare.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "src/core/CMakeFiles/sbs_core.dir/local_search.cpp.o" "gcc" "src/core/CMakeFiles/sbs_core.dir/local_search.cpp.o.d"
  "/root/repo/src/core/objective.cpp" "src/core/CMakeFiles/sbs_core.dir/objective.cpp.o" "gcc" "src/core/CMakeFiles/sbs_core.dir/objective.cpp.o.d"
  "/root/repo/src/core/schedule_builder.cpp" "src/core/CMakeFiles/sbs_core.dir/schedule_builder.cpp.o" "gcc" "src/core/CMakeFiles/sbs_core.dir/schedule_builder.cpp.o.d"
  "/root/repo/src/core/search.cpp" "src/core/CMakeFiles/sbs_core.dir/search.cpp.o" "gcc" "src/core/CMakeFiles/sbs_core.dir/search.cpp.o.d"
  "/root/repo/src/core/search_problem.cpp" "src/core/CMakeFiles/sbs_core.dir/search_problem.cpp.o" "gcc" "src/core/CMakeFiles/sbs_core.dir/search_problem.cpp.o.d"
  "/root/repo/src/core/search_scheduler.cpp" "src/core/CMakeFiles/sbs_core.dir/search_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/sbs_core.dir/search_scheduler.cpp.o.d"
  "/root/repo/src/core/tree_size.cpp" "src/core/CMakeFiles/sbs_core.dir/tree_size.cpp.o" "gcc" "src/core/CMakeFiles/sbs_core.dir/tree_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/sbs_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/jobs/CMakeFiles/sbs_jobs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
