file(REMOVE_RECURSE
  "libsbs_core.a"
)
