# Empty compiler generated dependencies file for sbs_core.
# This may be replaced when dependencies are built.
