# Empty compiler generated dependencies file for sbs_cluster.
# This may be replaced when dependencies are built.
