file(REMOVE_RECURSE
  "libsbs_cluster.a"
)
