file(REMOVE_RECURSE
  "CMakeFiles/sbs_cluster.dir/resource_profile.cpp.o"
  "CMakeFiles/sbs_cluster.dir/resource_profile.cpp.o.d"
  "libsbs_cluster.a"
  "libsbs_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbs_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
