file(REMOVE_RECURSE
  "CMakeFiles/sbs_sim.dir/scheduler.cpp.o"
  "CMakeFiles/sbs_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/sbs_sim.dir/simulator.cpp.o"
  "CMakeFiles/sbs_sim.dir/simulator.cpp.o.d"
  "libsbs_sim.a"
  "libsbs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
