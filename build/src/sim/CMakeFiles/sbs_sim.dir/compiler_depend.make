# Empty compiler generated dependencies file for sbs_sim.
# This may be replaced when dependencies are built.
