file(REMOVE_RECURSE
  "libsbs_sim.a"
)
