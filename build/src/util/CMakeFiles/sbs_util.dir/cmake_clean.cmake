file(REMOVE_RECURSE
  "CMakeFiles/sbs_util.dir/cli.cpp.o"
  "CMakeFiles/sbs_util.dir/cli.cpp.o.d"
  "CMakeFiles/sbs_util.dir/csv.cpp.o"
  "CMakeFiles/sbs_util.dir/csv.cpp.o.d"
  "CMakeFiles/sbs_util.dir/rng.cpp.o"
  "CMakeFiles/sbs_util.dir/rng.cpp.o.d"
  "CMakeFiles/sbs_util.dir/stats.cpp.o"
  "CMakeFiles/sbs_util.dir/stats.cpp.o.d"
  "CMakeFiles/sbs_util.dir/table.cpp.o"
  "CMakeFiles/sbs_util.dir/table.cpp.o.d"
  "CMakeFiles/sbs_util.dir/thread_pool.cpp.o"
  "CMakeFiles/sbs_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/sbs_util.dir/time.cpp.o"
  "CMakeFiles/sbs_util.dir/time.cpp.o.d"
  "libsbs_util.a"
  "libsbs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
