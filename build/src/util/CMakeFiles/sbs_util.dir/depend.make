# Empty dependencies file for sbs_util.
# This may be replaced when dependencies are built.
