file(REMOVE_RECURSE
  "libsbs_util.a"
)
