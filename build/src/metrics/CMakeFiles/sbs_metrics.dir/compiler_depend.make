# Empty compiler generated dependencies file for sbs_metrics.
# This may be replaced when dependencies are built.
