
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/fairness.cpp" "src/metrics/CMakeFiles/sbs_metrics.dir/fairness.cpp.o" "gcc" "src/metrics/CMakeFiles/sbs_metrics.dir/fairness.cpp.o.d"
  "/root/repo/src/metrics/job_class.cpp" "src/metrics/CMakeFiles/sbs_metrics.dir/job_class.cpp.o" "gcc" "src/metrics/CMakeFiles/sbs_metrics.dir/job_class.cpp.o.d"
  "/root/repo/src/metrics/summary.cpp" "src/metrics/CMakeFiles/sbs_metrics.dir/summary.cpp.o" "gcc" "src/metrics/CMakeFiles/sbs_metrics.dir/summary.cpp.o.d"
  "/root/repo/src/metrics/timeline.cpp" "src/metrics/CMakeFiles/sbs_metrics.dir/timeline.cpp.o" "gcc" "src/metrics/CMakeFiles/sbs_metrics.dir/timeline.cpp.o.d"
  "/root/repo/src/metrics/trace_mix.cpp" "src/metrics/CMakeFiles/sbs_metrics.dir/trace_mix.cpp.o" "gcc" "src/metrics/CMakeFiles/sbs_metrics.dir/trace_mix.cpp.o.d"
  "/root/repo/src/metrics/users.cpp" "src/metrics/CMakeFiles/sbs_metrics.dir/users.cpp.o" "gcc" "src/metrics/CMakeFiles/sbs_metrics.dir/users.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/sbs_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/jobs/CMakeFiles/sbs_jobs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
