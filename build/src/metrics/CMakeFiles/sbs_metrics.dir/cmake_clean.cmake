file(REMOVE_RECURSE
  "CMakeFiles/sbs_metrics.dir/fairness.cpp.o"
  "CMakeFiles/sbs_metrics.dir/fairness.cpp.o.d"
  "CMakeFiles/sbs_metrics.dir/job_class.cpp.o"
  "CMakeFiles/sbs_metrics.dir/job_class.cpp.o.d"
  "CMakeFiles/sbs_metrics.dir/summary.cpp.o"
  "CMakeFiles/sbs_metrics.dir/summary.cpp.o.d"
  "CMakeFiles/sbs_metrics.dir/timeline.cpp.o"
  "CMakeFiles/sbs_metrics.dir/timeline.cpp.o.d"
  "CMakeFiles/sbs_metrics.dir/trace_mix.cpp.o"
  "CMakeFiles/sbs_metrics.dir/trace_mix.cpp.o.d"
  "CMakeFiles/sbs_metrics.dir/users.cpp.o"
  "CMakeFiles/sbs_metrics.dir/users.cpp.o.d"
  "libsbs_metrics.a"
  "libsbs_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbs_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
