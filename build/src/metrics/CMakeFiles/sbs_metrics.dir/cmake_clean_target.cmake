file(REMOVE_RECURSE
  "libsbs_metrics.a"
)
