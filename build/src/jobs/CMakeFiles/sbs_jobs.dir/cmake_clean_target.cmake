file(REMOVE_RECURSE
  "libsbs_jobs.a"
)
