file(REMOVE_RECURSE
  "CMakeFiles/sbs_jobs.dir/swf.cpp.o"
  "CMakeFiles/sbs_jobs.dir/swf.cpp.o.d"
  "CMakeFiles/sbs_jobs.dir/trace.cpp.o"
  "CMakeFiles/sbs_jobs.dir/trace.cpp.o.d"
  "libsbs_jobs.a"
  "libsbs_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbs_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
