
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jobs/swf.cpp" "src/jobs/CMakeFiles/sbs_jobs.dir/swf.cpp.o" "gcc" "src/jobs/CMakeFiles/sbs_jobs.dir/swf.cpp.o.d"
  "/root/repo/src/jobs/trace.cpp" "src/jobs/CMakeFiles/sbs_jobs.dir/trace.cpp.o" "gcc" "src/jobs/CMakeFiles/sbs_jobs.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
