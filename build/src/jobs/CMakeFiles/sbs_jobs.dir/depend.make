# Empty dependencies file for sbs_jobs.
# This may be replaced when dependencies are built.
