file(REMOVE_RECURSE
  "CMakeFiles/sbs_workload.dir/arrival.cpp.o"
  "CMakeFiles/sbs_workload.dir/arrival.cpp.o.d"
  "CMakeFiles/sbs_workload.dir/generator.cpp.o"
  "CMakeFiles/sbs_workload.dir/generator.cpp.o.d"
  "CMakeFiles/sbs_workload.dir/ncsa_tables.cpp.o"
  "CMakeFiles/sbs_workload.dir/ncsa_tables.cpp.o.d"
  "libsbs_workload.a"
  "libsbs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
