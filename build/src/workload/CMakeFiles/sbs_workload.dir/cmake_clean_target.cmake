file(REMOVE_RECURSE
  "libsbs_workload.a"
)
