# Empty compiler generated dependencies file for sbs_workload.
# This may be replaced when dependencies are built.
