file(REMOVE_RECURSE
  "CMakeFiles/sbsched.dir/sbsched.cpp.o"
  "CMakeFiles/sbsched.dir/sbsched.cpp.o.d"
  "sbsched"
  "sbsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
