# Empty dependencies file for sbsched.
# This may be replaced when dependencies are built.
