file(REMOVE_RECURSE
  "CMakeFiles/goal_tuning.dir/goal_tuning.cpp.o"
  "CMakeFiles/goal_tuning.dir/goal_tuning.cpp.o.d"
  "goal_tuning"
  "goal_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goal_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
