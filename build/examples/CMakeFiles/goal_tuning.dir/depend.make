# Empty dependencies file for goal_tuning.
# This may be replaced when dependencies are built.
