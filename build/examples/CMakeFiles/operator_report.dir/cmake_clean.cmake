file(REMOVE_RECURSE
  "CMakeFiles/operator_report.dir/operator_report.cpp.o"
  "CMakeFiles/operator_report.dir/operator_report.cpp.o.d"
  "operator_report"
  "operator_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
