# Empty compiler generated dependencies file for search_anatomy.
# This may be replaced when dependencies are built.
