file(REMOVE_RECURSE
  "CMakeFiles/search_anatomy.dir/search_anatomy.cpp.o"
  "CMakeFiles/search_anatomy.dir/search_anatomy.cpp.o.d"
  "search_anatomy"
  "search_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
