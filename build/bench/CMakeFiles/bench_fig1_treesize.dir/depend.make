# Empty dependencies file for bench_fig1_treesize.
# This may be replaced when dependencies are built.
