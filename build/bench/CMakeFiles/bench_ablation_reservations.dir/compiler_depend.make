# Empty compiler generated dependencies file for bench_ablation_reservations.
# This may be replaced when dependencies are built.
