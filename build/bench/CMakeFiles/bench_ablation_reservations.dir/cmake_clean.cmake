file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reservations.dir/bench_ablation_reservations.cpp.o"
  "CMakeFiles/bench_ablation_reservations.dir/bench_ablation_reservations.cpp.o.d"
  "bench_ablation_reservations"
  "bench_ablation_reservations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reservations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
