file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_jobmix.dir/bench_table3_jobmix.cpp.o"
  "CMakeFiles/bench_table3_jobmix.dir/bench_table3_jobmix.cpp.o.d"
  "bench_table3_jobmix"
  "bench_table3_jobmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_jobmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
