# Empty compiler generated dependencies file for bench_fig5_job_classes.
# This may be replaced when dependencies are built.
