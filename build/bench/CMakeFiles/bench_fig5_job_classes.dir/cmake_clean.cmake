file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_job_classes.dir/bench_fig5_job_classes.cpp.o"
  "CMakeFiles/bench_fig5_job_classes.dir/bench_fig5_job_classes.cpp.o.d"
  "bench_fig5_job_classes"
  "bench_fig5_job_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_job_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
