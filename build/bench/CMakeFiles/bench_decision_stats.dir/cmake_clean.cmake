file(REMOVE_RECURSE
  "CMakeFiles/bench_decision_stats.dir/bench_decision_stats.cpp.o"
  "CMakeFiles/bench_decision_stats.dir/bench_decision_stats.cpp.o.d"
  "bench_decision_stats"
  "bench_decision_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decision_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
