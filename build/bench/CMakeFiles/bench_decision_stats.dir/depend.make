# Empty dependencies file for bench_decision_stats.
# This may be replaced when dependencies are built.
