# Empty compiler generated dependencies file for bench_ablation_fairshare.
# This may be replaced when dependencies are built.
