file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fairshare.dir/bench_ablation_fairshare.cpp.o"
  "CMakeFiles/bench_ablation_fairshare.dir/bench_ablation_fairshare.cpp.o.d"
  "bench_ablation_fairshare"
  "bench_ablation_fairshare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fairshare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
