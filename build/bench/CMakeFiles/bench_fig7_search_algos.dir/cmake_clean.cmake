file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_search_algos.dir/bench_fig7_search_algos.cpp.o"
  "CMakeFiles/bench_fig7_search_algos.dir/bench_fig7_search_algos.cpp.o.d"
  "bench_fig7_search_algos"
  "bench_fig7_search_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_search_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
