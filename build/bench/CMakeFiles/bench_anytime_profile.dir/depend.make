# Empty dependencies file for bench_anytime_profile.
# This may be replaced when dependencies are built.
