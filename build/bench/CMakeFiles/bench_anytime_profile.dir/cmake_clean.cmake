file(REMOVE_RECURSE
  "CMakeFiles/bench_anytime_profile.dir/bench_anytime_profile.cpp.o"
  "CMakeFiles/bench_anytime_profile.dir/bench_anytime_profile.cpp.o.d"
  "bench_anytime_profile"
  "bench_anytime_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anytime_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
