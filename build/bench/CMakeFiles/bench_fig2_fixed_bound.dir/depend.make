# Empty dependencies file for bench_fig2_fixed_bound.
# This may be replaced when dependencies are built.
