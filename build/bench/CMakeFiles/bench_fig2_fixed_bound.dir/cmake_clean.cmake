file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_fixed_bound.dir/bench_fig2_fixed_bound.cpp.o"
  "CMakeFiles/bench_fig2_fixed_bound.dir/bench_fig2_fixed_bound.cpp.o.d"
  "bench_fig2_fixed_bound"
  "bench_fig2_fixed_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_fixed_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
