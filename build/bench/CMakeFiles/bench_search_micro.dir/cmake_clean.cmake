file(REMOVE_RECURSE
  "CMakeFiles/bench_search_micro.dir/bench_search_micro.cpp.o"
  "CMakeFiles/bench_search_micro.dir/bench_search_micro.cpp.o.d"
  "bench_search_micro"
  "bench_search_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
