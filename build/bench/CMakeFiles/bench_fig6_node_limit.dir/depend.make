# Empty dependencies file for bench_fig6_node_limit.
# This may be replaced when dependencies are built.
