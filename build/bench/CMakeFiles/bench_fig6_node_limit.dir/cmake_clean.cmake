file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_node_limit.dir/bench_fig6_node_limit.cpp.o"
  "CMakeFiles/bench_fig6_node_limit.dir/bench_fig6_node_limit.cpp.o.d"
  "bench_fig6_node_limit"
  "bench_fig6_node_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_node_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
