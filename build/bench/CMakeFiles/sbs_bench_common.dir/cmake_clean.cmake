file(REMOVE_RECURSE
  "../lib/libsbs_bench_common.a"
  "../lib/libsbs_bench_common.pdb"
  "CMakeFiles/sbs_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/sbs_bench_common.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
