# Empty compiler generated dependencies file for sbs_bench_common.
# This may be replaced when dependencies are built.
