file(REMOVE_RECURSE
  "../lib/libsbs_bench_common.a"
)
