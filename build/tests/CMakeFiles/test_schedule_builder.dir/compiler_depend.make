# Empty compiler generated dependencies file for test_schedule_builder.
# This may be replaced when dependencies are built.
