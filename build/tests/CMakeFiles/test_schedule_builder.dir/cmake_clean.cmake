file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_builder.dir/test_schedule_builder.cpp.o"
  "CMakeFiles/test_schedule_builder.dir/test_schedule_builder.cpp.o.d"
  "test_schedule_builder"
  "test_schedule_builder.pdb"
  "test_schedule_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
