file(REMOVE_RECURSE
  "CMakeFiles/test_resource_profile.dir/test_resource_profile.cpp.o"
  "CMakeFiles/test_resource_profile.dir/test_resource_profile.cpp.o.d"
  "test_resource_profile"
  "test_resource_profile.pdb"
  "test_resource_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resource_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
