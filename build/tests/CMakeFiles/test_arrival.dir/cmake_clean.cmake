file(REMOVE_RECURSE
  "CMakeFiles/test_arrival.dir/test_arrival.cpp.o"
  "CMakeFiles/test_arrival.dir/test_arrival.cpp.o.d"
  "test_arrival"
  "test_arrival.pdb"
  "test_arrival[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
