# Empty dependencies file for test_selective_lookahead.
# This may be replaced when dependencies are built.
