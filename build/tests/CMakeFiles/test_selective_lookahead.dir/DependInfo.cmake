
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_selective_lookahead.cpp" "tests/CMakeFiles/test_selective_lookahead.dir/test_selective_lookahead.cpp.o" "gcc" "tests/CMakeFiles/test_selective_lookahead.dir/test_selective_lookahead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/sbs_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sbs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/sbs_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sbs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sbs_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sbs_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/sbs_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/jobs/CMakeFiles/sbs_jobs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sbs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
