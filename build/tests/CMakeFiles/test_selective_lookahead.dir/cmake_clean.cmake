file(REMOVE_RECURSE
  "CMakeFiles/test_selective_lookahead.dir/test_selective_lookahead.cpp.o"
  "CMakeFiles/test_selective_lookahead.dir/test_selective_lookahead.cpp.o.d"
  "test_selective_lookahead"
  "test_selective_lookahead.pdb"
  "test_selective_lookahead[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selective_lookahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
