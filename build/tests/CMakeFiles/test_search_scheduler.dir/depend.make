# Empty dependencies file for test_search_scheduler.
# This may be replaced when dependencies are built.
