file(REMOVE_RECURSE
  "CMakeFiles/test_search_scheduler.dir/test_search_scheduler.cpp.o"
  "CMakeFiles/test_search_scheduler.dir/test_search_scheduler.cpp.o.d"
  "test_search_scheduler"
  "test_search_scheduler.pdb"
  "test_search_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
