file(REMOVE_RECURSE
  "CMakeFiles/test_search_problem.dir/test_search_problem.cpp.o"
  "CMakeFiles/test_search_problem.dir/test_search_problem.cpp.o.d"
  "test_search_problem"
  "test_search_problem.pdb"
  "test_search_problem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_search_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
