# Empty dependencies file for test_search_problem.
# This may be replaced when dependencies are built.
