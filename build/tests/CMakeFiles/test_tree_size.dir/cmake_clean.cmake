file(REMOVE_RECURSE
  "CMakeFiles/test_tree_size.dir/test_tree_size.cpp.o"
  "CMakeFiles/test_tree_size.dir/test_tree_size.cpp.o.d"
  "test_tree_size"
  "test_tree_size.pdb"
  "test_tree_size[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
