# Empty dependencies file for test_tree_size.
# This may be replaced when dependencies are built.
