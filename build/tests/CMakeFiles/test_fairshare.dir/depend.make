# Empty dependencies file for test_fairshare.
# This may be replaced when dependencies are built.
