file(REMOVE_RECURSE
  "CMakeFiles/test_table_csv_cli.dir/test_table_csv_cli.cpp.o"
  "CMakeFiles/test_table_csv_cli.dir/test_table_csv_cli.cpp.o.d"
  "test_table_csv_cli"
  "test_table_csv_cli.pdb"
  "test_table_csv_cli[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_csv_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
