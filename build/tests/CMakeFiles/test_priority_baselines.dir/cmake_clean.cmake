file(REMOVE_RECURSE
  "CMakeFiles/test_priority_baselines.dir/test_priority_baselines.cpp.o"
  "CMakeFiles/test_priority_baselines.dir/test_priority_baselines.cpp.o.d"
  "test_priority_baselines"
  "test_priority_baselines.pdb"
  "test_priority_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_priority_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
