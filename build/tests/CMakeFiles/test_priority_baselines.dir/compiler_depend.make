# Empty compiler generated dependencies file for test_priority_baselines.
# This may be replaced when dependencies are built.
