# Empty dependencies file for test_month_invariants.
# This may be replaced when dependencies are built.
