file(REMOVE_RECURSE
  "CMakeFiles/test_month_invariants.dir/test_month_invariants.cpp.o"
  "CMakeFiles/test_month_invariants.dir/test_month_invariants.cpp.o.d"
  "test_month_invariants"
  "test_month_invariants.pdb"
  "test_month_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_month_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
