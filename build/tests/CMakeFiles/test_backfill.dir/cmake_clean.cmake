file(REMOVE_RECURSE
  "CMakeFiles/test_backfill.dir/test_backfill.cpp.o"
  "CMakeFiles/test_backfill.dir/test_backfill.cpp.o.d"
  "test_backfill"
  "test_backfill.pdb"
  "test_backfill[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backfill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
