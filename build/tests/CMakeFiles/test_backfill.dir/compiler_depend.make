# Empty compiler generated dependencies file for test_backfill.
# This may be replaced when dependencies are built.
