# Empty compiler generated dependencies file for test_policy_factory.
# This may be replaced when dependencies are built.
