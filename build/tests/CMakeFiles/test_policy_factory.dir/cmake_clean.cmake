file(REMOVE_RECURSE
  "CMakeFiles/test_policy_factory.dir/test_policy_factory.cpp.o"
  "CMakeFiles/test_policy_factory.dir/test_policy_factory.cpp.o.d"
  "test_policy_factory"
  "test_policy_factory.pdb"
  "test_policy_factory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
