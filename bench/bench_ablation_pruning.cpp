// Ablation — branch-and-bound pruning, the paper's future-work suggestion
// ("developing more intelligent search algorithms possibly with
// branch-and-bound heuristics for pruning"). Pruning cuts partial paths
// whose objective lower bound cannot beat the incumbent; it changes which
// nodes are visited, so under a fixed budget L it can reach better
// schedules. We compare DDS/lxf/dynB with and without pruning, plus the
// per-runtime bound w(T) variant (the paper's §6.1 suggestion).

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"nodes"});
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 2000));
    banner("Ablation: branch-and-bound pruning + per-runtime bounds",
           options, "rho = 0.9; R* = T; L = " + std::to_string(L));

    auto csv = csv_for(options, "ablation_pruning",
                       {"month", "variant", "avg_wait_h", "max_wait_h",
                        "avg_bsld", "total_Emax_h", "nodes_visited",
                        "paths"});

    struct Variant {
      std::string label;
      bool prune;
      BoundSpec bound;
    };
    const std::vector<Variant> variants = {
        {"DDS/lxf/dynB", false, BoundSpec::dynamic_bound()},
        {"DDS/lxf/dynB+prune", true, BoundSpec::dynamic_bound()},
        {"DDS/lxf/w(T)", false,
         BoundSpec::per_runtime(4 * kHour, 5.0, kHour, 300 * kHour)},
    };

    Table table({"month", "variant", "avg wait (h)", "max wait (h)",
                 "avg bsld", "E^max tot (h)", "paths/decision"});
    for (const auto& month : prepare_months(options, /*load=*/0.9)) {
      for (const auto& v : variants) {
        auto policy = make_search_policy(SearchAlgo::Dds, Branching::Lxf,
                                         v.bound, L, v.prune);
        const MonthEval eval =
            evaluate_policy(month.trace, *policy, month.thresholds);
        const double paths_per_decision =
            eval.sched.decisions
                ? static_cast<double>(eval.sched.paths_explored) /
                      static_cast<double>(eval.sched.decisions)
                : 0.0;
        table.row()
            .add(month.trace.name)
            .add(v.label)
            .add(eval.summary.avg_wait_h)
            .add(eval.summary.max_wait_h)
            .add(eval.summary.avg_bounded_slowdown)
            .add(eval.e_max.total_h, 1)
            .add(paths_per_decision, 1);
        if (csv)
          csv->write_row({month.trace.name, v.label,
                          format_double(eval.summary.avg_wait_h, 3),
                          format_double(eval.summary.max_wait_h, 3),
                          format_double(eval.summary.avg_bounded_slowdown, 3),
                          format_double(eval.e_max.total_h, 3),
                          std::to_string(eval.sched.nodes_visited),
                          std::to_string(eval.sched.paths_explored)});
      }
    }
    table.print(std::cout);
    std::cout << "\nPruning spends the same node budget on more complete "
                 "paths (higher paths/decision), which should match or "
                 "improve the objective; w(T) trades a little average "
                 "performance for tighter short-job bounds.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
