// Ablation — runtime prediction (the paper's future-work item "applying
// job runtime prediction techniques to improve the accuracy of estimated
// job runtime for scheduling"). Figure 8 showed that planning with raw
// user requests (R* = R) shrinks the policy gaps; here we ask how much of
// that loss an on-line predictor recovers:
//   R* = T          (oracle — Figure 4's setting)
//   R* = R          (raw requests — Figure 8's setting)
//   R* = pred/class (class-corrected request scaling)
//   R* = pred/ewma  (global EWMA of the T/R ratio)

#include <iostream>

#include "bench_common.hpp"
#include "predict/predictor.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"nodes"});
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 1000));
    if (!args.has("months")) options.months = {"7/03", "10/03", "1/04"};
    banner("Ablation: runtime prediction for scheduling estimates", options,
           "rho = 0.9; DDS/lxf/dynB with L = " + std::to_string(L));

    auto csv = csv_for(options, "ablation_prediction",
                       {"month", "estimates", "avg_wait_h", "max_wait_h",
                        "avg_bsld", "total_Emax_h"});

    Table table({"month", "estimates", "avg wait (h)", "max wait (h)",
                 "avg bsld", "E^max tot (h)"});

    enum class Mode { Oracle, Requested, PredClass, PredEwma };
    const std::vector<std::pair<std::string, Mode>> modes = {
        {"R*=T (oracle)", Mode::Oracle},
        {"R*=R (requests)", Mode::Requested},
        {"R*=pred/class", Mode::PredClass},
        {"R*=pred/ewma", Mode::PredEwma},
    };

    for (const auto& month : prepare_months(options, /*load=*/0.9)) {
      for (const auto& [label, mode] : modes) {
        std::unique_ptr<RuntimePredictor> predictor;
        SimConfig sim;
        switch (mode) {
          case Mode::Oracle:
            break;
          case Mode::Requested:
            sim.use_requested_runtime = true;
            break;
          case Mode::PredClass:
            predictor = std::make_unique<ClassCorrectionPredictor>();
            sim.predictor = predictor.get();
            break;
          case Mode::PredEwma:
            predictor = std::make_unique<EwmaPredictor>();
            sim.predictor = predictor.get();
            break;
        }
        // Thresholds from FCFS-backfill under the same estimate regime.
        std::unique_ptr<RuntimePredictor> th_predictor;
        SimConfig th_sim = sim;
        if (mode == Mode::PredClass) {
          th_predictor = std::make_unique<ClassCorrectionPredictor>();
          th_sim.predictor = th_predictor.get();
        } else if (mode == Mode::PredEwma) {
          th_predictor = std::make_unique<EwmaPredictor>();
          th_sim.predictor = th_predictor.get();
        }
        const Thresholds th = fcfs_thresholds(month.trace, th_sim);
        const MonthEval eval =
            evaluate_spec(month.trace, "DDS/lxf/dynB", L, th, sim);
        table.row()
            .add(month.trace.name)
            .add(label)
            .add(eval.summary.avg_wait_h)
            .add(eval.summary.max_wait_h)
            .add(eval.summary.avg_bounded_slowdown)
            .add(eval.e_max.total_h, 1);
        if (csv)
          csv->write_row({month.trace.name, label,
                          format_double(eval.summary.avg_wait_h, 3),
                          format_double(eval.summary.max_wait_h, 3),
                          format_double(eval.summary.avg_bounded_slowdown, 3),
                          format_double(eval.e_max.total_h, 3)});
      }
    }
    table.print(std::cout);
    std::cout << "\nShape check: the conservative class predictor (mean + "
                 "1 sigma of T/R) recovers part of the request-vs-oracle "
                 "gap on the first-level measures (max wait, E^max) in "
                 "most months; the mean-tracking EWMA predictor "
                 "UNDERESTIMATES half the jobs, corrupting reservations, "
                 "and performs worse than raw requests — estimate errors "
                 "are asymmetric, exactly why the paper treats prediction "
                 "as nontrivial future work.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
