// Figure 1(d) — search-tree size as a function of the number of waiting
// jobs, plus an empirical cross-check: for small n we run an exhaustive
// DDS and LDS and confirm both enumerate exactly n! complete paths.

#include <iostream>

#include "bench_common.hpp"
#include "core/search.hpp"
#include "core/tree_size.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv);
    banner("Figure 1(d): search-tree size vs number of waiting jobs", options,
           "paths = n!, nodes = sum of level sizes; verified empirically "
           "for n <= 7");

    auto csv = csv_for(options, "fig1_treesize",
                       {"jobs", "paths", "nodes", "lds_paths", "dds_paths"});

    Table table({"#jobs", "#paths", "#nodes", "LDS paths (measured)",
                 "DDS paths (measured)"});
    for (std::size_t n = 1; n <= 15; ++n) {
      const TreeSize size = search_tree_size(n);
      std::string lds = "-", dds = "-";
      if (n <= 7) {
        // Build a tiny uniform problem with n waiting jobs.
        SearchProblem p;
        p.now = 0;
        p.capacity = 1;
        p.base = ResourceProfile(1, 0);
        static std::vector<Job> storage;
        storage.clear();
        storage.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
          Job j;
          j.id = static_cast<int>(i);
          j.submit = -static_cast<Time>(i + 1) * kMinute;
          j.nodes = 1;
          j.runtime = j.requested = kHour;
          storage.push_back(j);
        }
        for (const Job& j : storage) {
          SearchJob s;
          s.job = &j;
          s.nodes = 1;
          s.estimate = j.runtime;
          s.submit = j.submit;
          s.bound = 1000 * kHour;
          s.slowdown_now = 1.0;
          p.jobs.push_back(s);
        }
        for (const SearchAlgo algo : {SearchAlgo::Lds, SearchAlgo::Dds}) {
          SearchConfig cfg;
          cfg.algo = algo;
          cfg.branching = Branching::Fcfs;
          cfg.node_limit = 100'000'000;
          const SearchResult r = run_search(p, cfg);
          (algo == SearchAlgo::Lds ? lds : dds) =
              std::to_string(r.paths_completed);
        }
      }
      table.row()
          .add(static_cast<long long>(n))
          .add(size.paths, 0)
          .add(size.nodes, 0)
          .add(lds)
          .add(dds);
      if (csv)
        csv->write_row({std::to_string(n), format_double(size.paths, 0),
                        format_double(size.nodes, 0), lds, dds});
    }
    table.print(std::cout);
    std::cout << "\nEven 10 waiting jobs yield ~10M tree nodes; the paper's "
                 "budgets L = 1K..100K cover 0.01%..1% of that tree.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
