// Figure 4 — the full high-load (rho = 0.9) comparison, R* = T:
//   (a) avg wait  (b) max wait  (c) avg bounded slowdown
//   (d) avg queue length
//   (e) total E^98%  (f) total E^max
//   (g) #jobs with E^max  (h) avg E^max among those jobs
// DDS/lxf/dynB uses L = 1K except January 2004, which uses L = 8K as in
// the paper (its larger backlog needs more search).

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"nodes", "nodes-jan"});
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 1000));
    const auto L_jan =
        static_cast<std::size_t>(args.get_int("nodes-jan", 8000));
    banner("Figure 4: policy comparison under high load (rho = 0.9)",
           options,
           "R* = T; DDS/lxf/dynB uses L = " + std::to_string(L) +
               " (1/04: L = " + std::to_string(L_jan) + ")");

    auto csv = csv_for(
        options, "fig4_high_load",
        {"month", "policy", "avg_wait_h", "max_wait_h", "avg_bsld",
         "avg_queue_len", "total_E98_h", "total_Emax_h", "jobs_with_Emax",
         "avg_Emax_h"});

    const std::vector<std::string> specs = {"FCFS-BF", "LXF-BF",
                                            "DDS/lxf/dynB"};
    Table table({"month", "policy", "avg wait", "max wait", "avg bsld",
                 "avg qlen", "E^98% tot", "E^max tot", "#w/E^max",
                 "avg E^max"});
    for (const auto& month : prepare_months(options, /*load=*/0.9)) {
      const std::size_t budget = month.trace.name == "1/04" ? L_jan : L;
      for (const auto& spec : specs) {
        const MonthEval eval =
            evaluate_spec(month.trace, spec, budget, month.thresholds);
        table.row()
            .add(month.trace.name)
            .add(eval.policy)
            .add(eval.summary.avg_wait_h)
            .add(eval.summary.max_wait_h)
            .add(eval.summary.avg_bounded_slowdown)
            .add(eval.avg_queue_length, 1)
            .add(eval.e_p98.total_h, 1)
            .add(eval.e_max.total_h, 1)
            .add(eval.e_max.count)
            .add(eval.e_max.avg_h, 1);
        if (csv)
          csv->write_row(
              {month.trace.name, eval.policy,
               format_double(eval.summary.avg_wait_h, 3),
               format_double(eval.summary.max_wait_h, 3),
               format_double(eval.summary.avg_bounded_slowdown, 3),
               format_double(eval.avg_queue_length, 3),
               format_double(eval.e_p98.total_h, 3),
               format_double(eval.e_max.total_h, 3),
               std::to_string(eval.e_max.count),
               format_double(eval.e_max.avg_h, 3)});
      }
    }
    table.print(std::cout);
    std::cout << "\nShape check (paper Fig 4): the Fig-3 ordering persists "
                 "with larger gaps; DDS/lxf/dynB has near-zero total E^max "
                 "and a total E^98% below even FCFS-BF in most months, "
                 "while LXF-BF's unfortunate jobs average tens of hours of "
                 "excess.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
