// Figure 7 — effect of the search algorithm (DDS vs LDS) and branching
// heuristic (lxf vs fcfs): average bounded slowdown (7a) and total E^max
// (7b) per month under rho = 0.9, R* = T, L = 2K, for DDS/fcfs/dynB,
// DDS/lxf/dynB and LDS/lxf/dynB (plus LDS/fcfs/dynB for completeness).

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"nodes"});
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 2000));
    banner("Figure 7: search algorithms and branching heuristics", options,
           "rho = 0.9; R* = T; L = " + std::to_string(L));

    auto csv = csv_for(options, "fig7_search_algos",
                       {"month", "policy", "avg_bsld", "total_Emax_h",
                        "max_wait_h", "avg_wait_h"});

    // The paper compares DDS vs LDS under both heuristics; we add the
    // chronological-DFS baseline the discrepancy literature argues against.
    const std::vector<std::string> specs = {"DDS/fcfs/dynB", "DDS/lxf/dynB",
                                            "LDS/lxf/dynB", "LDS/fcfs/dynB",
                                            "DFS/lxf/dynB"};
    Table table({"month", "policy", "avg bsld", "E^max tot (h)",
                 "max wait (h)", "avg wait (h)"});
    for (const auto& month : prepare_months(options, /*load=*/0.9)) {
      for (const auto& spec : specs) {
        const MonthEval eval =
            evaluate_spec(month.trace, spec, L, month.thresholds);
        table.row()
            .add(month.trace.name)
            .add(eval.policy)
            .add(eval.summary.avg_bounded_slowdown)
            .add(eval.e_max.total_h, 1)
            .add(eval.summary.max_wait_h)
            .add(eval.summary.avg_wait_h);
        if (csv)
          csv->write_row({month.trace.name, eval.policy,
                          format_double(eval.summary.avg_bounded_slowdown, 3),
                          format_double(eval.e_max.total_h, 3),
                          format_double(eval.summary.max_wait_h, 3),
                          format_double(eval.summary.avg_wait_h, 3)});
      }
    }
    table.print(std::cout);
    std::cout << "\nShape check (paper Fig 7): fcfs branching behaves like "
                 "FCFS-backfill (poor slowdown); lxf branching is the "
                 "dominant factor; LDS/lxf trades slightly better slowdown "
                 "for worse total E^max in the hard months. The added DFS "
                 "baseline concentrates its budget on deep-discrepancy "
                 "paths and posts by far the worst total E^max — the "
                 "failure mode discrepancy search exists to fix.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
