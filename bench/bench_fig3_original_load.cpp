// Figure 3 — FCFS-backfill vs LXF-backfill vs DDS/lxf/dynB under the
// original monthly loads (R* = T, L = 1K): average wait (3a), maximum
// wait (3b), average bounded slowdown (3c).

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"nodes"});
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 1000));
    banner("Figure 3: policy comparison under original load", options,
           "R* = T; DDS/lxf/dynB uses L = " + std::to_string(L));

    auto csv = csv_for(options, "fig3_original_load",
                       {"month", "policy", "avg_wait_h", "max_wait_h",
                        "avg_bsld", "total_Emax_h", "total_E98_h"});

    const std::vector<std::string> specs = {"FCFS-BF", "LXF-BF",
                                            "DDS/lxf/dynB"};
    Table table({"month", "policy", "avg wait (h)", "max wait (h)",
                 "avg bsld", "total E^max (h)", "total E^98% (h)"});
    for (const auto& month : prepare_months(options, /*load=*/0.0)) {
      for (const auto& spec : specs) {
        const MonthEval eval =
            evaluate_spec(month.trace, spec, L, month.thresholds);
        table.row()
            .add(month.trace.name)
            .add(eval.policy)
            .add(eval.summary.avg_wait_h)
            .add(eval.summary.max_wait_h)
            .add(eval.summary.avg_bounded_slowdown)
            .add(eval.e_max.total_h)
            .add(eval.e_p98.total_h);
        if (csv)
          csv->write_row({month.trace.name, eval.policy,
                          format_double(eval.summary.avg_wait_h, 3),
                          format_double(eval.summary.max_wait_h, 3),
                          format_double(eval.summary.avg_bounded_slowdown, 3),
                          format_double(eval.e_max.total_h, 3),
                          format_double(eval.e_p98.total_h, 3)});
      }
    }
    table.print(std::cout);
    std::cout << "\nShape check (paper Fig 3): LXF-BF beats FCFS-BF on the "
                 "averages but loses on max wait; DDS/lxf/dynB holds the "
                 "best max wait while staying near the best averages.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
