#pragma once

// Shared plumbing for the per-figure bench binaries: common flags, month
// preparation (generate -> optional high-load rescale -> FCFS thresholds),
// and optional CSV export next to the printed tables.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exp/policy_factory.hpp"
#include "exp/runner.hpp"
#include "obs/json.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

namespace sbs::bench {

/// Options every bench binary accepts:
///   --scale=<f>   workload scale (1.0 = the paper's month sizes)
///   --seed=<n>    generator seed
///   --months=a,b  restrict to specific months ("7/03,1/04")
///   --csv=<dir>   also write machine-readable series into <dir>
struct BenchOptions {
  double scale = 1.0;
  std::uint64_t seed = 2005;
  std::vector<std::string> months;  // empty = all ten study months
  std::string csv_dir;

  GeneratorConfig generator() const;
};

/// Parses the shared flags (plus any bench-specific `extra` keys, queried
/// by the caller through the returned CliArgs).
std::pair<BenchOptions, CliArgs> parse_options(
    int argc, const char* const* argv,
    const std::vector<std::string>& extra = {});

/// One prepared month: trace at the requested load + FCFS thresholds.
struct PreparedMonth {
  Trace trace;
  Thresholds thresholds;
};

/// Generates (and optionally rescales to `load`; 0 keeps the original) the
/// selected months and derives per-month FCFS-backfill thresholds under
/// the given simulation config.
std::vector<PreparedMonth> prepare_months(const BenchOptions& options,
                                          double load,
                                          const SimConfig& sim = {});

/// Opens `<csv_dir>/<name>.csv` when --csv was given; nullopt otherwise.
std::optional<CsvWriter> csv_for(const BenchOptions& options,
                                 const std::string& name,
                                 const std::vector<std::string>& header);

/// Writes `doc` (a complete JSON value) to `BENCH_<name>.json` — in
/// --csv's directory when given, the working directory otherwise — and
/// prints the path. The machine-readable companion of the printed table.
void write_bench_json(const BenchOptions& options, const std::string& name,
                      const obs::JsonWriter& doc);

/// CPUs this process may actually run on (the scheduler affinity mask),
/// which on pinned CI runners and cgroup-limited containers is smaller
/// than hardware_concurrency. Falls back to hardware_concurrency where
/// affinity cannot be queried.
unsigned affinity_cpus();

/// Appends the host provenance fields ("hardware_concurrency",
/// "affinity_cpus") to an open JSON object. Every BENCH_*.json carries
/// them so consumers can tell a real measurement from one taken on a
/// machine too small to exercise the parallelism under test.
obs::JsonWriter& append_host_provenance(obs::JsonWriter& doc);

/// Opens the standard BENCH_*.json document: an object with the shared
/// bench metadata (name, scale, seed, host provenance) filled in and a
/// "rows" array left open. Close with end_array().end_object() and pass
/// to write_bench_json.
obs::JsonWriter bench_json_doc(const BenchOptions& options,
                               const std::string& name);

/// Prints the standard bench banner (what runs, at which scale).
void banner(const std::string& title, const BenchOptions& options,
            const std::string& detail);

}  // namespace sbs::bench
