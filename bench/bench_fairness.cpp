// Fairness view — the scalar companion to Figure 5. The paper's argument
// against LXF-backfill is not its averages (they are excellent) but who
// pays for them; Gini/Jain indices and the worst-5% tail make that
// visible in one row per policy, across the high-load months.

#include <iostream>

#include "bench_common.hpp"
#include "metrics/fairness.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"nodes"});
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 1000));
    if (!args.has("months")) options.months = {"7/03", "9/03", "1/04"};
    banner("Fairness indices across policies (companion to Figure 5)",
           options, "rho = 0.9; R* = T");

    auto csv = csv_for(options, "fairness",
                       {"month", "policy", "gini_wait", "gini_bsld",
                        "jain_bsld", "tail5_bsld", "avg_bsld"});

    const std::vector<std::string> specs = {"FCFS-BF", "LXF-BF", "SJF-BF",
                                            "DDS/lxf/dynB"};
    Table table({"month", "policy", "Gini(wait)", "Gini(bsld)",
                 "Jain(bsld)", "worst-5% bsld", "avg bsld"});
    for (const auto& month : prepare_months(options, /*load=*/0.9)) {
      for (const auto& spec : specs) {
        const MonthEval eval =
            evaluate_spec(month.trace, spec, L, month.thresholds, {}, true);
        const FairnessSummary f = fairness_summary(eval.outcomes);
        table.row()
            .add(month.trace.name)
            .add(eval.policy)
            .add(f.gini_wait)
            .add(f.gini_bsld)
            .add(f.jain_bsld)
            .add(f.tail5_bsld, 1)
            .add(eval.summary.avg_bounded_slowdown);
        if (csv)
          csv->write_row({month.trace.name, eval.policy,
                          format_double(f.gini_wait, 4),
                          format_double(f.gini_bsld, 4),
                          format_double(f.jain_bsld, 4),
                          format_double(f.tail5_bsld, 3),
                          format_double(eval.summary.avg_bounded_slowdown, 3)});
      }
    }
    table.print(std::cout);
    std::cout << "\nReading: SJF-BF buys its average slowdown with extreme "
                 "wait concentration (highest Gini(wait)); DDS/lxf/dynB "
                 "keeps the tail in check without FCFS-BF's poor "
                 "averages.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
