// Anytime profiles — how solution quality buys into the node budget, per
// search algorithm. The paper's argument for DDS over LDS (§2.2) is an
// anytime argument: within a fixed budget, the algorithm that explores
// root-level discrepancies sooner finds good schedules sooner. This bench
// makes the curve explicit on hard decision points sampled from a
// high-load month: for each algorithm, the best objective value reached
// at budgets 1K..64K, plus the incumbent-improvement trace at 64K.

#include <iostream>

#include "bench_common.hpp"
#include "core/search.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace {

using namespace sbs;

/// Captures hard decision points (big queues) from a monthly simulation.
class SnapshotScheduler final : public Scheduler {
 public:
  SnapshotScheduler(std::size_t min_queue, std::size_t max_snapshots)
      : min_queue_(min_queue), max_snapshots_(max_snapshots) {}

  std::vector<int> select_jobs(const SchedulerState& state) override {
    if (state.waiting.size() >= min_queue_ &&
        snapshots_.size() < max_snapshots_ &&
        state.free_nodes >= state.capacity / 4) {
      snapshots_.push_back(
          SearchProblem::from_state(state, BoundSpec::dynamic_bound()));
    }
    // Drive the simulation with plain EASY-style FCFS list scheduling.
    std::vector<int> started;
    ResourceProfile profile =
        profile_from_running(state.capacity, state.now, state.running);
    for (const auto& w : state.waiting) {
      const Time est = std::max<Time>(w.estimate, 1);
      const Time t = profile.earliest_start(state.now, w.job->nodes, est);
      profile.reserve(t, w.job->nodes, est);
      if (t == state.now) started.push_back(w.job->id);
    }
    return started;
  }
  std::string name() const override { return "snapshotter"; }

  const std::vector<SearchProblem>& snapshots() const { return snapshots_; }

 private:
  std::size_t min_queue_;
  std::size_t max_snapshots_;
  std::vector<SearchProblem> snapshots_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"month", "min-queue"});
    const std::string month_name = args.get("month", "7/03");
    const auto min_queue =
        static_cast<std::size_t>(args.get_int("min-queue", 20));
    options.months = {month_name};
    banner("Anytime profiles: quality vs node budget per algorithm",
           options,
           "decision points with >= " + std::to_string(min_queue) +
               " waiting jobs sampled from " + month_name + " at rho=0.9");

    auto csv = csv_for(options, "anytime_profile",
                       {"snapshot", "algorithm", "budget", "excess_h",
                        "avg_bsld"});

    Trace trace = generate_month(month_name, options.generator());
    trace = rescale_to_load(trace, 0.9);
    SnapshotScheduler snapshotter(min_queue, 3);
    simulate(trace, snapshotter);
    if (snapshotter.snapshots().empty())
      throw Error("no decision point reached the queue threshold");

    const std::vector<std::size_t> budgets = {1000, 4000, 16000, 64000};
    Table table({"snapshot", "queue", "algorithm", "L=1K", "L=4K", "L=16K",
                 "L=64K (excess_h / avg_bsld)"});
    for (std::size_t s = 0; s < snapshotter.snapshots().size(); ++s) {
      const SearchProblem& problem = snapshotter.snapshots()[s];
      for (const SearchAlgo algo :
           {SearchAlgo::Dds, SearchAlgo::Lds, SearchAlgo::Dfs}) {
        table.row()
            .add(static_cast<long long>(s))
            .add(static_cast<long long>(problem.size()))
            .add(algo_name(algo) + "/lxf");
        for (const std::size_t budget : budgets) {
          SearchConfig cfg;
          cfg.algo = algo;
          cfg.branching = Branching::Lxf;
          cfg.node_limit = budget;
          const SearchResult r = run_search(problem, cfg);
          table.add(format_double(r.value.excess_h, 1) + " / " +
                    format_double(r.value.avg_bsld, 1));
          if (csv)
            csv->write_row({std::to_string(s), algo_name(algo),
                            std::to_string(budget),
                            format_double(r.value.excess_h, 4),
                            format_double(r.value.avg_bsld, 4)});
        }
      }
    }
    table.print(std::cout);

    // Improvement trace of the first snapshot at the largest budget.
    const SearchProblem& problem = snapshotter.snapshots().front();
    std::cout << "\nIncumbent improvements, snapshot 0, L=64K "
                 "(nodes@path: excess_h/avg_bsld):\n";
    for (const SearchAlgo algo :
         {SearchAlgo::Dds, SearchAlgo::Lds, SearchAlgo::Dfs}) {
      SearchConfig cfg;
      cfg.algo = algo;
      cfg.branching = Branching::Lxf;
      cfg.node_limit = 64000;
      const SearchResult r = run_search(problem, cfg);
      std::cout << "  " << algo_name(algo) << ": ";
      for (const Improvement& imp : r.improvements)
        std::cout << imp.nodes << "@" << imp.path << ": "
                  << format_double(imp.value.excess_h, 1) << "/"
                  << format_double(imp.value.avg_bsld, 2) << "  ";
      std::cout << '\n';
    }
    std::cout << "\nReading: DDS's incumbent drops early (root-level "
                 "discrepancies first); DFS improves late or not at all "
                 "within the budget.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
