// Fault resilience — how gracefully each policy degrades as node-failure
// rates rise. For each month we sweep MTBF from "no faults" down to six
// hours (MTTR fixed at one hour, failed blocks of 1-8 nodes) and report
// the excessive-wait measures against the month's *healthy* FCFS-backfill
// thresholds, plus the fault bookkeeping (kills, requeues, lost
// node-hours). Search policies additionally run under a wall-clock
// decision deadline so a shrunken machine cannot stall a decision.

#include <iostream>

#include "bench_common.hpp"
#include "sim/faults.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"deadline-ms"});
    const double deadline_ms = args.get_double("deadline-ms", 250.0);
    banner("Fault resilience: excessive wait vs node-failure rate", options,
           "rho = 0.9; MTTR = 1h; blocks 1-8 nodes; thresholds from the "
           "healthy FCFS-BF run");

    auto csv = csv_for(options, "fault_resilience",
                       {"month", "mtbf_h", "policy", "avg_wait_h",
                        "e_max_total_h", "e_max_count", "jobs_killed",
                        "jobs_requeued", "lost_node_h", "min_capacity",
                        "deadline_hits"});
    obs::JsonWriter doc = bench_json_doc(options, "fault_resilience");

    // MTBF sweep, in hours; 0 = fault-free reference row.
    const std::vector<double> mtbf_hours = {0.0, 96.0, 24.0, 6.0};
    const std::vector<std::string> specs = {"FCFS-BF", "LXF-BF", "Slack-BF",
                                            "DDS/lxf/dynB"};

    Table table({"month", "MTBF (h)", "policy", "avg wait (h)",
                 "E^max tot (h)", "#w/E^max", "killed", "requeued",
                 "lost node-h", "min cap"});
    for (const auto& month : prepare_months(options, /*load=*/0.9)) {
      for (const double mtbf_h : mtbf_hours) {
        SimConfig sim;
        std::unique_ptr<FaultInjector> injector;
        if (mtbf_h > 0.0) {
          FaultSpec fs;
          fs.node_mtbf = from_hours(mtbf_h);
          fs.node_mttr = from_hours(1.0);
          fs.min_block = 1;
          fs.max_block = 8;
          fs.seed = options.seed;
          injector = std::make_unique<FaultInjector>(FaultInjector::from_spec(
              fs, month.trace.window_begin, month.trace.window_end,
              month.trace.capacity));
          sim.faults = injector.get();
        }
        for (const auto& spec : specs) {
          const MonthEval eval =
              evaluate_spec(month.trace, spec, 1000, month.thresholds, sim,
                            false, deadline_ms);
          const double lost_h = eval.faults.lost_node_seconds / 3600.0;
          table.row()
              .add(month.trace.name)
              .add(mtbf_h, 0)
              .add(eval.policy)
              .add(eval.summary.avg_wait_h)
              .add(eval.e_max.total_h, 1)
              .add(eval.e_max.count)
              .add(eval.faults.jobs_killed)
              .add(eval.faults.jobs_requeued)
              .add(lost_h, 1)
              .add(eval.faults.min_capacity);
          if (csv)
            csv->write_row(
                {month.trace.name, format_double(mtbf_h, 0), eval.policy,
                 format_double(eval.summary.avg_wait_h, 3),
                 format_double(eval.e_max.total_h, 3),
                 std::to_string(eval.e_max.count),
                 std::to_string(eval.faults.jobs_killed),
                 std::to_string(eval.faults.jobs_requeued),
                 format_double(lost_h, 3),
                 std::to_string(eval.faults.min_capacity),
                 std::to_string(eval.sched.deadline_hits)});
          doc.begin_object()
              .field("month", month.trace.name)
              .field("mtbf_h", mtbf_h)
              .field("policy", eval.policy)
              .field("avg_wait_h", eval.summary.avg_wait_h)
              .field("e_max_total_h", eval.e_max.total_h)
              .field("e_max_count",
                     static_cast<std::uint64_t>(eval.e_max.count))
              .field("jobs_killed", eval.faults.jobs_killed)
              .field("jobs_requeued", eval.faults.jobs_requeued)
              .field("lost_node_h", lost_h)
              .field("min_capacity", eval.faults.min_capacity)
              .field("deadline_hits", eval.sched.deadline_hits)
              .end_object();
        }
      }
    }
    table.print(std::cout);
    doc.end_array().end_object();
    write_bench_json(options, "fault_resilience", doc);
    std::cout << "\nShape check: all policies finish every faulty run; "
                 "excessive waits grow as MTBF shrinks, and the search "
                 "policy degrades no worse than plain backfill.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
