// Ablation — the paper's §3.2 verification claims about related backfill
// variants, on our workloads: "Selective-backfill performs very similarly
// to LXF-backfill, while Lookahead is very similar to FCFS-backfill", and
// "SJF-backfill has a starvation problem". We run the full policy zoo at
// rho = 0.9 and print the measures those claims are about.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv);
    banner("Ablation: the backfill-variant zoo (paper sec. 3.2)", options,
           "rho = 0.9; R* = T");

    auto csv = csv_for(options, "ablation_baselines",
                       {"month", "policy", "avg_wait_h", "max_wait_h",
                        "p98_wait_h", "avg_bsld"});

    const std::vector<std::string> specs = {"FCFS-BF",      "Lookahead",
                                            "LXF-BF",       "Selective-BF",
                                            "LXF&W-BF",     "SJF-BF"};
    Table table({"month", "policy", "avg wait (h)", "max wait (h)",
                 "p98 wait (h)", "avg bsld"});
    for (const auto& month : prepare_months(options, /*load=*/0.9)) {
      for (const auto& spec : specs) {
        const MonthEval eval =
            evaluate_spec(month.trace, spec, 0, month.thresholds);
        table.row()
            .add(month.trace.name)
            .add(eval.policy)
            .add(eval.summary.avg_wait_h)
            .add(eval.summary.max_wait_h)
            .add(eval.summary.p98_wait_h)
            .add(eval.summary.avg_bounded_slowdown);
        if (csv)
          csv->write_row({month.trace.name, eval.policy,
                          format_double(eval.summary.avg_wait_h, 3),
                          format_double(eval.summary.max_wait_h, 3),
                          format_double(eval.summary.p98_wait_h, 3),
                          format_double(eval.summary.avg_bounded_slowdown, 3)});
      }
    }
    table.print(std::cout);
    std::cout << "\nShape check: Lookahead rows track FCFS-BF; "
                 "Selective-BF rows track LXF-BF's averages; SJF-BF's max "
                 "wait blows past everything (starvation).\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
