// Table 4 — distribution of actual job runtime in the monthly workloads:
// fraction of all jobs with T <= 1 hour and T > 5 hours, per coarse node
// class, generated vs the paper's published values.

#include <iostream>

#include "bench_common.hpp"
#include "metrics/trace_mix.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv);
    banner("Table 4: runtime distribution (generated vs paper)", options,
           "per-cell values are fractions of ALL jobs in the month");

    auto csv = csv_for(options, "table4",
                       {"month", "band", "source", "1", "2", "3-8", "9-32",
                        "33-128", "all"});

    std::vector<std::string> headers = {"month", "band", "source"};
    for (std::size_t c = 0; c < RuntimeMix::kClasses; ++c)
      headers.push_back("N=" + runtime_mix_class_label(c));
    headers.push_back("all");
    Table table(headers);

    for (const auto& stats : ncsa_months()) {
      if (!options.months.empty() &&
          std::find(options.months.begin(), options.months.end(),
                    stats.name) == options.months.end())
        continue;
      const Trace trace = generate_month(stats, options.generator());
      const RuntimeMix mix = runtime_mix(trace);

      auto emit = [&](const std::string& band, const std::string& source,
                      const std::array<double, 5>& values) {
        double total = 0;
        table.row().add(std::string(stats.name)).add(band).add(source);
        std::vector<std::string> cells = {std::string(stats.name), band,
                                          source};
        for (double v : values) {
          total += v;
          const std::string s = format_double(100.0 * v, 1) + "%";
          table.add(s);
          cells.push_back(s);
        }
        const std::string t = format_double(100.0 * total, 1) + "%";
        table.add(t);
        cells.push_back(t);
        if (csv) csv->write_row(cells);
      };

      emit("T<=1h", "generated", mix.short_fraction);
      emit("T<=1h", "paper", stats.short_fraction);
      emit("T>5h", "generated", mix.long_fraction);
      emit("T>5h", "paper", stats.long_fraction);
    }
    table.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
