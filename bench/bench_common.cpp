#include "bench_common.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>

#ifdef __linux__
#include <sched.h>
#endif

#include "util/error.hpp"

namespace sbs::bench {

GeneratorConfig BenchOptions::generator() const {
  GeneratorConfig cfg;
  cfg.job_scale = scale;
  cfg.seed = seed;
  return cfg;
}

std::pair<BenchOptions, CliArgs> parse_options(
    int argc, const char* const* argv, const std::vector<std::string>& extra) {
  std::vector<std::string> allowed = {"scale", "seed", "months", "csv"};
  allowed.insert(allowed.end(), extra.begin(), extra.end());
  CliArgs args(argc, argv, allowed);

  BenchOptions options;
  options.scale = args.get_double("scale", 1.0);
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 2005));
  options.csv_dir = args.get("csv", "");
  std::string months = args.get("months", "");
  while (!months.empty()) {
    const auto comma = months.find(',');
    options.months.push_back(months.substr(0, comma));
    months = comma == std::string::npos ? "" : months.substr(comma + 1);
  }
  return {options, std::move(args)};
}

std::vector<PreparedMonth> prepare_months(const BenchOptions& options,
                                          double load, const SimConfig& sim) {
  std::vector<PreparedMonth> prepared;
  for (const auto& stats : ncsa_months()) {
    if (!options.months.empty() &&
        std::find(options.months.begin(), options.months.end(), stats.name) ==
            options.months.end())
      continue;
    PreparedMonth m;
    m.trace = generate_month(stats, options.generator());
    if (load > 0.0) m.trace = rescale_to_load(m.trace, load);
    m.thresholds = fcfs_thresholds(m.trace, sim);
    prepared.push_back(std::move(m));
  }
  return prepared;
}

std::optional<CsvWriter> csv_for(const BenchOptions& options,
                                 const std::string& name,
                                 const std::vector<std::string>& header) {
  if (options.csv_dir.empty()) return std::nullopt;
  std::filesystem::create_directories(options.csv_dir);
  return CsvWriter(options.csv_dir + "/" + name + ".csv", header);
}

unsigned affinity_cpus() {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return static_cast<unsigned>(n);
  }
#endif
  return std::thread::hardware_concurrency();
}

obs::JsonWriter& append_host_provenance(obs::JsonWriter& doc) {
  return doc
      .field("hardware_concurrency",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
      .field("affinity_cpus", static_cast<std::uint64_t>(affinity_cpus()));
}

obs::JsonWriter bench_json_doc(const BenchOptions& options,
                               const std::string& name) {
  obs::JsonWriter doc;
  doc.begin_object()
      .field("bench", name)
      .field("scale", options.scale)
      .field("seed", options.seed);
  append_host_provenance(doc).key("rows").begin_array();
  return doc;
}

void write_bench_json(const BenchOptions& options, const std::string& name,
                      const obs::JsonWriter& doc) {
  std::string dir = options.csv_dir;
  if (dir.empty()) dir = ".";
  else std::filesystem::create_directories(dir);
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::trunc);
  SBS_CHECK_MSG(out.is_open(), "cannot open " << path << " for writing");
  out << doc.str() << '\n';
  SBS_CHECK_MSG(out.good(), "write to " << path << " failed");
  std::cout << "wrote " << path << '\n';
}

void banner(const std::string& title, const BenchOptions& options,
            const std::string& detail) {
  std::cout << "=== " << title << " ===\n";
  if (!detail.empty()) std::cout << detail << '\n';
  std::cout << "workload scale " << format_double(options.scale, 2)
            << " (1.0 = paper month sizes), seed " << options.seed << "\n\n";
}

}  // namespace sbs::bench
