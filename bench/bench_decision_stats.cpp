// Scheduling-overhead check (paper §2.2): the paper reports (1) "there
// are at least 10 waiting jobs in most of the scheduling decision points"
// under the high-load workloads, and (2) 30-65 ms to visit 1K-8K nodes in
// a 30-job tree on its Java simulator. This bench audits both on our
// system: per-month decision-point queue depths and the measured
// wall-clock think time of DDS/lxf/dynB per decision and per 1K nodes.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"nodes"});
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 1000));
    banner("Decision-point statistics and scheduling overhead (sec. 2.2)",
           options, "rho = 0.9; R* = T; DDS/lxf/dynB, L = " +
                        std::to_string(L));

    auto csv = csv_for(options, "decision_stats",
                       {"month", "decisions", "frac_10_plus", "mean_queue",
                        "max_queue", "nodes_visited", "us_per_decision",
                        "ms_per_1k_nodes"});
    obs::JsonWriter doc = bench_json_doc(options, "decision_stats");

    Table table({"month", "decisions", ">=10 waiting", "mean queue",
                 "max queue", "us/decision", "ms/1K nodes"});
    for (const auto& month : prepare_months(options, /*load=*/0.9)) {
      auto policy = make_policy("DDS/lxf/dynB", L);
      const SimResult r = simulate(month.trace, *policy);
      const DecisionStats& d = r.decision_stats;
      const double us_per_decision =
          d.decisions ? static_cast<double>(r.sched_stats.think_time_us) /
                            static_cast<double>(d.decisions)
                      : 0.0;
      const double ms_per_1k =
          r.sched_stats.nodes_visited
              ? static_cast<double>(r.sched_stats.think_time_us) / 1000.0 /
                    (static_cast<double>(r.sched_stats.nodes_visited) / 1000.0)
              : 0.0;
      table.row()
          .add(month.trace.name)
          .add(static_cast<long long>(d.decisions))
          .add(format_double(100.0 * d.fraction_10_plus(), 1) + "%")
          .add(d.mean_waiting, 1)
          .add(static_cast<long long>(d.max_waiting))
          .add(us_per_decision, 1)
          .add(ms_per_1k, 3);
      if (csv)
        csv->write_row({month.trace.name, std::to_string(d.decisions),
                        format_double(d.fraction_10_plus(), 4),
                        format_double(d.mean_waiting, 2),
                        std::to_string(d.max_waiting),
                        std::to_string(r.sched_stats.nodes_visited),
                        format_double(us_per_decision, 2),
                        format_double(ms_per_1k, 4)});
      doc.begin_object()
          .field("month", month.trace.name)
          .field("decisions", d.decisions)
          .field("frac_10_plus", d.fraction_10_plus())
          .field("mean_queue", d.mean_waiting)
          .field("max_queue", static_cast<std::uint64_t>(d.max_waiting))
          .field("nodes_visited", r.sched_stats.nodes_visited)
          .field("us_per_decision", us_per_decision)
          .field("max_think_us", r.sched_stats.max_think_time_us)
          .field("ms_per_1k_nodes", ms_per_1k)
          .end_object();
    }
    table.print(std::cout);
    doc.end_array().end_object();
    write_bench_json(options, "decision_stats", doc);
    std::cout << "\nPaper reference points: most decision points have >= "
                 "10 waiting jobs under rho = 0.9, and its Java simulator "
                 "needed 30-65 ms per 1K-8K nodes (2 GHz P4); this C++ "
                 "engine is ~2-3 orders of magnitude faster per node.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
