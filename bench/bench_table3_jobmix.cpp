// Table 3 — overview of monthly job mix on NCSA/IA-64.
//
// Prints, for every generated month, the total job count and offered load
// plus the per-node-range shares of jobs and of processor demand, next to
// the paper's published targets, so the fidelity of the workload
// substitution is auditable.

#include <iostream>

#include "bench_common.hpp"
#include "metrics/trace_mix.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv);
    banner("Table 3: monthly job mix (generated vs paper)", options,
           "rows alternate: generated month, then the paper's targets");

    auto csv = csv_for(options, "table3",
                       {"month", "source", "measure", "total", "1", "2", "3-4",
                        "5-8", "9-16", "17-32", "33-64", "65-128"});

    std::vector<std::string> headers = {"month", "source", "measure", "total"};
    for (std::size_t r = 0; r < kMixRanges; ++r)
      headers.push_back(mix_range_label(r));
    Table table(headers);

    for (const auto& stats : ncsa_months()) {
      if (!options.months.empty() &&
          std::find(options.months.begin(), options.months.end(),
                    stats.name) == options.months.end())
        continue;
      const Trace trace = generate_month(stats, options.generator());
      const TraceMix mix = trace_mix(trace);

      double jf_sum = 0, df_sum = 0;
      for (std::size_t r = 0; r < kMixRanges; ++r) {
        jf_sum += stats.job_fraction[r];
        df_sum += stats.demand_fraction[r];
      }

      auto emit = [&](const std::string& source, const std::string& measure,
                      const std::string& total, auto value_of) {
        table.row().add(std::string(stats.name)).add(source).add(measure).add(total);
        std::vector<std::string> cells = {std::string(stats.name), source,
                                          measure, total};
        for (std::size_t r = 0; r < kMixRanges; ++r) {
          const std::string v = format_double(100.0 * value_of(r), 1) + "%";
          table.add(v);
          cells.push_back(v);
        }
        if (csv) csv->write_row(cells);
      };

      emit("generated", "#jobs", std::to_string(mix.total_jobs),
           [&](std::size_t r) { return mix.job_fraction[r]; });
      emit("paper", "#jobs", std::to_string(stats.total_jobs),
           [&](std::size_t r) { return stats.job_fraction[r] / jf_sum; });
      emit("generated", "demand",
           format_double(100.0 * mix.offered_load, 0) + "%",
           [&](std::size_t r) { return mix.demand_fraction[r]; });
      emit("paper", "demand", format_double(100.0 * stats.load, 0) + "%",
           [&](std::size_t r) { return stats.demand_fraction[r] / df_sum; });
    }
    table.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
