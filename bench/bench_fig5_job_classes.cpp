// Figure 5 — average wait per job class (5 node ranges x 5 runtime
// ranges) for July 2003 under rho = 0.9, R* = T, for FCFS-backfill,
// LXF-backfill and DDS/lxf/dynB (L = 1K). This is the per-class view that
// shows WHO pays under each policy: FCFS-BF hurts wide jobs, LXF-BF hurts
// long(-ish wide) jobs, DDS/lxf/dynB moderates both.

#include <iostream>

#include "bench_common.hpp"
#include "util/error.hpp"
#include "metrics/job_class.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"nodes", "month"});
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 1000));
    const std::string month_name = args.get("month", "7/03");
    options.months = {month_name};
    banner("Figure 5: average wait by job class (N x T), " + month_name,
           options, "rho = 0.9; R* = T; L = " + std::to_string(L));

    auto csv = csv_for(options, "fig5_job_classes",
                       {"policy", "node_class", "runtime_class", "avg_wait_h",
                        "jobs"});

    const auto months = prepare_months(options, /*load=*/0.9);
    if (months.empty()) throw Error("unknown month " + month_name);
    const PreparedMonth& month = months.front();

    for (const std::string spec : {"FCFS-BF", "LXF-BF", "DDS/lxf/dynB"}) {
      const MonthEval eval = evaluate_spec(month.trace, spec, L,
                                           month.thresholds, {}, true);
      const JobClassGrid grid = class_grid(eval.outcomes);

      std::cout << eval.policy << " — avg wait (h) per class "
                << "(rows: nodes, columns: actual runtime)\n";
      std::vector<std::string> headers = {"class"};
      for (std::size_t r = 0; r < JobClassGrid::kRuntimeClasses; ++r)
        headers.push_back(runtime_class_label(r));
      Table table(headers);
      for (std::size_t n = 0; n < JobClassGrid::kNodeClasses; ++n) {
        table.row().add(node_class_label(n));
        for (std::size_t r = 0; r < JobClassGrid::kRuntimeClasses; ++r) {
          table.add(grid.count[n][r] ? format_double(grid.avg_wait_h[n][r], 1)
                                     : std::string("-"));
          if (csv)
            csv->write_row({eval.policy, node_class_label(n),
                            runtime_class_label(r),
                            format_double(grid.avg_wait_h[n][r], 3),
                            std::to_string(grid.count[n][r])});
        }
      }
      table.print(std::cout);
      std::cout << '\n';
    }
    std::cout << "Shape check (paper Fig 5): FCFS-BF penalizes wide jobs "
                 "(N > 32) even when short; LXF-BF rescues short-wide jobs "
                 "at a great cost to long wide jobs; DDS/lxf/dynB improves "
                 "short-wide without sacrificing long-wide that much.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
