// Figure 8 — impact of inaccurate user-requested runtimes: the Figure 4
// comparison repeated with R* = R (schedulers plan with the requested
// runtime; the machine still frees nodes at the actual runtime).
// DDS/lxf/dynB uses L = 4K in all months, as in the paper.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"nodes"});
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 4000));
    banner("Figure 8: inaccurate requested runtimes (R* = R)", options,
           "rho = 0.9; DDS/lxf/dynB uses L = " + std::to_string(L));

    SimConfig sim;
    sim.use_requested_runtime = true;

    auto csv = csv_for(options, "fig8_requested_runtime",
                       {"month", "policy", "avg_wait_h", "max_wait_h",
                        "avg_bsld", "total_Emax_h"});

    const std::vector<std::string> specs = {"FCFS-BF", "LXF-BF",
                                            "DDS/lxf/dynB"};
    Table table({"month", "policy", "avg wait (h)", "max wait (h)",
                 "avg bsld", "E^max tot (h)"});
    for (const auto& month : prepare_months(options, /*load=*/0.9, sim)) {
      for (const auto& spec : specs) {
        const MonthEval eval =
            evaluate_spec(month.trace, spec, L, month.thresholds, sim);
        table.row()
            .add(month.trace.name)
            .add(eval.policy)
            .add(eval.summary.avg_wait_h)
            .add(eval.summary.max_wait_h)
            .add(eval.summary.avg_bounded_slowdown)
            .add(eval.e_max.total_h, 1);
        if (csv)
          csv->write_row({month.trace.name, eval.policy,
                          format_double(eval.summary.avg_wait_h, 3),
                          format_double(eval.summary.max_wait_h, 3),
                          format_double(eval.summary.avg_bounded_slowdown, 3),
                          format_double(eval.e_max.total_h, 3)});
      }
    }
    table.print(std::cout);
    std::cout << "\nShape check (paper Fig 8): qualitatively the same "
                 "picture as with exact runtimes, with somewhat smaller "
                 "gaps between the policies.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
