// Figure 6 — impact of the node budget L on DDS/lxf/dynB for January
// 2004 under rho = 0.9 (the month with the largest backlog): total E^max,
// max wait, avg wait, avg bounded slowdown as L sweeps 1K .. 100K, with
// the two backfill baselines as horizontal references.
//
// The 100K point dominates the run time (~1.5 min at paper scale); use
// --max-nodes=10000 for a quick pass.

#include <iostream>

#include "bench_common.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"month", "max-nodes"});
    const std::string month_name = args.get("month", "1/04");
    const auto max_nodes =
        static_cast<std::size_t>(args.get_int("max-nodes", 100000));
    options.months = {month_name};
    banner("Figure 6: impact of the search node budget L, " + month_name,
           options, "rho = 0.9; R* = T; DDS/lxf/dynB vs backfill baselines");

    auto csv = csv_for(options, "fig6_node_limit",
                       {"policy", "L", "total_Emax_h", "max_wait_h",
                        "avg_wait_h", "avg_bsld", "nodes_visited"});

    const auto months = prepare_months(options, /*load=*/0.9);
    if (months.empty()) throw Error("unknown month " + month_name);
    const PreparedMonth& month = months.front();

    Table table({"policy", "L", "E^max tot (h)", "max wait (h)",
                 "avg wait (h)", "avg bsld"});
    auto emit = [&](const MonthEval& eval, const std::string& L_label) {
      table.row()
          .add(eval.policy)
          .add(L_label)
          .add(eval.e_max.total_h, 1)
          .add(eval.summary.max_wait_h)
          .add(eval.summary.avg_wait_h)
          .add(eval.summary.avg_bounded_slowdown);
      if (csv)
        csv->write_row({eval.policy, L_label,
                        format_double(eval.e_max.total_h, 3),
                        format_double(eval.summary.max_wait_h, 3),
                        format_double(eval.summary.avg_wait_h, 3),
                        format_double(eval.summary.avg_bounded_slowdown, 3),
                        std::to_string(eval.sched.nodes_visited)});
    };

    emit(evaluate_spec(month.trace, "FCFS-BF", 0, month.thresholds), "-");
    emit(evaluate_spec(month.trace, "LXF-BF", 0, month.thresholds), "-");
    for (const std::size_t L : {1000u, 2000u, 4000u, 8000u, 10000u, 100000u}) {
      if (L > max_nodes) continue;
      emit(evaluate_spec(month.trace, "DDS/lxf/dynB", L, month.thresholds),
           std::to_string(L));
    }
    table.print(std::cout);
    std::cout << "\nShape check (paper Fig 6): growing L improves the "
                 "first-level objective (E^max, max wait) toward the "
                 "FCFS-BF envelope at a slight cost in the averages, which "
                 "remain far better than FCFS-BF's.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
