// Ablation — the paper's §1 motivation: "even if a set of priority
// weights work well for a given period of time, they may have poor
// performance for another period of time." We tune three Maui-style
// weighted-priority configurations and run each across months with very
// different mixes, alongside queue-based priority (PBS/LSF style) with
// and without aging, and DDS/lxf/dynB which needs no tuning at all.

#include <iostream>

#include "bench_common.hpp"
#include "policies/multi_queue.hpp"
#include "policies/weighted_priority.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"nodes"});
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 1000));
    if (!args.has("months"))
      options.months = {"7/03", "8/03", "1/04", "2/04"};
    banner("Ablation: hand-tuned priority weights vs goal-oriented search",
           options, "rho = 0.9; R* = T");

    auto csv = csv_for(options, "ablation_weights",
                       {"month", "policy", "avg_wait_h", "max_wait_h",
                        "avg_bsld", "total_Emax_h"});

    struct Entry {
      std::string label;
      std::unique_ptr<Scheduler> (*make)();
    };
    auto make_fair = []() -> std::unique_ptr<Scheduler> {
      WeightedPriorityConfig cfg;  // pure aging: behaves like FCFS
      cfg.w_wait = 1.0;
      return std::make_unique<WeightedPriorityScheduler>(cfg);
    };
    auto make_throughput = []() -> std::unique_ptr<Scheduler> {
      WeightedPriorityConfig cfg;  // tuned for short-job service
      cfg.w_wait = 0.2;
      cfg.w_xfactor = 2.0;
      cfg.w_runtime = 0.5;
      return std::make_unique<WeightedPriorityScheduler>(cfg);
    };
    auto make_wide = []() -> std::unique_ptr<Scheduler> {
      WeightedPriorityConfig cfg;  // tuned for large-resource jobs
      cfg.w_wait = 0.5;
      cfg.w_nodes = 0.2;
      return std::make_unique<WeightedPriorityScheduler>(cfg);
    };
    auto make_queues = []() -> std::unique_ptr<Scheduler> {
      return std::make_unique<MultiQueueScheduler>();
    };
    auto make_queues_aged = []() -> std::unique_ptr<Scheduler> {
      MultiQueueConfig cfg;
      cfg.aging_limit = 24 * kHour;
      return std::make_unique<MultiQueueScheduler>(cfg);
    };
    const std::vector<Entry> entries = {
        {"Weighted: aging-only", +make_fair},
        {"Weighted: short-tuned", +make_throughput},
        {"Weighted: wide-tuned", +make_wide},
        {"MultiQueue (no aging)", +make_queues},
        {"MultiQueue (24h aging)", +make_queues_aged},
    };

    Table table({"month", "policy", "avg wait (h)", "max wait (h)",
                 "avg bsld", "E^max tot (h)"});
    auto emit = [&](const MonthEval& eval, const std::string& label) {
      table.row()
          .add(eval.month)
          .add(label)
          .add(eval.summary.avg_wait_h)
          .add(eval.summary.max_wait_h)
          .add(eval.summary.avg_bounded_slowdown)
          .add(eval.e_max.total_h, 1);
      if (csv)
        csv->write_row({eval.month, label,
                        format_double(eval.summary.avg_wait_h, 3),
                        format_double(eval.summary.max_wait_h, 3),
                        format_double(eval.summary.avg_bounded_slowdown, 3),
                        format_double(eval.e_max.total_h, 3)});
    };

    for (const auto& month : prepare_months(options, /*load=*/0.9)) {
      for (const auto& entry : entries) {
        auto policy = entry.make();
        emit(evaluate_policy(month.trace, *policy, month.thresholds),
             entry.label);
      }
      emit(evaluate_spec(month.trace, "DDS/lxf/dynB", L, month.thresholds),
           "DDS/lxf/dynB (no tuning)");
    }
    table.print(std::cout);
    std::cout << "\nShape check: no single weight vector wins across the "
                 "months — the short-tuned weights ruin max wait in "
                 "long-heavy months and vice versa, and queue priority "
                 "without aging starves long jobs — while the search "
                 "policy tracks the best column everywhere without any "
                 "per-month tuning.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
