// Federation scale-out and routing quality. Each study month runs five
// ways: as one monolithic cluster (the single-cluster baseline, the
// paper's setting) and scaled out to a three-member federation — the
// original machine plus two half-size siblings — under each
// meta-scheduling policy, with a seeded fault schedule degrading the wide
// member so migration has something to do — plus a fifth row putting the
// least-loaded federation under a seeded chaos schedule (member blackouts
// and link partitions), so the cost of failover, re-homing and ledger
// reconciliation shows up as a wall-clock and wait-time delta against the
// chaos-free federated rows. (The wide member must stay as
// wide as the original machine: the study months contain full-width jobs,
// which no partition of the machine could host.) Reported per row: the
// paper's wait measures, the migration tally, and wall-clock scheduling
// time. The JSON doc carries an explicit migration_exercised verdict —
// when no federated row migrated (tiny --scale runs can be that idle),
// the doc says so via skip_reason instead of letting a consumer mistake
// "never exercised" for "no cost".
//
//   bench_federation [--scale=f] [--seed=n] [--months=a,b] [--csv=dir]
//
// Writes BENCH_federation.json next to the printed table.

#include <chrono>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "fed/federation.hpp"
#include "fed/meta_scheduler.hpp"
#include "metrics/summary.hpp"
#include "sim/faults.hpp"

namespace {

struct RowResult {
  sbs::Summary summary;
  double avg_queue_length = 0.0;
  std::uint64_t migrations = 0;
  int clusters = 1;
  double wall_ms = 0.0;
  // Fault-tolerance tallies; nonzero only for the chaos row.
  std::uint64_t failovers = 0;
  std::uint64_t rehomes = 0;
  std::uint64_t duplicate_runs = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv);
    banner("Federation: single-cluster baseline vs 3-member scale-out per "
           "meta policy",
           options,
           "members = machine + 1/2 + 1/2; faults degrade the wide member "
           "(MTBF 24h, MTTR 2h, blocks up to half of it); the chaos row "
           "adds member blackouts (MTBF 72h, MTTR 4h) and link partitions "
           "(MTBF 96h, MTTR 2h)");

    const std::string policy = "DDS/lxf/dynB";
    constexpr std::size_t kNodeLimit = 1000;
    const std::vector<std::string> metas = {"rr", "least-loaded", "best-fit"};

    auto csv = csv_for(options, "federation",
                       {"month", "mode", "clusters", "avg_wait_h",
                        "p98_wait_h", "avg_bounded_slowdown", "avg_queue_len",
                        "migrations", "failovers", "rehomes",
                        "duplicate_runs", "wall_ms"});
    obs::JsonWriter doc = bench_json_doc(options, "federation");

    Table table({"month", "mode", "clusters", "avg wait (h)", "p98 wait (h)",
                 "avg bsld", "avg queue", "migr", "wall (ms)"});
    std::uint64_t total_migrations = 0;
    bool any_federated_row = false;
    for (const auto& month : prepare_months(options, /*load=*/0.9)) {
      const Trace& trace = month.trace;
      const int half = std::max(1, trace.capacity / 2);
      const int wide = trace.capacity;
      FaultSpec fs;
      fs.node_mtbf = from_hours(24.0);
      fs.node_mttr = from_hours(2.0);
      fs.min_block = 1;
      fs.max_block = std::max(1, wide / 2);
      fs.seed = options.seed;
      const FaultInjector wide_faults = FaultInjector::from_spec(
          fs, trace.window_begin, trace.window_end, wide);

      auto emit = [&](const std::string& mode, const RowResult& r) {
        table.row()
            .add(trace.name)
            .add(mode)
            .add(r.clusters)
            .add(r.summary.avg_wait_h)
            .add(r.summary.p98_wait_h)
            .add(r.summary.avg_bounded_slowdown)
            .add(r.avg_queue_length, 1)
            .add(r.migrations)
            .add(r.wall_ms, 0);
        if (csv)
          csv->write_row({trace.name, mode, std::to_string(r.clusters),
                          format_double(r.summary.avg_wait_h, 3),
                          format_double(r.summary.p98_wait_h, 3),
                          format_double(r.summary.avg_bounded_slowdown, 3),
                          format_double(r.avg_queue_length, 3),
                          std::to_string(r.migrations),
                          std::to_string(r.failovers),
                          std::to_string(r.rehomes),
                          std::to_string(r.duplicate_runs),
                          format_double(r.wall_ms, 1)});
        doc.begin_object()
            .field("month", trace.name)
            .field("mode", mode)
            .field("clusters", r.clusters)
            .field("avg_wait_h", r.summary.avg_wait_h)
            .field("p98_wait_h", r.summary.p98_wait_h)
            .field("avg_bounded_slowdown", r.summary.avg_bounded_slowdown)
            .field("avg_queue_len", r.avg_queue_length)
            .field("migrations", r.migrations)
            .field("failovers", r.failovers)
            .field("rehomes", r.rehomes)
            .field("duplicate_runs", r.duplicate_runs)
            .field("wall_ms", r.wall_ms)
            .end_object();
      };

      {  // single-cluster baseline: same machine, no federation layer
        const auto t0 = std::chrono::steady_clock::now();
        auto scheduler = make_policy(policy, kNodeLimit);
        const SimResult sr = simulate(trace, *scheduler);
        RowResult r;
        r.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        r.summary = summarize(sr.outcomes);
        r.avg_queue_length = sr.avg_queue_length;
        emit("baseline", r);
      }

      const auto factory = make_policy_factory(policy, kNodeLimit);
      for (const std::string& meta_spec : metas) {
        fed::FederationConfig fc;
        fc.members = {{"wide", wide, &wide_faults},
                      {"h1", half, nullptr},
                      {"h2", half, nullptr}};
        const auto meta = fed::make_meta(meta_spec);
        const auto t0 = std::chrono::steady_clock::now();
        fed::Federation federation(trace, factory, *meta, fc);
        const fed::FederationResult fr = federation.run();
        RowResult r;
        r.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        r.summary = summarize(fr.outcomes);
        r.avg_queue_length = fr.avg_queue_length;
        r.migrations = fr.migrations;
        r.clusters = 3;
        emit(meta_spec, r);
        total_migrations += fr.migrations;
        any_federated_row = true;
      }

      {  // The least-loaded federation again, now under seeded chaos: the
         // delta against its chaos-free row is the price of fault
         // tolerance (kill-and-rerun work, re-homes, reconciliation).
        ChaosSpec cs;
        cs.outage_mtbf = from_hours(72.0);
        cs.outage_mttr = from_hours(4.0);
        cs.partition_mtbf = from_hours(96.0);
        cs.partition_mttr = from_hours(2.0);
        cs.seed = options.seed;
        const ChaosSchedule chaos = ChaosSchedule::from_spec(
            cs, trace.window_begin, trace.window_end, /*members=*/3);
        fed::FederationConfig fc;
        fc.members = {{"wide", wide, &wide_faults},
                      {"h1", half, nullptr},
                      {"h2", half, nullptr}};
        fc.chaos = &chaos;
        const auto meta = fed::make_meta("least-loaded");
        const auto t0 = std::chrono::steady_clock::now();
        fed::Federation federation(trace, factory, *meta, fc);
        const fed::FederationResult fr = federation.run();
        RowResult r;
        r.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        r.summary = summarize(fr.outcomes);
        r.avg_queue_length = fr.avg_queue_length;
        r.migrations = fr.migrations;
        r.clusters = 3;
        r.failovers = fr.failovers;
        r.rehomes = fr.rehomes;
        r.duplicate_runs = fr.duplicate_runs;
        emit("least-loaded+chaos", r);
        total_migrations += fr.migrations;
        any_federated_row = true;
      }
    }
    table.print(std::cout);

    const bool exercised = total_migrations > 0;
    doc.end_array()
        .field("total_migrations", total_migrations)
        .field("migration_exercised", exercised);
    if (!exercised)
      doc.field("skip_reason",
                any_federated_row
                    ? "no federated row migrated at this scale; rerun with "
                      "a larger --scale to exercise migration"
                    : "no months selected");
    doc.end_object();
    write_bench_json(options, "federation", doc);
    std::cout << "\nShape check: scale-out cuts waits well below the "
                 "monolithic baseline, best-fit and least-loaded beat "
                 "round-robin, migration drains the fault-degraded member "
                 "instead of stranding its queue, and the chaos row pays a "
                 "bounded wait/wall premium over its chaos-free twin while "
                 "losing no jobs.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
