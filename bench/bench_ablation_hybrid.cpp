// Ablation — complete search + local search hybrid (the paper's first
// future-work item, citing Crawford's systematic/local combination). We
// compare DDS/lxf/dynB at budget L against the same policy with a
// local-search refinement pass, and against a half-budget tree search
// whose saved nodes are spent on refinement — does polish beat breadth?

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"nodes"});
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 2000));
    if (!args.has("months")) options.months = {"7/03", "10/03", "1/04"};
    banner("Ablation: tree search + local-search refinement", options,
           "rho = 0.9; R* = T");

    auto csv = csv_for(options, "ablation_hybrid",
                       {"month", "variant", "avg_wait_h", "max_wait_h",
                        "avg_bsld", "total_Emax_h"});

    struct Variant {
      std::string label;
      std::size_t tree_budget;
      bool refine;
    };
    const std::vector<Variant> variants = {
        {"DDS L=" + std::to_string(L), L, false},
        {"DDS L=" + std::to_string(L) + " +ls", L, true},
        {"DDS L=" + std::to_string(L / 2) + " +ls", L / 2, true},
    };

    Table table({"month", "variant", "avg wait (h)", "max wait (h)",
                 "avg bsld", "E^max tot (h)"});
    for (const auto& month : prepare_months(options, /*load=*/0.9)) {
      for (const auto& v : variants) {
        SearchSchedulerConfig cfg;
        cfg.search.algo = SearchAlgo::Dds;
        cfg.search.branching = Branching::Lxf;
        cfg.search.node_limit = v.tree_budget;
        cfg.bound = BoundSpec::dynamic_bound();
        cfg.refine = v.refine;
        cfg.local.max_evaluations = 100;
        SearchScheduler policy(cfg);
        const MonthEval eval =
            evaluate_policy(month.trace, policy, month.thresholds);
        table.row()
            .add(month.trace.name)
            .add(v.label)
            .add(eval.summary.avg_wait_h)
            .add(eval.summary.max_wait_h)
            .add(eval.summary.avg_bounded_slowdown)
            .add(eval.e_max.total_h, 1);
        if (csv)
          csv->write_row({month.trace.name, v.label,
                          format_double(eval.summary.avg_wait_h, 3),
                          format_double(eval.summary.max_wait_h, 3),
                          format_double(eval.summary.avg_bounded_slowdown, 3),
                          format_double(eval.e_max.total_h, 3)});
      }
    }
    table.print(std::cout);
    std::cout << "\nPer-decision the refinement never returns a worse "
                 "schedule than its seed; whether that compounds into "
                 "better month-level metrics is what this table answers.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
