// Figure 2 — sensitivity of DDS/lxf to the fixed target wait bound ω.
// For ω in {50, 100, 300} hours (plus the degenerate ω = 0 discussed in
// §5.1) we report, per month under the original load with R* = T and
// L = 1K: the maximum wait (Fig 2a) and the average bounded slowdown
// (Fig 2b). Expected shape: max wait tracks ω; slowdown is insensitive.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"nodes"});
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 1000));
    banner("Figure 2: DDS/lxf sensitivity to the fixed target bound w",
           options,
           "original load; R* = T; L = " + std::to_string(L));

    auto csv =
        csv_for(options, "fig2_fixed_bound",
                {"month", "bound_h", "max_wait_h", "avg_bsld", "avg_wait_h"});

    const std::vector<Time> bounds = {0, 50 * kHour, 100 * kHour, 300 * kHour};

    Table table({"month", "bound", "max wait (h)", "avg bsld",
                 "avg wait (h)"});
    for (const auto& month : prepare_months(options, /*load=*/0.0)) {
      for (const Time omega : bounds) {
        auto policy = make_search_policy(SearchAlgo::Dds, Branching::Lxf,
                                         BoundSpec::fixed_bound(omega), L);
        const MonthEval eval =
            evaluate_policy(month.trace, *policy, month.thresholds);
        table.row()
            .add(month.trace.name)
            .add(policy->name().substr(8))  // strip "DDS/lxf/"
            .add(eval.summary.max_wait_h)
            .add(eval.summary.avg_bounded_slowdown)
            .add(eval.summary.avg_wait_h);
        if (csv)
          csv->write_row({month.trace.name,
                          format_double(to_hours(omega), 0),
                          format_double(eval.summary.max_wait_h, 3),
                          format_double(eval.summary.avg_bounded_slowdown, 3),
                          format_double(eval.summary.avg_wait_h, 3)});
      }
    }
    table.print(std::cout);
    std::cout << "\nShape check (paper Fig 2): max wait rises toward the "
                 "given w as it grows 50h -> 300h, and collapses the "
                 "schedule quality when w = 0; avg slowdown stays largely "
                 "flat.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
