// Ablation — number of reservations (paper §4): "both backfill policies
// give only one priority job a scheduled start time, as we do not find
// more reservations to improve the performance." We sweep the number of
// protected priority jobs for FCFS-backfill and LXF-backfill (0 = pure
// greedy backfill, up to 8) and also include the Slack-backfill
// comparator, whose slack plays the same protective role continuously.

#include <iostream>

#include "bench_common.hpp"
#include "policies/backfill.hpp"
#include "policies/slack_backfill.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv);
    if (!args.has("months")) options.months = {"7/03", "9/03", "1/04"};
    banner("Ablation: number of backfill reservations (paper sec. 4)",
           options, "rho = 0.9; R* = T");

    auto csv = csv_for(options, "ablation_reservations",
                       {"month", "policy", "reservations", "avg_wait_h",
                        "max_wait_h", "avg_bsld", "total_Emax_h"});

    Table table({"month", "policy", "#res", "avg wait (h)", "max wait (h)",
                 "avg bsld", "E^max tot (h)"});
    auto emit = [&](const MonthEval& eval, const std::string& policy,
                    const std::string& res) {
      table.row()
          .add(eval.month)
          .add(policy)
          .add(res)
          .add(eval.summary.avg_wait_h)
          .add(eval.summary.max_wait_h)
          .add(eval.summary.avg_bounded_slowdown)
          .add(eval.e_max.total_h, 1);
      if (csv)
        csv->write_row({eval.month, policy, res,
                        format_double(eval.summary.avg_wait_h, 3),
                        format_double(eval.summary.max_wait_h, 3),
                        format_double(eval.summary.avg_bounded_slowdown, 3),
                        format_double(eval.e_max.total_h, 3)});
    };

    for (const auto& month : prepare_months(options, /*load=*/0.9)) {
      for (const PriorityKind priority :
           {PriorityKind::Fcfs, PriorityKind::Lxf}) {
        for (const int reservations :
             {0, 1, 2, 4, 8, kConservativeReservations}) {
          BackfillConfig cfg;
          cfg.priority = priority;
          cfg.reservations = reservations;
          BackfillScheduler policy(cfg);
          emit(evaluate_policy(month.trace, policy, month.thresholds),
               priority_name(priority) + "-backfill",
               reservations >= kConservativeReservations
                   ? "all"
                   : std::to_string(reservations));
        }
      }
      SlackBackfillScheduler slack;
      emit(evaluate_policy(month.trace, slack, month.thresholds),
           slack.name(), "-");
    }
    table.print(std::cout);
    std::cout << "\nShape check (paper sec. 4): beyond one reservation the "
                 "measures barely move (more reservations block backfill "
                 "without helping the protected jobs much); zero "
                 "reservations lets narrow long jobs starve the wide head "
                 "job.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
