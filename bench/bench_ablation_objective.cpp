// Ablation — hierarchical vs weighted-sum objective (paper §2.1). The
// paper argues the weighted formulation "can be complex as it requires
// choosing the weights" and adopts the hierarchical two-level objective
// instead. Here we run DDS/lxf/dynB with the hierarchical comparator and
// with weighted-sum comparators across three orders of magnitude of the
// weight alpha (score = alpha * excess_h + avg_bsld), showing how
// sensitive the weighted variant is to that choice.

#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"nodes"});
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 1000));
    if (!args.has("months")) options.months = {"7/03", "10/03", "1/04"};
    banner("Ablation: hierarchical vs weighted-sum objective", options,
           "rho = 0.9; R* = T; L = " + std::to_string(L));

    auto csv = csv_for(options, "ablation_objective",
                       {"month", "objective", "avg_wait_h", "max_wait_h",
                        "avg_bsld", "total_Emax_h"});

    struct Variant {
      std::string label;
      double alpha;  // 0 = hierarchical
    };
    const std::vector<Variant> variants = {
        {"hierarchical", 0.0},
        {"weighted a=0.1", 0.1},
        {"weighted a=1", 1.0},
        {"weighted a=10", 10.0},
    };

    Table table({"month", "objective", "avg wait (h)", "max wait (h)",
                 "avg bsld", "E^max tot (h)"});
    for (const auto& month : prepare_months(options, /*load=*/0.9)) {
      for (const auto& v : variants) {
        SearchSchedulerConfig cfg;
        cfg.search.algo = SearchAlgo::Dds;
        cfg.search.branching = Branching::Lxf;
        cfg.search.node_limit = L;
        cfg.search.comparator.weighted_alpha = v.alpha;
        cfg.bound = BoundSpec::dynamic_bound();
        SearchScheduler policy(cfg);
        const MonthEval eval =
            evaluate_policy(month.trace, policy, month.thresholds);
        table.row()
            .add(month.trace.name)
            .add(v.label)
            .add(eval.summary.avg_wait_h)
            .add(eval.summary.max_wait_h)
            .add(eval.summary.avg_bounded_slowdown)
            .add(eval.e_max.total_h, 1);
        if (csv)
          csv->write_row({month.trace.name, v.label,
                          format_double(eval.summary.avg_wait_h, 3),
                          format_double(eval.summary.max_wait_h, 3),
                          format_double(eval.summary.avg_bounded_slowdown, 3),
                          format_double(eval.e_max.total_h, 3)});
      }
    }
    table.print(std::cout);
    std::cout << "\nShape check: the weighted variants drift between the "
                 "two goals as alpha moves across three decades — the "
                 "tuning burden the hierarchical objective removes.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
