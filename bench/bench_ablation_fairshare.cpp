// Ablation — fair-share in the scheduling objective (the paper's final
// future-work item). The synthetic months attribute jobs to a Zipf user
// population (a few heavy users dominate). We compare DDS/lxf/dynB with
// and without the fair-share bound adjustment, reporting the global
// measures plus the inter-user service spread (worst/best per-user avg
// bounded slowdown): fair-share should shrink the spread at modest cost
// to the global averages.

#include <iostream>

#include "bench_common.hpp"
#include "metrics/users.hpp"

int main(int argc, char** argv) {
  using namespace sbs;
  using namespace sbs::bench;
  try {
    auto [options, args] = parse_options(argc, argv, {"nodes"});
    const auto L = static_cast<std::size_t>(args.get_int("nodes", 1000));
    if (!args.has("months")) options.months = {"9/03", "11/03", "2/04"};
    banner("Ablation: fair-share in the objective (paper future work)",
           options, "rho = 0.9; R* = T; Zipf user population");

    auto csv = csv_for(options, "ablation_fairshare",
                       {"month", "policy", "avg_wait_h", "max_wait_h",
                        "avg_bsld", "top3_wait_h", "others_wait_h",
                        "users"});

    Table table({"month", "policy", "avg wait (h)", "max wait (h)",
                 "avg bsld", "top-3 users wait", "other users wait",
                 "#users"});
    for (const auto& month : prepare_months(options, /*load=*/0.9)) {
      for (const std::string spec : {"DDS/lxf/dynB", "DDS/lxf/dynB+fs"}) {
        const MonthEval eval =
            evaluate_spec(month.trace, spec, L, month.thresholds, {}, true);
        // Split users into the three largest consumers vs everyone else.
        auto users = per_user_summary(eval.outcomes);
        std::sort(users.begin(), users.end(),
                  [](const UserSummary& a, const UserSummary& b) {
                    return a.demand_node_h > b.demand_node_h;
                  });
        double top_wait = 0.0, rest_wait = 0.0;
        std::size_t top_n = 0, rest_n = 0;
        for (std::size_t i = 0; i < users.size(); ++i) {
          if (i < 3) {
            top_wait += users[i].avg_wait_h;
            ++top_n;
          } else {
            rest_wait += users[i].avg_wait_h;
            ++rest_n;
          }
        }
        if (top_n) top_wait /= static_cast<double>(top_n);
        if (rest_n) rest_wait /= static_cast<double>(rest_n);
        table.row()
            .add(month.trace.name)
            .add(eval.policy)
            .add(eval.summary.avg_wait_h)
            .add(eval.summary.max_wait_h)
            .add(eval.summary.avg_bounded_slowdown)
            .add(top_wait)
            .add(rest_wait)
            .add(users.size());
        if (csv)
          csv->write_row({month.trace.name, eval.policy,
                          format_double(eval.summary.avg_wait_h, 3),
                          format_double(eval.summary.max_wait_h, 3),
                          format_double(eval.summary.avg_bounded_slowdown, 3),
                          format_double(top_wait, 3),
                          format_double(rest_wait, 3),
                          std::to_string(users.size())});
      }
    }
    table.print(std::cout);
    std::cout << "\nReading: +fs tightens under-served users' bounds "
                 "(never relaxing anyone's tail protection). On these "
                 "stationary Zipf months the shift is modest — light "
                 "users' average wait improves in the months where heavy "
                 "consumers congest the queue, at a small cost to max "
                 "wait. The mechanism's strong case (one user flooding "
                 "the queue) is exercised in test_fairshare.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
