// Microbenchmarks (google-benchmark) for the hot paths: resource-profile
// queries, schedule building, and the discrepancy search itself. The
// paper reports 30-65 ms to visit 1K-8K nodes in a 30-job tree (Java,
// 2 GHz P4); BM_Search_30Jobs reports our per-node cost directly.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/schedule_builder.hpp"
#include "core/search.hpp"
#include "util/rng.hpp"

namespace {

using namespace sbs;

// Builds a decision point with `n` waiting jobs on a 128-node machine with
// a realistic busy profile.
struct Fixture {
  std::vector<Job> storage;
  SearchProblem problem;

  explicit Fixture(std::size_t n, std::uint64_t seed = 7) {
    Rng rng(seed);
    problem.now = 0;
    problem.capacity = 128;
    problem.base = ResourceProfile(128, 0);
    // ~20 running jobs leaving a fragmented profile.
    int used = 0;
    for (int i = 0; i < 20 && used < 110; ++i) {
      const int nodes = static_cast<int>(rng.uniform_int(1, 16));
      if (used + nodes > 128) break;
      problem.base.reserve(0, nodes,
                           static_cast<Time>(rng.uniform_int(600, 8 * kHour)));
      used += nodes;
    }
    storage.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Job j;
      j.id = static_cast<int>(i);
      j.submit = -static_cast<Time>(rng.uniform_int(0, 12 * kHour));
      j.nodes = static_cast<int>(rng.uniform_int(1, 64));
      j.runtime = j.requested = static_cast<Time>(rng.uniform_int(60, 12 * kHour));
      storage.push_back(j);
    }
    for (const Job& j : storage) {
      SearchJob s;
      s.job = &j;
      s.nodes = j.nodes;
      s.estimate = j.runtime;
      s.submit = j.submit;
      s.bound = 50 * kHour;
      const double est = static_cast<double>(std::max<Time>(j.runtime, kMinute));
      s.slowdown_now = (static_cast<double>(-j.submit) + est) / est;
      problem.jobs.push_back(s);
    }
  }
};

void BM_ProfileEarliestStart(benchmark::State& state) {
  Fixture f(30);
  Rng rng(3);
  for (auto _ : state) {
    const int nodes = static_cast<int>(rng.uniform_int(1, 64));
    const Time dur = static_cast<Time>(rng.uniform_int(60, 12 * kHour));
    benchmark::DoNotOptimize(f.problem.base.earliest_start(0, nodes, dur));
  }
}
BENCHMARK(BM_ProfileEarliestStart);

void BM_ProfileCopy(benchmark::State& state) {
  Fixture f(30);
  for (auto _ : state) {
    ResourceProfile copy = f.problem.base;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_ProfileCopy);

void BM_BuildSchedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fixture f(n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_schedule(f.problem, order));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BuildSchedule)->Arg(10)->Arg(30)->Arg(100);

void BM_Search_30Jobs(benchmark::State& state) {
  // items/s below is search nodes per second; the paper's Java simulator
  // did 1K nodes in 30-65 ms (15K-33K nodes/s) on a 30-job tree.
  const auto L = static_cast<std::size_t>(state.range(0));
  Fixture f(30);
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = L;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const SearchResult r = run_search(f.problem, cfg);
    nodes += r.nodes_visited;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_Search_30Jobs)->Arg(1000)->Arg(8000)->Arg(100000);

void BM_Search_AlgoComparison(benchmark::State& state) {
  Fixture f(30);
  SearchConfig cfg;
  cfg.algo = state.range(0) == 0 ? SearchAlgo::Lds : SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = 4000;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const SearchResult r = run_search(f.problem, cfg);
    nodes += r.nodes_visited;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_Search_AlgoComparison)->Arg(0)->Arg(1)->ArgNames({"dds"});

void BM_Search_Pruning(benchmark::State& state) {
  Fixture f(12);
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = 200000;
  cfg.prune = state.range(0) != 0;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const SearchResult r = run_search(f.problem, cfg);
    nodes += r.nodes_visited;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_Search_Pruning)->Arg(0)->Arg(1)->ArgNames({"prune"});

}  // namespace

BENCHMARK_MAIN();
