// Microbenchmarks (google-benchmark) for the hot paths: resource-profile
// queries, schedule building, and the discrepancy search itself. The
// paper reports 30-65 ms to visit 1K-8K nodes in a 30-job tree (Java,
// 2 GHz P4); BM_Search_30Jobs reports our per-node cost directly.
//
// After the google-benchmark suite, main() runs two standalone
// measurements: the parallel-engine scaling sweep (BENCH_search_parallel
// .json — nodes/sec at 1/2/4/8 workers against the sequential engine) and
// the incremental-builder comparison (BENCH_search_cache.json — placement
// throughput of the undo-log + memo builder against the naive per-depth
// snapshot builder at several node budgets). Both are the machine-readable
// evidence CI gates on: >= 2x at 4 threads, >= 1.5x from the cache at
// budgets of 2000 nodes and up.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/schedule_builder.hpp"
#include "core/search.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace sbs;

// Builds a decision point with `n` waiting jobs on a 128-node machine with
// a realistic busy profile. `arrays` switches the queue composition from
// all-distinct jobs to NCSA-style job arrays — batches of 3-6 identical
// (nodes, runtime) submissions, the dominant pattern in the paper's
// workload and the case the builder's shape-keyed memo exists for.
struct Fixture {
  std::vector<Job> storage;
  SearchProblem problem;

  explicit Fixture(std::size_t n, bool arrays = false, std::uint64_t seed = 7) {
    Rng rng(seed);
    problem.now = 0;
    problem.capacity = 128;
    problem.base = ResourceProfile(128, 0);
    // ~20 running jobs leaving a fragmented profile.
    int used = 0;
    for (int i = 0; i < 20 && used < 110; ++i) {
      const int nodes = static_cast<int>(rng.uniform_int(1, 16));
      if (used + nodes > 128) break;
      problem.base.reserve(0, nodes,
                           static_cast<Time>(rng.uniform_int(600, 8 * kHour)));
      used += nodes;
    }
    storage.reserve(n);
    while (storage.size() < n) {
      Job j;
      j.id = static_cast<int>(storage.size());
      j.submit = -static_cast<Time>(rng.uniform_int(0, 12 * kHour));
      j.nodes = static_cast<int>(rng.uniform_int(1, 64));
      j.runtime = j.requested = static_cast<Time>(rng.uniform_int(60, 12 * kHour));
      const std::size_t batch =
          arrays ? static_cast<std::size_t>(rng.uniform_int(3, 6)) : 1;
      for (std::size_t b = 0; b < batch && storage.size() < n; ++b) {
        storage.push_back(j);
        j.id = static_cast<int>(storage.size());
      }
    }
    for (const Job& j : storage) {
      SearchJob s;
      s.job = &j;
      s.nodes = j.nodes;
      s.estimate = j.runtime;
      s.submit = j.submit;
      s.bound = 50 * kHour;
      const double est = static_cast<double>(std::max<Time>(j.runtime, kMinute));
      s.slowdown_now = (static_cast<double>(-j.submit) + est) / est;
      problem.jobs.push_back(s);
    }
  }
};

void BM_ProfileEarliestStart(benchmark::State& state) {
  Fixture f(30);
  Rng rng(3);
  for (auto _ : state) {
    const int nodes = static_cast<int>(rng.uniform_int(1, 64));
    const Time dur = static_cast<Time>(rng.uniform_int(60, 12 * kHour));
    benchmark::DoNotOptimize(f.problem.base.earliest_start(0, nodes, dur));
  }
}
BENCHMARK(BM_ProfileEarliestStart);

void BM_ProfileCopy(benchmark::State& state) {
  Fixture f(30);
  for (auto _ : state) {
    ResourceProfile copy = f.problem.base;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_ProfileCopy);

void BM_BuildSchedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fixture f(n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_schedule(f.problem, order));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BuildSchedule)->Arg(10)->Arg(30)->Arg(100);

void BM_Search_30Jobs(benchmark::State& state) {
  // items/s below is search nodes per second; the paper's Java simulator
  // did 1K nodes in 30-65 ms (15K-33K nodes/s) on a 30-job tree.
  const auto L = static_cast<std::size_t>(state.range(0));
  Fixture f(30);
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = L;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const SearchResult r = run_search(f.problem, cfg);
    nodes += r.nodes_visited;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_Search_30Jobs)->Arg(1000)->Arg(8000)->Arg(100000);

void BM_Search_AlgoComparison(benchmark::State& state) {
  Fixture f(30);
  SearchConfig cfg;
  cfg.algo = state.range(0) == 0 ? SearchAlgo::Lds : SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = 4000;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const SearchResult r = run_search(f.problem, cfg);
    nodes += r.nodes_visited;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_Search_AlgoComparison)->Arg(0)->Arg(1)->ArgNames({"dds"});

void BM_Search_Parallel(benchmark::State& state) {
  // Arg = worker threads (0 = the sequential engine). items/s is accepted
  // search nodes per second; the result is bit-identical at every arg.
  const auto threads = static_cast<std::size_t>(state.range(0));
  Fixture f(30);
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = 50000;
  cfg.threads = threads;
  ThreadPool pool(threads > 0 ? threads : 1);
  std::size_t nodes = 0;
  for (auto _ : state) {
    const SearchResult r =
        run_search(f.problem, cfg, threads > 0 ? &pool : nullptr);
    nodes += r.nodes_visited;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_Search_Parallel)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"threads"})
    ->UseRealTime();

void BM_Search_CacheOnOff(benchmark::State& state) {
  // Arg0 = node budget, Arg1 = SearchConfig::cache, Arg2 = job-array
  // queue (the memo's target case) vs all-distinct jobs (its worst case).
  // items/s is placements per second; the two cache modes are bit-identical
  // in results, so the ratio is pure builder throughput.
  const auto L = static_cast<std::size_t>(state.range(0));
  Fixture f(30, state.range(2) != 0);
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = L;
  cfg.cache = state.range(1) != 0;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const SearchResult r = run_search(f.problem, cfg);
    nodes += r.nodes_visited;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_Search_CacheOnOff)
    ->Args({2000, 0, 1})
    ->Args({2000, 1, 1})
    ->Args({8000, 0, 1})
    ->Args({8000, 1, 1})
    ->Args({50000, 0, 1})
    ->Args({50000, 1, 1})
    ->Args({50000, 0, 0})
    ->Args({50000, 1, 0})
    ->ArgNames({"L", "cache", "arrays"});

void BM_Search_Pruning(benchmark::State& state) {
  Fixture f(12);
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = 200000;
  cfg.prune = state.range(0) != 0;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const SearchResult r = run_search(f.problem, cfg);
    nodes += r.nodes_visited;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_Search_Pruning)->Arg(0)->Arg(1)->ArgNames({"prune"});

// Standalone scaling sweep, independent of google-benchmark's timing: a
// fixed node budget explored repeatedly at each worker count, reported as
// nodes/sec and speedup over one worker. Emitted as BENCH_search_parallel
// .json so CI can assert the >= 2x-at-4-threads acceptance bar. The doc
// carries an explicit scaling_measurable verdict: on fewer than 4 usable
// cores (hardware or affinity mask) the speedup rows measure only
// overhead, and consumers must see the skip_reason rather than silently
// pass.
void emit_parallel_scaling_json(const sbs::bench::BenchOptions& options) {
  constexpr std::size_t kNodeLimit = 200000;
  constexpr int kReps = 3;
  Fixture f(30);
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = kNodeLimit;

  const unsigned usable = std::min(std::thread::hardware_concurrency(),
                                   sbs::bench::affinity_cpus());
  const bool measurable = usable >= 4;

  obs::JsonWriter doc;
  doc.begin_object()
      .field("bench", "search_parallel")
      .field("scale", options.scale)
      .field("seed", options.seed);
  sbs::bench::append_host_provenance(doc).field("scaling_measurable",
                                                measurable);
  if (!measurable)
    doc.field("skip_reason", "unmeasurable on " + std::to_string(usable) +
                                 " cores");
  doc.key("rows").begin_array();
  double base_nodes_per_sec = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    cfg.threads = threads;
    ThreadPool pool(threads);
    std::size_t nodes = 0;
    // Warm-up run so pool threads exist and caches are hot before timing.
    run_search(f.problem, cfg, &pool);
    const auto begin = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kReps; ++rep)
      nodes += run_search(f.problem, cfg, &pool).nodes_visited;
    const auto end = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(end - begin).count();
    const double nodes_per_sec =
        seconds > 0.0 ? static_cast<double>(nodes) / seconds : 0.0;
    if (threads == 1) base_nodes_per_sec = nodes_per_sec;
    doc.begin_object()
        .field("threads", static_cast<std::uint64_t>(threads))
        .field("nodes", static_cast<std::uint64_t>(nodes))
        .field("seconds", seconds)
        .field("nodes_per_sec", nodes_per_sec)
        .field("speedup_vs_1",
               base_nodes_per_sec > 0.0 ? nodes_per_sec / base_nodes_per_sec
                                        : 0.0)
        .end_object();
  }
  doc.end_array().end_object();
  sbs::bench::write_bench_json(options, "search_parallel", doc);
}

// Standalone cached-vs-naive comparison on the 30-job decision point,
// emitted as BENCH_search_cache.json. Each row is one (workload, node
// budget) pair: placements/sec with the naive per-depth snapshot builder,
// with the undo-log + memo builder, the ratio, and the memo hit rate. The
// "job_arrays" workload is the NCSA-style queue of identical-shape batches
// the memo targets — the acceptance bar is >= 1.5x there at budgets of
// 2000 and up. The "uniform" workload (every shape distinct, so the memo
// almost never hits) is emitted alongside as the honest worst case.
void emit_cache_comparison_json(const sbs::bench::BenchOptions& options) {
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;

  obs::JsonWriter doc;
  doc.begin_object()
      .field("bench", "search_cache")
      .field("scale", options.scale)
      .field("seed", options.seed);
  sbs::bench::append_host_provenance(doc)
      .key("rows")
      .begin_array();
  for (const bool arrays : {true, false}) {
    Fixture f(30, arrays);
    for (const std::size_t budget :
         {std::size_t{2000}, std::size_t{8000}, std::size_t{50000}}) {
      cfg.node_limit = budget;
      // Scale repetitions so every configuration times a few million
      // placements — a handful of reps at the small budgets measures
      // microseconds and reports noise.
      const int reps =
          static_cast<int>(std::max<std::size_t>(5, 2000000 / budget));
      double rate[2] = {0.0, 0.0};
      std::size_t visited[2] = {0, 0};
      double hit_rate = 0.0;
      for (const bool cache : {false, true}) {
        cfg.cache = cache;
        run_search(f.problem, cfg);  // warm-up
        std::size_t nodes = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        const auto begin = std::chrono::steady_clock::now();
        for (int rep = 0; rep < reps; ++rep) {
          const SearchResult r = run_search(f.problem, cfg);
          nodes += r.nodes_visited;
          hits += r.cache_hits;
          misses += r.cache_misses;
        }
        const auto end = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(end - begin).count();
        rate[cache] = seconds > 0.0 ? static_cast<double>(nodes) / seconds : 0.0;
        visited[cache] = nodes;
        if (cache && hits + misses > 0)
          hit_rate = static_cast<double>(hits) /
                     static_cast<double>(hits + misses);
      }
      doc.begin_object()
          .field("workload", arrays ? "job_arrays" : "uniform")
          .field("node_limit", static_cast<std::uint64_t>(budget))
          .field("nodes_naive", static_cast<std::uint64_t>(visited[0]))
          .field("nodes_cached", static_cast<std::uint64_t>(visited[1]))
          .field("naive_nodes_per_sec", rate[0])
          .field("cached_nodes_per_sec", rate[1])
          .field("speedup", rate[0] > 0.0 ? rate[1] / rate[0] : 0.0)
          .field("memo_hit_rate", hit_rate)
          .end_object();
    }
  }
  doc.end_array().end_object();
  sbs::bench::write_bench_json(options, "search_cache", doc);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // strips --benchmark_* flags
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const auto [options, args] = sbs::bench::parse_options(argc, argv);
  emit_parallel_scaling_json(options);
  emit_cache_comparison_json(options);
  return 0;
}
