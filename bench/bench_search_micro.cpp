// Microbenchmarks (google-benchmark) for the hot paths: resource-profile
// queries, schedule building, and the discrepancy search itself. The
// paper reports 30-65 ms to visit 1K-8K nodes in a 30-job tree (Java,
// 2 GHz P4); BM_Search_30Jobs reports our per-node cost directly.
//
// After the google-benchmark suite, main() runs three standalone
// measurements: the parallel-engine scaling sweep (BENCH_search_parallel
// .json — nodes/sec at 1/2/4/8 workers against the sequential engine),
// the incremental-builder comparison (BENCH_search_cache.json — placement
// throughput of the undo-log + memo builder against the naive per-depth
// snapshot builder at several node budgets), and the hot-path stack
// comparison (BENCH_search_hotpath.json — the undo-log + memo + SIMD
// builder against the all-scalar snapshot baseline on a deep-profile
// decision point, bit-identity asserted in-bench). All three are the
// machine-readable evidence CI gates on: >= 2x at 4 threads, >= 1.5x from
// the cache at budgets of 2000 nodes and up, >= 10x on the hot-path stack.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/scan_kernels.hpp"
#include "core/schedule_builder.hpp"
#include "core/search.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace sbs;

// Builds a decision point with `n` waiting jobs on a 128-node machine with
// a realistic busy profile. `arrays` switches the queue composition from
// all-distinct jobs to NCSA-style job arrays — batches of 3-6 identical
// (nodes, runtime) submissions, the dominant pattern in the paper's
// workload and the case the builder's shape-keyed memo exists for.
struct Fixture {
  std::vector<Job> storage;
  SearchProblem problem;

  explicit Fixture(std::size_t n, bool arrays = false, std::uint64_t seed = 7) {
    Rng rng(seed);
    problem.now = 0;
    problem.capacity = 128;
    problem.base = ResourceProfile(128, 0);
    // ~20 running jobs leaving a fragmented profile.
    int used = 0;
    for (int i = 0; i < 20 && used < 110; ++i) {
      const int nodes = static_cast<int>(rng.uniform_int(1, 16));
      if (used + nodes > 128) break;
      problem.base.reserve(0, nodes,
                           static_cast<Time>(rng.uniform_int(600, 8 * kHour)));
      used += nodes;
    }
    storage.reserve(n);
    while (storage.size() < n) {
      Job j;
      j.id = static_cast<int>(storage.size());
      j.submit = -static_cast<Time>(rng.uniform_int(0, 12 * kHour));
      j.nodes = static_cast<int>(rng.uniform_int(1, 64));
      j.runtime = j.requested = static_cast<Time>(rng.uniform_int(60, 12 * kHour));
      const std::size_t batch =
          arrays ? static_cast<std::size_t>(rng.uniform_int(3, 6)) : 1;
      for (std::size_t b = 0; b < batch && storage.size() < n; ++b) {
        storage.push_back(j);
        j.id = static_cast<int>(storage.size());
      }
    }
    for (const Job& j : storage) {
      SearchJob s;
      s.job = &j;
      s.nodes = j.nodes;
      s.estimate = j.runtime;
      s.submit = j.submit;
      s.bound = 50 * kHour;
      const double est = static_cast<double>(std::max<Time>(j.runtime, kMinute));
      s.slowdown_now = (static_cast<double>(-j.submit) + est) / est;
      problem.jobs.push_back(s);
    }
  }
};

// The hot-path stack's target regime: a 2048-node machine nearly full
// with ~2000 1-node jobs whose releases are staggered one per step, so
// the busy horizon is a long staircase, and a queue of small jobs in
// NCSA-style identical batches. This is where the naive per-depth
// snapshot builder pays an O(steps) profile copy per tree node while the
// undo-log builder touches only the handful of steps each small job
// spans, and where the earliest-start scans walk the staircase — the
// costs the incremental builder and the 8-lane kernels exist to remove.
// Profiles this deep arise on large machines whose running set is
// dominated by small jobs (the paper's NCSA workload is mostly 1-4 node
// jobs), which is exactly when per-decision search cost hurts most.
struct DeepFixture {
  std::vector<Job> storage;
  SearchProblem problem;

  explicit DeepFixture(std::size_t n_waiting, std::size_t steps,
                       std::uint64_t seed = 11) {
    Rng rng(seed);
    problem.now = 0;
    problem.capacity = 2048;
    problem.base = ResourceProfile(2048, 0);
    // One 1-node release per 10-minute step, jittered so every boundary is
    // distinct: `steps` profile steps, (capacity - steps) nodes free at 0.
    for (std::size_t i = 0; i < steps && i < 2016; ++i)
      problem.base.reserve(
          0, 1,
          static_cast<Time>((i + 1) * 600 + rng.uniform_int(1, 599)));
    storage.reserve(n_waiting);
    while (storage.size() < n_waiting) {
      Job j;
      j.id = static_cast<int>(storage.size());
      j.submit = -static_cast<Time>(rng.uniform_int(0, 12 * kHour));
      // Near-machine-wide requests: every placement must drain most of the
      // staircase first, so each earliest-start query scans essentially
      // the whole profile, and each job lands near the profile's end.
      j.nodes = static_cast<int>(rng.uniform_int(1800, 1984));
      j.runtime = j.requested =
          static_cast<Time>(rng.uniform_int(kHour, 12 * kHour));
      // Identical batches, the dominant NCSA submission pattern and the
      // shape-keyed memo's target case.
      const std::size_t batch = static_cast<std::size_t>(rng.uniform_int(3, 6));
      for (std::size_t b = 0; b < batch && storage.size() < n_waiting; ++b) {
        storage.push_back(j);
        j.id = static_cast<int>(storage.size());
      }
    }
    for (const Job& j : storage) {
      SearchJob s;
      s.job = &j;
      s.nodes = j.nodes;
      s.estimate = j.runtime;
      s.submit = j.submit;
      s.bound = 200 * kHour;
      const double est = static_cast<double>(std::max<Time>(j.runtime, kMinute));
      s.slowdown_now = (static_cast<double>(-j.submit) + est) / est;
      problem.jobs.push_back(s);
    }
  }
};

void BM_ProfileEarliestStart(benchmark::State& state) {
  Fixture f(30);
  Rng rng(3);
  for (auto _ : state) {
    const int nodes = static_cast<int>(rng.uniform_int(1, 64));
    const Time dur = static_cast<Time>(rng.uniform_int(60, 12 * kHour));
    benchmark::DoNotOptimize(f.problem.base.earliest_start(0, nodes, dur));
  }
}
BENCHMARK(BM_ProfileEarliestStart);

void BM_ProfileCopy(benchmark::State& state) {
  Fixture f(30);
  for (auto _ : state) {
    ResourceProfile copy = f.problem.base;
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_ProfileCopy);

void BM_BuildSchedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Fixture f(n);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_schedule(f.problem, order));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BuildSchedule)->Arg(10)->Arg(30)->Arg(100);

void BM_Search_30Jobs(benchmark::State& state) {
  // items/s below is search nodes per second; the paper's Java simulator
  // did 1K nodes in 30-65 ms (15K-33K nodes/s) on a 30-job tree.
  const auto L = static_cast<std::size_t>(state.range(0));
  Fixture f(30);
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = L;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const SearchResult r = run_search(f.problem, cfg);
    nodes += r.nodes_visited;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_Search_30Jobs)->Arg(1000)->Arg(8000)->Arg(100000);

void BM_Search_AlgoComparison(benchmark::State& state) {
  Fixture f(30);
  SearchConfig cfg;
  cfg.algo = state.range(0) == 0 ? SearchAlgo::Lds : SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = 4000;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const SearchResult r = run_search(f.problem, cfg);
    nodes += r.nodes_visited;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_Search_AlgoComparison)->Arg(0)->Arg(1)->ArgNames({"dds"});

void BM_Search_Parallel(benchmark::State& state) {
  // Arg = worker threads (0 = the sequential engine). items/s is accepted
  // search nodes per second; the result is bit-identical at every arg.
  const auto threads = static_cast<std::size_t>(state.range(0));
  Fixture f(30);
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = 50000;
  cfg.threads = threads;
  ThreadPool pool(threads > 0 ? threads : 1);
  std::size_t nodes = 0;
  for (auto _ : state) {
    const SearchResult r =
        run_search(f.problem, cfg, threads > 0 ? &pool : nullptr);
    nodes += r.nodes_visited;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_Search_Parallel)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"threads"})
    ->UseRealTime();

void BM_Search_CacheOnOff(benchmark::State& state) {
  // Arg0 = node budget, Arg1 = SearchConfig::cache, Arg2 = job-array
  // queue (the memo's target case) vs all-distinct jobs (its worst case).
  // items/s is placements per second; the two cache modes are bit-identical
  // in results, so the ratio is pure builder throughput.
  const auto L = static_cast<std::size_t>(state.range(0));
  Fixture f(30, state.range(2) != 0);
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = L;
  cfg.cache = state.range(1) != 0;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const SearchResult r = run_search(f.problem, cfg);
    nodes += r.nodes_visited;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_Search_CacheOnOff)
    ->Args({2000, 0, 1})
    ->Args({2000, 1, 1})
    ->Args({8000, 0, 1})
    ->Args({8000, 1, 1})
    ->Args({50000, 0, 1})
    ->Args({50000, 1, 1})
    ->Args({50000, 0, 0})
    ->Args({50000, 1, 0})
    ->ArgNames({"L", "cache", "arrays"});

void BM_Search_Pruning(benchmark::State& state) {
  Fixture f(12);
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = 200000;
  cfg.prune = state.range(0) != 0;
  std::size_t nodes = 0;
  for (auto _ : state) {
    const SearchResult r = run_search(f.problem, cfg);
    nodes += r.nodes_visited;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_Search_Pruning)->Arg(0)->Arg(1)->ArgNames({"prune"});

// Standalone scaling sweep, independent of google-benchmark's timing: a
// fixed node budget explored repeatedly at each worker count, reported as
// nodes/sec and speedup over one worker. Emitted as BENCH_search_parallel
// .json so CI can assert the >= 2x-at-4-threads acceptance bar. The doc
// carries an explicit scaling_measurable verdict: on fewer than 4 usable
// cores (hardware or affinity mask) the speedup rows measure only
// overhead, and consumers must see the skip_reason rather than silently
// pass. Each row additionally carries its own `measurable` verdict —
// a row timed with more workers than the affinity mask grants CPUs is
// refused (the workers time-slice one another), independent of whether
// the 4-thread headline bar is assessable.
void emit_parallel_scaling_json(const sbs::bench::BenchOptions& options) {
  constexpr std::size_t kNodeLimit = 200000;
  constexpr int kReps = 3;
  Fixture f(30);
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = kNodeLimit;

  const unsigned usable = std::min(std::thread::hardware_concurrency(),
                                   sbs::bench::affinity_cpus());
  const bool measurable = usable >= 4;

  obs::JsonWriter doc;
  doc.begin_object()
      .field("bench", "search_parallel")
      .field("scale", options.scale)
      .field("seed", options.seed);
  sbs::bench::append_host_provenance(doc).field("scaling_measurable",
                                                measurable);
  if (!measurable)
    doc.field("skip_reason", "unmeasurable on " + std::to_string(usable) +
                                 " cores");
  doc.key("rows").begin_array();
  double base_nodes_per_sec = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    cfg.threads = threads;
    ThreadPool pool(threads);
    std::size_t nodes = 0;
    // Warm-up run so pool threads exist and caches are hot before timing.
    run_search(f.problem, cfg, &pool);
    const auto begin = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kReps; ++rep)
      nodes += run_search(f.problem, cfg, &pool).nodes_visited;
    const auto end = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(end - begin).count();
    const double nodes_per_sec =
        seconds > 0.0 ? static_cast<double>(nodes) / seconds : 0.0;
    if (threads == 1) base_nodes_per_sec = nodes_per_sec;
    const bool row_measurable = usable >= threads;
    doc.begin_object()
        .field("threads", static_cast<std::uint64_t>(threads))
        .field("nodes", static_cast<std::uint64_t>(nodes))
        .field("seconds", seconds)
        .field("nodes_per_sec", nodes_per_sec)
        .field("speedup_vs_1",
               base_nodes_per_sec > 0.0 ? nodes_per_sec / base_nodes_per_sec
                                        : 0.0)
        .field("measurable", row_measurable);
    if (!row_measurable)
      doc.field("skip_reason",
                std::to_string(threads) + " workers on " +
                    std::to_string(usable) + " affinity cpus");
    doc.end_object();
  }
  doc.end_array().end_object();
  sbs::bench::write_bench_json(options, "search_parallel", doc);
}

// Standalone cached-vs-naive comparison on the 30-job decision point,
// emitted as BENCH_search_cache.json. Each row is one (workload, node
// budget) pair: placements/sec with the naive per-depth snapshot builder,
// with the undo-log + memo builder, the ratio, and the memo hit rate. The
// "job_arrays" workload is the NCSA-style queue of identical-shape batches
// the memo targets — the acceptance bar is >= 1.5x there at budgets of
// 2000 and up. The "uniform" workload (every shape distinct, so the memo
// almost never hits) is emitted alongside as the honest worst case.
void emit_cache_comparison_json(const sbs::bench::BenchOptions& options) {
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;

  obs::JsonWriter doc;
  doc.begin_object()
      .field("bench", "search_cache")
      .field("scale", options.scale)
      .field("seed", options.seed);
  sbs::bench::append_host_provenance(doc)
      .key("rows")
      .begin_array();
  for (const bool arrays : {true, false}) {
    Fixture f(30, arrays);
    for (const std::size_t budget :
         {std::size_t{2000}, std::size_t{8000}, std::size_t{50000}}) {
      cfg.node_limit = budget;
      // Scale repetitions so every configuration times a few million
      // placements — a handful of reps at the small budgets measures
      // microseconds and reports noise.
      const int reps =
          static_cast<int>(std::max<std::size_t>(5, 2000000 / budget));
      double rate[2] = {0.0, 0.0};
      std::size_t visited[2] = {0, 0};
      double hit_rate = 0.0;
      for (const bool cache : {false, true}) {
        cfg.cache = cache;
        run_search(f.problem, cfg);  // warm-up
        std::size_t nodes = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        const auto begin = std::chrono::steady_clock::now();
        for (int rep = 0; rep < reps; ++rep) {
          const SearchResult r = run_search(f.problem, cfg);
          nodes += r.nodes_visited;
          hits += r.cache_hits;
          misses += r.cache_misses;
        }
        const auto end = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(end - begin).count();
        rate[cache] = seconds > 0.0 ? static_cast<double>(nodes) / seconds : 0.0;
        visited[cache] = nodes;
        if (cache && hits + misses > 0)
          hit_rate = static_cast<double>(hits) /
                     static_cast<double>(hits + misses);
      }
      doc.begin_object()
          .field("workload", arrays ? "job_arrays" : "uniform")
          .field("node_limit", static_cast<std::uint64_t>(budget))
          .field("nodes_naive", static_cast<std::uint64_t>(visited[0]))
          .field("nodes_cached", static_cast<std::uint64_t>(visited[1]))
          .field("naive_nodes_per_sec", rate[0])
          .field("cached_nodes_per_sec", rate[1])
          .field("speedup", rate[0] > 0.0 ? rate[1] / rate[0] : 0.0)
          .field("memo_hit_rate", hit_rate)
          .end_object();
    }
  }
  doc.end_array().end_object();
  sbs::bench::write_bench_json(options, "search_cache", doc);
}

// Times `reps`-adaptive single-thread searches under `cfg`, returning
// accepted nodes/sec. Runs at least kMinReps and keeps going until the
// timed window exceeds kMinSeconds, so the rate is never derived from a
// microsecond-scale sample.
struct HotpathRate {
  double nodes_per_sec = 0.0;
  double seconds = 0.0;
  std::uint64_t nodes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  int reps = 0;
};

HotpathRate time_hotpath(const SearchProblem& problem,
                         const SearchConfig& cfg) {
  constexpr int kMinReps = 3;
  constexpr double kMinSeconds = 0.25;
  run_search(problem, cfg);  // warm-up
  HotpathRate r;
  const auto begin = std::chrono::steady_clock::now();
  double seconds = 0.0;
  while (r.reps < kMinReps || seconds < kMinSeconds) {
    const SearchResult res = run_search(problem, cfg);
    r.nodes += res.nodes_visited;
    r.cache_hits += res.cache_hits;
    r.cache_misses += res.cache_misses;
    ++r.reps;
    seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            begin)
                  .count();
  }
  r.seconds = seconds;
  r.nodes_per_sec =
      seconds > 0.0 ? static_cast<double>(r.nodes) / seconds : 0.0;
  return r;
}

// Standalone hot-path stack comparison, emitted as BENCH_search_hotpath
// .json. Single thread, deep-profile decision point (DeepFixture): the
// all-scalar baseline — per-depth snapshot builder, scalar earliest-start
// scan — against the fast path — undo-log + memo builder with the 8-lane
// SIMD kernels. Dominance pruning is off on BOTH sides so the two
// searches visit the identical tree and the ratio is pure per-node
// throughput; the results are asserted bit-identical in-bench (order,
// starts, objective, node count) before any rate is reported, so a fast
// path that diverged could never post a speedup. A third row runs the
// full default stack (cache + simd + dominance) for the node-reduction
// telemetry. CI gates >= 10x on `speedup`; when the measurement is not
// trustworthy the doc says so via hotpath_measurable + skip_reason, and
// the gate must report "unmeasurable", not pass.
void emit_hotpath_json(const sbs::bench::BenchOptions& options) {
  DeepFixture f(24, 2016);
  SearchConfig cfg;
  cfg.algo = SearchAlgo::Dds;
  cfg.branching = Branching::Lxf;
  cfg.node_limit = 4000;
  cfg.dominance = false;

  // Bit-identity gate before any timing: same tree, same schedule.
  cfg.cache = false;
  cfg.simd = false;
  const SearchResult base = run_search(f.problem, cfg);
  cfg.cache = true;
  cfg.simd = true;
  const SearchResult fast = run_search(f.problem, cfg);
  SBS_CHECK_MSG(base.order == fast.order && base.starts == fast.starts &&
                    base.value.excess_h == fast.value.excess_h &&
                    base.value.avg_bsld == fast.value.avg_bsld &&
                    base.nodes_visited == fast.nodes_visited,
                "hot-path stack diverged from the scalar baseline");

  cfg.cache = false;
  cfg.simd = false;
  const HotpathRate scalar = time_hotpath(f.problem, cfg);
  cfg.cache = true;
  const HotpathRate cache_only = time_hotpath(f.problem, cfg);
  cfg.simd = true;
  const HotpathRate hot = time_hotpath(f.problem, cfg);
  cfg.dominance = true;
  const SearchResult pruned = run_search(f.problem, cfg);
  const HotpathRate defaults = time_hotpath(f.problem, cfg);

  const bool simd_compiled = kernels::simd_compiled();
  const bool measurable =
      simd_compiled && scalar.seconds > 0.0 && hot.seconds > 0.0;
  const double speedup = scalar.nodes_per_sec > 0.0
                             ? hot.nodes_per_sec / scalar.nodes_per_sec
                             : 0.0;

  obs::JsonWriter doc;
  doc.begin_object()
      .field("bench", "search_hotpath")
      .field("scale", options.scale)
      .field("seed", options.seed);
  sbs::bench::append_host_provenance(doc)
      .field("simd_compiled", simd_compiled)
      .field("profile_steps",
             static_cast<std::uint64_t>(f.problem.base.step_count()))
      .field("waiting_jobs", static_cast<std::uint64_t>(f.problem.jobs.size()))
      .field("node_limit", static_cast<std::uint64_t>(cfg.node_limit))
      .field("bit_identical", true)  // SBS_CHECK above, or we never got here
      .field("hotpath_measurable", measurable);
  if (!measurable)
    doc.field("skip_reason", simd_compiled
                                 ? "timer reported a zero-length window"
                                 : "SIMD kernels not compiled on this "
                                   "toolchain; scalar fallback active");
  doc.field("speedup", speedup).key("rows").begin_array();
  const struct {
    const char* config;
    const HotpathRate& rate;
  } rows[] = {{"scalar_baseline", scalar},
              {"cache_scalar", cache_only},
              {"cache_simd", hot},
              {"default_stack", defaults}};
  for (const auto& row : rows) {
    const std::uint64_t lookups = row.rate.cache_hits + row.rate.cache_misses;
    doc.begin_object()
        .field("config", row.config)
        .field("reps", static_cast<std::uint64_t>(row.rate.reps))
        .field("nodes", row.rate.nodes)
        .field("seconds", row.rate.seconds)
        .field("nodes_per_sec", row.rate.nodes_per_sec)
        .field("memo_hit_rate",
               lookups > 0
                   ? static_cast<double>(row.rate.cache_hits) /
                         static_cast<double>(lookups)
                   : 0.0)
        .end_object();
  }
  doc.end_array()
      .field("default_nodes_visited",
             static_cast<std::uint64_t>(pruned.nodes_visited))
      .field("default_pruned_twins", pruned.pruned_twins)
      .field("default_pruned_bound", pruned.pruned_bound)
      .end_object();
  sbs::bench::write_bench_json(options, "search_hotpath", doc);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // strips --benchmark_* flags
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const auto [options, args] = sbs::bench::parse_options(argc, argv);
  emit_parallel_scaling_json(options);
  emit_cache_comparison_json(options);
  emit_hotpath_json(options);
  return 0;
}
