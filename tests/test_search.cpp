#include "core/search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <set>
#include <vector>

#include "core/schedule_builder.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sbs {
namespace {

using test::ProblemBuilder;

SearchConfig config(SearchAlgo algo, Branching branching, std::size_t limit,
                    bool prune = false) {
  SearchConfig c;
  c.algo = algo;
  c.branching = branching;
  c.node_limit = limit;
  c.prune = prune;
  // This suite pins the UNREDUCED tree — exhaustive path sets, the paper's
  // per-iteration counts, exact node accounting — so the dominance layer
  // stays off. tests/test_search_simd.cpp and test_fuzz_invariants.cpp
  // cover its semantics (reduced tree, bit-identity, never-worse bounds).
  c.dominance = false;
  return c;
}

// Four distinguishable jobs in FCFS order 0,1,2,3 (like the paper's 1-4).
SearchProblem four_jobs() {
  ProblemBuilder b(4);
  b.busy(2, kHour);
  b.wait(-4 * kMinute, 2, kHour)
      .wait(-3 * kMinute, 3, 2 * kHour)
      .wait(-2 * kMinute, 1, 30 * kMinute)
      .wait(-kMinute, 4, kHour);
  static ProblemBuilder keep = b;  // keep Job storage alive
  keep = b;
  return keep.build();
}

TEST(Search, ExhaustiveCoversAllPathsExactlyOnce_LDS) {
  const SearchProblem p = four_jobs();
  std::set<std::vector<std::size_t>> seen;
  SearchConfig cfg = config(SearchAlgo::Lds, Branching::Fcfs, 1'000'000);
  cfg.on_path = [&](std::span<const std::size_t> order, const ObjectiveValue&) {
    std::vector<std::size_t> v(order.begin(), order.end());
    EXPECT_TRUE(seen.insert(v).second) << "duplicate path";
  };
  const SearchResult r = run_search(p, cfg);
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.paths_completed, 24u);
  EXPECT_EQ(seen.size(), 24u);
}

TEST(Search, ExhaustiveCoversAllPathsExactlyOnce_DDS) {
  const SearchProblem p = four_jobs();
  std::set<std::vector<std::size_t>> seen;
  SearchConfig cfg = config(SearchAlgo::Dds, Branching::Fcfs, 1'000'000);
  cfg.on_path = [&](std::span<const std::size_t> order, const ObjectiveValue&) {
    std::vector<std::size_t> v(order.begin(), order.end());
    EXPECT_TRUE(seen.insert(v).second) << "duplicate path";
  };
  const SearchResult r = run_search(p, cfg);
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.paths_completed, 24u);
  EXPECT_EQ(seen.size(), 24u);
}

TEST(Search, LdsIterationPathCountsMatchPaperFigure1) {
  // Figure 1: iteration 0 = 1 path, 1st = 6 paths, 2nd = 11 paths (n=4);
  // the remaining 6 paths have three discrepancies.
  const SearchProblem p = four_jobs();
  const SearchResult r =
      run_search(p, config(SearchAlgo::Lds, Branching::Fcfs, 1'000'000));
  ASSERT_EQ(r.paths_per_iteration.size(), 4u);
  EXPECT_EQ(r.paths_per_iteration[0], 1u);
  EXPECT_EQ(r.paths_per_iteration[1], 6u);
  EXPECT_EQ(r.paths_per_iteration[2], 11u);
  EXPECT_EQ(r.paths_per_iteration[3], 6u);
}

TEST(Search, DdsIterationPathCountsMatchPaperFigure1) {
  // Figure 1(e)-(f): DDS 1st iteration = 3 paths, 2nd = 8 paths.
  const SearchProblem p = four_jobs();
  const SearchResult r =
      run_search(p, config(SearchAlgo::Dds, Branching::Fcfs, 1'000'000));
  ASSERT_EQ(r.paths_per_iteration.size(), 4u);
  EXPECT_EQ(r.paths_per_iteration[0], 1u);
  EXPECT_EQ(r.paths_per_iteration[1], 3u);
  EXPECT_EQ(r.paths_per_iteration[2], 8u);
  EXPECT_EQ(r.paths_per_iteration[3], 12u);
}

TEST(Search, PaperExamplePathPosition) {
  // Paper §2.2: the path 0-4-3-1-2 (fcfs labels 1..4 -> indices 3,2,0,1)
  // is the 12th path explored under DDS but the 18th under LDS.
  const std::vector<std::size_t> target = {3, 2, 0, 1};
  for (auto [algo, expected] :
       {std::pair{SearchAlgo::Dds, 12}, std::pair{SearchAlgo::Lds, 18}}) {
    const SearchProblem p = four_jobs();
    int position = 0, found_at = -1;
    SearchConfig cfg = config(algo, Branching::Fcfs, 1'000'000);
    cfg.on_path = [&](std::span<const std::size_t> order,
                      const ObjectiveValue&) {
      ++position;
      if (std::equal(order.begin(), order.end(), target.begin(), target.end()))
        found_at = position;
    };
    run_search(p, cfg);
    EXPECT_EQ(found_at, expected) << algo_name(algo);
  }
}

TEST(Search, Iteration0IsTheHeuristicPath) {
  const SearchProblem p = four_jobs();
  std::vector<std::size_t> first_path;
  SearchConfig cfg = config(SearchAlgo::Dds, Branching::Fcfs, 1'000'000);
  cfg.on_path = [&](std::span<const std::size_t> order, const ObjectiveValue&) {
    if (first_path.empty()) first_path.assign(order.begin(), order.end());
  };
  run_search(p, cfg);
  EXPECT_EQ(first_path, (std::vector<std::size_t>{0, 1, 2, 3}));  // FCFS order
}

TEST(Search, LxfBranchingOrdersBySlowdown) {
  // lxf leftmost path = descending current slowdown. Job 2 (30m estimate,
  // 2m wait) has the highest slowdown; job 1 (2h estimate) the lowest.
  const SearchProblem p = four_jobs();
  std::vector<std::size_t> first_path;
  SearchConfig cfg = config(SearchAlgo::Dds, Branching::Lxf, 1'000'000);
  cfg.on_path = [&](std::span<const std::size_t> order, const ObjectiveValue&) {
    if (first_path.empty()) first_path.assign(order.begin(), order.end());
  };
  run_search(p, cfg);
  ASSERT_EQ(first_path.size(), 4u);
  for (std::size_t i = 0; i + 1 < first_path.size(); ++i)
    EXPECT_GE(p.jobs[first_path[i]].slowdown_now,
              p.jobs[first_path[i + 1]].slowdown_now);
}

TEST(Search, LxfBranchingBreaksSlowdownTiesBySubmitThenId) {
  // Regression: the old lxf comparator only compared slowdowns and leaned
  // on std::stable_sort for ties, i.e. on the caller's insertion order.
  // branching_order() must define a strict total order — equal-slowdown
  // jobs rank by (submit asc, id asc) regardless of how the problem vector
  // happens to be arranged.
  ProblemBuilder b(16, /*now=*/7200);
  // Jobs 0 and 1: identical shape and submit -> identical slowdown; jobs 2
  // and 3: different submits but estimates chosen so the slowdowns tie
  // exactly ((wait + est) / est equal for both).
  b.wait(0, 2, kHour)        // id 0, slowdown (7200+3600)/3600 = 3
      .wait(0, 2, kHour)     // id 1, same slowdown, higher id
      .wait(3600, 4, kHour)  // id 2, slowdown (3600+3600)/3600 = 2
      .wait(0, 8, 2 * kHour);  // id 3, slowdown (7200+7200)/7200 = 2
  const SearchProblem p = b.build();
  ASSERT_DOUBLE_EQ(p.jobs[0].slowdown_now, p.jobs[1].slowdown_now);
  ASSERT_DOUBLE_EQ(p.jobs[2].slowdown_now, p.jobs[3].slowdown_now);

  const std::vector<std::size_t> order = branching_order(p, Branching::Lxf);
  // Ties resolve by submit (job 3 submitted at 0 precedes job 2 at 3600),
  // then by id (0 before 1).
  const std::vector<std::size_t> expected = {0, 1, 3, 2};
  EXPECT_EQ(order, expected);

  // The same total order must hold with the jobs fed in reversed
  // positions — build an equivalent problem whose vector is permuted.
  ProblemBuilder rev(16, 7200);
  rev.wait(3600, 4, kHour)   // old id 2 now first in the vector
      .wait(0, 8, 2 * kHour)
      .wait(0, 2, kHour)
      .wait(0, 2, kHour);
  const SearchProblem pr = rev.build();
  const std::vector<std::size_t> order_r =
      branching_order(pr, Branching::Lxf);
  // ids in pr: 0 = (3600,4), 1 = (0,8), 2/3 = the twins.
  const std::vector<std::size_t> expected_r = {2, 3, 1, 0};
  EXPECT_EQ(order_r, expected_r);
}

TEST(Search, FcfsBranchingBreaksSubmitTiesById) {
  ProblemBuilder b(8, /*now=*/1000);
  b.wait(500, 1, kHour).wait(0, 2, kHour).wait(0, 3, kHour);
  const std::vector<std::size_t> order =
      branching_order(b.build(), Branching::Fcfs);
  const std::vector<std::size_t> expected = {1, 2, 0};
  EXPECT_EQ(order, expected);
}

TEST(Search, ExhaustiveFindsBruteForceOptimum) {
  const SearchProblem p = four_jobs();
  // Brute force over all permutations via the schedule builder.
  std::vector<std::size_t> perm = {0, 1, 2, 3};
  ObjectiveValue best = worst_objective();
  do {
    const BuiltSchedule s = build_schedule(p, perm);
    if (objective_less(s.value, best)) best = s.value;
  } while (std::next_permutation(perm.begin(), perm.end()));

  for (const SearchAlgo algo : {SearchAlgo::Lds, SearchAlgo::Dds}) {
    const SearchResult r =
        run_search(p, config(algo, Branching::Fcfs, 1'000'000));
    EXPECT_NEAR(r.value.excess_h, best.excess_h, 1e-9);
    EXPECT_NEAR(r.value.avg_bsld, best.avg_bsld, 1e-9);
  }
}

TEST(Search, ResultStartsMatchScheduleBuilder) {
  const SearchProblem p = four_jobs();
  const SearchResult r =
      run_search(p, config(SearchAlgo::Dds, Branching::Lxf, 1'000'000));
  const BuiltSchedule rebuilt = build_schedule(p, r.order);
  EXPECT_EQ(rebuilt.starts, r.starts);
  EXPECT_NEAR(rebuilt.value.excess_h, r.value.excess_h, 1e-9);
  EXPECT_NEAR(rebuilt.value.avg_bsld, r.value.avg_bsld, 1e-9);
}

TEST(Search, NodeBudgetRespectedAfterIterationZero) {
  const SearchProblem p = four_jobs();
  const SearchResult r = run_search(p, config(SearchAlgo::Dds, Branching::Fcfs, 10));
  EXPECT_FALSE(r.exhausted);
  // Budget may only be crossed by the final in-flight placement.
  EXPECT_LE(r.nodes_visited, 10u + 1u);
  EXPECT_GE(r.paths_completed, 1u);
}

TEST(Search, IterationZeroAlwaysCompletesEvenWithTinyBudget) {
  const SearchProblem p = four_jobs();
  const SearchResult r = run_search(p, config(SearchAlgo::Dds, Branching::Fcfs, 1));
  EXPECT_EQ(r.paths_completed, 1u);
  EXPECT_EQ(r.order.size(), 4u);
}

TEST(Search, MoreBudgetNeverWorsensTheObjective) {
  const SearchProblem p = four_jobs();
  ObjectiveValue prev = worst_objective();
  for (std::size_t budget : {4u, 8u, 16u, 32u, 64u, 200u}) {
    const SearchResult r =
        run_search(p, config(SearchAlgo::Dds, Branching::Fcfs, budget));
    EXPECT_FALSE(objective_less(prev, r.value)) << "budget " << budget;
    prev = r.value;
  }
}

TEST(Search, SingleJobTrivial) {
  ProblemBuilder b(4);
  b.wait(0, 2, kHour);
  const SearchProblem p = b.build();
  for (const SearchAlgo algo : {SearchAlgo::Lds, SearchAlgo::Dds}) {
    const SearchResult r = run_search(p, config(algo, Branching::Lxf, 100));
    EXPECT_TRUE(r.exhausted);
    EXPECT_EQ(r.paths_completed, 1u);
    EXPECT_EQ(r.starts[0], 0);
  }
}

TEST(Search, EmptyProblemRejected) {
  ProblemBuilder b(4);
  const SearchProblem p = b.build();
  EXPECT_THROW(run_search(p, config(SearchAlgo::Dds, Branching::Lxf, 100)),
               Error);
}

TEST(Search, DfsCoversAllPathsExactlyOnce) {
  const SearchProblem p = four_jobs();
  std::set<std::vector<std::size_t>> seen;
  SearchConfig cfg = config(SearchAlgo::Dfs, Branching::Fcfs, 1'000'000);
  cfg.on_path = [&](std::span<const std::size_t> order, const ObjectiveValue&) {
    std::vector<std::size_t> v(order.begin(), order.end());
    EXPECT_TRUE(seen.insert(v).second) << "duplicate path";
  };
  const SearchResult r = run_search(p, cfg);
  EXPECT_TRUE(r.exhausted);
  EXPECT_EQ(r.paths_completed, 24u);
  // DFS visits each tree node exactly once: 64 nodes for n = 4.
  EXPECT_EQ(r.nodes_visited, 64u);
}

TEST(Search, DfsFirstPathIsHeuristicAndBudgetGuaranteesIt) {
  const SearchProblem p = four_jobs();
  std::vector<std::size_t> first;
  SearchConfig cfg = config(SearchAlgo::Dfs, Branching::Fcfs, 1);
  cfg.on_path = [&](std::span<const std::size_t> order, const ObjectiveValue&) {
    if (first.empty()) first.assign(order.begin(), order.end());
  };
  const SearchResult r = run_search(p, cfg);
  EXPECT_EQ(first, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_GE(r.paths_completed, 1u);
  EXPECT_FALSE(r.exhausted);
}

TEST(Search, DfsRevisesDeepDecisionsFirst) {
  // The 2nd DFS path differs from the heuristic path only at the deepest
  // branching level — the structural weakness discrepancy search fixes.
  const SearchProblem p = four_jobs();
  std::vector<std::vector<std::size_t>> paths;
  SearchConfig cfg = config(SearchAlgo::Dfs, Branching::Fcfs, 1'000'000);
  cfg.on_path = [&](std::span<const std::size_t> order, const ObjectiveValue&) {
    if (paths.size() < 2) paths.emplace_back(order.begin(), order.end());
  };
  run_search(p, cfg);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[1], (std::vector<std::size_t>{0, 1, 3, 2}));
  // Contrast: DDS's 2nd path breaks at the ROOT.
  std::vector<std::vector<std::size_t>> dds_paths;
  SearchConfig dds_cfg = config(SearchAlgo::Dds, Branching::Fcfs, 1'000'000);
  dds_cfg.on_path = [&](std::span<const std::size_t> order,
                        const ObjectiveValue&) {
    if (dds_paths.size() < 2) dds_paths.emplace_back(order.begin(), order.end());
  };
  run_search(p, dds_cfg);
  EXPECT_EQ(dds_paths[1][0], 1u);  // discrepancy at depth 1
}

TEST(Search, LdsAndDdsExploreTheSamePathSet) {
  // Different exploration ORDER, identical coverage: on a 5-job problem
  // both algorithms enumerate exactly the same 120 paths.
  Rng rng(123);
  ProblemBuilder b(8);
  b.busy(3, 2 * kHour);
  for (int i = 0; i < 5; ++i)
    b.wait(-static_cast<Time>(rng.uniform_int(0, 6 * kHour)),
           static_cast<int>(rng.uniform_int(1, 8)),
           static_cast<Time>(rng.uniform_int(kMinute, 6 * kHour)),
           static_cast<Time>(rng.uniform_int(0, 2 * kHour)));
  const SearchProblem p = b.build();

  auto collect = [&](SearchAlgo algo) {
    std::set<std::vector<std::size_t>> seen;
    SearchConfig cfg = config(algo, Branching::Lxf, 1'000'000);
    cfg.on_path = [&](std::span<const std::size_t> order,
                      const ObjectiveValue&) {
      seen.emplace(order.begin(), order.end());
    };
    const SearchResult r = run_search(p, cfg);
    EXPECT_TRUE(r.exhausted);
    return seen;
  };
  const auto lds_paths = collect(SearchAlgo::Lds);
  const auto dds_paths = collect(SearchAlgo::Dds);
  EXPECT_EQ(lds_paths.size(), 120u);
  EXPECT_EQ(lds_paths, dds_paths);
}

TEST(Search, ExhaustiveAlgorithmsAgreeOnTheOptimum) {
  Rng rng(321);
  for (int trial = 0; trial < 10; ++trial) {
    ProblemBuilder b(16);
    b.busy(static_cast<int>(rng.uniform_int(0, 15)),
           static_cast<Time>(rng.uniform_int(1, 4 * kHour)));
    const int n = static_cast<int>(rng.uniform_int(2, 6));
    for (int i = 0; i < n; ++i)
      b.wait(-static_cast<Time>(rng.uniform_int(0, 8 * kHour)),
             static_cast<int>(rng.uniform_int(1, 16)),
             static_cast<Time>(rng.uniform_int(kMinute, 8 * kHour)),
             static_cast<Time>(rng.uniform_int(0, 3 * kHour)));
    const SearchProblem p = b.build();
    const SearchResult lds =
        run_search(p, config(SearchAlgo::Lds, Branching::Fcfs, 1'000'000));
    const SearchResult dds =
        run_search(p, config(SearchAlgo::Dds, Branching::Lxf, 1'000'000));
    EXPECT_NEAR(lds.value.excess_h, dds.value.excess_h, 1e-9);
    EXPECT_NEAR(lds.value.avg_bsld, dds.value.avg_bsld, 1e-9);
  }
}

TEST(Search, ImprovementTraceIsMonotoneAndStartsAtHeuristic) {
  const SearchProblem p = four_jobs();
  for (const SearchAlgo algo :
       {SearchAlgo::Lds, SearchAlgo::Dds, SearchAlgo::Dfs}) {
    const SearchResult r =
        run_search(p, config(algo, Branching::Fcfs, 1'000'000));
    ASSERT_FALSE(r.improvements.empty()) << algo_name(algo);
    // First improvement is the first completed path (the heuristic path
    // for every algorithm).
    EXPECT_EQ(r.improvements.front().path, 1u);
    EXPECT_EQ(r.improvements.front().nodes, 4u);
    // Strictly improving, node counts non-decreasing, last == final value.
    for (std::size_t i = 1; i < r.improvements.size(); ++i) {
      EXPECT_TRUE(objective_less(r.improvements[i].value,
                                 r.improvements[i - 1].value));
      EXPECT_GE(r.improvements[i].nodes, r.improvements[i - 1].nodes);
    }
    EXPECT_NEAR(r.improvements.back().value.excess_h, r.value.excess_h, 1e-12);
    EXPECT_NEAR(r.improvements.back().value.avg_bsld, r.value.avg_bsld, 1e-12);
  }
}

TEST(Search, WeightedComparatorFindsWeightedOptimum) {
  const SearchProblem p = four_jobs();
  for (const double alpha : {0.1, 1.0, 10.0}) {
    // Brute force with the weighted score.
    std::vector<std::size_t> perm = {0, 1, 2, 3};
    double best = std::numeric_limits<double>::infinity();
    do {
      const BuiltSchedule s = build_schedule(p, perm);
      best = std::min(best, alpha * s.value.excess_h + s.value.avg_bsld);
    } while (std::next_permutation(perm.begin(), perm.end()));

    SearchConfig cfg = config(SearchAlgo::Dds, Branching::Fcfs, 1'000'000);
    cfg.comparator.weighted_alpha = alpha;
    const SearchResult r = run_search(p, cfg);
    EXPECT_NEAR(alpha * r.value.excess_h + r.value.avg_bsld, best, 1e-9)
        << "alpha " << alpha;
  }
}

TEST(Search, PruningIncompatibleWithWeightedComparator) {
  const SearchProblem p = four_jobs();
  SearchConfig cfg = config(SearchAlgo::Dds, Branching::Fcfs, 100, true);
  cfg.comparator.weighted_alpha = 1.0;
  EXPECT_THROW(run_search(p, cfg), Error);
}

TEST(Search, PruningPreservesTheOptimum) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    ProblemBuilder b(8);
    b.busy(static_cast<int>(rng.uniform_int(0, 7)),
           static_cast<Time>(rng.uniform_int(1, 3 * kHour)));
    const int n = static_cast<int>(rng.uniform_int(2, 6));
    for (int i = 0; i < n; ++i)
      b.wait(-static_cast<Time>(rng.uniform_int(0, 5 * kHour)),
             static_cast<int>(rng.uniform_int(1, 8)),
             static_cast<Time>(rng.uniform_int(kMinute, 6 * kHour)),
             static_cast<Time>(rng.uniform_int(0, 2 * kHour)));
    const SearchProblem p = b.build();
    const SearchResult plain =
        run_search(p, config(SearchAlgo::Dds, Branching::Lxf, 1'000'000));
    const SearchResult pruned = run_search(
        p, config(SearchAlgo::Dds, Branching::Lxf, 1'000'000, true));
    ASSERT_TRUE(plain.exhausted);
    ASSERT_TRUE(pruned.exhausted);
    EXPECT_NEAR(plain.value.excess_h, pruned.value.excess_h, 1e-9);
    EXPECT_NEAR(plain.value.avg_bsld, pruned.value.avg_bsld, 1e-9);
    EXPECT_LE(pruned.nodes_visited, plain.nodes_visited);
  }
}

TEST(Search, NodeCountMatchesTreeSizeWhenExhaustive_DDS) {
  // DDS visits each path's nodes independently; with n=4 the per-iteration
  // node counts are fixed by the tree structure. Just pin the totals so a
  // refactor that double-visits or skips nodes is caught.
  const SearchProblem p = four_jobs();
  const SearchResult lds =
      run_search(p, config(SearchAlgo::Lds, Branching::Fcfs, 1'000'000));
  const SearchResult dds =
      run_search(p, config(SearchAlgo::Dds, Branching::Fcfs, 1'000'000));
  EXPECT_TRUE(lds.exhausted);
  EXPECT_TRUE(dds.exhausted);
  // Both visit at least one node per path-step and at most the full tree
  // once per iteration.
  EXPECT_GE(lds.nodes_visited, 24u * 1u);
  EXPECT_GE(dds.nodes_visited, 24u * 1u);
  EXPECT_EQ(lds.iterations_started, 4u);
  EXPECT_EQ(dds.iterations_started, 4u);
}

// Property: search-found schedules on random problems are feasible
// (rebuildable) and never worse than the heuristic-only schedule.
class SearchProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SearchProperty, NeverWorseThanHeuristicAndRebuildable) {
  Rng rng(GetParam());
  ProblemBuilder b(16);
  b.busy(static_cast<int>(rng.uniform_int(0, 15)),
         static_cast<Time>(rng.uniform_int(1, 4 * kHour)));
  const int n = static_cast<int>(rng.uniform_int(3, 9));
  for (int i = 0; i < n; ++i)
    b.wait(-static_cast<Time>(rng.uniform_int(0, 10 * kHour)),
           static_cast<int>(rng.uniform_int(1, 16)),
           static_cast<Time>(rng.uniform_int(kMinute, 8 * kHour)),
           static_cast<Time>(rng.uniform_int(0, 4 * kHour)));
  const SearchProblem p = b.build();

  for (const SearchAlgo algo : {SearchAlgo::Lds, SearchAlgo::Dds}) {
    for (const Branching br : {Branching::Fcfs, Branching::Lxf}) {
      SearchConfig cfg = config(algo, br, 500);
      std::vector<std::size_t> heuristic_path;
      ObjectiveValue heuristic_value;
      bool first = true;
      cfg.on_path = [&](std::span<const std::size_t> order,
                        const ObjectiveValue& v) {
        if (first) {
          heuristic_path.assign(order.begin(), order.end());
          heuristic_value = v;
          first = false;
        }
      };
      const SearchResult r = run_search(p, cfg);
      EXPECT_FALSE(objective_less(heuristic_value, r.value));
      const BuiltSchedule rebuilt = build_schedule(p, r.order);
      EXPECT_EQ(rebuilt.starts, r.starts);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SearchProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace sbs
